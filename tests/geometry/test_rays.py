"""Ray bundle and depth sampling tests."""

import numpy as np
import pytest

from repro.geometry import (Intrinsics, RayBundle, camera_at,
                            image_shape_for_step, rays_for_image,
                            rays_for_pixels, stratified_depths)


@pytest.fixture()
def camera():
    return camera_at(np.array([0, 0, -4.0]), np.zeros(3),
                     Intrinsics.from_fov(16, 12, 60.0))


class TestRayBundle:
    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            RayBundle(np.zeros((3, 3)), np.zeros((4, 3)), 1.0, 2.0)

    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            RayBundle(np.zeros((2, 3)), np.ones((2, 3)), 5.0, 2.0)

    def test_points_at(self, camera):
        bundle = rays_for_pixels(camera, np.array([[8.0, 6.0]]), 1.0, 5.0)
        depths = np.array([[1.0, 2.0, 4.0]])
        points = bundle.points_at(depths)
        assert points.shape == (1, 3, 3)
        d = np.linalg.norm(points[0] - bundle.origins[0], axis=-1)
        assert np.allclose(d, depths[0])

    def test_select_mask(self, camera):
        bundle = rays_for_image(camera, 1.0, 5.0, step=4)
        mask = np.zeros(len(bundle), dtype=bool)
        mask[:2] = True
        sub = bundle.select(mask)
        assert len(sub) == 2
        assert sub.pixels.shape == (2, 2)


class TestRayGeneration:
    def test_rays_for_image_count(self, camera):
        bundle = rays_for_image(camera, 1.0, 5.0, step=1)
        assert len(bundle) == 16 * 12
        rows, cols = image_shape_for_step(camera, 1)
        assert (rows, cols) == (12, 16)

    def test_strided_shape(self, camera):
        bundle = rays_for_image(camera, 1.0, 5.0, step=5)
        rows, cols = image_shape_for_step(camera, 5)
        assert len(bundle) == rows * cols

    def test_origins_at_camera_center(self, camera):
        bundle = rays_for_image(camera, 1.0, 5.0, step=4)
        assert np.allclose(bundle.origins, camera.center)

    def test_directions_unit(self, camera):
        bundle = rays_for_image(camera, 1.0, 5.0, step=3)
        assert np.allclose(np.linalg.norm(bundle.directions, axis=-1), 1.0)


class TestStratifiedDepths:
    def test_bounds_and_sorted(self, rng):
        depths = stratified_depths(rng, 10, 16, 2.0, 6.0)
        assert depths.shape == (10, 16)
        assert (depths >= 2.0).all() and (depths <= 6.0).all()
        assert (np.diff(depths, axis=-1) >= 0).all()

    def test_deterministic_centers(self, rng):
        depths = stratified_depths(rng, 2, 4, 0.0, 4.0, jitter=False)
        assert np.allclose(depths[0], [0.5, 1.5, 2.5, 3.5])

    def test_one_sample_per_bin(self, rng):
        depths = stratified_depths(rng, 100, 8, 0.0, 8.0)
        bins = np.floor(depths).astype(int)
        assert np.all(bins == np.arange(8))
