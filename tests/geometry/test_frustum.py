"""Frustum and footprint tests (the scheduler's area calculator)."""

import numpy as np
import pytest

from repro.geometry import (Intrinsics, PatchRegion, camera_at,
                            convex_hull_area, depth_of_bin, frustum_corners,
                            patch_memory_footprint, project_frustum)


@pytest.fixture()
def cameras():
    intr = Intrinsics.from_fov(64, 48, 60.0)
    novel = camera_at(np.array([0, 0, -4.0]), np.zeros(3), intr)
    source = camera_at(np.array([1.0, 0.3, -3.8]), np.zeros(3), intr)
    return novel, source


class TestHullArea:
    def test_unit_square(self):
        square = np.array([[0, 0], [1, 0], [1, 1], [0, 1]])
        assert np.isclose(convex_hull_area(square), 1.0)

    def test_interior_points_ignored(self):
        pts = np.array([[0, 0], [2, 0], [2, 2], [0, 2],
                        [1, 1], [0.5, 0.5]])
        assert np.isclose(convex_hull_area(pts), 4.0)

    def test_degenerate_inputs(self):
        assert convex_hull_area(np.zeros((1, 2))) == 0.0
        collinear = np.array([[0, 0], [1, 1], [2, 2]])
        assert convex_hull_area(collinear) == 0.0

    def test_triangle(self):
        tri = np.array([[0, 0], [4, 0], [0, 3]])
        assert np.isclose(convex_hull_area(tri), 6.0)


class TestPatchRegion:
    def test_counts(self):
        region = PatchRegion(0, 8, 0, 16, 4, 12)
        assert region.num_pixels == 128
        assert region.num_depth_bins == 8
        assert region.num_points == 1024
        assert region.shape == (8, 16, 8)

    def test_depth_of_bin(self):
        assert np.isclose(depth_of_bin(0, 64, 2.0, 6.0), 2.0)
        assert np.isclose(depth_of_bin(64, 64, 2.0, 6.0), 6.0)
        assert np.isclose(depth_of_bin(32, 64, 2.0, 6.0), 4.0)


class TestFrustum:
    def test_corner_count_and_depths(self, cameras):
        novel, _ = cameras
        region = PatchRegion(8, 16, 8, 16, 0, 32)
        corners = frustum_corners(novel, region, 64, 2.0, 6.0)
        assert corners.shape == (8, 3)
        cam_z = novel.world_to_camera(corners)[:, 2]
        assert np.allclose(cam_z[:4], 2.0)
        assert np.allclose(cam_z[4:], 4.0)

    def test_projection_visible(self, cameras):
        novel, source = cameras
        region = PatchRegion(10, 20, 10, 20, 8, 16)
        corners = frustum_corners(novel, region, 64, 2.0, 6.0)
        footprint = project_frustum(corners, source)
        assert footprint.visible
        assert footprint.area > 0
        assert footprint.bbox_width > 0 and footprint.bbox_height > 0

    def test_projection_behind_camera(self, cameras):
        novel, source = cameras
        corners = np.broadcast_to(source.center - source.forward * 2.0,
                                  (8, 3)).copy()
        footprint = project_frustum(corners, source)
        assert not footprint.visible
        assert footprint.area == 0.0

    def test_feature_scale_shrinks_area(self, cameras):
        novel, source = cameras
        region = PatchRegion(10, 20, 10, 20, 8, 16)
        corners = frustum_corners(novel, region, 64, 2.0, 6.0)
        full = project_frustum(corners, source, feature_scale=1.0)
        half = project_frustum(corners, source, feature_scale=0.5)
        assert np.isclose(half.area, full.area * 0.25, rtol=0.05)


class TestMemoryFootprint:
    def test_monotone_in_patch_size(self, cameras):
        novel, source = cameras
        small = PatchRegion(10, 14, 10, 14, 4, 8)
        large = PatchRegion(0, 32, 0, 32, 0, 32)
        fp_small = patch_memory_footprint(novel, [source], small, 64, 2, 6)
        fp_large = patch_memory_footprint(novel, [source], large, 64, 2, 6)
        assert fp_small["total_bytes"] < fp_large["total_bytes"]

    def test_scales_with_views_and_channels(self, cameras):
        novel, source = cameras
        region = PatchRegion(8, 24, 8, 24, 8, 24)
        one = patch_memory_footprint(novel, [source], region, 64, 2, 6,
                                     channels=16)
        two = patch_memory_footprint(novel, [source, source], region, 64,
                                     2, 6, channels=16)
        assert np.isclose(two["total_bytes"], 2 * one["total_bytes"])
        wide = patch_memory_footprint(novel, [source], region, 64, 2, 6,
                                      channels=32)
        assert np.isclose(wide["total_bytes"], 2 * one["total_bytes"])

    def test_bytes_per_point(self, cameras):
        novel, source = cameras
        region = PatchRegion(0, 16, 0, 16, 0, 16)
        result = patch_memory_footprint(novel, [source], region, 64, 2, 6)
        expected = result["total_bytes"] / region.num_points
        assert np.isclose(result["bytes_per_point"], expected)
