"""Camera model tests: projections, round trips, validation."""

import numpy as np
import pytest

from repro.geometry import Camera, Intrinsics, camera_at


@pytest.fixture()
def camera():
    intr = Intrinsics.from_fov(64, 48, 60.0)
    return camera_at(np.array([0.5, -0.3, -4.0]), np.zeros(3), intr)


class TestIntrinsics:
    def test_from_fov_focal(self):
        intr = Intrinsics.from_fov(100, 80, 90.0)
        assert np.isclose(intr.fx, 50.0)
        assert intr.cx == 50.0 and intr.cy == 40.0

    def test_matrix_inverse(self):
        intr = Intrinsics.from_fov(64, 48, 60.0)
        assert np.allclose(intr.matrix @ intr.inverse, np.eye(3), atol=1e-12)

    def test_scaled(self):
        intr = Intrinsics.from_fov(64, 48, 60.0)
        half = intr.scaled(0.5)
        assert half.width == 32 and half.height == 24
        assert np.isclose(half.fx, intr.fx * 0.5)


class TestCamera:
    def test_rejects_non_orthonormal_rotation(self):
        intr = Intrinsics.from_fov(8, 8, 60.0)
        with pytest.raises(ValueError):
            Camera(intr, rotation=np.ones((3, 3)))

    def test_rejects_bad_rotation_shape(self):
        intr = Intrinsics.from_fov(8, 8, 60.0)
        with pytest.raises(ValueError):
            Camera(intr, rotation=np.eye(4))

    def test_center_and_forward(self, camera):
        assert np.allclose(camera.center, [0.5, -0.3, -4.0], atol=1e-12)
        # Camera looks at the origin.
        to_origin = -camera.center / np.linalg.norm(camera.center)
        assert np.allclose(camera.forward, to_origin, atol=1e-12)

    def test_world_camera_roundtrip(self, camera, rng):
        pts = rng.uniform(-2, 2, (50, 3))
        back = camera.camera_to_world(camera.world_to_camera(pts))
        assert np.abs(back - pts).max() < 1e-12

    def test_project_unproject_roundtrip(self, camera, rng):
        pts = rng.uniform(-1, 1, (100, 3))
        pixels, depth = camera.project(pts, return_depth=True)
        assert (depth > 0).all()
        back = camera.unproject(pixels, depth)
        assert np.abs(back - pts).max() < 1e-9

    def test_principal_point_projects_center(self, camera):
        # A point straight ahead lands on the principal point.
        ahead = camera.center + 2.0 * camera.forward
        pix = camera.project(ahead[None])[0]
        assert np.allclose(pix, [camera.intrinsics.cx, camera.intrinsics.cy],
                           atol=1e-9)

    def test_behind_camera_depth_negative(self, camera):
        behind = camera.center - camera.forward
        _, depth = camera.project(behind[None], return_depth=True)
        assert depth[0] < 0

    def test_in_view(self, camera):
        assert camera.in_view(np.zeros((1, 3)))[0]
        far_off = camera.center + 2.0 * camera.forward \
            + np.array([100.0, 0, 0])
        assert not camera.in_view(far_off[None])[0]

    def test_pixel_ray_directions_unit_norm(self, camera, rng):
        pixels = rng.uniform(0, 48, (20, 2))
        dirs = camera.pixel_ray_directions(pixels)
        assert np.allclose(np.linalg.norm(dirs, axis=-1), 1.0)

    def test_ray_through_pixel_projects_back(self, camera):
        pixel = np.array([[20.0, 30.0]])
        direction = camera.pixel_ray_directions(pixel)[0]
        point = camera.center + 3.0 * direction
        assert np.allclose(camera.project(point[None])[0], pixel[0],
                           atol=1e-9)

    def test_resized_preserves_geometry(self, camera):
        half = camera.resized(0.5)
        point = np.array([[0.3, -0.2, 0.1]])
        assert np.allclose(half.project(point), camera.project(point) * 0.5,
                           atol=1e-9)

    def test_projection_matrix_matches_project(self, camera, rng):
        pts = rng.uniform(-1, 1, (10, 3))
        homog = np.hstack([pts, np.ones((10, 1))])
        proj = homog @ camera.projection_matrix.T
        pixels = proj[:, :2] / proj[:, 2:3]
        assert np.allclose(pixels, camera.project(pts), atol=1e-9)
