"""Pose construction tests."""

import numpy as np
import pytest

from repro.geometry import (Intrinsics, camera_at, forward_facing_cameras,
                            look_at, normalize, orbit_cameras,
                            rotation_about_axis)


class TestLookAt:
    def test_rotation_is_orthonormal(self):
        rotation, _ = look_at(np.array([1.0, 2.0, 3.0]), np.zeros(3))
        assert np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-12)

    def test_forward_points_at_target(self):
        eye = np.array([0.0, 0.0, -5.0])
        rotation, translation = look_at(eye, np.zeros(3))
        forward_world = rotation.T @ np.array([0, 0, 1.0])
        assert np.allclose(forward_world, [0, 0, 1.0], atol=1e-12)

    def test_degenerate_up_handled(self):
        # Looking straight along the up vector must not crash.
        rotation, _ = look_at(np.array([0.0, -5.0, 0.0]), np.zeros(3))
        assert np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-10)

    def test_normalize_rejects_zero(self):
        with pytest.raises(ValueError):
            normalize(np.zeros(3))


class TestRigs:
    def test_orbit_count_and_distance(self):
        intr = Intrinsics.from_fov(32, 32, 60.0)
        cams = orbit_cameras(intr, radius=4.0, count=8)
        assert len(cams) == 8
        for cam in cams:
            assert np.isclose(np.linalg.norm(cam.center), 4.0)
            # Every camera sees the origin.
            assert cam.in_view(np.zeros((1, 3)))[0]

    def test_orbit_azimuths_spread(self):
        intr = Intrinsics.from_fov(32, 32, 60.0)
        cams = orbit_cameras(intr, radius=4.0, count=4)
        centers = np.array([c.center for c in cams])
        # Full circle: centers should not be clustered on one side.
        assert centers[:, 0].max() > 0 > centers[:, 0].min()

    def test_forward_facing_sees_target(self):
        intr = Intrinsics.from_fov(32, 32, 60.0)
        cams = forward_facing_cameras(intr, distance=4.0, count=6)
        assert len(cams) == 6
        for cam in cams:
            assert cam.in_view(np.zeros((1, 3)))[0]
            assert cam.center[2] < -2.0   # all on the same side

    def test_forward_facing_jitter_reproducible(self):
        intr = Intrinsics.from_fov(32, 32, 60.0)
        a = forward_facing_cameras(intr, 4.0, 4,
                                   jitter_rng=np.random.default_rng(1))
        b = forward_facing_cameras(intr, 4.0, 4,
                                   jitter_rng=np.random.default_rng(1))
        assert np.allclose(a[2].center, b[2].center)


class TestRotation:
    def test_rotation_about_axis_basics(self):
        rot = rotation_about_axis(np.array([0, 1.0, 0]), np.pi / 2)
        assert np.allclose(rot @ np.array([1.0, 0, 0]), [0, 0, -1],
                           atol=1e-12)
        assert np.isclose(np.linalg.det(rot), 1.0)

    def test_full_turn_is_identity(self):
        rot = rotation_about_axis(np.array([1.0, 2.0, 3.0]), 2 * np.pi)
        assert np.allclose(rot, np.eye(3), atol=1e-12)
