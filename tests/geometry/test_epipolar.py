"""Epipolar geometry tests: the paper's Properties 1-3, executable."""

import numpy as np
import pytest

from repro.geometry import (Camera, EpipolarPair, Intrinsics, camera_at,
                            epipolar_line, epipole_in_novel,
                            epipole_in_source, essential_matrix,
                            fundamental_matrix,
                            group_rays_by_epipolar_lines, orbit_cameras,
                            pixels_through_epipole, point_line_distance,
                            rays_for_pixels, relative_pose, skew)


@pytest.fixture()
def pair():
    intr = Intrinsics.from_fov(64, 48, 60.0)
    novel = camera_at(np.array([0.4, -0.2, -4.0]), np.zeros(3), intr)
    source = camera_at(np.array([1.5, 0.5, -3.6]), np.zeros(3), intr)
    return EpipolarPair(novel, source)


class TestBasics:
    def test_skew_matrix_cross_product(self, rng):
        v = rng.standard_normal(3)
        w = rng.standard_normal(3)
        assert np.allclose(skew(v) @ w, np.cross(v, w))

    def test_relative_pose_consistency(self, pair, rng):
        r_rel, t_rel = relative_pose(pair.source, pair.novel)
        pts = rng.uniform(-1, 1, (20, 3))
        cam_n = pair.novel.world_to_camera(pts)
        cam_s = pair.source.world_to_camera(pts)
        assert np.allclose(cam_n @ r_rel.T + t_rel, cam_s, atol=1e-10)

    def test_epipolar_constraint(self, pair, rng):
        """x_s^T F x_n = 0 for projections of any 3D point."""
        fundamental = pair.fundamental
        pts = rng.uniform(-1.5, 1.5, (50, 3))
        pix_n = pair.novel.project(pts)
        pix_s = pair.source.project(pts)
        h_n = np.hstack([pix_n, np.ones((50, 1))])
        h_s = np.hstack([pix_s, np.ones((50, 1))])
        residuals = np.einsum("ni,ij,nj->n", h_s, fundamental, h_n)
        # Scale-invariant check against the matrix norm.
        assert np.abs(residuals).max() < 1e-6 * np.abs(fundamental).max() * 1e4

    def test_fundamental_rank_two(self, pair):
        assert np.linalg.matrix_rank(pair.fundamental, tol=1e-10) == 2

    def test_epipole_is_null_vector(self, pair):
        """F e_n = 0 (the epipole lies on every epipolar line)."""
        e_n = pair.epipole_novel
        residual = pair.fundamental @ e_n
        assert np.linalg.norm(residual) < 1e-6 * np.linalg.norm(e_n) \
            * np.abs(pair.fundamental).max() * 1e3

    def test_epipole_projects_other_center(self, pair):
        e_s = pair.epipole_source
        expected = pair.source.project(pair.novel.center[None])[0]
        assert np.allclose(e_s[:2] / e_s[2], expected, atol=1e-8)


class TestProperties:
    def test_property1_ray_samples_on_line(self, pair):
        residual = pair.property1_residual(np.array([20.0, 15.0]),
                                           np.linspace(1.0, 8.0, 48))
        assert residual < 1e-6

    def test_property1_many_pixels(self, pair, rng):
        for _ in range(5):
            pixel = rng.uniform(5, 40, 2)
            assert pair.property1_residual(pixel,
                                           np.linspace(2, 6, 16)) < 1e-6

    def test_property2_collinear_share_line(self, pair):
        pixels = pixels_through_epipole(pair.epipole_novel, angle=1.1,
                                        count=10)
        assert pair.property2_line_spread(pixels) < 1e-6

    def test_property2_random_do_not(self, pair, rng):
        pixels = rng.uniform(0, 48, (10, 2))
        assert pair.property2_line_spread(pixels) > 1e-3

    def test_property3_monotone_in_extent(self, pair, rng):
        spreads = []
        for extent in (0.05, 0.2, 0.8):
            cloud = rng.uniform(-extent, extent, (64, 3))
            spreads.append(pair.property3_projection_spread(cloud))
        assert spreads[0] < spreads[1] < spreads[2]

    def test_property3_empty_cloud(self, pair):
        assert pair.property3_projection_spread(np.zeros((1, 3))) == 0.0


class TestRayGrouping:
    def test_groups_are_balanced(self, pair, rng):
        pixels = rng.uniform(0, 48, (2048, 2))
        groups = group_rays_by_epipolar_lines(pair.novel, pair.source,
                                              pixels, num_groups=8)
        counts = np.bincount(groups, minlength=8)
        assert counts.min() > 0.5 * counts.max()

    def test_groups_share_epipolar_lines(self, pair, rng):
        """Pixels in the same group have small epipolar-line spread
        compared to the whole image."""
        pixels = rng.uniform(0, 48, (512, 2))
        groups = group_rays_by_epipolar_lines(pair.novel, pair.source,
                                              pixels, num_groups=16)
        grouped_spread = np.mean([
            pair.property2_line_spread(pixels[groups == g])
            for g in range(16) if (groups == g).sum() >= 2])
        total_spread = pair.property2_line_spread(pixels)
        assert grouped_spread < 0.5 * total_spread

    def test_group_ids_in_range(self, pair, rng):
        pixels = rng.uniform(0, 48, (100, 2))
        groups = group_rays_by_epipolar_lines(pair.novel, pair.source,
                                              pixels, num_groups=4)
        assert groups.min() >= 0 and groups.max() <= 3


class TestLineHelpers:
    def test_point_line_distance_known(self):
        line = np.array([1.0, 0.0, -3.0])     # x = 3
        assert np.isclose(point_line_distance(line, np.array([5.0, 7.0])),
                          2.0)

    def test_epipolar_line_accepts_2d_pixels(self, pair):
        line = epipolar_line(pair.fundamental, np.array([10.0, 10.0]))
        assert line.shape == (3,)
