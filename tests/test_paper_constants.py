"""Headline paper numbers, asserted in one place.

Collects the quantitative anchors from the paper's text and tables and
checks our reproduction lands within documented tolerances (loose where
our substitutions — analytic scenes, roofline GPUs, reconstructed layer
dims — legitimately shift absolutes; see EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.core.pipeline import CoDesignPipeline
from repro.hardware.area_power import PAPER_TABLE1, full_chip_budget
from repro.hardware.energy import typical_chip_power_w
from repro.hardware.gpu_model import GpuModel, RTX_2080TI
from repro.models.workload import (profiling_workload, table2_workload,
                                   typical_workload)


class TestSection51:
    def test_typical_workload_tflops(self):
        """'involves 0.328 trillion FLOPs' (Sec. 5.1)."""
        measured = typical_workload().total_flops() / 1e12
        assert 0.24 < measured < 0.42

    def test_chip_area(self):
        """Table 1/4: 17.80 mm^2 total."""
        assert abs(full_chip_budget()["total"].area_mm2 - 17.80) < 1.8

    def test_typical_power(self):
        """Table 4: 9.7 W."""
        assert abs(typical_chip_power_w() - 9.7) < 1.0


class TestSection23:
    def test_best_case_gpu_fps(self):
        """'RTX 2080Ti can only achieve a <= 0.249 FPS'."""
        gpu = GpuModel(RTX_2080TI)
        best = max(gpu.simulate_frame(profiling_workload(h, w)).fps
                   for h, w in ((512, 512), (800, 800), (756, 1008)))
        assert best < 0.4
        assert abs(best - 0.249) < 0.1

    def test_attention_time_vs_flops_disparity(self):
        """'44.1% of total DNN inference time ... only 13.8% of FLOPs'."""
        gpu = GpuModel(RTX_2080TI)
        sim = gpu.simulate_frame(profiling_workload(756, 1008))
        time_share = sim.dnn_attention_fraction()
        workload = profiling_workload(756, 1008)
        flops_share = workload.ray_module_flops_per_pixel() / (
            workload.ray_module_flops_per_pixel()
            + workload.mlp_flops_per_pixel())
        assert time_share > 2.5 * flops_share   # the paper's disparity
        assert 0.30 < time_share < 0.60


class TestTable2Ladder:
    def test_mflops_ordering(self):
        """Each technique strictly reduces FLOPs along the ladder."""
        ladder = ["vanilla", "coarse_focus", "pruned"]
        values = [table2_workload(row).flops_per_pixel() for row in ladder]
        assert values[0] > values[1] > values[2]

    def test_total_reduction_factor(self):
        """'reduce the required FLOPs by 27.3x' for 6 views (Sec. 5.2)."""
        factor = table2_workload("vanilla").flops_per_pixel() \
            / table2_workload("pruned", num_views=6).flops_per_pixel()
        assert 18 < factor < 40


@pytest.mark.slow
class TestHeadlineThroughput:
    """Fig. 10 / Table 4 anchors — full-resolution simulations (~20 s)."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        return CoDesignPipeline()

    def test_real_time_on_800x800(self, pipeline):
        """'our accelerator can satisfy the real-time requirement
        (>= 24 FPS) for rendering an 800x800 image' (within 10%)."""
        sim = pipeline.simulate_accelerator("nerf_synthetic")
        assert sim.fps > 21.5

    def test_speedup_vs_2080ti_order_of_magnitude(self, pipeline):
        """Paper: 239-256x. Our calibrated models land in the same
        order of magnitude (documented deviation in EXPERIMENTS.md)."""
        result = pipeline.fps_comparison("llff")
        assert 80 < result["speedup_vs_2080ti"] < 600

    def test_speedup_vs_tx2(self, pipeline):
        """Paper: 7448.9x on LLFF."""
        result = pipeline.fps_comparison("llff")
        assert 1500 < result["speedup_vs_tx2"] < 15000
