"""Module system and layer tests."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


class TestModuleSystem:
    def test_named_parameters_are_hierarchical(self, rng):
        mlp = nn.MLP(4, [8], 2, rng=rng)
        names = [name for name, _ in mlp.named_parameters()]
        assert "net.m0.weight" in names
        assert "net.m0.bias" in names
        assert len(names) == 4

    def test_num_parameters(self, rng):
        linear = nn.Linear(4, 3, rng=rng)
        assert linear.num_parameters() == 4 * 3 + 3

    def test_state_dict_roundtrip(self, rng):
        src = nn.MLP(4, [8], 2, rng=rng)
        dst = nn.MLP(4, [8], 2, rng=np.random.default_rng(99))
        dst.load_state_dict(src.state_dict())
        x = Tensor(rng.standard_normal((5, 4)))
        assert np.allclose(src(x).data, dst(x).data)

    def test_load_state_dict_validates_keys(self, rng):
        mlp = nn.MLP(4, [8], 2, rng=rng)
        state = mlp.state_dict()
        state.pop("net.m0.bias")
        with pytest.raises(KeyError):
            mlp.load_state_dict(state)

    def test_load_state_dict_validates_shapes(self, rng):
        mlp = nn.MLP(4, [8], 2, rng=rng)
        state = mlp.state_dict()
        state["net.m0.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            mlp.load_state_dict(state)

    def test_train_eval_propagates(self, rng):
        mlp = nn.MLP(4, [8], 2, rng=rng)
        mlp.eval()
        assert not mlp.training and not mlp.net.training
        mlp.train()
        assert mlp.training and mlp.net.training

    def test_zero_grad_clears_all(self, rng):
        mlp = nn.MLP(4, [8], 2, rng=rng)
        out = mlp(Tensor(rng.standard_normal((3, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())


class TestLinearAndMLP:
    def test_linear_shapes_and_flops(self, rng):
        layer = nn.Linear(6, 4, rng=rng)
        out = layer(Tensor(rng.standard_normal((10, 6))))
        assert out.shape == (10, 4)
        assert layer.flops(10) == 2 * 10 * 6 * 4 + 10 * 4

    def test_linear_broadcasts_leading_dims(self, rng):
        layer = nn.Linear(6, 4, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 3, 5, 6))))
        assert out.shape == (2, 3, 5, 4)

    def test_linear_no_bias(self, rng):
        layer = nn.Linear(3, 2, rng=rng, bias=False)
        assert layer.bias is None
        assert layer(Tensor(np.zeros((1, 3)))).data.max() == 0.0

    def test_mlp_learns_identity(self, rng):
        mlp = nn.MLP(2, [16], 2, rng=rng, activation="relu")
        opt = nn.Adam(mlp.parameters(), lr=5e-3)
        data = rng.standard_normal((64, 2))
        for _ in range(300):
            opt.zero_grad()
            loss = nn.functional.mse_loss(mlp(Tensor(data)), data)
            loss.backward()
            opt.step()
        assert loss.item() < 0.02

    def test_mlp_flops_counts_all_layers(self, rng):
        mlp = nn.MLP(4, [8, 8], 2, rng=rng)
        expected = (2 * 1 * 4 * 8 + 8) + (2 * 1 * 8 * 8 + 8) \
            + (2 * 1 * 8 * 2 + 2)
        assert mlp.flops(1) == expected

    def test_sequential_iteration(self, rng):
        seq = nn.Sequential(nn.Linear(2, 2, rng=rng), nn.ReLU())
        assert len(seq) == 2
        assert isinstance(list(seq)[1], nn.ReLU)


class TestConvAndPool:
    def test_conv_output_shape(self, rng):
        conv = nn.Conv2d(3, 8, kernel=3, stride=2, padding=1, rng=rng)
        out = conv(Tensor(rng.standard_normal((2, 3, 16, 16))))
        assert out.shape == (2, 8, 8, 8)

    def test_conv_gradient_flows_to_input_and_weights(self, rng):
        conv = nn.Conv2d(2, 3, rng=rng)
        x = Tensor(rng.standard_normal((1, 2, 5, 5)), requires_grad=True)
        conv(x).sum().backward()
        assert x.grad is not None and np.isfinite(x.grad).all()
        assert conv.weight.grad is not None

    def test_conv_flops(self, rng):
        conv = nn.Conv2d(2, 4, kernel=3, stride=1, padding=1, rng=rng)
        assert conv.flops(1, 8, 8) == 2 * 8 * 8 * 4 * 2 * 9

    def test_conv_matches_manual_gemm(self, rng):
        conv = nn.Conv2d(1, 1, kernel=3, stride=1, padding=0, rng=rng)
        x = rng.standard_normal((1, 1, 3, 3))
        out = conv(Tensor(x)).data
        manual = (x[0, 0] * conv.weight.data.reshape(3, 3)).sum() \
            + conv.bias.data[0]
        assert np.isclose(out[0, 0, 0, 0], manual, atol=1e-5)

    def test_avg_pool(self):
        x = Tensor(np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4))
        out = nn.AvgPool2d(2)(x)
        assert out.shape == (1, 1, 2, 2)
        assert np.isclose(out.data[0, 0, 0, 0], (0 + 1 + 4 + 5) / 4)
