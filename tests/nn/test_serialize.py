"""Checkpoint save/load tests."""

import numpy as np

from repro import nn
from repro.nn import Tensor


def test_save_load_roundtrip(tmp_path, rng):
    model = nn.MLP(4, [8], 2, rng=rng)
    path = str(tmp_path / "ckpt" / "model.npz")
    nn.save_module(model, path)

    other = nn.MLP(4, [8], 2, rng=np.random.default_rng(777))
    x = Tensor(rng.standard_normal((3, 4)))
    assert not np.allclose(model(x).data, other(x).data)
    nn.load_module(other, path)
    assert np.allclose(model(x).data, other(x).data)


def test_save_creates_directories(tmp_path, rng):
    model = nn.Linear(2, 2, rng=rng)
    path = str(tmp_path / "a" / "b" / "c.npz")
    nn.save_module(model, path)
    import os
    assert os.path.exists(path)


def test_gen_nerf_checkpoint_roundtrip(tmp_path):
    """Whole Gen-NeRF model pairs checkpoint through save/load."""
    from repro import models as M

    cfg = M.GenNerfConfig(
        fine=M.ModelConfig(feature_dim=8, view_hidden=8, score_hidden=4,
                           density_hidden=12, density_feature_dim=6,
                           ray_module="mixer", n_max=8, encoder_hidden=4),
        coarse_points=4, focused_points=4)
    model = M.GenNeRF(cfg, rng=np.random.default_rng(0))
    path = str(tmp_path / "gen_nerf.npz")
    nn.save_module(model, path)

    other = M.GenNeRF(cfg, rng=np.random.default_rng(42))
    some_name, some_param = next(iter(other.named_parameters()))
    assert not np.allclose(some_param.data,
                           dict(model.named_parameters())[some_name].data)
    nn.load_module(other, path)
    for (name_a, a), (name_b, b) in zip(model.named_parameters(),
                                        other.named_parameters()):
        assert name_a == name_b
        assert np.allclose(a.data, b.data)
