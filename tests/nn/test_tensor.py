"""Autograd engine tests: every op's gradient against finite differences."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor, as_tensor, concatenate, stack, where
from repro.nn.tensor import unbroadcast


def check_gradient(op, shapes, numgrad, seed=0, tol=1e-4, positive=False):
    """Numerically verify d(sum(op(xs)))/dx for every input."""
    rng = np.random.default_rng(seed)
    arrays = [rng.standard_normal(s) for s in shapes]
    if positive:
        arrays = [np.abs(a) + 0.5 for a in arrays]

    for target_index in range(len(arrays)):
        tensors = [Tensor(a.copy(), requires_grad=(i == target_index))
                   for i, a in enumerate(arrays)]
        out = op(*tensors)
        out.sum().backward()

        def scalar(x, idx=target_index):
            inputs = [a.copy() for a in arrays]
            inputs[idx] = x
            vals = [Tensor(a) for a in inputs]
            return float(op(*vals).sum().data)

        expected = numgrad(scalar, arrays[target_index].copy())
        got = tensors[target_index].grad
        assert got is not None
        assert np.abs(got - expected).max() < tol, \
            f"input {target_index}: max err {np.abs(got - expected).max()}"


class TestElementwise:
    def test_add_broadcast(self, numgrad):
        check_gradient(lambda a, b: a + b, [(3, 4), (4,)], numgrad)

    def test_sub(self, numgrad):
        check_gradient(lambda a, b: a - b, [(2, 3), (2, 3)], numgrad)

    def test_mul_broadcast(self, numgrad):
        check_gradient(lambda a, b: a * b, [(2, 1, 3), (4, 3)], numgrad)

    def test_div(self, numgrad):
        check_gradient(lambda a, b: a / b, [(3, 3), (3, 3)], numgrad,
                       positive=True)

    def test_pow(self, numgrad):
        check_gradient(lambda a: a ** 3, [(4,)], numgrad)

    def test_neg_rsub_rdiv(self):
        x = Tensor([2.0], requires_grad=True)
        y = 1.0 - x
        z = 6.0 / x
        (y + z).sum().backward()
        assert np.isclose(x.grad[0], -1.0 - 6.0 / 4.0)

    def test_exp_log(self, numgrad):
        check_gradient(lambda a: (a.exp() + 1.0).log(), [(5,)], numgrad)

    def test_tanh_sigmoid(self, numgrad):
        check_gradient(lambda a: a.tanh() * a.sigmoid(), [(6,)], numgrad)

    def test_relu_elu_softplus(self, numgrad):
        # Avoid the kink at 0 for finite differences.
        rng = np.random.default_rng(3)
        base = rng.standard_normal((8,))
        base[np.abs(base) < 0.1] += 0.3
        x = Tensor(base.copy(), requires_grad=True)
        (x.relu() + x.elu() + x.softplus()).sum().backward()

        def scalar(a):
            t = Tensor(a)
            return float((t.relu() + t.elu() + t.softplus()).sum().data)

        from tests.conftest import numerical_gradient
        expected = numerical_gradient(scalar, base.copy())
        assert np.abs(x.grad - expected).max() < 1e-4

    def test_abs_clip(self, numgrad):
        rng = np.random.default_rng(4)
        base = rng.standard_normal((8,)) * 2
        base[np.abs(base) < 0.1] = 0.5
        base[np.abs(np.abs(base) - 1.5) < 0.1] += 0.3
        x = Tensor(base.copy(), requires_grad=True)
        (x.abs() + x.clip(-1.5, 1.5)).sum().backward()
        expected = np.sign(base) + ((base > -1.5) & (base < 1.5))
        assert np.abs(x.grad - expected).max() < 1e-6

    def test_sqrt(self, numgrad):
        check_gradient(lambda a: a.sqrt(), [(5,)], numgrad, positive=True)


class TestReductionsAndShape:
    def test_sum_axis(self, numgrad):
        check_gradient(lambda a: a.sum(axis=1), [(3, 4)], numgrad)

    def test_sum_keepdims(self, numgrad):
        check_gradient(lambda a: a * a.sum(axis=-1, keepdims=True),
                       [(3, 4)], numgrad)

    def test_mean(self, numgrad):
        check_gradient(lambda a: a.mean(axis=0), [(4, 5)], numgrad)

    def test_var(self, numgrad):
        check_gradient(lambda a: a.var(axis=-1), [(4, 5)], numgrad,
                       tol=1e-3)

    def test_max_min(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 7.0]]),
                   requires_grad=True)
        x.max(axis=1).sum().backward()
        # Ties split evenly.
        expected = np.array([[0, 1, 0], [0.5, 0, 0.5]])
        assert np.allclose(x.grad, expected)

    def test_cumsum(self, numgrad):
        check_gradient(lambda a: a.cumsum(axis=-1) * a, [(3, 5)], numgrad)

    def test_reshape_transpose(self, numgrad):
        check_gradient(lambda a: a.reshape(6, 2).transpose() @ Tensor(
            np.ones((6, 3))), [(3, 4)], numgrad)

    def test_swapaxes(self):
        x = Tensor(np.arange(24).reshape(2, 3, 4), requires_grad=True)
        y = x.swapaxes(0, 2)
        assert y.shape == (4, 3, 2)
        y.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_getitem_fancy(self, numgrad):
        idx = np.array([0, 2, 2])

        def op(a):
            return a[idx] * 2.0

        check_gradient(op, [(4, 3)], numgrad)

    def test_getitem_integer_array_matches_add_at(self):
        """The bincount fast path equals the generic scatter-add."""
        rng = np.random.default_rng(8)
        for idx in (np.array([0, 3, 3, 1, 3]),
                    np.array([[0, 1], [1, 0]]),
                    np.array([-1, -4, 2])):
            data = rng.standard_normal((4, 3)).astype(np.float32)
            g = rng.standard_normal(idx.shape + (3,)).astype(np.float32)
            x = Tensor(data, requires_grad=True)
            x[idx].backward(g)
            expected = np.zeros_like(data)
            np.add.at(expected, idx, g)
            assert np.allclose(x.grad, expected, atol=1e-6)

    def test_getitem_integer_array_1d_data(self):
        x = Tensor(np.arange(5, dtype=np.float32), requires_grad=True)
        idx = np.array([4, 4, 0])
        x[idx].sum().backward()
        assert np.allclose(x.grad, [1, 0, 0, 0, 2])

    def test_expand_squeeze(self):
        x = Tensor(np.ones((3, 4)), requires_grad=True)
        y = x.expand_dims(1).squeeze(1)
        y.sum().backward()
        assert np.allclose(x.grad, 1.0)


class TestMatmul:
    def test_matmul_2d(self, numgrad):
        check_gradient(lambda a, b: a @ b, [(3, 4), (4, 2)], numgrad)

    def test_matmul_batched(self, numgrad):
        check_gradient(lambda a, b: a @ b, [(2, 3, 4), (2, 4, 2)], numgrad)

    def test_matmul_broadcast_weights(self, numgrad):
        check_gradient(lambda a, b: a @ b, [(2, 5, 3, 4), (4, 2)], numgrad,
                       tol=2e-4)

    def test_matmul_vector(self, numgrad):
        check_gradient(lambda a, b: a @ b, [(3, 4), (4,)], numgrad)


class TestGraphMechanics:
    def test_grad_accumulates(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        (x * 3).sum().backward()
        assert np.allclose(x.grad, 5.0)

    def test_diamond_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3
        b = x * 4
        (a * b).sum().backward()     # d/dx (12 x^2) = 24x
        assert np.isclose(x.grad[0], 48.0)

    def test_reused_tensor_many_consumers(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        out = sum((x * float(i) for i in range(5)), start=Tensor(np.zeros((2, 2))))
        out.sum().backward()
        assert np.allclose(x.grad, 10.0)

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_without_grad_flag(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.sum().backward()

    def test_no_grad_builds_no_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with nn.no_grad():
            y = x * 2 + 1
        assert y._backward is None and y._parents == ()

    def test_detach(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x.detach() * 2 + x
        y.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_zero_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_shared_grad_buffers_never_mutated(self):
        """`_accumulate` adopts a sole incoming gradient without copying;
        a later accumulation must allocate instead of mutating the
        (possibly shared) buffer in place."""
        a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        (a + b).sum().backward()
        # a.grad and b.grad may be the same object here — both adopted
        # the pass-through gradient.  Accumulating more into `a` must
        # not change `b`'s gradient.
        (a * 3).sum().backward()
        assert np.allclose(a.grad, 4.0)
        assert np.allclose(b.grad, 1.0)

    def test_caller_mutating_seed_grad_does_not_corrupt_leaves(self):
        """backward() copies the caller's gradient: identity-like chains
        pass the root gradient through to leaves, so adopting the
        caller's buffer would let later mutation rewrite .grad."""
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        y = x.reshape(3)                       # identity-like chain
        seed = np.full(3, 2.0, dtype=np.float32)
        y.backward(seed)
        seed[:] = 0.0
        assert np.allclose(x.grad, 2.0)

    def test_second_backward_accumulates_out_of_place(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        y = x * 2
        y.sum().backward()
        first = x.grad
        y2 = x * 3
        y2.sum().backward()
        assert np.allclose(x.grad, 5.0)
        # The adopted first buffer was not written in place.
        assert np.allclose(first, 2.0) or first is x.grad


class TestHelpers:
    def test_unbroadcast_shapes(self):
        grad = np.ones((5, 3, 4))
        assert unbroadcast(grad, (3, 4)).shape == (3, 4)
        assert unbroadcast(grad, (1, 4)).shape == (1, 4)
        assert np.allclose(unbroadcast(grad, (3, 1)), 20.0)

    def test_concatenate_grads(self, numgrad):
        check_gradient(lambda a, b: concatenate([a, b], axis=1) ** 2,
                       [(2, 3), (2, 2)], numgrad)

    def test_stack_grads(self, numgrad):
        check_gradient(lambda a, b: stack([a, b], axis=0) * 2.0,
                       [(2, 3), (2, 3)], numgrad)

    def test_where(self):
        cond = np.array([True, False, True])
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        where(cond, a, b).sum().backward()
        assert np.allclose(a.grad, [1, 0, 1])
        assert np.allclose(b.grad, [0, 1, 0])

    def test_as_tensor_passthrough(self):
        t = Tensor(np.ones(2))
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_zeros_ones(self):
        assert np.allclose(nn.zeros((2, 2)).data, 0.0)
        assert np.allclose(nn.ones((2, 2)).data, 1.0)

    def test_repr_and_len(self):
        t = Tensor(np.ones((3, 2)), requires_grad=True)
        assert "requires_grad" in repr(t)
        assert len(t) == 3

    def test_grad_shape_validation(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        y = x * 1.0
        with pytest.raises(ValueError):
            y.backward(np.ones(3))
