"""Equivalence suite for the true no-grad inference fast path.

The contract of :class:`repro.nn.inference_mode` (and the
:meth:`repro.nn.Module.eval_inference` flag): ops skip graph
construction, ``requires_grad`` propagation, and backward-closure
allocation — and the forward values are **bit-identical** to the
grad-enabled path, because both run the same array code.  Pinned here
across the layer zoo and the full Gen-NeRF ``render_rays`` pipeline at
fixed seeds, plus guards that ``backward`` under no-grad raises.
"""

import numpy as np
import pytest

from repro import nn
from repro.models.ray_mixer import RayMixer
from repro.models.volume_rendering import composite


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


def _forward_pair(build, run):
    """(grad-mode output, inference-mode output) of a fixed-seed model."""
    model = build()
    grad_out = run(model)
    with nn.inference_mode():
        inf_out = run(model)
    return grad_out, inf_out


class TestBitIdenticalForwards:
    def test_linear(self, rng):
        x = rng.standard_normal((64, 12)).astype(np.float32)
        grad_out, inf_out = _forward_pair(
            lambda: nn.Linear(12, 8, rng=np.random.default_rng(0)),
            lambda m: m(nn.Tensor(x)))
        assert np.array_equal(grad_out.data, inf_out.data)

    def test_mlp_elu_stack(self, rng):
        x = rng.standard_normal((32, 16)).astype(np.float32)
        grad_out, inf_out = _forward_pair(
            lambda: nn.MLP(16, [24, 24], 4, rng=np.random.default_rng(1)),
            lambda m: m(nn.Tensor(x)))
        assert np.array_equal(grad_out.data, inf_out.data)

    def test_multi_head_self_attention(self, rng):
        x = rng.standard_normal((4, 10, 16)).astype(np.float32)
        mask = rng.random((4, 10)) > 0.3
        mask[:, 0] = True
        grad_out, inf_out = _forward_pair(
            lambda: nn.MultiHeadSelfAttention(16, heads=4,
                                              rng=np.random.default_rng(2)),
            lambda m: m(nn.Tensor(x), mask=mask))
        assert np.array_equal(grad_out.data, inf_out.data)

    def test_ray_mixer(self, rng):
        x = rng.standard_normal((6, 16, 8)).astype(np.float32)
        mask = rng.random((6, 16)) > 0.4
        grad_out, inf_out = _forward_pair(
            lambda: RayMixer(8, 16, rng=np.random.default_rng(3)),
            lambda m: m(nn.Tensor(x), mask=mask))
        assert np.array_equal(grad_out.data, inf_out.data)

    def test_composite(self, rng):
        sigmas = nn.Tensor(rng.random((5, 12)).astype(np.float32))
        colors = nn.Tensor(rng.random((5, 12, 3)).astype(np.float32))
        depths = np.sort(rng.uniform(2.0, 6.0, (5, 12)), axis=-1)
        mask = rng.random((5, 12)) > 0.2
        pixel_g, weights_g = composite(sigmas, colors, depths, 6.0,
                                       mask=mask, max_delta=0.5)
        with nn.inference_mode():
            pixel_i, weights_i = composite(sigmas, colors, depths, 6.0,
                                           mask=mask, max_delta=0.5)
        assert np.array_equal(pixel_g.data, pixel_i.data)
        assert np.array_equal(weights_g.data, weights_i.data)

    def test_full_render_rays(self):
        from repro.geometry.rays import rays_for_image
        from repro.models.gen_nerf import GenNeRF, GenNerfConfig
        from repro.models.ibrnet import ModelConfig
        from repro.models.renderer import render_source_views
        from repro.scenes.datasets import make_scene

        scene = make_scene("llff", seed=3, image_scale=1 / 16)
        config = GenNerfConfig(
            fine=ModelConfig(feature_dim=8, view_hidden=8, score_hidden=4,
                             density_hidden=12, density_feature_dim=6,
                             ray_module="mixer", n_max=12,
                             encoder_hidden=6),
            coarse_points=6, focused_points=8)
        model = GenNeRF(config, rng=np.random.default_rng(5))
        model.eval()
        source_images = render_source_views(scene, num_points=24, step=4)
        bundle = rays_for_image(scene.target_camera, scene.near, scene.far,
                                step=16).select(slice(0, 96))

        coarse_maps, fine_maps = model.encode_scene(source_images)
        pixel_grad = model.render_rays(bundle, scene.source_cameras,
                                       coarse_maps, fine_maps,
                                       source_images)
        with nn.inference_mode():
            coarse_inf, fine_inf = model.encode_scene(source_images)
            assert np.array_equal(coarse_maps.data, coarse_inf.data)
            assert np.array_equal(fine_maps.data, fine_inf.data)
            pixel_inf = model.render_rays(bundle, scene.source_cameras,
                                          coarse_inf, fine_inf,
                                          source_images)
        assert np.array_equal(pixel_grad.data, pixel_inf.data)


class TestGraphSuppression:
    def test_no_parents_no_closures(self):
        w = nn.Tensor(np.ones((3, 3), dtype=np.float32), requires_grad=True)
        with nn.inference_mode():
            out = nn.Tensor(np.ones((2, 3), dtype=np.float32)) @ w
        assert out.requires_grad is False
        assert out._parents == ()
        assert out._backward is None

    def test_backward_on_inference_output_raises(self):
        w = nn.Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        with nn.inference_mode():
            out = (w * 2.0).sum()
        with pytest.raises(RuntimeError):
            out.backward()

    def test_backward_inside_no_grad_raises(self):
        w = nn.Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        loss = (w * 2.0).sum()
        with nn.inference_mode():
            with pytest.raises(RuntimeError, match="inference_mode"):
                loss.backward()

    def test_grad_flag_restored_after_context(self):
        assert nn.grad_enabled()
        with nn.inference_mode():
            assert not nn.grad_enabled()
        assert nn.grad_enabled()


class TestEvalInferenceFlag:
    def test_module_call_runs_graph_free(self, rng):
        x = rng.standard_normal((8, 12)).astype(np.float32)
        model = nn.MLP(12, [8], 4, rng=np.random.default_rng(0))
        baseline = model(nn.Tensor(x))
        assert baseline.requires_grad

        model.eval_inference()
        assert not model.training
        out = model(nn.Tensor(x))
        assert out.requires_grad is False
        assert out._parents == ()
        assert np.array_equal(baseline.data, out.data)

    def test_train_disarms_inference(self, rng):
        x = rng.standard_normal((4, 12)).astype(np.float32)
        model = nn.MLP(12, [8], 4, rng=np.random.default_rng(0))
        model.eval_inference()
        model.train()
        out = model(nn.Tensor(x))
        assert out.requires_grad


class TestBroadcastTo:
    """`Tensor.broadcast_to`: copy-free expand with a summing adjoint."""

    def test_forward_values_and_view(self, rng):
        x = nn.Tensor(rng.standard_normal((1, 4, 3)).astype(np.float32),
                      requires_grad=True)
        out = x.broadcast_to((5, 4, 3))
        assert out.shape == (5, 4, 3)
        assert np.array_equal(out.data, np.broadcast_to(x.data, (5, 4, 3)))

    def test_backward_sums_expanded_axes(self, rng):
        x = nn.Tensor(rng.standard_normal((1, 4, 3)).astype(np.float32),
                      requires_grad=True)
        g = rng.standard_normal((5, 4, 3)).astype(np.float32)
        (x.broadcast_to((5, 4, 3)) * nn.Tensor(g)).sum().backward()
        expected = (np.broadcast_to(x.data, (5, 4, 3)) * 0 + g).sum(axis=0,
                                                                    keepdims=True)
        np.testing.assert_allclose(x.grad, expected, atol=1e-5)

    def test_inference_mode_is_graph_free(self, rng):
        x = nn.Tensor(rng.standard_normal((1, 3)).astype(np.float32),
                      requires_grad=True)
        with nn.inference_mode():
            out = x.broadcast_to((4, 3))
        assert out._parents == () and not out.requires_grad
