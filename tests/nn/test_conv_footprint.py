"""Property suite for the footprint-restricted conv path.

The contract under test: running a conv stack through
``plan_conv_footprint`` + ``conv2d_at`` reproduces the dense stack
**byte-for-byte** — forward values at every planned output pixel, and
weight/bias gradients when the upstream gradient is zero outside the
footprint (the training situation: only gathered pixels receive
gradient).  Random stacks x random pixel sets cover crop borders
(zero-padding sentinel), stride phases, single-pixel and
near-half-coverage edges.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn import functional as F
from repro.models.footprint import plan_conv_footprint


def _random_mask(rng, num_views, out_h, out_w, count):
    """``count`` distinct output pixels, uniformly over views/positions."""
    total = num_views * out_h * out_w
    flat = rng.choice(total, size=min(count, total), replace=False)
    mask = np.zeros(total, dtype=bool)
    mask[flat] = True
    return mask.reshape(num_views, out_h, out_w)


def _dense_stack(convs, images):
    out = nn.as_tensor(images)
    for index, conv in enumerate(convs):
        out = conv(out)
        if index < len(convs) - 1:
            out = F.elu(out)
    return out


def _packed_stack(convs, images, plan):
    x = np.asarray(images, dtype=np.float32)
    rows = x.transpose(0, 2, 3, 1).reshape(-1, x.shape[1])[plan.input_index]
    out = Tensor(rows)
    for index, (conv, layer) in enumerate(zip(convs, plan.layers)):
        out = F.conv2d_at(out, layer.gather, conv.weight, conv.bias,
                          layer.dense_rows, pad_rows=layer.pad_rows,
                          pad_rows_grad=layer.pad_rows_grad)
        if index < len(convs) - 1:
            out = F.elu(out)
    return out


def _compare_stack(convs, images, mask, rng):
    """Dense vs packed: forward bits at the footprint, grad bits on every
    conv parameter.  Returns False when the planner (correctly) refused."""
    num_views, _, height, width = images.shape
    plan = plan_conv_footprint(convs, num_views, height, width, mask)
    if plan is None:
        return False
    final = plan.layers[-1]
    out_channels = convs[-1].out_channels

    # Upstream gradient: random at footprint pixels, exactly zero
    # elsewhere — the shape every training backward has (only gathered
    # pixels receive gradient).
    s_idx, y_idx, x_idx = np.nonzero(mask)
    coeff = np.zeros(mask.shape + (out_channels,), dtype=np.float32)
    coeff[s_idx, y_idx, x_idx] = rng.standard_normal(
        (s_idx.size, out_channels)).astype(np.float32)
    coeff_rows = coeff.reshape(-1, out_channels)[final.out_index]

    for conv in convs:
        conv.weight.zero_grad()
        conv.bias.zero_grad()
    dense = _dense_stack(convs, images)          # (S, C, oh, ow)
    dense_rows = dense.transpose((0, 2, 3, 1)).reshape((-1, out_channels))
    (dense_rows * Tensor(coeff.reshape(-1, out_channels))).sum().backward()
    dense_vals = dense_rows.data[final.out_index].copy()
    dense_grads = [(conv.weight.grad.copy(), conv.bias.grad.copy())
                   for conv in convs]

    for conv in convs:
        conv.weight.zero_grad()
        conv.bias.zero_grad()
    packed = _packed_stack(convs, images, plan)  # (n_out, C)
    (packed * Tensor(coeff_rows)).sum().backward()

    assert packed.data.tobytes() == dense_vals.tobytes()
    for conv, (dw, db) in zip(convs, dense_grads):
        assert conv.weight.grad.tobytes() == dw.tobytes()
        assert conv.bias.grad.tobytes() == db.tobytes()
    return True


def _encoder_like_stack(rng, in_channels=3, hidden=9, out_channels=10):
    return (nn.Conv2d(in_channels, hidden, kernel=3, stride=1, padding=1,
                      rng=rng),
            nn.Conv2d(hidden, hidden, kernel=3, stride=2, padding=1,
                      rng=rng),
            nn.Conv2d(hidden, out_channels, kernel=3, stride=1, padding=1,
                      rng=rng))


class TestConvFootprintBitIdentity:
    def test_random_stacks_random_pixel_sets(self):
        """Seeded-random conv geometries x random footprints."""
        rng = np.random.default_rng(0)
        geometries = [
            [(3, 1, 1)],
            [(3, 2, 1)],
            [(5, 1, 2)],
            [(3, 1, 1), (3, 2, 1)],
            [(3, 1, 1), (3, 2, 1), (3, 1, 1)],
            [(5, 2, 2), (3, 1, 1)],
        ]
        ran = 0
        for geometry in geometries:
            convs = []
            channels = 3
            for index, (kernel, stride, padding) in enumerate(geometry):
                # First layer reads 3-channel images (K <= 30: any
                # output width is row-stable); later layers keep N >= 9
                # so their small-regime GEMMs stay plannable.
                lo, hi = (4, 17) if index == 0 else (9, 17)
                out_ch = int(rng.integers(lo, hi))
                convs.append(nn.Conv2d(channels, out_ch, kernel=kernel,
                                       stride=stride, padding=padding,
                                       rng=rng))
                channels = out_ch
            num_views, height, width = 2, 21, 26
            images = rng.standard_normal(
                (num_views, 3, height, width)).astype(np.float32)
            shape = (height, width)
            for conv in convs:
                shape = conv.output_shape(*shape)
            mask = _random_mask(rng, num_views, *shape, count=4)
            if _compare_stack(convs, images, mask, rng):
                ran += 1
        assert ran >= 4  # most geometries must actually exercise the path

    def test_border_pixels_hit_zero_padding(self):
        """Corner/edge outputs read the padding sentinel, not garbage."""
        rng = np.random.default_rng(1)
        convs = _encoder_like_stack(rng)
        num_views, height, width = 2, 20, 24
        images = rng.standard_normal(
            (num_views, 3, height, width)).astype(np.float32)
        oh, ow = height, width
        for conv in convs:
            oh, ow = conv.output_shape(oh, ow)
        mask = np.zeros((num_views, oh, ow), dtype=bool)
        mask[0, 0, 0] = True          # top-left corner
        mask[0, oh - 1, ow - 1] = True  # bottom-right corner
        mask[1, 0, ow - 1] = True
        mask[1, oh - 1, 0] = True
        assert _compare_stack(convs, images, mask, rng)

    def test_stride_phases(self):
        """Every output parity of a stride-2 layer maps back correctly."""
        rng = np.random.default_rng(2)
        for phase in range(4):
            convs = (nn.Conv2d(3, 5, kernel=3, stride=2, padding=1, rng=rng),)
            num_views, height, width = 1, 19, 23
            images = rng.standard_normal(
                (num_views, 3, height, width)).astype(np.float32)
            oh, ow = convs[0].output_shape(height, width)
            mask = np.zeros((num_views, oh, ow), dtype=bool)
            mask[0, 1 + (phase // 2), 1 + (phase % 2)] = True
            assert _compare_stack(convs, images, mask, rng)

    def test_single_pixel_footprint(self):
        rng = np.random.default_rng(3)
        convs = _encoder_like_stack(rng)
        num_views, height, width = 1, 20, 24
        images = rng.standard_normal(
            (num_views, 3, height, width)).astype(np.float32)
        oh, ow = height, width
        for conv in convs:
            oh, ow = conv.output_shape(oh, ow)
        mask = np.zeros((num_views, oh, ow), dtype=bool)
        mask[0, oh // 2, ow // 2] = True
        assert _compare_stack(convs, images, mask, rng)

    def test_odd_image_sizes(self):
        """Odd H/W: the stride-2 stage rounds up (ceil), and crops at the
        ragged border still replay the dense arithmetic."""
        rng = np.random.default_rng(4)
        convs = _encoder_like_stack(rng)
        num_views, height, width = 2, 21, 27
        images = rng.standard_normal(
            (num_views, 3, height, width)).astype(np.float32)
        oh, ow = height, width
        for conv in convs:
            oh, ow = conv.output_shape(oh, ow)
        assert (oh, ow) == (11, 14)   # ceil, not floor
        mask = np.zeros((num_views, oh, ow), dtype=bool)
        mask[:, oh - 1, ow - 1] = True   # the ceil-only row/col
        mask[0, 0, ow - 1] = True
        assert _compare_stack(convs, images, mask, rng)


class TestPlannerFallbacks:
    def test_empty_mask_returns_none(self):
        rng = np.random.default_rng(5)
        convs = _encoder_like_stack(rng)
        mask = np.zeros((1, 10, 12), dtype=bool)
        assert plan_conv_footprint(convs, 1, 20, 24, mask) is None

    def test_full_coverage_returns_none(self):
        rng = np.random.default_rng(6)
        convs = _encoder_like_stack(rng)
        mask = np.ones((1, 10, 12), dtype=bool)
        assert plan_conv_footprint(convs, 1, 20, 24, mask) is None

    def test_near_half_coverage_returns_none(self):
        """The >= half guard on *any* layer forces the dense fallback —
        that guard is what keeps both backwards compacting."""
        rng = np.random.default_rng(7)
        convs = _encoder_like_stack(rng)
        mask = np.zeros((1, 10, 12), dtype=bool)
        mask.reshape(-1)[:60] = True   # exactly half the final layer
        assert plan_conv_footprint(convs, 1, 20, 24, mask) is None

    def test_mask_shape_mismatch_raises(self):
        rng = np.random.default_rng(8)
        convs = _encoder_like_stack(rng)
        with pytest.raises(ValueError):
            plan_conv_footprint(convs, 1, 20, 24,
                                np.zeros((1, 9, 12), dtype=bool))

    def test_narrow_small_regime_returns_none(self):
        """2 <= N <= 8 with K > 30 under the 1M-cell kernel switch has
        no bitwise-safe packed row count; the planner must refuse."""
        rng = np.random.default_rng(9)
        convs = (nn.Conv2d(6, 4, kernel=3, stride=1, padding=1, rng=rng),)
        mask = np.zeros((1, 20, 24), dtype=bool)   # K=54, N=4, 480 rows
        mask[0, 2, 2] = True
        assert plan_conv_footprint(convs, 1, 20, 24, mask) is None

    def test_single_output_channel_returns_none(self):
        """N == 1 dispatches to sgemv, which is row-unstable at any
        count — always the dense fallback."""
        rng = np.random.default_rng(10)
        convs = (nn.Conv2d(3, 1, kernel=3, stride=1, padding=1, rng=rng),)
        mask = np.zeros((1, 20, 24), dtype=bool)
        mask[0, 2, 2] = True
        assert plan_conv_footprint(convs, 1, 20, 24, mask) is None

    def test_small_k_narrow_output_runs(self):
        """K <= 30 (3-channel input) is row-stable even for narrow
        outputs and unaligned dense counts."""
        rng = np.random.default_rng(10)
        convs = (nn.Conv2d(3, 2, kernel=3, stride=1, padding=1, rng=rng),)
        height, width = 5, 5           # dense rows 25: not even 4-aligned
        images = rng.standard_normal((1, 3, height, width)).astype(np.float32)
        mask = np.zeros((1, 5, 5), dtype=bool)
        mask[0, 2, 2] = True
        assert _compare_stack(convs, images, mask, rng)


class TestGradLiveRows:
    def test_compacts_sparse_gradients(self):
        g = np.zeros((10, 4), dtype=np.float32)
        g[3, 1] = 1.0
        g[7, 0] = -2.0
        rows = F.grad_live_rows(g, 10)
        assert rows.tolist() == [3, 7]

    def test_dense_gradients_run_unchanged(self):
        g = np.ones((10, 4), dtype=np.float32)
        assert F.grad_live_rows(g, 10) is None

    def test_half_threshold(self):
        g = np.zeros((10, 4), dtype=np.float32)
        g[:5] = 1.0
        assert F.grad_live_rows(g, 10) is None     # 5*2 == 10: not under
        g[4] = 0.0
        assert F.grad_live_rows(g, 10).tolist() == [0, 1, 2, 3]

    def test_dense_conv_backward_matches_unfactored_gemm(self):
        """Conv2d's compacted weight gradient equals the cols[rows] GEMM
        it claims to run (sanity on the layers.py integration)."""
        rng = np.random.default_rng(11)
        conv = nn.Conv2d(3, 5, kernel=3, stride=1, padding=1, rng=rng)
        images = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)
        coeff = np.zeros((1, 5, 8, 8), dtype=np.float32)
        coeff[0, :, 2, 3] = rng.standard_normal(5).astype(np.float32)
        conv.weight.zero_grad()
        out = conv(nn.as_tensor(images))
        (out * Tensor(coeff)).sum().backward()
        cols, _, _ = F.im2col(images, 3, 1, 1)
        g2d = coeff.transpose(0, 2, 3, 1).reshape(-1, 5)
        rows = F.grad_live_rows(g2d, g2d.shape[0])
        expected = cols.reshape(-1, cols.shape[-1])[rows].T @ g2d[rows]
        assert conv.weight.grad.tobytes() == expected.tobytes()


class TestSharedPatchRowsCache:
    def test_cache_hit_matches_fresh_gather(self):
        """conv2d_at fed cached im2col rows returns the same node as
        when it assembles the patch rows itself."""
        rng = np.random.default_rng(12)
        convs = (nn.Conv2d(3, 6, kernel=3, stride=1, padding=1, rng=rng),)
        num_views, height, width = 1, 12, 16
        images = rng.standard_normal(
            (num_views, 3, height, width)).astype(np.float32)
        mask = np.zeros((num_views, height, width), dtype=bool)
        mask[0, 0, 0] = True
        mask[0, 5, 7] = True
        plan = plan_conv_footprint(convs, num_views, height, width, mask)
        layer = plan.layers[0]
        cache = {}
        with nn.conv_patch_cache(cache):
            dense = convs[0](nn.as_tensor(images))   # populates the cache
            cached = nn.shared_patch_rows(images, 3, 1, 1, layer.out_index)
            assert cached is not None
            rows = images.transpose(0, 2, 3, 1).reshape(-1, 3)[
                plan.input_index]
            via_cache = F.conv2d_at(Tensor(rows), layer.gather,
                                    convs[0].weight, convs[0].bias,
                                    layer.dense_rows, cols=cached)
            fresh = F.conv2d_at(Tensor(rows), layer.gather,
                                convs[0].weight, convs[0].bias,
                                layer.dense_rows)
        assert via_cache.data.tobytes() == fresh.data.tobytes()
        dense_rows_data = dense.transpose((0, 2, 3, 1)).reshape(
            (-1, convs[0].out_channels)).data
        assert fresh.data.tobytes() == \
            dense_rows_data[layer.out_index].tobytes()

    def test_cache_miss_returns_none(self):
        images = np.zeros((1, 3, 8, 8), dtype=np.float32)
        with nn.conv_patch_cache({}):
            assert nn.shared_patch_rows(images, 3, 1, 1,
                                        np.array([0])) is None
