"""Fused flat-buffer Adam vs the per-parameter seed loop.

The fused optimiser concatenates every parameter into contiguous
buffers and rebinds ``Parameter.data`` to views of them; these tests
pin that the rebinding is transparent (same arrays the model computes
with), that multi-step trajectories — losses and final weights — are
bit-identical to :class:`repro.perf.reference.AdamLoop` plus the
standalone gradient clip, and that the seed loop's edge-case semantics
survive fusion: parameters with ``grad is None`` are skipped entirely
(moments untouched), the folded clip reproduces
:func:`repro.nn.clip_grad_norm` exactly, and mixed-dtype parameter
lists fuse per dtype.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn.layers import Parameter
from repro.perf import reference


def _twin_mlps(seed=5):
    return (nn.MLP(8, [16, 16], 3, rng=np.random.default_rng(seed)),
            nn.MLP(8, [16, 16], 3, rng=np.random.default_rng(seed)))


def _batch(rng, n=32):
    return (rng.standard_normal((n, 8)).astype(np.float32),
            rng.standard_normal((n, 3)).astype(np.float32))


class TestFlatBufferPlumbing:
    def test_parameter_data_shares_flat_buffer(self):
        model, _ = _twin_mlps()
        opt = nn.Adam(model.parameters(), lr=1e-3)
        for group in opt._groups:
            for param, sl in zip(group.params, group.slices):
                assert param.data.base is group.data
                assert np.shares_memory(param.data, group.data[sl])

    def test_load_state_dict_writes_through_views(self):
        model, _ = _twin_mlps()
        opt = nn.Adam(model.parameters(), lr=1e-3)
        state = {name: np.full_like(p.data, 0.5)
                 for name, p in model.named_parameters()}
        model.load_state_dict(state)
        for group in opt._groups:
            assert np.all(group.data == 0.5)

    def test_duplicate_parameter_gets_one_segment(self):
        shared = Parameter(np.ones(4, dtype=np.float32))
        opt = nn.Adam([shared, shared], lr=0.1)
        assert sum(len(g.params) for g in opt._groups) == 1
        shared.grad = np.ones(4, dtype=np.float32)
        opt.step()
        assert np.all(shared.data < 1.0)

    def test_mixed_dtypes_fuse_per_dtype(self):
        p32 = Parameter(np.ones(3, dtype=np.float32))
        p64 = Parameter(np.ones(5, dtype=np.float64))
        opt = nn.Adam([p32, p64], lr=0.1)
        assert len(opt._groups) == 2
        assert p32.data.dtype == np.float32
        assert p64.data.dtype == np.float64


class TestTrajectoryEquivalence:
    @pytest.mark.parametrize("grad_clip", [None, 0.5, 1e9])
    def test_losses_and_weights_bit_identical(self, grad_clip):
        fast_model, seed_model = _twin_mlps()
        schedule = nn.ExponentialDecayLR(1e-3, 0.5, 50)
        fast_opt = nn.Adam(fast_model.parameters(), schedule=schedule,
                           grad_clip=grad_clip)
        seed_opt = reference.AdamLoop(
            seed_model.parameters(),
            schedule=nn.ExponentialDecayLR(1e-3, 0.5, 50))
        rng = np.random.default_rng(0)
        for _ in range(20):
            x, y = _batch(rng)
            fast_opt.zero_grad()
            fast_loss = nn.functional.mse_loss(fast_model(nn.Tensor(x)), y)
            fast_loss.backward()
            fast_opt.step()

            seed_opt.zero_grad()
            seed_loss = nn.functional.mse_loss(seed_model(nn.Tensor(x)), y)
            seed_loss.backward()
            if grad_clip is not None:
                reference.clip_grad_norm_loop(seed_opt.parameters, grad_clip)
            seed_opt.step()
            assert fast_loss.item() == seed_loss.item()
        fast_state = fast_model.state_dict()
        seed_state = seed_model.state_dict()
        for name in fast_state:
            assert fast_state[name].tobytes() == seed_state[name].tobytes()

    def test_zero_grad_params_skipped_bitwise(self):
        # Two parameters, only one receives gradients: the other's data
        # AND moments must stay untouched, exactly like the seed loop.
        fast = [Parameter(np.linspace(0, 1, 6)),
                Parameter(np.linspace(1, 2, 4))]
        seed = [Parameter(np.linspace(0, 1, 6)),
                Parameter(np.linspace(1, 2, 4))]
        fast_opt = nn.Adam(fast, lr=0.05)
        seed_opt = reference.AdamLoop(seed, lr=0.05)
        rng = np.random.default_rng(3)
        for step in range(12):
            g = rng.standard_normal(6)
            fast[0].grad = g.copy()
            seed[0].grad = g.copy()
            fast[1].grad = None
            seed[1].grad = None
            if step % 3 == 0:        # occasionally give the second one
                g2 = rng.standard_normal(4)
                fast[1].grad = g2.copy()
                seed[1].grad = g2.copy()
            fast_opt.step()
            seed_opt.step()
        for f, s in zip(fast, seed):
            assert f.data.tobytes() == s.data.tobytes()

    def test_all_grads_missing_is_a_noop(self):
        param = Parameter(np.ones(4))
        opt = nn.Adam([param], lr=0.5)
        opt.step()
        assert np.all(param.data == 1.0)
        assert param.version == 0

    def test_folded_clip_matches_unfused_helper(self):
        fast = [Parameter(np.zeros(3)), Parameter(np.zeros(2))]
        seed = [Parameter(np.zeros(3)), Parameter(np.zeros(2))]
        fast_opt = nn.Adam(fast, lr=0.1, grad_clip=1.0)
        seed_opt = reference.AdamLoop(seed, lr=0.1)
        fast[0].grad = np.array([3.0, 4.0, 0.0])
        fast[1].grad = np.array([1.0, -1.0])
        seed[0].grad = np.array([3.0, 4.0, 0.0])
        seed[1].grad = np.array([1.0, -1.0])
        fast_opt.step()
        total = reference.clip_grad_norm_loop(seed, 1.0)
        seed_opt.step()
        assert total == pytest.approx(np.sqrt(27.0))
        for f, s in zip(fast, seed):
            assert f.data.tobytes() == s.data.tobytes()


class TestVersionBumps:
    def test_versions_track_actual_updates(self):
        p1, p2 = Parameter(np.ones(2)), Parameter(np.ones(2))
        opt = nn.Adam([p1, p2], lr=0.1)
        p1.grad = np.ones(2)
        opt.step()
        assert (p1.version, p2.version) == (1, 0)
        p2.grad = np.ones(2)
        opt.step()
        assert (p1.version, p2.version) == (2, 1)

    def test_sgd_bumps_versions(self):
        p = Parameter(np.ones(2))
        opt = nn.SGD([p], lr=0.1)
        p.grad = np.ones(2)
        opt.step()
        assert p.version == 1

    def test_load_state_dict_bumps_versions(self):
        model, _ = _twin_mlps()
        state = model.state_dict()
        before = [p.version for p in model.parameters()]
        model.load_state_dict(state)
        after = [p.version for p in model.parameters()]
        assert all(b + 1 == a for b, a in zip(before, after))
