"""Functional ops: softmax family, layer norm, losses, im2col adjoint."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn import functional as F
from tests.conftest import numerical_gradient


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = Tensor(rng.standard_normal((4, 7)))
        s = F.softmax(x, axis=-1)
        assert np.allclose(s.data.sum(-1), 1.0, atol=1e-6)

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((3, 5))
        a = F.softmax(Tensor(x), axis=-1).data
        b = F.softmax(Tensor(x + 100.0), axis=-1).data
        assert np.allclose(a, b, atol=1e-6)

    def test_gradient(self, rng):
        x0 = rng.standard_normal((3, 4))
        target = rng.standard_normal((3, 4))
        x = Tensor(x0.copy(), requires_grad=True)
        F.mse_loss(F.softmax(x, axis=-1), target).backward()

        def scalar(a):
            return float(F.mse_loss(F.softmax(Tensor(a), axis=-1),
                                    target).data)

        expected = numerical_gradient(scalar, x0.copy())
        assert np.abs(x.grad - expected).max() < 1e-5

    def test_masked_softmax_zeroes_invalid(self, rng):
        x = Tensor(rng.standard_normal((2, 6)))
        mask = np.array([[True] * 4 + [False] * 2, [True] * 6])
        s = F.masked_softmax(x, mask, axis=-1).data
        assert np.allclose(s[0, 4:], 0.0)
        assert np.allclose(s.sum(-1), 1.0, atol=1e-5)

    def test_masked_softmax_all_invalid_row_is_zero(self, rng):
        x = Tensor(rng.standard_normal((1, 4)))
        mask = np.zeros((1, 4), dtype=bool)
        s = F.masked_softmax(x, mask, axis=-1).data
        assert np.allclose(s, 0.0)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rng.standard_normal((4, 5))
        a = F.log_softmax(Tensor(x), axis=-1).data
        b = np.log(F.softmax(Tensor(x), axis=-1).data + 1e-30)
        assert np.allclose(a, b, atol=1e-5)


class TestLayerNormAndLosses:
    def test_layer_norm_statistics(self, rng):
        x = Tensor(rng.standard_normal((6, 9)) * 5 + 3)
        gamma = Tensor(np.ones(9))
        beta = Tensor(np.zeros(9))
        out = F.layer_norm(x, gamma, beta).data
        assert np.allclose(out.mean(-1), 0.0, atol=1e-5)
        assert np.allclose(out.var(-1), 1.0, atol=1e-2)

    def test_mse_loss_value_and_grad(self):
        pred = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        loss = F.mse_loss(pred, np.array([[0.0, 0.0]]))
        assert np.isclose(loss.item(), (1 + 4) / 2)
        loss.backward()
        assert np.allclose(pred.grad, [[1.0, 2.0]])

    def test_masked_mse_ignores_invalid(self):
        pred = Tensor(np.array([[1.0, 100.0]]), requires_grad=True)
        mask = np.array([[1.0, 0.0]])
        loss = F.masked_mse_loss(pred, np.zeros((1, 2)), mask)
        assert np.isclose(loss.item(), 1.0)

    def test_dropout_train_and_eval(self, rng):
        x = Tensor(np.ones((100,)))
        out_eval = F.dropout(x, 0.5, rng, training=False)
        assert np.allclose(out_eval.data, 1.0)
        out_train = F.dropout(x, 0.5, rng, training=True).data
        assert (out_train == 0).any()
        # Inverted dropout keeps the expectation.
        assert abs(out_train.mean() - 1.0) < 0.3

    def test_pad_last_axes(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        padded = F.pad_last_axes(x, [(1, 2)], value=7.0)
        assert padded.shape == (2, 6)
        assert np.allclose(padded.data[:, 0], 7.0)
        padded.sum().backward()
        assert np.allclose(x.grad, 1.0)


class TestFusedOps:
    """The training hot-path ops record one graph node, correct grads."""

    def test_linear_is_single_node(self, rng):
        x = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal(4), requires_grad=True)
        out = F.linear(x, w, b)
        assert out._parents == (x, w, b)

    def test_linear_gradients(self, rng):
        x0 = rng.standard_normal((5, 3))
        w0 = rng.standard_normal((3, 4))
        b0 = rng.standard_normal(4)
        x = Tensor(x0.copy(), requires_grad=True)
        w = Tensor(w0.copy(), requires_grad=True)
        b = Tensor(b0.copy(), requires_grad=True)
        F.linear(x, w, b).sum().backward()

        for tensor, base, pick in ((x, x0, 0), (w, w0, 1), (b, b0, 2)):
            def scalar(a, pick=pick):
                args = [Tensor(x0.copy()), Tensor(w0.copy()),
                        Tensor(b0.copy())]
                args[pick] = Tensor(a)
                return float(F.linear(*args).sum().data)

            expected = numerical_gradient(scalar, base.copy())
            assert np.abs(tensor.grad - expected).max() < 1e-4

    def test_linear_batched_and_vector_inputs(self, rng):
        w = Tensor(rng.standard_normal((3, 2)), requires_grad=True)
        batched = Tensor(rng.standard_normal((4, 5, 3)), requires_grad=True)
        F.linear(batched, w).sum().backward()
        assert w.grad.shape == (3, 2)
        assert batched.grad.shape == (4, 5, 3)
        w.zero_grad()
        vec = Tensor(rng.standard_normal(3), requires_grad=True)
        F.linear(vec, w, Tensor(np.zeros(2), requires_grad=True)
                 ).sum().backward()
        assert vec.grad.shape == (3,) and w.grad.shape == (3, 2)

    def test_softmax_is_single_node(self, rng):
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        out = F.softmax(x, axis=-1)
        assert out._parents == (x,)

    def test_masked_softmax_gradient(self, rng):
        x0 = rng.standard_normal((2, 5))
        mask = np.array([[True, True, True, False, False], [True] * 5])
        target = rng.standard_normal((2, 5)) * mask
        x = Tensor(x0.copy(), requires_grad=True)
        F.mse_loss(F.masked_softmax(x, mask, axis=-1), target).backward()

        def scalar(a):
            return float(F.mse_loss(F.masked_softmax(Tensor(a), mask,
                                                     axis=-1), target).data)

        expected = numerical_gradient(scalar, x0.copy())
        assert np.abs(x.grad - expected).max() < 1e-5
        assert np.allclose(x.grad[0, 3:], 0.0)

    def test_mse_loss_is_single_node(self, rng):
        pred = Tensor(rng.standard_normal((3, 2)), requires_grad=True)
        loss = F.mse_loss(pred, rng.standard_normal((3, 2)))
        assert loss._parents == (pred,)
        assert loss.size == 1


class TestIm2Col:
    def test_shapes(self, rng):
        images = rng.standard_normal((2, 3, 8, 8))
        cols, oh, ow = F.im2col(images, kernel=3, stride=2, padding=1)
        assert (oh, ow) == (4, 4)
        assert cols.shape == (2, 16, 27)

    def test_matches_direct_convolution(self, rng):
        images = rng.standard_normal((1, 2, 6, 6))
        weight = rng.standard_normal((4, 2, 3, 3))
        cols, oh, ow = F.im2col(images, 3, 1, 1)
        gemm = cols[0] @ weight.reshape(4, -1).T
        result = gemm.T.reshape(4, oh, ow)
        # Direct (slow) convolution for one output position.
        # Output (oy, ox) reads padded[:, oy:oy+3, ox:ox+3].
        padded = np.pad(images[0], ((0, 0), (1, 1), (1, 1)))
        direct = sum((padded[c, 3:6, 4:7] * weight[1, c]).sum()
                     for c in range(2))
        assert np.isclose(result[1, 3, 4], direct, atol=1e-5)

    def test_col2im_is_adjoint(self, rng):
        """<im2col(x), y> == <x, col2im(y)> certifies the gradient."""
        x = rng.standard_normal((2, 3, 7, 7))
        cols, oh, ow = F.im2col(x, 3, 2, 1)
        y = rng.standard_normal(cols.shape)
        lhs = float((cols * y).sum())
        back = F.col2im(y, x.shape, 3, 2, 1)
        rhs = float((x * back).sum())
        assert np.isclose(lhs, rhs, rtol=1e-6)


class TestLinearSplit:
    """``linear_split``: concat-free partitioned affine map."""

    def test_matches_concatenated_linear(self, rng):
        a = Tensor(rng.standard_normal((5, 7, 9, 4)).astype(np.float32),
                   requires_grad=True)
        b = Tensor(rng.standard_normal((5, 7, 9, 3)).astype(np.float32),
                   requires_grad=True)
        w = Tensor(rng.standard_normal((7, 6)).astype(np.float32),
                   requires_grad=True)
        bias = Tensor(rng.standard_normal(6).astype(np.float32),
                      requires_grad=True)
        out = F.linear_split([a, b], w, bias)
        ref = F.linear(F.concatenate([a, b], axis=-1), w, bias)
        np.testing.assert_allclose(out.data, ref.data, atol=1e-5)

    def test_broadcast_input_gradients(self, rng):
        """A (1, R, C) input broadcast over the view axis receives the
        view-summed gradient, and the weight slice sees it once."""
        views = 4
        a = Tensor(rng.standard_normal((views, 6, 5)).astype(np.float32),
                   requires_grad=True)
        pooled = Tensor(rng.standard_normal((1, 6, 3)).astype(np.float32),
                        requires_grad=True)
        w = Tensor(rng.standard_normal((8, 2)).astype(np.float32),
                   requires_grad=True)
        out = F.linear_split([a, pooled], w)
        g = rng.standard_normal(out.shape).astype(np.float32)
        (out * Tensor(g)).sum().backward()

        a2 = Tensor(a.data.copy(), requires_grad=True)
        pooled_b = Tensor(np.broadcast_to(pooled.data,
                                          (views, 6, 3)).copy(),
                          requires_grad=True)
        w2 = Tensor(w.data.copy(), requires_grad=True)
        ref = F.linear(F.concatenate([a2, pooled_b], axis=-1), w2)
        (ref * Tensor(g)).sum().backward()

        np.testing.assert_allclose(a.grad, a2.grad, atol=1e-4)
        np.testing.assert_allclose(
            pooled.grad, pooled_b.grad.sum(axis=0, keepdims=True), atol=1e-4)
        np.testing.assert_allclose(w.grad, w2.grad, atol=1e-3)

    def test_width_mismatch_raises(self, rng):
        a = Tensor(rng.standard_normal((3, 4)).astype(np.float32))
        w = Tensor(rng.standard_normal((9, 2)).astype(np.float32))
        with pytest.raises(ValueError):
            F.linear_split([a], w)
