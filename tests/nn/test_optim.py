"""Optimiser and schedule tests."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn.layers import Parameter


def quadratic_loss(param):
    return ((param - 3.0) * (param - 3.0)).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = nn.SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-3)

    def test_momentum_accelerates(self):
        runs = {}
        for momentum in (0.0, 0.9):
            p = Parameter(np.zeros(1))
            opt = nn.SGD([p], lr=0.02, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            runs[momentum] = abs(float(p.data[0]) - 3.0)
        assert runs[0.9] < runs[0.0]

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.ones(2))
        opt = nn.SGD([p], lr=0.5)
        opt.step()   # no grad yet — must not touch the data
        assert np.allclose(p.data, 1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = nn.Adam([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-2)

    def test_rejects_empty_parameter_list(self):
        with pytest.raises(ValueError):
            nn.Adam([])

    def test_step_count_advances(self):
        p = Parameter(np.zeros(1))
        opt = nn.Adam([p])
        quadratic_loss(p).backward()
        opt.step()
        opt.step()
        assert opt.step_count == 2


class TestSchedules:
    def test_constant(self):
        sched = nn.ConstantLR(0.01)
        assert sched(0) == sched(1000) == 0.01

    def test_exponential_decay_endpoints(self):
        sched = nn.ExponentialDecayLR(initial=1e-3, decay_rate=0.1,
                                      decay_steps=1000)
        assert np.isclose(sched(0), 1e-3)
        assert np.isclose(sched(1000), 1e-4)
        assert sched(500) < sched(100)

    def test_optimizer_follows_schedule(self):
        p = Parameter(np.zeros(1))
        sched = nn.ExponentialDecayLR(initial=0.1, decay_rate=0.01,
                                      decay_steps=10)
        opt = nn.Adam([p], schedule=sched)
        assert np.isclose(opt.lr, 0.1)
        for _ in range(10):
            quadratic_loss(p).backward()
            opt.step()
        assert np.isclose(opt.lr, 0.001)


class TestSchedulesExtended:
    def test_constant_ignores_negative_and_huge_steps(self):
        sched = nn.ConstantLR(3e-4)
        assert sched(-5) == sched(10**9) == 3e-4

    def test_exponential_decay_is_smooth_between_anchors(self):
        sched = nn.ExponentialDecayLR(initial=1.0, decay_rate=0.1,
                                      decay_steps=100)
        # Geometric in the step: each step multiplies by the same ratio.
        ratios = [sched(k + 1) / sched(k) for k in range(5)]
        assert np.allclose(ratios, ratios[0])
        assert np.isclose(sched(50), np.sqrt(0.1))

    def test_exponential_decay_monotone_nonincreasing(self):
        sched = nn.ExponentialDecayLR(initial=5e-4, decay_rate=0.5,
                                      decay_steps=10)
        values = [sched(k) for k in range(50)]
        assert all(b <= a for a, b in zip(values, values[1:]))
        assert values[-1] > 0

    def test_paper_defaults(self):
        sched = nn.ExponentialDecayLR()
        assert np.isclose(sched(0), 5e-4)
        assert np.isclose(sched(250_000), 5e-5)

    def test_adam_evaluates_schedule_after_increment(self):
        # The seed Adam read the LR *after* bumping step_count (first
        # step uses schedule(1)); the fused Adam must keep that.
        seen = []

        class Probe(nn.LRSchedule):
            def __call__(self, step):
                seen.append(step)
                return 1e-3

        p = Parameter(np.zeros(3))
        opt = nn.Adam([p], schedule=Probe())
        p.grad = np.ones(3)
        opt.step()
        assert seen == [1]

    def test_sgd_evaluates_schedule_before_increment(self):
        seen = []

        class Probe(nn.LRSchedule):
            def __call__(self, step):
                seen.append(step)
                return 1e-3

        p = Parameter(np.zeros(3))
        opt = nn.SGD([p], schedule=Probe())
        p.grad = np.ones(3)
        opt.step()
        assert seen == [0]


class TestClipGradNorm:
    def test_clips_when_above(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([3.0, 4.0, 0.0])
        total = nn.clip_grad_norm([p], max_norm=1.0)
        assert np.isclose(total, 5.0)
        assert np.isclose(np.linalg.norm(p.grad), 1.0)

    def test_leaves_small_gradients(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.1, 0.1])
        nn.clip_grad_norm([p], max_norm=1.0)
        assert np.allclose(p.grad, [0.1, 0.1])
