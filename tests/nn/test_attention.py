"""Multi-head attention and transformer block tests."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


class TestAttention:
    def test_output_shape(self, rng):
        att = nn.MultiHeadSelfAttention(8, heads=2, rng=rng)
        out = att(Tensor(rng.standard_normal((3, 5, 8))))
        assert out.shape == (3, 5, 8)

    def test_rejects_bad_head_split(self, rng):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(7, heads=2, rng=rng)

    def test_mask_blocks_information_flow(self, rng):
        """Valid positions must be unaffected by masked positions."""
        att = nn.MultiHeadSelfAttention(8, heads=2, rng=rng)
        base = rng.standard_normal((1, 6, 8)).astype(np.float32)
        mask = np.ones((1, 6), dtype=bool)
        mask[:, 4:] = False
        out_a = att(Tensor(base.copy()), mask=mask).data
        poisoned = base.copy()
        poisoned[:, 4:, :] += 100.0
        out_b = att(Tensor(poisoned), mask=mask).data
        assert np.allclose(out_a[:, :4], out_b[:, :4], atol=1e-4)

    def test_permutation_equivariance(self, rng):
        """Self-attention (no positional encoding) is permutation
        equivariant over the point axis."""
        att = nn.MultiHeadSelfAttention(8, heads=1, rng=rng)
        x = rng.standard_normal((1, 5, 8)).astype(np.float32)
        perm = np.array([3, 1, 4, 0, 2])
        out = att(Tensor(x)).data
        out_perm = att(Tensor(x[:, perm])).data
        assert np.allclose(out[:, perm], out_perm, atol=1e-5)

    def test_gradients_flow(self, rng):
        att = nn.MultiHeadSelfAttention(8, heads=2, rng=rng)
        x = Tensor(rng.standard_normal((2, 4, 8)), requires_grad=True)
        att(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in att.parameters())

    def test_flops_positive_and_quadratic(self, rng):
        att = nn.MultiHeadSelfAttention(8, heads=2, rng=rng)
        short = att.flops(1, 16)
        long = att.flops(1, 32)
        # Attention term is quadratic in points.
        assert long > 2 * short


class TestTransformerBlock:
    def test_shapes_and_residual(self, rng):
        block = nn.TransformerBlock(8, heads=2, rng=rng)
        x = rng.standard_normal((2, 6, 8)).astype(np.float32)
        out = block(Tensor(x))
        assert out.shape == (2, 6, 8)

    def test_masked_forward(self, rng):
        block = nn.TransformerBlock(8, heads=2, rng=rng)
        mask = np.ones((2, 6), dtype=bool)
        mask[:, 5:] = False
        out = block(Tensor(rng.standard_normal((2, 6, 8))), mask=mask)
        assert np.isfinite(out.data).all()

    def test_flops_exceed_attention_alone(self, rng):
        block = nn.TransformerBlock(8, heads=2, rng=rng)
        assert block.flops(2, 16) > block.attention.flops(2, 16)
