"""Row gather/scatter primitives and the sample-packing round-trip.

The sparse fine pass stands on three properties pinned here:

* ``scatter_rows(gather_rows(x, idx), idx, n)`` is the identity on the
  indexed rows and exactly ``+0.0`` elsewhere;
* both primitives are autograd-correct (numerical gradients) and
  inference-mode-clean (no graph nodes under ``inference_mode``);
* :func:`repro.models.sampling.pack_samples` round-trips every seeded
  mask, including the empty, fully-saturated, and single-ray edges.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn.functional import gather_rows, scatter_rows
from repro.models.sampling import PACK_ALIGN, pack_samples


class TestGatherRows:
    def test_forward_matches_numpy(self, rng):
        x = rng.standard_normal((10, 4)).astype(np.float32)
        index = np.array([3, 3, 0, 9])
        out = gather_rows(Tensor(x), index)
        np.testing.assert_array_equal(out.data, x[index])

    def test_backward_scatter_adds_duplicates(self, rng):
        x0 = rng.standard_normal((6, 3)).astype(np.float64)
        index = np.array([2, 2, 2, 5, 0])
        x = Tensor(x0.copy(), requires_grad=True)
        gather_rows(x, index).sum().backward()
        expected = np.zeros_like(x0)
        np.add.at(expected, index, 1.0)
        np.testing.assert_allclose(x.grad, expected)

    def test_inference_mode_clean(self, rng):
        x = Tensor(rng.standard_normal((5, 2)).astype(np.float32),
                   requires_grad=True)
        with nn.inference_mode():
            out = gather_rows(x, np.array([1, 4]))
        assert not out.requires_grad
        assert out._backward is None


class TestScatterRows:
    def test_forward_zero_fill(self, rng):
        x = rng.standard_normal((3, 2)).astype(np.float32)
        index = np.array([5, 0, 2])
        out = scatter_rows(Tensor(x), index, 7)
        assert out.shape == (7, 2)
        np.testing.assert_array_equal(out.data[index], x)
        untouched = np.setdiff1d(np.arange(7), index)
        assert (out.data[untouched] == 0.0).all()
        # Exactly +0.0 (no negative zeros): byte-compare against fresh
        # zeros, the property the packed/padded equivalence rests on.
        assert out.data[untouched].tobytes() == \
            np.zeros((untouched.size, 2), dtype=np.float32).tobytes()

    def test_backward_gathers(self, rng):
        x0 = rng.standard_normal((4, 3)).astype(np.float64)
        index = np.array([6, 1, 0, 3])
        x = Tensor(x0.copy(), requires_grad=True)
        out = scatter_rows(x, index, 8)
        weight = rng.standard_normal((8, 3))
        (out * Tensor(weight)).sum().backward()
        np.testing.assert_allclose(x.grad, weight[index])

    def test_inference_mode_clean(self, rng):
        x = Tensor(rng.standard_normal((3, 2)).astype(np.float32),
                   requires_grad=True)
        with nn.inference_mode():
            out = scatter_rows(x, np.array([0, 2, 4]), 5)
        assert not out.requires_grad
        assert out._backward is None


class TestPackSamples:
    @pytest.mark.parametrize("seed", range(8))
    def test_round_trip_property(self, seed):
        """pack -> gather -> scatter == identity on masked entries,
        zeros elsewhere, for seeded random masks."""
        rng = np.random.default_rng(seed)
        num_rays = int(rng.integers(1, 40))
        points = int(rng.integers(1, 24))
        mask = rng.random((num_rays, points)) < rng.uniform(0.05, 0.95)
        values = rng.standard_normal((num_rays, points, 3)) \
            .astype(np.float32)

        packing = pack_samples(mask)
        assert packing.valid == int(mask.sum())
        assert packing.padded % PACK_ALIGN == 0
        assert packing.padded >= max(packing.valid, PACK_ALIGN)

        flat = values.reshape(-1, 3)
        gathered = flat[packing.ray_index * points + packing.point_index]
        # Padding rows replicate a valid cell (never out of range).
        assert np.isfinite(gathered).all()
        restored = scatter_rows(Tensor(gathered[:packing.valid]),
                                packing.flat_index,
                                num_rays * points).data \
            .reshape(num_rays, points, 3)
        np.testing.assert_array_equal(restored[mask], values[mask])
        assert (restored[~mask] == 0.0).all()

    def test_counts_and_offsets(self):
        mask = np.array([[True, False, True],
                         [False, False, False],
                         [True, True, True]])
        packing = pack_samples(mask)
        np.testing.assert_array_equal(packing.counts, [2, 0, 3])
        np.testing.assert_array_equal(packing.offsets, [0, 2, 2, 5])
        # Valid entries are emitted in row-major (ray-segment) order.
        assert (np.diff(packing.ray_index[:packing.valid]) >= 0).all()

    def test_empty_mask(self):
        packing = pack_samples(np.zeros((4, 5), dtype=bool))
        assert packing.valid == 0
        assert packing.padded == PACK_ALIGN
        np.testing.assert_array_equal(packing.counts, np.zeros(4))
        # Dummy rows point at cell (0, 0) — in range by construction.
        assert (packing.ray_index == 0).all()
        assert (packing.point_index == 0).all()

    def test_saturated_mask(self):
        mask = np.ones((6, 8), dtype=bool)
        packing = pack_samples(mask)
        assert packing.valid == 48
        np.testing.assert_array_equal(packing.counts, np.full(6, 8))
        np.testing.assert_array_equal(
            packing.flat_index, np.arange(48))

    def test_single_ray(self):
        mask = np.array([[False, True, False, True]])
        packing = pack_samples(mask)
        assert packing.valid == 2
        assert packing.num_rays == 1
        np.testing.assert_array_equal(packing.flat_index, [1, 3])

    def test_pad_to_floor(self):
        mask = np.ones((2, 3), dtype=bool)
        packing = pack_samples(mask, pad_to=100)
        assert packing.padded == 112    # next multiple of PACK_ALIGN
        assert packing.valid == 6
        # Padding rows replicate the first valid cell.
        assert (packing.ray_index[6:] == 0).all()
        assert (packing.point_index[6:] == 0).all()

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            pack_samples(np.ones(5, dtype=bool))
