"""Unit tests for the perf-regression harness's comparison machinery.

PR 1 shipped the harness before any baseline existed, so the
``previous_mean_s`` / ``regression_pct`` fields were never exercised
end-to-end.  These tests feed it synthetic prior JSON files and pin:
the second run populates the comparison fields, a >25% slowdown fails
loudly (exit code 1), and malformed priors are ignored rather than
crashing the run.
"""

import json

import numpy as np
import pytest

from benchmarks import harness


def _fake_bench():
    """A bench whose 'vectorised' path is trivially fast and stable."""
    x = np.arange(64)
    return (lambda: x.sum()), None


@pytest.fixture()
def fake_benches(monkeypatch):
    monkeypatch.setattr(harness, "BENCHES", {"fake_bench": _fake_bench})


class TestCompareToPrevious:
    def test_no_prior_entry(self):
        assert harness.compare_to_previous(1.0, None) is None

    def test_malformed_prior_entry(self):
        assert harness.compare_to_previous(1.0, {"mean_s": None}) is None
        assert harness.compare_to_previous(1.0, {"mean_s": 0.0}) is None
        assert harness.compare_to_previous(1.0, {"other": 2.0}) is None
        assert harness.compare_to_previous(1.0, "not-a-dict") is None

    def test_regression_percentage(self):
        assert harness.compare_to_previous(1.5, {"mean_s": 1.0}) \
            == pytest.approx(50.0)
        assert harness.compare_to_previous(0.5, {"mean_s": 1.0}) \
            == pytest.approx(-50.0)


class TestTimeIsMedianOfRounds:
    """``_time`` must discard a warmup round and report the median —
    not the best — of the measured rounds, so one lucky (or stalled)
    round cannot move ``regression_pct``."""

    def _scripted_time(self, monkeypatch, durations):
        # Each func() call advances the fake clock by the next scripted
        # duration; perf_counter() reads it.
        state = {"now": 0.0, "queue": list(durations)}

        def fake_perf_counter():
            return state["now"]

        calls = {"n": 0}

        def func():
            calls["n"] += 1
            if state["queue"]:
                state["now"] += state["queue"].pop(0)
            else:
                state["now"] += durations[-1]

        monkeypatch.setattr(harness.time, "perf_counter", fake_perf_counter)
        return func, calls

    def test_median_not_best(self, monkeypatch):
        # Calls: 1 cache warmup, 1 calibration, then 1 warmup round +
        # 5 measured rounds (min_total_s=0 -> one call per round).
        # Measured rounds: [5, 9, 1, 9, 9] -> median 9, best 1.
        durations = [1.0, 1.0, 7.0, 5.0, 9.0, 1.0, 9.0, 9.0]
        func, _ = self._scripted_time(monkeypatch, durations)
        assert harness._time(func, rounds=5, min_total_s=0.0) == 9.0

    def test_warmup_round_is_discarded(self, monkeypatch):
        # The slow 100s round lands in the warmup slot and must not
        # contaminate the median of [2, 2, 2].
        durations = [1.0, 1.0, 100.0, 2.0, 2.0, 2.0]
        func, _ = self._scripted_time(monkeypatch, durations)
        assert harness._time(func, rounds=3, min_total_s=0.0) == 2.0

    def test_even_round_count_averages_middle_pair(self, monkeypatch):
        durations = [1.0, 1.0, 1.0, 2.0, 4.0]
        func, _ = self._scripted_time(monkeypatch, durations)
        assert harness._time(func, rounds=2, min_total_s=0.0) == 3.0


class TestRunComparison:
    def test_first_run_has_no_previous(self, fake_benches, tmp_path):
        result = tmp_path / "bench.json"
        code = harness.run(strict=True, result_path=str(result), rounds=1,
                           min_total_s=0.0)
        assert code == 0
        data = json.loads(result.read_text())
        entry = data["benches"]["fake_bench"]
        assert entry["previous_mean_s"] is None
        assert entry["regression_pct"] is None

    def test_second_run_populates_comparison(self, fake_benches, tmp_path):
        result = tmp_path / "bench.json"
        harness.run(strict=True, result_path=str(result), rounds=1,
                    min_total_s=0.0)
        # strict=False: a microsecond-scale fake bench jitters well past
        # the 25% threshold run-to-run; this test pins the *comparison
        # fields*, the strictness tests below pin the exit codes.
        harness.run(strict=False, result_path=str(result), rounds=1,
                    min_total_s=0.0)
        entry = json.loads(result.read_text())["benches"]["fake_bench"]
        assert entry["previous_mean_s"] is not None
        assert entry["regression_pct"] is not None

    def test_large_regression_fails_loudly(self, fake_benches, tmp_path):
        result = tmp_path / "bench.json"
        synthetic = {"schema_version": 1, "generated_unix": 0.0,
                     "benches": {"fake_bench": {"mean_s": 1e-12}}}
        result.write_text(json.dumps(synthetic))
        code = harness.run(strict=True, result_path=str(result), rounds=1,
                           min_total_s=0.0)
        assert code == 1                      # >25% slower than the prior
        entry = json.loads(result.read_text())["benches"]["fake_bench"]
        assert entry["regression_pct"] > harness.REGRESSION_THRESHOLD_PCT

    def test_no_strict_reports_without_failing(self, fake_benches, tmp_path):
        result = tmp_path / "bench.json"
        synthetic = {"schema_version": 1, "generated_unix": 0.0,
                     "benches": {"fake_bench": {"mean_s": 1e-12}}}
        result.write_text(json.dumps(synthetic))
        assert harness.run(strict=False, result_path=str(result), rounds=1,
                           min_total_s=0.0) == 0

    def test_huge_prior_counts_as_improvement(self, fake_benches, tmp_path):
        result = tmp_path / "bench.json"
        synthetic = {"schema_version": 1, "generated_unix": 0.0,
                     "benches": {"fake_bench": {"mean_s": 1e9}}}
        result.write_text(json.dumps(synthetic))
        assert harness.run(strict=True, result_path=str(result), rounds=1,
                           min_total_s=0.0) == 0
        entry = json.loads(result.read_text())["benches"]["fake_bench"]
        assert entry["regression_pct"] < 0

    def test_unreadable_prior_is_ignored(self, fake_benches, tmp_path):
        result = tmp_path / "bench.json"
        result.write_text("{not json")
        assert harness.run(strict=True, result_path=str(result), rounds=1,
                           min_total_s=0.0) == 0

    def test_partial_run_merges_other_entries(self, fake_benches, tmp_path):
        result = tmp_path / "bench.json"
        synthetic = {"schema_version": 1, "generated_unix": 0.0,
                     "benches": {"other_bench": {"mean_s": 2.0}}}
        result.write_text(json.dumps(synthetic))
        harness.run(strict=True, result_path=str(result), rounds=1,
                    min_total_s=0.0, only=["fake_bench"])
        data = json.loads(result.read_text())["benches"]
        assert "other_bench" in data          # history preserved
        assert "fake_bench" in data

    def test_unknown_only_selection_errors(self, fake_benches, tmp_path):
        assert harness.run(strict=True,
                           result_path=str(tmp_path / "bench.json"),
                           only=["nope"]) == 2


class TestNewBenchNote:
    """A bench with no usable prior must say so explicitly — both in
    the JSON entry and on stdout — so a missing baseline is never
    mistaken for a clean comparison."""

    def test_first_run_is_flagged_as_new(self, fake_benches, tmp_path,
                                         capsys):
        result = tmp_path / "bench.json"
        harness.run(strict=True, result_path=str(result), rounds=1,
                    min_total_s=0.0)
        entry = json.loads(result.read_text())["benches"]["fake_bench"]
        assert entry["note"] == "new bench, no baseline"
        assert "note: fake_bench: new bench, no baseline" \
            in capsys.readouterr().out

    def test_note_clears_once_a_baseline_exists(self, fake_benches,
                                                tmp_path, capsys):
        result = tmp_path / "bench.json"
        harness.run(strict=True, result_path=str(result), rounds=1,
                    min_total_s=0.0)
        capsys.readouterr()                   # drop the first run's output
        harness.run(strict=False, result_path=str(result), rounds=1,
                    min_total_s=0.0)
        entry = json.loads(result.read_text())["benches"]["fake_bench"]
        assert "note" not in entry
        assert "no baseline" not in capsys.readouterr().out

    def test_malformed_prior_is_flagged_as_new(self, fake_benches,
                                               tmp_path):
        result = tmp_path / "bench.json"
        synthetic = {"schema_version": 1, "generated_unix": 0.0,
                     "benches": {"fake_bench": {"mean_s": None}}}
        result.write_text(json.dumps(synthetic))
        harness.run(strict=True, result_path=str(result), rounds=1,
                    min_total_s=0.0)
        entry = json.loads(result.read_text())["benches"]["fake_bench"]
        assert entry["note"] == "new bench, no baseline"
