"""Analytic field tests: densities, colours, bounds, composition."""

import numpy as np
import pytest

from repro.scenes import (CompositeField, GaussianBlob, GroundPlane,
                          SolidBox, SphereShell, empty_space_fraction)

ALL_FIELDS = [
    GaussianBlob(center=np.zeros(3), radius=0.3),
    SolidBox(center=np.zeros(3), half_extent=np.array([0.4, 0.3, 0.2])),
    SphereShell(center=np.zeros(3), radius=0.5),
    GroundPlane(height=1.0),
]


@pytest.mark.parametrize("field", ALL_FIELDS, ids=lambda f: type(f).__name__)
class TestFieldInterface:
    def test_density_nonnegative(self, field, rng):
        pts = rng.uniform(-3, 3, (200, 3))
        assert (field.density(pts) >= 0).all()

    def test_color_in_unit_range(self, field, rng):
        pts = rng.uniform(-2, 2, (100, 3))
        dirs = rng.standard_normal((100, 3))
        dirs /= np.linalg.norm(dirs, axis=-1, keepdims=True)
        colors = field.color(pts, dirs)
        assert colors.shape == (100, 3)
        assert (colors >= 0).all() and (colors <= 1).all()

    def test_bounds_contain_mass(self, field, rng):
        lo, hi = field.bounds()
        # Sample far outside the bounds: density should be negligible
        # compared to the peak inside.
        inside = rng.uniform(lo, hi, (500, 3))
        outside = rng.uniform(lo - 10 * (hi - lo), lo - 5 * (hi - lo),
                              (200, 3))
        assert field.density(outside).max() \
            < 0.05 * max(field.density(inside).max(), 1e-9)

    def test_batched_shapes(self, field, rng):
        pts = rng.uniform(-1, 1, (4, 5, 3))
        dirs = np.broadcast_to(np.array([0, 0, 1.0]), (4, 5, 3))
        assert field.density(pts).shape == (4, 5)
        assert field.color(pts, dirs).shape == (4, 5, 3)

    def test_rejects_bad_point_shape(self, field):
        with pytest.raises(ValueError):
            field.density(np.zeros((5, 2)))


class TestSpecificFields:
    def test_blob_peak_at_center(self):
        blob = GaussianBlob(center=np.array([1.0, 0, 0]), radius=0.2,
                            peak_density=30.0)
        assert np.isclose(blob.density(np.array([[1.0, 0, 0]]))[0], 30.0)
        assert blob.density(np.array([[2.0, 0, 0]]))[0] < 1.0

    def test_box_inside_outside(self):
        box = SolidBox(center=np.zeros(3), half_extent=np.array([0.5] * 3),
                       density_value=40.0, edge_softness=0.01)
        assert box.density(np.zeros((1, 3)))[0] > 39.0
        assert box.density(np.array([[1.0, 1.0, 1.0]]))[0] < 0.1

    def test_shell_hollow(self):
        shell = SphereShell(center=np.zeros(3), radius=0.5, thickness=0.03,
                            density_value=50.0)
        on_shell = shell.density(np.array([[0.5, 0, 0]]))[0]
        center = shell.density(np.zeros((1, 3)))[0]
        assert on_shell > 45.0 and center < 1.0

    def test_blob_view_tint_changes_color(self):
        blob = GaussianBlob(center=np.zeros(3), radius=0.3, view_tint=0.5)
        pts = np.array([[0.2, 0.0, 0.0]])
        facing = blob.color(pts, np.array([[-1.0, 0, 0]]))
        away = blob.color(pts, np.array([[1.0, 0, 0]]))
        assert not np.allclose(facing, away)

    def test_ground_plane_limited_extent(self):
        plane = GroundPlane(height=1.0, extent=2.0)
        assert plane.density(np.array([[0.0, 1.0, 0.0]]))[0] > 10
        assert plane.density(np.array([[5.0, 1.0, 0.0]]))[0] == 0.0


class TestComposite:
    def test_density_is_sum(self, rng):
        a = GaussianBlob(center=np.zeros(3), radius=0.3)
        b = GaussianBlob(center=np.array([1.0, 0, 0]), radius=0.3)
        comp = CompositeField([a, b])
        pts = rng.uniform(-1, 2, (50, 3))
        assert np.allclose(comp.density(pts),
                           a.density(pts) + b.density(pts))

    def test_color_is_density_weighted(self):
        red = GaussianBlob(center=np.zeros(3), radius=0.3,
                           base_color=np.array([1.0, 0, 0]), view_tint=0)
        blue = GaussianBlob(center=np.zeros(3), radius=0.3,
                            base_color=np.array([0, 0, 1.0]), view_tint=0)
        comp = CompositeField([red, blue])
        color = comp.color(np.zeros((1, 3)), np.array([[0, 0, 1.0]]))[0]
        # Equal densities -> average of the two component colours.
        single_red = red.color(np.zeros((1, 3)), np.array([[0, 0, 1.0]]))[0]
        single_blue = blue.color(np.zeros((1, 3)), np.array([[0, 0, 1.0]]))[0]
        assert np.allclose(color, 0.5 * (single_red + single_blue))

    def test_empty_region_color_is_neutral(self):
        comp = CompositeField([GaussianBlob(center=np.zeros(3), radius=0.1)])
        far = np.array([[50.0, 50.0, 50.0]])
        assert np.allclose(comp.color(far, np.array([[0, 0, 1.0]])), 0.5)

    def test_bounds_union(self):
        a = GaussianBlob(center=np.array([-2.0, 0, 0]), radius=0.2)
        b = GaussianBlob(center=np.array([3.0, 0, 0]), radius=0.2)
        lo, hi = CompositeField([a, b]).bounds()
        assert lo[0] < -2.0 and hi[0] > 3.0


def test_empty_space_fraction_monotone_in_threshold(rng):
    # The bounding box is tight (3 sigma), so even a lone blob leaves a
    # moderate in-bounds empty fraction; raising the density threshold
    # can only classify more space as empty.
    sparse = CompositeField([GaussianBlob(center=np.zeros(3), radius=0.05)])
    low = empty_space_fraction(sparse, np.random.default_rng(0),
                               threshold=0.1)
    high = empty_space_fraction(sparse, np.random.default_rng(0),
                                threshold=5.0)
    assert 0.0 < low <= high <= 1.0
    assert high > 0.7
