"""Dataset family and scene construction tests."""

import numpy as np
import pytest

from repro.scenes import (DATASETS, LLFF_SCENE_TRAITS, llff_eval_scenes,
                          llff_like_field, make_scene,
                          nerf_synthetic_like_field)


class TestSpecs:
    def test_paper_resolutions(self):
        assert DATASETS["llff"].resolution == (756, 1008)
        assert DATASETS["nerf_synthetic"].resolution == (800, 800)
        assert DATASETS["deepvoxels"].resolution == (512, 512)

    def test_rig_kinds(self):
        assert DATASETS["llff"].rig == "forward"
        assert DATASETS["nerf_synthetic"].rig == "orbit"

    def test_intrinsics_scaling(self):
        intr = DATASETS["llff"].intrinsics(0.25)
        assert intr.width == 252 and intr.height == 189


class TestMakeScene:
    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            make_scene("imagenet")

    def test_unknown_llff_scene_raises(self):
        with pytest.raises(KeyError):
            llff_like_field(0, "kitchen")

    def test_reproducible_by_seed(self, rng):
        a = make_scene("nerf_synthetic", seed=5, image_scale=1 / 16)
        b = make_scene("nerf_synthetic", seed=5, image_scale=1 / 16)
        pts = rng.uniform(-1, 1, (50, 3))
        assert np.allclose(a.field.density(pts), b.field.density(pts))
        assert np.allclose(a.target_camera.center, b.target_camera.center)

    def test_different_seeds_differ(self, rng):
        a = nerf_synthetic_like_field(1)
        b = nerf_synthetic_like_field(2)
        pts = rng.uniform(-0.5, 0.5, (100, 3))
        assert not np.allclose(a.density(pts), b.density(pts))

    def test_source_count(self):
        scene = make_scene("llff", seed=0, num_source_views=7,
                           image_scale=1 / 16)
        assert scene.num_source_views == 7

    def test_target_sees_scene(self):
        scene = make_scene("nerf_synthetic", seed=2, image_scale=1 / 16)
        assert scene.target_camera.in_view(np.zeros((1, 3)))[0]
        for cam in scene.source_cameras:
            assert cam.in_view(np.zeros((1, 3)))[0]

    def test_closest_source_indices(self):
        scene = make_scene("nerf_synthetic", seed=2, num_source_views=8,
                           image_scale=1 / 16)
        closest = scene.closest_source_indices(3)
        assert len(closest) == 3
        target_dir = scene.target_camera.forward
        sims = [float(np.dot(c.forward, target_dir))
                for c in scene.source_cameras]
        assert set(closest) == set(np.argsort(sims)[::-1][:3])

    def test_subset_sources(self):
        scene = make_scene("llff", seed=0, num_source_views=6,
                           image_scale=1 / 16)
        subset = scene.subset_sources(4)
        assert len(subset) == 4


class TestLLFFEvalScenes:
    def test_all_four_analogues(self):
        scenes = llff_eval_scenes(image_scale=1 / 16, num_source_views=4)
        assert set(scenes) == {"fern", "fortress", "horns", "trex"}

    def test_scene_traits_differ(self, rng):
        fern = llff_like_field(1, "fern")
        fortress = llff_like_field(1, "fortress")
        pts = rng.uniform(-1, 1, (200, 3))
        assert not np.allclose(fern.density(pts), fortress.density(pts))

    def test_traits_table_complete(self):
        assert set(LLFF_SCENE_TRAITS) == {"fern", "fortress", "horns",
                                          "trex"}
