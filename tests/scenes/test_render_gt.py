"""Reference renderer tests: quadrature invariants and analytic cases."""

import numpy as np
import pytest

from repro.geometry import Intrinsics, camera_at, rays_for_pixels
from repro.scenes import (GaussianBlob, CompositeField, composite_numpy,
                          field_sigma_color, hitting_weights, make_scene,
                          render_image, render_rays)


class TestCompositeNumpy:
    def test_weights_are_subprobability(self, rng):
        sigmas = np.abs(rng.standard_normal((10, 16))) * 3
        colors = rng.uniform(0, 1, (10, 16, 3))
        depths = np.sort(rng.uniform(2, 6, (10, 16)), axis=-1)
        pixel, weights, transmittance = composite_numpy(sigmas, colors,
                                                        depths, far=6.0)
        assert (weights >= 0).all()
        assert (weights.sum(-1) <= 1 + 1e-9).all()
        assert (np.diff(transmittance, axis=-1) <= 1e-12).all()

    def test_zero_density_renders_background(self):
        sigmas = np.zeros((2, 8))
        colors = np.ones((2, 8, 3))
        depths = np.tile(np.linspace(2, 5, 8), (2, 1))
        black, _, _ = composite_numpy(sigmas, colors, depths, 6.0)
        assert np.allclose(black, 0.0)
        white, _, _ = composite_numpy(sigmas, colors, depths, 6.0,
                                      white_background=True)
        assert np.allclose(white, 1.0)

    def test_opaque_wall_analytic(self):
        """A very dense region returns its own colour: alpha -> 1."""
        sigmas = np.zeros((1, 10))
        sigmas[0, 3] = 1e4
        colors = np.zeros((1, 10, 3))
        colors[0, 3] = [0.3, 0.6, 0.9]
        depths = np.linspace(2, 5, 10)[None]
        pixel, weights, _ = composite_numpy(sigmas, colors, depths, 6.0)
        assert np.allclose(pixel[0], [0.3, 0.6, 0.9], atol=1e-6)
        assert np.isclose(weights[0, 3], 1.0, atol=1e-6)

    def test_occlusion_ordering(self):
        """A dense near slab hides a far slab."""
        sigmas = np.zeros((1, 10))
        sigmas[0, 2] = 1e4
        sigmas[0, 7] = 1e4
        colors = np.zeros((1, 10, 3))
        colors[0, 2] = [1.0, 0.0, 0.0]
        colors[0, 7] = [0.0, 1.0, 0.0]
        depths = np.linspace(2, 5, 10)[None]
        pixel, weights, _ = composite_numpy(sigmas, colors, depths, 6.0)
        assert np.allclose(pixel[0], [1.0, 0, 0], atol=1e-6)
        assert weights[0, 7] < 1e-6

    def test_exponential_medium_matches_closed_form(self):
        """Uniform density sigma over [a, b]: opacity = 1 - e^{-sigma L}."""
        sigma_value = 0.7
        depths = np.linspace(2.0, 6.0, 4000)[None]
        sigmas = np.full((1, 4000), sigma_value)
        colors = np.ones((1, 4000, 3))
        _, weights, _ = composite_numpy(sigmas, colors, depths, far=6.0)
        expected = 1.0 - np.exp(-sigma_value * 4.0)
        assert np.isclose(weights.sum(), expected, rtol=1e-3)

    def test_max_delta_caps_intervals(self):
        """With a tail sample far from `far`, capping the interval kills
        the spurious absorption."""
        sigmas = np.array([[0.5]])
        colors = np.ones((1, 1, 3))
        depths = np.array([[2.0]])
        _, w_uncapped, _ = composite_numpy(sigmas, colors, depths, far=10.0)
        _, w_capped, _ = composite_numpy(sigmas, colors, depths, far=10.0,
                                         max_delta=0.1)
        assert w_capped[0, 0] < w_uncapped[0, 0]
        assert np.isclose(w_capped[0, 0], 1 - np.exp(-0.05), atol=1e-6)


class TestRenderers:
    def test_render_rays_deterministic_without_rng(self, llff_scene):
        bundle = rays_for_pixels(llff_scene.target_camera,
                                 np.array([[10.0, 10.0], [20.0, 15.0]]),
                                 llff_scene.near, llff_scene.far)
        a = render_rays(llff_scene.field, bundle, 32)
        b = render_rays(llff_scene.field, bundle, 32)
        assert np.allclose(a, b)

    def test_render_image_chunking_equivalence(self, llff_scene):
        small = render_image(llff_scene.field, llff_scene.target_camera,
                             llff_scene.near, llff_scene.far, num_points=16,
                             step=8, chunk=7)
        big = render_image(llff_scene.field, llff_scene.target_camera,
                           llff_scene.near, llff_scene.far, num_points=16,
                           step=8, chunk=100000)
        assert np.allclose(small, big)

    def test_render_image_shape(self, llff_scene):
        image = render_image(llff_scene.field, llff_scene.target_camera,
                             llff_scene.near, llff_scene.far, num_points=8,
                             step=16)
        assert image.ndim == 3 and image.shape[2] == 3
        assert np.isfinite(image).all()

    def test_more_points_converges(self, orbit_scene):
        """Quadrature error decreases with sample count."""
        reference = render_image(orbit_scene.field,
                                 orbit_scene.target_camera,
                                 orbit_scene.near, orbit_scene.far,
                                 num_points=512, step=12)
        errors = []
        for points in (8, 32, 128):
            image = render_image(orbit_scene.field,
                                 orbit_scene.target_camera,
                                 orbit_scene.near, orbit_scene.far,
                                 num_points=points, step=12)
            errors.append(np.abs(image - reference).mean())
        assert errors[0] > errors[1] > errors[2]

    def test_hitting_weights_match_composite(self, llff_scene):
        bundle = rays_for_pixels(llff_scene.target_camera,
                                 np.array([[12.0, 9.0]]),
                                 llff_scene.near, llff_scene.far)
        depths = np.linspace(llff_scene.near, llff_scene.far, 32)[None]
        weights = hitting_weights(llff_scene.field, bundle, depths)
        sigmas, colors = field_sigma_color(llff_scene.field, bundle, depths)
        _, expected, _ = composite_numpy(sigmas, colors, depths,
                                         llff_scene.far)
        assert np.allclose(weights, expected)
