"""DRAM timing model tests."""

import numpy as np
import pytest

from repro.hardware import (DramConfig, DramModel, GDDR6_2080TI,
                            LPDDR4_1600_TX2, LPDDR4_2400)


@pytest.fixture()
def dram():
    return DramModel(LPDDR4_2400)


class TestService:
    def test_bandwidth_ceiling(self, dram):
        """Perfectly balanced large streams approach but never beat the
        channel's peak bandwidth."""
        per_bank = [10 * 1024 * 1024] * 8
        stats = dram.service(per_bank, [1] * 8)
        assert stats.effective_bandwidth \
            <= LPDDR4_2400.peak_bandwidth_bytes * 1.001

    def test_imbalance_serialises(self, dram):
        total = 8 * 1024 * 1024
        balanced = dram.service([total / 8] * 8, [1] * 8)
        skewed = dram.service([total] + [0.0] * 7, [1] + [0] * 7)
        assert skewed.service_time_s > 1.5 * balanced.service_time_s
        assert np.isclose(skewed.bytes_transferred,
                          balanced.bytes_transferred)

    def test_row_misses_cost_time(self, dram):
        per_bank = [64 * 1024] * 8
        few = dram.service(per_bank, [2] * 8)
        many = dram.service(per_bank, [500] * 8)
        assert many.service_time_s > few.service_time_s

    def test_energy_scales_with_traffic(self, dram):
        small = dram.service([1024] * 8, [1] * 8)
        large = dram.service([1024 * 1024] * 8, [1] * 8)
        assert large.energy_pj > 100 * small.energy_pj

    def test_validates_shapes(self, dram):
        with pytest.raises(ValueError):
            dram.service([1.0, 2.0], [1])

    def test_empty_batch(self, dram):
        stats = dram.service([0.0] * 8, [0] * 8)
        assert stats.service_time_s == 0.0
        assert stats.effective_bandwidth == 0.0


class TestStreamTime:
    def test_matches_peak_for_large_transfers(self, dram):
        time_s = dram.stream_time(100 * 1024 * 1024)
        ideal = 100 * 1024 * 1024 / LPDDR4_2400.peak_bandwidth_bytes
        assert time_s >= ideal
        assert time_s < ideal * 1.5


class TestDeviceConfigs:
    def test_paper_bandwidths(self):
        assert np.isclose(LPDDR4_2400.peak_bandwidth_bytes, 17.8e9)
        assert np.isclose(LPDDR4_1600_TX2.peak_bandwidth_bytes, 25.6e9)
        assert np.isclose(GDDR6_2080TI.peak_bandwidth_bytes, 616e9)
