"""Systolic array and PE pool timing tests."""

import numpy as np
import pytest

from repro.hardware.pe_pool import PePool, PePoolConfig
from repro.hardware.systolic import (GemmShape, SystolicConfig, gemm_cycles,
                                     gemm_utilization)


class TestGemmCycles:
    def test_zero_work(self):
        assert gemm_cycles(GemmShape(0, 8, 8)) == 0.0

    def test_macs_property(self):
        shape = GemmShape(10, 20, 30, count=4)
        assert shape.macs == 10 * 20 * 30 * 4

    def test_cycles_lower_bounded_by_ideal(self):
        config = SystolicConfig()
        shape = GemmShape(1024, 16, 16)
        ideal = shape.macs / config.macs_per_cycle
        assert gemm_cycles(shape, config) >= ideal

    def test_full_array_near_ideal(self):
        config = SystolicConfig()
        shape = GemmShape(10000, 16, 16)
        cycles = gemm_cycles(shape, config)
        ideal = shape.macs / config.macs_per_cycle
        assert cycles < ideal * 1.05

    def test_narrow_layer_penalised_but_packed(self):
        """n=7 pads to the 8-lane granule: ~7/8 utilisation, not 7/16."""
        shape = GemmShape(10000, 16, 7)
        utilization = gemm_utilization(shape)
        assert 0.7 < utilization < 0.9

    def test_dynamic_weights_cost_more(self):
        shared = GemmShape(64, 8, 64, count=100, shared_weights=True)
        dynamic = GemmShape(64, 8, 64, count=100, shared_weights=False)
        assert gemm_cycles(dynamic) > gemm_cycles(shared)

    def test_monotone_in_m(self):
        a = gemm_cycles(GemmShape(100, 16, 16))
        b = gemm_cycles(GemmShape(200, 16, 16))
        assert b > a

    def test_utilization_bounds(self, rng):
        for _ in range(20):
            shape = GemmShape(int(rng.integers(1, 500)),
                              int(rng.integers(1, 64)),
                              int(rng.integers(1, 64)))
            utilization = gemm_utilization(shape)
            assert 0 < utilization <= 1.0 + 1e-9


class TestPePool:
    def test_pool_speedup_over_single_array(self):
        pool = PePool(PePoolConfig(num_arrays=40))
        shape = GemmShape(8192, 32, 32)
        pooled = pool.run([shape]).cycles
        single = gemm_cycles(shape)
        assert pooled < single / 20

    def test_macs_accumulate(self):
        pool = PePool()
        gemms = [GemmShape(64, 16, 16), GemmShape(32, 8, 8, count=4)]
        execution = pool.run(gemms)
        assert execution.macs == sum(g.macs for g in gemms)

    def test_empty_gemm_skipped(self):
        pool = PePool()
        execution = pool.run([GemmShape(0, 16, 16)])
        assert execution.cycles == 0.0 and execution.macs == 0.0

    def test_utilization_metric(self):
        pool = PePool(PePoolConfig(num_arrays=4))
        execution = pool.run([GemmShape(4096, 16, 16)])
        utilization = pool.utilization(execution)
        assert 0.5 < utilization <= 1.0

    def test_small_work_underutilises(self):
        pool = PePool(PePoolConfig(num_arrays=40))
        execution = pool.run([GemmShape(4, 4, 1)])
        assert pool.utilization(execution) < 0.1
