"""Sharded-vs-sequential bit-identity for the frame simulation.

``simulate_frame(workers=N)`` splits the plan at patch boundaries,
runs the batched per-patch models per group, concatenates per-patch
results in group order, and ordered-sums the scalar totals over the
full concatenation — so every output must be **bit-identical** to the
single-pass run (and therefore to the seed loop it is pinned against)
at any worker count.  Covers all Fig. 12 variants at 1/2/4 workers,
``split_plan_arrays`` itself, and the pool-failure fallback.
"""

import logging

import numpy as np
import pytest

from repro.core import frame_pool, log
from repro.core.pipeline import hardware_rig
from repro.hardware import (GenNerfAccelerator, PlanArrays,
                            split_plan_arrays, variant_config)
from repro.models.workload import typical_workload
from repro.scenes.datasets import DatasetSpec

SCALAR_FIELDS = ("total_time_s", "data_time_s", "fetch_time_s",
                 "compute_time_s", "coarse_time_s", "prefetch_bytes",
                 "pool_macs", "pe_utilization", "num_patches", "energy_j",
                 "scheduler_hidden")

SPEC = DatasetSpec("shardtest", width=192, height=144, fov_x_deg=50.0,
                   near=2.0, far=6.0, rig="orbit", rig_distance=4.0)


@pytest.fixture(scope="module")
def rig():
    return hardware_rig(SPEC, num_views=6, seed=0)


@pytest.fixture(scope="module")
def workload():
    return typical_workload(height=144, width=192, num_views=6)


@pytest.fixture(scope="module", autouse=True)
def retire_pool():
    yield
    frame_pool.shutdown_pool()


def _simulate(variant, rig, workload, workers, plan=None):
    accelerator = GenNerfAccelerator(variant_config(variant))
    if plan is None:
        plan = accelerator.plan_frame(rig.novel, rig.sources, rig.near,
                                      rig.far, workload)
    return accelerator.simulate_frame(workload, rig.novel, rig.sources,
                                      rig.near, rig.far, plan=plan,
                                      workers=workers), plan


class TestSplitPlanArrays:
    @pytest.fixture(scope="class")
    def arrays(self, rig, workload):
        accelerator = GenNerfAccelerator(variant_config("ours"))
        plan = accelerator.plan_frame(rig.novel, rig.sources, rig.near,
                                      rig.far, workload)
        return plan.arrays

    @pytest.mark.parametrize("shards", [2, 3, 4, 7])
    def test_groups_reassemble_to_the_original(self, arrays, shards):
        groups = split_plan_arrays(arrays, shards)
        assert len(groups) == shards
        assert sum(g.num_patches for g in groups) == arrays.num_patches
        for field in ("bounds", "prefetch_bytes", "fetch_regions",
                      "fetch_counts", "resident_regions",
                      "resident_counts"):
            rebuilt = np.concatenate(
                [getattr(g, field) for g in groups], axis=0)
            assert np.array_equal(rebuilt, getattr(arrays, field)), field

    def test_region_rows_travel_with_their_patches(self, arrays):
        groups = split_plan_arrays(arrays, 3)
        for group in groups:
            assert group.fetch_regions.shape[0] == \
                int(group.fetch_counts.sum())
            assert group.resident_regions.shape[0] == \
                int(group.resident_counts.sum())

    def test_group_sizes_follow_array_split_convention(self, arrays):
        groups = split_plan_arrays(arrays, 3)
        sizes = [g.num_patches for g in groups]
        expected = [len(part) for part in
                    np.array_split(np.arange(arrays.num_patches), 3)]
        assert sizes == expected

    def test_one_shard_returns_the_arrays_whole(self, arrays):
        for shards in (1, 0, -2):
            groups = split_plan_arrays(arrays, shards)
            assert len(groups) == 1 and groups[0] is arrays

    def test_shards_clamp_to_patch_count(self):
        tiny = PlanArrays(
            bounds=np.zeros((2, 6), dtype=np.int64),
            prefetch_bytes=np.ones(2),
            fetch_regions=np.zeros((3, 5), dtype=np.int64),
            fetch_counts=np.array([1, 2], dtype=np.int64),
            resident_regions=np.zeros((2, 5), dtype=np.int64),
            resident_counts=np.array([1, 1], dtype=np.int64))
        groups = split_plan_arrays(tiny, 10)
        assert len(groups) == 2
        assert [g.num_patches for g in groups] == [1, 1]
        assert groups[0].fetch_regions.shape[0] == 1
        assert groups[1].fetch_regions.shape[0] == 2


class TestFrameSimSharded:
    @pytest.mark.parametrize("variant", ["ours", "var1", "var2", "var3"])
    def test_all_variants_bit_identical_at_all_widths(self, variant, rig,
                                                      workload):
        sequential, plan = _simulate(variant, rig, workload, workers=1)
        for workers in (2, 4):
            sharded, _ = _simulate(variant, rig, workload, workers=workers,
                                   plan=plan)
            for field in SCALAR_FIELDS:
                assert getattr(sharded, field) == \
                    getattr(sequential, field), (variant, workers, field)

    def test_warm_cache_reuse_stays_identical(self, rig, workload):
        # Repeated frames on one simulator warm the engine compute
        # cache in the parent (sequential) and in pool workers
        # (sharded); the second frame must still match bit for bit.
        seq_accel = GenNerfAccelerator(variant_config("ours"))
        shard_accel = GenNerfAccelerator(variant_config("ours"))
        plan = seq_accel.plan_frame(rig.novel, rig.sources, rig.near,
                                    rig.far, workload)
        for _ in range(2):
            sequential = seq_accel.simulate_frame(
                workload, rig.novel, rig.sources, rig.near, rig.far,
                plan=plan, workers=1)
            sharded = shard_accel.simulate_frame(
                workload, rig.novel, rig.sources, rig.near, rig.far,
                plan=plan, workers=2)
            for field in SCALAR_FIELDS:
                assert getattr(sharded, field) == \
                    getattr(sequential, field), field


class TestPoolFailureFallback:
    def test_simulation_survives_pool_failure_bit_identically(
            self, rig, workload, monkeypatch, caplog):
        sequential, plan = _simulate("ours", rig, workload, workers=1)

        def broken_pool(payload, workers):
            raise OSError("process spawning disabled")

        monkeypatch.setattr(frame_pool, "get_pool", broken_pool)
        with caplog.at_level(logging.WARNING, logger="repro"):
            sharded, _ = _simulate("ours", rig, workload, workers=4,
                                   plan=plan)
        for field in SCALAR_FIELDS:
            assert getattr(sharded, field) == getattr(sequential, field)
        degraded = log.events_named(caplog.records,
                                    "frame_pool.degraded_sequential")
        assert len(degraded) == 1
