"""Frame-level accelerator simulation tests (small frame for speed)."""

import numpy as np
import pytest

from repro.core.pipeline import hardware_rig
from repro.hardware import (AcceleratorConfig, GenNerfAccelerator,
                            variant_config)
from repro.models.workload import typical_workload
from repro.scenes.datasets import DatasetSpec

SMALL_SPEC = DatasetSpec("small", width=128, height=96, fov_x_deg=50.0,
                         near=2.0, far=6.0, rig="orbit", rig_distance=4.0)


@pytest.fixture(scope="module")
def rig():
    return hardware_rig(SMALL_SPEC, num_views=4, seed=0)


@pytest.fixture(scope="module")
def workload():
    return typical_workload(height=96, width=128, num_views=4)


@pytest.fixture(scope="module")
def simulation(rig, workload):
    return GenNerfAccelerator().simulate_frame(workload, rig.novel,
                                               rig.sources, rig.near,
                                               rig.far, keep_plan=True)


class TestSimulation:
    def test_basic_sanity(self, simulation):
        assert simulation.total_time_s > 0
        assert simulation.fps > 0
        assert simulation.num_patches > 0
        assert simulation.energy_j > 0
        assert 0 < simulation.pe_utilization < 1.0

    def test_time_accounting(self, simulation):
        assert simulation.total_time_s >= simulation.compute_time_s
        assert simulation.total_time_s \
            >= simulation.coarse_time_s + simulation.data_time_s

    def test_plan_kept_when_requested(self, simulation):
        assert simulation.plan is not None
        assert simulation.plan.num_patches == simulation.num_patches

    def test_view_count_validated(self, rig, workload):
        accelerator = GenNerfAccelerator()
        with pytest.raises(ValueError):
            accelerator.simulate_frame(workload, rig.novel,
                                       rig.sources[:2], rig.near, rig.far)

    def test_scheduler_hidden_on_small_frame(self, simulation):
        assert simulation.scheduler_hidden

    def test_power_positive(self, simulation):
        assert simulation.power_w > 0


class TestVariants:
    @pytest.fixture(scope="class")
    def all_variants(self, rig, workload):
        results = {}
        for name in ("ours", "var1", "var2", "var3"):
            accelerator = GenNerfAccelerator(variant_config(name))
            results[name] = accelerator.simulate_frame(
                workload, rig.novel, rig.sources, rig.near, rig.far)
        return results

    def test_ours_is_fastest(self, all_variants):
        ours = all_variants["ours"].total_time_s
        for name in ("var1", "var2", "var3"):
            assert all_variants[name].total_time_s >= ours * 0.99

    def test_ours_hides_data_movement(self, all_variants):
        """Fig. 12: our dataflow hides (nearly all) prefetch latency."""
        ours = all_variants["ours"]
        assert ours.data_time_s < 0.15 * ours.total_time_s

    def test_fixed_partitions_share_traffic(self, all_variants):
        # Var-1/2/3 share the fixed partition, so their DRAM byte counts
        # are identical; only timing differs (storage layout).  The
        # paper-scale traffic gap between ours and Var-1 is asserted by
        # benchmarks/test_fig12_dataflow_ablation.
        assert np.isclose(all_variants["var1"].prefetch_bytes,
                          all_variants["var2"].prefetch_bytes)
        assert np.isclose(all_variants["var1"].prefetch_bytes,
                          all_variants["var3"].prefetch_bytes)

    def test_bad_storage_hurts(self, all_variants):
        """Var-2/3 add bank conflicts on top of Var-1."""
        assert all_variants["var2"].total_time_s \
            > all_variants["var1"].total_time_s * 0.95
        assert all_variants["var3"].total_time_s \
            > all_variants["var1"].total_time_s * 0.95

    def test_utilization_ordering(self, all_variants):
        assert all_variants["ours"].pe_utilization \
            == max(v.pe_utilization for v in all_variants.values())

    def test_unknown_variant_raises(self):
        with pytest.raises(KeyError):
            variant_config("var9")


class TestConfigVariation:
    def test_layout_override(self, rig, workload):
        config = AcceleratorConfig().variant(feature_layout="row_major")
        simulation = GenNerfAccelerator(config).simulate_frame(
            workload, rig.novel, rig.sources, rig.near, rig.far)
        assert simulation.total_time_s > 0

    def test_no_coarse_stage(self, rig):
        from repro.models.workload import RenderWorkload
        workload = RenderWorkload(height=96, width=128, num_views=4,
                                  points_per_ray=32, ray_module="mixer",
                                  coarse_points=0)
        simulation = GenNerfAccelerator().simulate_frame(
            workload, rig.novel, rig.sources, rig.near, rig.far)
        assert simulation.coarse_time_s == 0.0


class TestScratchpadStoreSharing:
    """Regression tests documenting the intentional ``sram_store = store``
    sharing in ``simulate_frame``.

    The prefetch scratchpads reuse the DRAM :class:`FeatureStore`
    *object* on purpose: a ``FeatureStore`` carries feature-map geometry
    and the interleaving **scheme** only, while the bank count is a
    call-site parameter — so the scratchpad evaluates the same layout
    over its own ``engine.prefetch_sram.num_banks`` banks (paper
    Sec. 4.5), and the Fig. 12 Var-2/3 ablation measures each storage
    scheme end to end (DRAM *and* on-chip balance).
    """

    def _simulate(self, rig, workload, config):
        from repro.hardware import GenNerfAccelerator

        return GenNerfAccelerator(config).simulate_frame(
            workload, rig.novel, rig.sources, rig.near, rig.far)

    def test_layout_flows_into_scratchpad_balance(self, rig, workload):
        # Same fixed partition, different storage scheme: the
        # view-interleaved layout concentrates each view's residency on
        # one scratchpad bank, throttling the interpolator — visible in
        # engine-side compute time, not just DRAM fetch time.
        spatial = self._simulate(rig, workload, AcceleratorConfig(
            use_greedy_partition=False))
        view_wise = self._simulate(rig, workload, AcceleratorConfig(
            use_greedy_partition=False,
            feature_layout="view_interleaved"))
        assert view_wise.compute_time_s > spatial.compute_time_s * 1.5

    def test_scratchpad_banks_come_from_engine_config(self, rig, workload):
        # The shared store carries no bank count: shrinking only the
        # prefetch SRAM's bank pool must throttle compute while the
        # DRAM-side model is untouched.
        from dataclasses import replace

        from repro.hardware.engine import EngineConfig
        from repro.hardware.sram import SramConfig

        base = AcceleratorConfig(use_greedy_partition=False)
        narrow = replace(base, engine=EngineConfig(
            prefetch_sram=SramConfig(num_banks=2)))
        wide = self._simulate(rig, workload, base)
        throttled = self._simulate(rig, workload, narrow)
        assert throttled.compute_time_s > wide.compute_time_s * 1.5
        assert throttled.fetch_time_s == wide.fetch_time_s
