"""Greedy 3D-point-patch partition tests (paper Sec. 4.3, Fig. 5).

Uses a small 128x96 frame so full-frame planning stays fast; patch-shape
candidates still tile the 32px macro tile exactly as at full scale.
"""

import numpy as np
import pytest

from repro.core.pipeline import hardware_rig
from repro.hardware.scheduler import (DEFAULT_CANDIDATES, FramePlan,
                                      GreedyPatchScheduler, PatchShape,
                                      SchedulerConfig, fixed_partition)
from repro.scenes.datasets import DatasetSpec


SMALL_SPEC = DatasetSpec("small", width=128, height=96, fov_x_deg=50.0,
                         near=2.0, far=6.0, rig="orbit", rig_distance=4.0)


@pytest.fixture(scope="module")
def rig():
    return hardware_rig(SMALL_SPEC, num_views=4, seed=0)


@pytest.fixture(scope="module")
def plan(rig):
    scheduler = GreedyPatchScheduler(SchedulerConfig())
    return scheduler.plan_frame(rig.novel, rig.sources, rig.near, rig.far)


class TestConfig:
    def test_candidates_must_tile_macro(self):
        with pytest.raises(ValueError):
            SchedulerConfig(candidates=(PatchShape(24, 24, 8),))

    def test_candidates_must_divide_depth(self):
        with pytest.raises(ValueError):
            SchedulerConfig(candidates=(PatchShape(16, 16, 7),))


class TestPlanCoverage:
    def test_patches_cover_cube_exactly(self, plan):
        """Every (pixel, depth-bin) cell belongs to exactly one patch."""
        cover = np.zeros((96, 128, 8), dtype=np.int32)   # depth at /8 gran
        for patch in plan.patches:
            d_lo = patch.d0 * 8 // plan.depth_bins
            d_hi = patch.d1 * 8 // plan.depth_bins
            cover[patch.h0:patch.h1, patch.w0:patch.w1, d_lo:d_hi] += 1
        assert (cover == 1).all()

    def test_histogram_matches_patch_count(self, plan):
        assert sum(plan.candidate_histogram.values()) == plan.num_patches

    def test_total_bytes_consistent(self, plan):
        total = sum(p.prefetch_bytes for p in plan.patches)
        assert np.isclose(total, plan.total_prefetch_bytes)

    def test_bytes_per_cell_positive(self, plan):
        assert plan.bytes_per_cube_cell() > 0


class TestConstraints:
    def test_buffer_constraint_honoured(self, rig):
        """With a tiny buffer, the scheduler must pick smaller slabs."""
        small = SchedulerConfig(buffer_bytes=24 * 1024)
        plan_small = GreedyPatchScheduler(small).plan_frame(
            rig.novel, rig.sources, rig.near, rig.far)
        large = SchedulerConfig(buffer_bytes=4 * 1024 * 1024)
        plan_large = GreedyPatchScheduler(large).plan_frame(
            rig.novel, rig.sources, rig.near, rig.far)
        assert plan_small.num_patches >= plan_large.num_patches

    def test_same_hw_shares_depth_partition(self, plan):
        """Constraint (1): patches at one (h, w) tile all share dd."""
        by_tile = {}
        for patch in plan.patches:
            key = (patch.h0, patch.w0, patch.h1, patch.w1)
            by_tile.setdefault(key, set()).add(patch.num_depth_bins)
        for depths in by_tile.values():
            assert len(depths) == 1

    def test_delta_leq_resident(self, plan):
        for patch in plan.patches[::7]:
            delta = sum(f.num_locations for f in patch.footprints)
            resident = sum(f.num_locations
                           for f in patch.resident_footprints)
            assert delta <= resident + 1


class TestGreedyQuality:
    def test_greedy_no_worse_than_fixed(self, rig, plan):
        var1 = fixed_partition(rig.novel, rig.sources, rig.near, rig.far,
                               SchedulerConfig())
        assert plan.total_prefetch_bytes <= var1.total_prefetch_bytes * 1.05

    def test_greedy_no_worse_than_single_candidate(self, rig, plan):
        """The greedy chooser with the full menu beats (or ties) any
        forced single shape."""
        for shape in DEFAULT_CANDIDATES[:3]:
            forced = SchedulerConfig(candidates=(shape,))
            forced_plan = GreedyPatchScheduler(forced).plan_frame(
                rig.novel, rig.sources, rig.near, rig.far)
            assert plan.total_prefetch_bytes \
                <= forced_plan.total_prefetch_bytes * 1.02


class TestSchedulingOverhead:
    def test_cycles_positive_and_scaling(self):
        scheduler = GreedyPatchScheduler(SchedulerConfig())
        small = scheduler.scheduling_cycles(4, 96, 128)
        large = scheduler.scheduling_cycles(4, 192, 256)
        assert 0 < small < large

    def test_scales_with_views(self):
        scheduler = GreedyPatchScheduler(SchedulerConfig())
        assert scheduler.scheduling_cycles(8, 96, 128) \
            > scheduler.scheduling_cycles(2, 96, 128)


class TestFixedPartition:
    def test_all_full_depth(self, rig):
        plan = fixed_partition(rig.novel, rig.sources, rig.near, rig.far,
                               SchedulerConfig())
        for patch in plan.patches:
            assert patch.d0 == 0 and patch.d1 == 64

    def test_square_tiles(self, rig):
        plan = fixed_partition(rig.novel, rig.sources, rig.near, rig.far,
                               SchedulerConfig())
        shapes = {(p.h1 - p.h0, p.w1 - p.w0) for p in plan.patches
                  if p.h1 - p.h0 == p.w1 - p.w0}
        assert shapes   # interior tiles are k x k squares
