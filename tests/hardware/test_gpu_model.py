"""GPU roofline model tests: calibration anchors and scaling laws."""

import numpy as np
import pytest

from repro.hardware.gpu_model import (GpuModel, JETSON_TX2, RTX_2080TI)
from repro.models.workload import profiling_workload, typical_workload


@pytest.fixture(scope="module")
def gpu():
    return GpuModel(RTX_2080TI)


@pytest.fixture(scope="module")
def tx2():
    return GpuModel(JETSON_TX2)


class TestPaperAnchors:
    def test_deepvoxels_fps_near_paper(self, gpu):
        """Sec. 2.3: <= 0.249 FPS at best (DeepVoxels, the smallest)."""
        simulation = gpu.simulate_frame(profiling_workload(512, 512))
        assert 0.15 < simulation.fps < 0.4

    def test_attention_time_share(self, gpu):
        """Sec. 2.3: ray transformer is 44.1% of DNN time on LLFF."""
        simulation = gpu.simulate_frame(profiling_workload(756, 1008))
        assert 0.3 < simulation.dnn_attention_fraction() < 0.6

    def test_gather_dominates(self, gpu):
        """Sec. 2.3: feature acquisition is the biggest phase."""
        simulation = gpu.simulate_frame(profiling_workload(756, 1008))
        assert simulation.fraction("gather") > 0.4

    def test_gen_nerf_workload_still_slow(self, gpu):
        """Table 4: ~0.096 FPS despite 27x fewer FLOPs."""
        simulation = gpu.simulate_frame(typical_workload(756, 1008))
        assert 0.05 < simulation.fps < 0.25

    def test_tx2_much_slower(self, gpu, tx2):
        workload = typical_workload(756, 1008)
        assert tx2.simulate_frame(workload).total_time_s \
            > 10 * gpu.simulate_frame(workload).total_time_s


class TestScalingLaws:
    def test_time_scales_with_resolution(self, gpu):
        small = gpu.simulate_frame(profiling_workload(512, 512))
        large = gpu.simulate_frame(profiling_workload(1024, 1024))
        ratio = large.total_time_s / small.total_time_s
        assert 3.5 < ratio < 4.5

    def test_time_scales_with_views(self, gpu):
        few = gpu.simulate_frame(profiling_workload(512, 512, num_views=4))
        many = gpu.simulate_frame(profiling_workload(512, 512, num_views=10))
        assert many.total_time_s > 1.5 * few.total_time_s

    def test_flops_reduction_barely_helps_gpu(self, gpu):
        """The paper's core observation: 27x fewer FLOPs gives well under
        27x GPU speedup (memory/divergence bound)."""
        vanilla = gpu.simulate_frame(profiling_workload(756, 1008))
        delivered = gpu.simulate_frame(typical_workload(756, 1008))
        speedup = vanilla.total_time_s / delivered.total_time_s
        assert speedup < 5.0

    def test_mlp_efficiency_interpolation(self):
        spec = RTX_2080TI
        assert spec.mlp_efficiency(1.0) == spec.mlp_efficiency_wide
        assert spec.mlp_efficiency(0.0) == spec.mlp_efficiency_narrow
        mid = spec.mlp_efficiency(0.5)
        assert spec.mlp_efficiency_narrow < mid < spec.mlp_efficiency_wide

    def test_phase_fractions_sum_to_one(self, gpu):
        simulation = gpu.simulate_frame(typical_workload(512, 512))
        total = sum(simulation.fraction(p)
                    for p in simulation.phase_seconds)
        assert np.isclose(total, 1.0)
