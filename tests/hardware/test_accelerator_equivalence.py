"""Batched frame simulation pinned bit-identical to the seed loop.

The vectorised ``GenNerfAccelerator.simulate_frame`` (one grouped array
pass over all patches) must reproduce the preserved per-patch Python
loop (``repro.perf.reference.simulate_frame_loop``) **exactly** — same
floats, same ints, same booleans — because the figure/table artefacts
regenerated from it are committed and diffed byte-for-byte.

Layers are pinned bottom-up: batched rectangle bank loads per layout,
batched DRAM service, batched engine compute, then whole-frame
simulations across patch counts (including a single patch and an
800x800-scale plan) and all Fig. 12 ablation variants.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.pipeline import hardware_rig
from repro.hardware import (DramModel, FeatureStore, FootprintRegion,
                            GenNerfAccelerator, LAYOUTS, RenderingEngine,
                            balance_factor, bank_load_for_footprints,
                            variant_config)
from repro.hardware.interleave import (balance_factors, batched_bank_load,
                                       regions_as_array)
from repro.hardware.scheduler import FramePlan
from repro.models.workload import typical_workload
from repro.perf.reference import simulate_frame_loop
from repro.scenes.datasets import DATASETS, DatasetSpec

SMALL_SPEC = DatasetSpec("small", width=128, height=96, fov_x_deg=50.0,
                         near=2.0, far=6.0, rig="orbit", rig_distance=4.0)

SIM_FIELDS = ("total_time_s", "data_time_s", "fetch_time_s",
              "compute_time_s", "coarse_time_s", "prefetch_bytes",
              "pool_macs", "pe_utilization", "num_patches", "energy_j",
              "scheduler_hidden")


def assert_simulations_identical(fast, loop):
    for name in SIM_FIELDS:
        assert getattr(fast, name) == getattr(loop, name), name


def random_regions(rng, store, count):
    regions = []
    for _ in range(count):
        view = int(rng.integers(0, store.num_views))
        row0 = int(rng.integers(0, store.height))
        col0 = int(rng.integers(0, store.width))
        row1 = int(rng.integers(row0, store.height + 1))
        col1 = int(rng.integers(col0, store.width + 1))
        regions.append(FootprintRegion(view=view, row0=row0, row1=row1,
                                       col0=col0, col1=col1))
    return regions


# ----------------------------------------------------------------------
# Layer 1: batched bank loads
# ----------------------------------------------------------------------
class TestBatchedBankLoads:
    @pytest.mark.parametrize("layout", LAYOUTS)
    @pytest.mark.parametrize("num_banks", [8, 16])
    def test_rectangle_loads_match_scalar(self, layout, num_banks):
        rng = np.random.default_rng(LAYOUTS.index(layout) * 31 + num_banks)
        store = FeatureStore(num_views=5, height=37, width=29, channels=16,
                             layout=layout)
        regions = random_regions(rng, store, 200)
        # Degenerate rectangles (empty row/col spans) must load nothing.
        regions.append(FootprintRegion(view=1, row0=5, row1=5, col0=2,
                                       col1=9))
        regions.append(FootprintRegion(view=0, row0=3, row1=8, col0=4,
                                       col1=4))
        batched_loads, batched_acts = store.rectangle_bank_load_batched(
            regions_as_array(regions), num_banks)
        for index, region in enumerate(regions):
            loads, acts = store.rectangle_bank_load(region, num_banks)
            np.testing.assert_array_equal(batched_loads[index], loads)
            np.testing.assert_array_equal(batched_acts[index], acts)

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_grouped_loads_match_footprint_aggregation(self, layout):
        rng = np.random.default_rng(7)
        store = FeatureStore(num_views=4, height=33, width=41, channels=8,
                             layout=layout)
        groups = [random_regions(rng, store, int(rng.integers(1, 7)))
                  for _ in range(40)]
        flat = regions_as_array([fp for group in groups for fp in group])
        counts = np.array([len(group) for group in groups])
        group_bytes, group_acts = batched_bank_load(store, flat, counts, 8)
        for index, group in enumerate(groups):
            ref_bytes, ref_acts = bank_load_for_footprints(store, group, 8)
            np.testing.assert_array_equal(group_bytes[index], ref_bytes)
            np.testing.assert_array_equal(group_acts[index], ref_acts)

    def test_balance_factors_match_scalar(self):
        rng = np.random.default_rng(11)
        loads = rng.integers(0, 2000, size=(50, 16)).astype(np.float64)
        loads[7] = 0.0   # empty patch -> balance 1.0 by convention
        batched = balance_factors(loads)
        for index in range(loads.shape[0]):
            assert batched[index] == balance_factor(loads[index])

    def test_empty_inputs(self):
        store = FeatureStore(num_views=2, height=8, width=8, channels=4)
        loads, acts = store.rectangle_bank_load_batched(
            np.zeros((0, 5), dtype=np.int64), 8)
        assert loads.shape == (0, 8) and acts.shape == (0, 8)
        group_bytes, group_acts = batched_bank_load(
            store, np.zeros((0, 5), dtype=np.int64), np.zeros(0, np.int64),
            8)
        assert group_bytes.shape == (0, 8) and group_acts.shape == (0, 8)


# ----------------------------------------------------------------------
# Layer 2: batched DRAM service
# ----------------------------------------------------------------------
class TestBatchedDramService:
    def test_service_batch_matches_scalar(self):
        rng = np.random.default_rng(3)
        model = DramModel()
        per_bank_bytes = rng.integers(0, 65536, size=(64, 8)) \
            .astype(np.float64)
        per_bank_acts = rng.integers(0, 40, size=(64, 8))
        batch = model.service_batch(per_bank_bytes, per_bank_acts)
        for index in range(64):
            stats = model.service(per_bank_bytes[index],
                                  per_bank_acts[index])
            assert batch.service_time_s[index] == stats.service_time_s
            assert batch.energy_pj[index] == stats.energy_pj
            assert batch.bytes_transferred[index] == stats.bytes_transferred
            assert batch.row_activations[index] == stats.row_activations


# ----------------------------------------------------------------------
# Layer 3: batched engine compute
# ----------------------------------------------------------------------
class TestBatchedPatchCompute:
    @pytest.mark.parametrize("ray_module", ["mixer", "transformer", "none"])
    def test_patch_compute_batch_matches_scalar(self, ray_module):
        rng = np.random.default_rng(5)
        workload = replace(typical_workload(96, 128, 4),
                           ray_module=ray_module)
        num_points = rng.integers(1, 40000, size=48)
        num_rays = rng.integers(0, 1500, size=48)
        balances = rng.random(48) * 0.999 + 1e-3
        batch = RenderingEngine().patch_compute_batch(
            workload, num_points, num_rays, balances)
        scalar_engine = RenderingEngine()
        for index in range(48):
            scalar = scalar_engine.patch_compute(
                workload, int(num_points[index]), int(num_rays[index]),
                sram_balance=float(balances[index]))
            assert batch.ppu_cycles[index] == scalar.ppu_cycles
            assert batch.pool_cycles[index] == scalar.pool_cycles
            assert batch.sfu_cycles[index] == scalar.sfu_cycles
            assert batch.pool_macs[index] == scalar.pool_macs
            assert batch.cycles[index] == scalar.cycles

    def test_coarse_stage_matches_scalar(self):
        workload = typical_workload(96, 128, 4)
        points = np.array([1, 7, 900, 12345])
        batch = RenderingEngine().patch_compute_batch(
            workload, points, np.zeros(4, np.int64), np.ones(4),
            coarse_stage=True)
        scalar_engine = RenderingEngine()
        for index, value in enumerate(points.tolist()):
            scalar = scalar_engine.patch_compute(workload, value, 0,
                                                 coarse_stage=True)
            assert batch.cycles[index] == scalar.cycles
            assert batch.pool_macs[index] == scalar.pool_macs


# ----------------------------------------------------------------------
# Layer 4: whole frames
# ----------------------------------------------------------------------
def subplan(plan: FramePlan, num_patches: int) -> FramePlan:
    patches = plan.patches[:num_patches]
    return FramePlan(patches=patches,
                     total_prefetch_bytes=sum(p.prefetch_bytes
                                              for p in patches),
                     candidate_histogram=plan.candidate_histogram,
                     image_height=plan.image_height,
                     image_width=plan.image_width,
                     depth_bins=plan.depth_bins)


class TestFrameEquivalence:
    @pytest.fixture(scope="class")
    def rig(self):
        return hardware_rig(SMALL_SPEC, num_views=4, seed=0)

    @pytest.fixture(scope="class")
    def workload(self):
        return typical_workload(height=96, width=128, num_views=4)

    @pytest.fixture(scope="class")
    def plan(self, rig, workload):
        return GenNerfAccelerator().plan_frame(rig.novel, rig.sources,
                                               rig.near, rig.far, workload)

    @pytest.mark.parametrize("num_patches", [1, 3, 17])
    def test_sliced_plans_bit_identical(self, rig, workload, plan,
                                        num_patches):
        shared = subplan(plan, num_patches)
        fast = GenNerfAccelerator().simulate_frame(
            workload, rig.novel, rig.sources, rig.near, rig.far,
            plan=shared)
        loop = simulate_frame_loop(
            GenNerfAccelerator(), workload, rig.novel, rig.sources,
            rig.near, rig.far, plan=shared)
        assert fast.num_patches == num_patches
        assert_simulations_identical(fast, loop)

    @pytest.mark.parametrize("variant", ["ours", "var1", "var2", "var3"])
    def test_variants_bit_identical(self, rig, workload, variant):
        fast = GenNerfAccelerator(variant_config(variant)).simulate_frame(
            workload, rig.novel, rig.sources, rig.near, rig.far)
        loop = simulate_frame_loop(
            GenNerfAccelerator(variant_config(variant)), workload,
            rig.novel, rig.sources, rig.near, rig.far)
        assert_simulations_identical(fast, loop)

    @pytest.mark.parametrize("ray_module", ["transformer", "none"])
    def test_other_ray_modules_bit_identical(self, rig, ray_module):
        workload = replace(typical_workload(96, 128, 4),
                           ray_module=ray_module)
        fast = GenNerfAccelerator().simulate_frame(
            workload, rig.novel, rig.sources, rig.near, rig.far)
        loop = simulate_frame_loop(GenNerfAccelerator(), workload,
                                   rig.novel, rig.sources, rig.near,
                                   rig.far)
        assert_simulations_identical(fast, loop)

    def test_no_coarse_stage_bit_identical(self, rig):
        workload = replace(typical_workload(96, 128, 4), coarse_points=0)
        fast = GenNerfAccelerator().simulate_frame(
            workload, rig.novel, rig.sources, rig.near, rig.far)
        loop = simulate_frame_loop(GenNerfAccelerator(), workload,
                                   rig.novel, rig.sources, rig.near,
                                   rig.far)
        assert fast.coarse_time_s == 0.0
        assert_simulations_identical(fast, loop)

    def test_warm_engine_cache_reused_across_frames(self, rig, workload,
                                                    plan):
        # The scalar path memoises patch compute per engine instance and
        # the batched path must honour the same cache (first-occurrence
        # value wins); running both paths back to back on one
        # accelerator therefore still matches a fresh loop run.
        accelerator = GenNerfAccelerator()
        first = accelerator.simulate_frame(workload, rig.novel,
                                           rig.sources, rig.near, rig.far,
                                           plan=plan)
        warm = accelerator.simulate_frame(workload, rig.novel, rig.sources,
                                          rig.near, rig.far, plan=plan)
        loop = simulate_frame_loop(GenNerfAccelerator(), workload,
                                   rig.novel, rig.sources, rig.near,
                                   rig.far, plan=plan)
        assert_simulations_identical(first, loop)
        assert_simulations_identical(warm, loop)


@pytest.mark.slow
def test_paper_scale_plan_bit_identical():
    """The acceptance-scale check: a real 800x800 NeRF-Synthetic frame
    plan (6 source views, ~10^4 patches) simulated bit-identically by
    the batched pass and the seed loop."""
    spec = DATASETS["nerf_synthetic"]
    rig = hardware_rig(spec, num_views=6, seed=0)
    workload = typical_workload(height=spec.height, width=spec.width,
                                num_views=6)
    plan = GenNerfAccelerator().plan_frame(rig.novel, rig.sources, rig.near,
                                           rig.far, workload)
    assert plan.num_patches > 1000
    fast = GenNerfAccelerator().simulate_frame(
        workload, rig.novel, rig.sources, rig.near, rig.far, plan=plan)
    loop = simulate_frame_loop(GenNerfAccelerator(), workload, rig.novel,
                               rig.sources, rig.near, rig.far, plan=plan)
    assert_simulations_identical(fast, loop)
