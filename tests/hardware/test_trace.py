"""Trace-driven validation: aggregate DRAM model vs request replay."""

import numpy as np
import pytest

from repro.hardware.dram import DramConfig
from repro.hardware.interleave import FeatureStore, FootprintRegion, LAYOUTS
from repro.hardware.trace import (compare_aggregate_to_replay,
                                  footprint_trace, replay_trace)


@pytest.fixture()
def store():
    return FeatureStore(num_views=4, height=128, width=128, channels=32,
                        layout="spatial_interleaved")


class TestTraceGeneration:
    def test_trace_covers_all_locations(self, store):
        region = FootprintRegion(view=1, row0=4, row1=20, col0=8, col1=40)
        requests = list(footprint_trace(store, region, 8, 2048))
        assert len(requests) == region.num_locations
        assert sum(r.num_bytes for r in requests) \
            == region.num_locations * store.location_bytes

    def test_banks_in_range(self, store):
        region = FootprintRegion(view=0, row0=0, row1=10, col0=0, col1=10)
        for request in footprint_trace(store, region, 8, 2048):
            assert 0 <= request.bank < 8

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_all_layouts_produce_traces(self, layout):
        store = FeatureStore(num_views=2, height=64, width=64, channels=16,
                             layout=layout)
        region = FootprintRegion(view=1, row0=0, row1=8, col0=0, col1=16)
        requests = list(footprint_trace(store, region, 8, 2048))
        assert len(requests) == 128


class TestReplay:
    def test_row_locality_detected(self, store):
        """Sequential accesses within a bank mostly hit the open row."""
        region = FootprintRegion(view=0, row0=0, row1=32, col0=0, col1=64)
        requests = list(footprint_trace(store, region, 8, 2048))
        result = replay_trace(requests)
        assert result.hit_rate > 0.9

    def test_bandwidth_floor(self):
        """A huge balanced trace is bus-limited, not bank-limited."""
        store = FeatureStore(num_views=1, height=256, width=256,
                             channels=64, layout="spatial_interleaved")
        region = FootprintRegion(view=0, row0=0, row1=256, col0=0, col1=256)
        requests = list(footprint_trace(store, region, 8, 2048))
        result = replay_trace(requests)
        config = DramConfig()
        assert result.service_time_s \
            >= result.total_bytes / config.peak_bandwidth_bytes * 0.999

    def test_empty_trace(self):
        result = replay_trace([])
        assert result.service_time_s == 0.0 and result.hit_rate == 0.0


class TestAggregateFidelity:
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_aggregate_within_2x_of_replay(self, layout):
        """The fast aggregate model tracks the request-level replay
        within a factor of 2 across layouts (documented tolerance;
        typically much closer)."""
        store = FeatureStore(num_views=4, height=128, width=128,
                             channels=32, layout=layout)
        footprints = [FootprintRegion(view=v, row0=10, row1=40,
                                      col0=16, col1=56)
                      for v in range(4)]
        aggregate, replayed = compare_aggregate_to_replay(store, footprints)
        assert aggregate > 0 and replayed > 0
        ratio = aggregate / replayed
        assert 0.5 < ratio < 2.0, f"{layout}: ratio {ratio:.2f}"

    def test_layout_ordering_agrees(self):
        """Both models agree on the Fig. 12 ordering when bank
        concentration binds: a single view's footprint lands on one bank
        under view-wise storage and within one bank's row block under
        row-major, while spatial interleaving stays bus-bound."""
        footprints = [FootprintRegion(view=1, row0=20, row1=26,
                                      col0=10, col1=90)]
        aggregate_times = {}
        replay_times = {}
        for layout in LAYOUTS:
            store = FeatureStore(num_views=4, height=128, width=128,
                                 channels=32, layout=layout)
            agg, rep = compare_aggregate_to_replay(store, footprints)
            aggregate_times[layout] = agg
            replay_times[layout] = rep
        for times in (aggregate_times, replay_times):
            assert times["spatial_interleaved"] \
                <= min(times.values()) * 1.001
            assert times["view_interleaved"] \
                > times["spatial_interleaved"] * 1.2
            assert times["row_major"] \
                > times["spatial_interleaved"] * 1.2
