"""SRAM, double buffer, PPU, SFU, and unit-helper tests."""

import numpy as np
import pytest

from repro.hardware import (KB, PrefetchDoubleBuffer, PreprocessingUnit,
                            SfuConfig, SpecialFunctionUnit, SramBank,
                            SramConfig, cycles_to_seconds,
                            seconds_to_cycles)
from repro.hardware.preprocessing import PreprocessingConfig


class TestSram:
    def test_write_cycles_scale_with_bytes(self):
        bank = SramBank(SramConfig())
        assert bank.write_cycles(2048) == 2 * bank.write_cycles(1024)

    def test_imbalance_slows_access(self):
        bank = SramBank(SramConfig())
        assert bank.read_cycles(1024, balance=0.25) \
            == 4 * bank.read_cycles(1024, balance=1.0)

    def test_fits(self):
        bank = SramBank(SramConfig(capacity_bytes=1024))
        assert bank.fits(1024) and not bank.fits(1025)


class TestDoubleBuffer:
    def test_pipeline_perfect_overlap(self):
        """When compute dominates, fetches are fully hidden."""
        fetch = np.full(10, 1.0)
        compute = np.full(10, 5.0)
        total, busy = PrefetchDoubleBuffer.pipeline_time(fetch, compute)
        assert np.isclose(total, 1.0 + 10 * 5.0)
        assert np.isclose(busy, 50.0)

    def test_pipeline_memory_bound(self):
        fetch = np.full(10, 5.0)
        compute = np.full(10, 1.0)
        total, busy = PrefetchDoubleBuffer.pipeline_time(fetch, compute)
        assert np.isclose(total, 5.0 + 9 * 5.0 + 1.0)

    def test_single_patch(self):
        total, busy = PrefetchDoubleBuffer.pipeline_time(
            np.array([2.0]), np.array([3.0]))
        assert np.isclose(total, 5.0)

    def test_empty(self):
        total, busy = PrefetchDoubleBuffer.pipeline_time(np.array([]),
                                                         np.array([]))
        assert total == 0.0 and busy == 0.0

    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            PrefetchDoubleBuffer.pipeline_time(np.ones(3), np.ones(4))

    def test_state_swap(self):
        buffer = PrefetchDoubleBuffer()
        filling = buffer.state.filling
        buffer.state.swap()
        assert buffer.state.draining == filling


class TestPreprocessingUnit:
    def test_stage_cycles_scale(self):
        ppu = PreprocessingUnit()
        assert ppu.sampling_cycles(2000) == 2 * ppu.sampling_cycles(1000)
        assert ppu.projection_cycles(1000, 8) \
            == 2 * ppu.projection_cycles(1000, 4)

    def test_interpolation_sram_throttled(self):
        ppu = PreprocessingUnit()
        fast = ppu.interpolation_cycles(4096, 6, 32, sram_balance=1.0)
        slow = ppu.interpolation_cycles(4096, 6, 32, sram_balance=0.1)
        assert slow > 2 * fast

    def test_patch_cycles_is_slowest_stage(self):
        ppu = PreprocessingUnit()
        total = ppu.cycles_for_patch(4096, 6, 32)
        stages = (ppu.sampling_cycles(4096),
                  ppu.projection_cycles(4096, 6),
                  ppu.interpolation_cycles(4096, 6, 32))
        assert np.isclose(total, max(stages))


class TestSfu:
    def test_throughput(self):
        sfu = SpecialFunctionUnit(SfuConfig(lanes=16))
        thousand = sfu.cycles_for_points(1000)
        two_thousand = sfu.cycles_for_points(2000)
        assert two_thousand < 2.1 * thousand
        assert sfu.ops_for_points(10) == 10 * (2 + 4)


class TestUnits:
    def test_cycle_second_roundtrip(self):
        assert np.isclose(seconds_to_cycles(cycles_to_seconds(1e6)), 1e6)
        assert cycles_to_seconds(1e9) == 1.0
        assert KB == 1024
