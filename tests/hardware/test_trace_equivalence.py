"""Batched trace generation/replay vs the seed per-request loops.

The struct-of-arrays trace path must reproduce the seed generator's
requests exactly — same (bank, row, bytes) per location in raster order
— and the vectorised replay must report identical row hit/miss counts
and service times across layouts, including empty footprints.
"""

import numpy as np
import pytest

from repro.hardware.dram import DramConfig
from repro.hardware.interleave import FeatureStore, FootprintRegion, LAYOUTS
from repro.hardware.trace import (TraceArrays, footprint_trace,
                                  footprint_trace_arrays, replay_trace)
from repro.perf.reference import footprint_trace_loop, replay_trace_loop

REGIONS = [
    FootprintRegion(view=1, row0=4, row1=20, col0=8, col1=40),
    FootprintRegion(view=0, row0=0, row1=1, col0=0, col1=64),    # one row
    FootprintRegion(view=3, row0=10, row1=11, col0=5, col1=6),   # one loc
    FootprintRegion(view=2, row0=6, row1=6, col0=0, col1=8),     # empty
]


@pytest.mark.parametrize("layout", LAYOUTS)
@pytest.mark.parametrize("region", REGIONS)
def test_trace_requests_identical(layout, region):
    store = FeatureStore(num_views=4, height=64, width=64, channels=16,
                         layout=layout)
    batched = list(footprint_trace(store, region, 8, 2048))
    looped = list(footprint_trace_loop(store, region, 8, 2048))
    assert batched == looped


@pytest.mark.parametrize("layout", LAYOUTS)
def test_replay_identical(layout):
    store = FeatureStore(num_views=4, height=64, width=64, channels=32,
                         layout=layout)
    region = FootprintRegion(view=1, row0=2, row1=34, col0=4, col1=52)
    trace = footprint_trace_arrays(store, region, 8, 2048)
    config = DramConfig()
    vec = replay_trace(trace, config)
    loop = replay_trace_loop(list(trace.requests()), config)
    assert vec.row_hits == loop.row_hits
    assert vec.row_misses == loop.row_misses
    assert vec.total_bytes == loop.total_bytes
    assert vec.service_time_s == pytest.approx(loop.service_time_s, rel=1e-12)


def test_replay_accepts_request_sequences():
    """The dataclass API keeps working on plain request lists."""
    store = FeatureStore(num_views=2, height=32, width=32, channels=8)
    region = FootprintRegion(view=0, row0=0, row1=8, col0=0, col1=8)
    requests = list(footprint_trace(store, region, 8, 2048))
    from_list = replay_trace(requests)
    from_arrays = replay_trace(footprint_trace_arrays(store, region, 8, 2048))
    assert from_list == from_arrays


def test_replay_accepts_generators():
    """Seed-style composition: pipe the request iterator straight in."""
    store = FeatureStore(num_views=2, height=32, width=32, channels=8)
    region = FootprintRegion(view=0, row0=0, row1=8, col0=0, col1=8)
    from_generator = replay_trace(footprint_trace(store, region, 8, 2048))
    from_list = replay_trace(list(footprint_trace(store, region, 8, 2048)))
    assert from_generator == from_list


def test_empty_trace_both_paths():
    assert replay_trace([]).service_time_s == 0.0
    assert replay_trace(TraceArrays.empty()).service_time_s == 0.0


def test_row_cursor_resets_per_footprint():
    """Each footprint's per-bank cursors start at zero (a prefetch
    streams from the start of its staging region), matching the seed."""
    store = FeatureStore(num_views=2, height=32, width=32, channels=8)
    region = FootprintRegion(view=0, row0=0, row1=4, col0=0, col1=8)
    first = footprint_trace_arrays(store, region, 8, 2048)
    second = footprint_trace_arrays(store, region, 8, 2048)
    np.testing.assert_array_equal(first.rows, second.rows)
    assert first.rows.min() == 0
