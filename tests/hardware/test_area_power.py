"""Area/power component model vs paper Table 1."""

import pytest

from repro.hardware.area_power import (PAPER_TABLE1, full_chip_budget,
                                       prefetch_buffer_budget,
                                       preprocessing_unit_budget,
                                       rendering_engine_budget,
                                       workload_scheduler_budget)
from repro.hardware.energy import (dynamic_energy, frame_energy_from_power,
                                   typical_chip_power_w)


class TestTable1Calibration:
    @pytest.mark.parametrize("key", ["scheduler", "ppu", "engine",
                                     "prefetch", "total"])
    def test_area_within_tolerance(self, key):
        budget = full_chip_budget()[key]
        paper_area, _ = PAPER_TABLE1[key]
        assert abs(budget.area_mm2 - paper_area) <= 0.10 * paper_area

    @pytest.mark.parametrize("key", ["scheduler", "ppu", "engine",
                                     "prefetch", "total"])
    def test_power_within_tolerance(self, key):
        budget = full_chip_budget()[key]
        _, paper_power = PAPER_TABLE1[key]
        assert abs(budget.power_mw - paper_power) <= 0.10 * paper_power

    def test_engine_dominates(self):
        budget = full_chip_budget()
        assert budget["engine"].area_mm2 > 0.7 * budget["total"].area_mm2

    def test_total_is_sum(self):
        budget = full_chip_budget()
        parts = sum(budget[k].area_mm2
                    for k in ("scheduler", "ppu", "engine", "prefetch"))
        assert abs(parts - budget["total"].area_mm2) < 1e-9


class TestEnergy:
    def test_typical_power_near_paper(self):
        """Table 4: 9.7 W typical."""
        power = typical_chip_power_w()
        assert 8.5 < power < 10.5

    def test_dynamic_energy_components(self):
        report = dynamic_energy(macs=1e9, sram_bytes=1e6, dram_bytes=1e6,
                                sfu_ops=1e6)
        assert report.total_j > 0
        breakdown = report.breakdown()
        assert set(breakdown) == {"compute", "sram", "dram", "sfu"}
        assert abs(sum(breakdown.values()) - report.total_j) < 1e-12
        # DRAM bytes cost far more than SRAM bytes.
        assert report.dram_j > 10 * report.sram_j

    def test_frame_energy_from_power(self):
        assert frame_energy_from_power(0.040) \
            == pytest.approx(typical_chip_power_w() * 0.040)
