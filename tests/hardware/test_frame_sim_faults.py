"""Fault-injected frame simulations stay bit-identical.

Mirrors ``tests/models/test_render_faults.py`` for the accelerator
side: a pool worker that crashes, hangs, or returns a corrupt result
mid-frame re-executes only its patch group, and every scalar total of
the simulated frame matches the fault-free sequential run exactly —
at 1, 2, and 4 workers (faults inject only inside pool workers, so the
1-worker row is the no-fault control).
"""

import pytest

from repro.core import frame_pool
from repro.core.faults import FaultPlan, FaultSpec, injected_faults
from repro.core.pipeline import hardware_rig
from repro.hardware import GenNerfAccelerator, variant_config
from repro.models.workload import typical_workload
from repro.scenes.datasets import DatasetSpec

WORKER_COUNTS = (1, 2, 4)

SCALAR_FIELDS = ("total_time_s", "data_time_s", "fetch_time_s",
                 "compute_time_s", "coarse_time_s", "prefetch_bytes",
                 "pool_macs", "pe_utilization", "num_patches", "energy_j",
                 "scheduler_hidden")

SPEC = DatasetSpec("faulttest", width=192, height=144, fov_x_deg=50.0,
                   near=2.0, far=6.0, rig="orbit", rig_distance=4.0)


@pytest.fixture(scope="module")
def rig():
    return hardware_rig(SPEC, num_views=6, seed=0)


@pytest.fixture(scope="module")
def workload():
    return typical_workload(height=144, width=192, num_views=6)


@pytest.fixture(autouse=True)
def retire_pool():
    frame_pool.shutdown_pool()
    yield
    frame_pool.shutdown_pool()


def _simulate(rig, workload, workers, plan=None):
    accelerator = GenNerfAccelerator(variant_config("ours"))
    if plan is None:
        plan = accelerator.plan_frame(rig.novel, rig.sources, rig.near,
                                      rig.far, workload)
    return accelerator.simulate_frame(workload, rig.novel, rig.sources,
                                      rig.near, rig.far, plan=plan,
                                      workers=workers), plan


class TestFrameSimUnderInjectedFaults:
    @pytest.fixture(scope="class")
    def baseline(self, rig, workload):
        return _simulate(rig, workload, workers=1)

    def _assert_identical(self, result, sequential):
        for field in SCALAR_FIELDS:
            assert getattr(result, field) == \
                getattr(sequential, field), field

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_worker_crash_mid_frame(self, rig, workload, baseline,
                                    workers):
        sequential, plan = baseline
        fault_plan = FaultPlan(tasks={0: FaultSpec("crash")},
                               scope="frame_pool")
        with injected_faults(fault_plan):
            result, _ = _simulate(rig, workload, workers, plan=plan)
        self._assert_identical(result, sequential)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_hung_worker_times_out_mid_frame(self, rig, workload,
                                             baseline, workers,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0.5")
        sequential, plan = baseline
        fault_plan = FaultPlan(tasks={1: FaultSpec("hang", hang_s=5.0)},
                               scope="frame_pool")
        with injected_faults(fault_plan):
            result, _ = _simulate(rig, workload, workers, plan=plan)
        self._assert_identical(result, sequential)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_corrupt_group_result_mid_frame(self, rig, workload,
                                            baseline, workers):
        sequential, plan = baseline
        fault_plan = FaultPlan(tasks={0: FaultSpec("corrupt")},
                               scope="frame_pool")
        with injected_faults(fault_plan):
            result, _ = _simulate(rig, workload, workers, plan=plan)
        self._assert_identical(result, sequential)

    def test_persistent_crash_degrades_but_stays_identical(
            self, rig, workload, baseline):
        sequential, plan = baseline
        fault_plan = FaultPlan(tasks={0: FaultSpec("crash",
                                                   attempts=tuple(
                                                       range(8)))},
                               scope="frame_pool")
        with injected_faults(fault_plan):
            result, _ = _simulate(rig, workload, workers=2, plan=plan)
        self._assert_identical(result, sequential)
