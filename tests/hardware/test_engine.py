"""Rendering engine compute model tests."""

import numpy as np
import pytest

from repro.hardware.engine import (RenderingEngine, point_network_gemms,
                                   ray_module_gemms)
from repro.models.workload import (DEFAULT_DIMS, RenderWorkload,
                                   per_point_macs, typical_workload)


@pytest.fixture(scope="module")
def engine():
    return RenderingEngine()


@pytest.fixture(scope="module")
def workload():
    return typical_workload(height=96, width=128, num_views=4)


class TestGemmLists:
    def test_point_network_macs_match_workload_model(self):
        """The GEMM list and the analytic MAC formula agree exactly."""
        gemms = point_network_gemms(DEFAULT_DIMS, num_points=1, num_views=6)
        total = sum(g.macs for g in gemms)
        # per_point_macs excludes biases; GEMM list excludes them too.
        assert total == per_point_macs(DEFAULT_DIMS, 6)

    def test_ray_module_variants(self, workload):
        from dataclasses import replace
        for module in ("mixer", "none", "transformer"):
            load = replace(workload, ray_module=module)
            gemms = ray_module_gemms(load, num_rays=16)
            assert sum(g.macs for g in gemms) > 0

    def test_transformer_marks_dynamic_matmuls(self, workload):
        from dataclasses import replace
        load = replace(workload, ray_module="transformer")
        gemms = ray_module_gemms(load, num_rays=4)
        assert any(not g.shared_weights for g in gemms)


class TestPatchCompute:
    def test_breakdown_positive(self, engine, workload):
        compute = engine.patch_compute(workload, num_points=4096,
                                       num_rays=256)
        assert compute.ppu_cycles > 0
        assert compute.pool_cycles > 0
        assert compute.sfu_cycles > 0
        assert compute.cycles == max(compute.ppu_cycles,
                                     compute.pool_cycles,
                                     compute.sfu_cycles)

    def test_coarse_stage_cheaper(self, engine, workload):
        fine = engine.patch_compute(workload, 4096, 256)
        coarse = engine.patch_compute(workload, 4096, 0, coarse_stage=True)
        assert coarse.pool_cycles < fine.pool_cycles

    def test_cache_hit_returns_same_object(self, engine, workload):
        a = engine.patch_compute(workload, 1000, 100)
        b = engine.patch_compute(workload, 1000, 100)
        assert a is b

    def test_sram_balance_slows_ppu(self, engine, workload):
        fast = engine.patch_compute(workload, 8192, 256, sram_balance=1.0)
        slow = engine.patch_compute(workload, 8192, 256, sram_balance=0.1)
        assert slow.ppu_cycles > fast.ppu_cycles

    def test_macs_scale_with_points(self, engine, workload):
        small = engine.patch_compute(workload, 1024, 64)
        large = engine.patch_compute(workload, 4096, 64)
        assert large.pool_macs > 3 * small.pool_macs
