"""Vectorised scheduler slab sweep vs the seed per-(slab, view) loops.

The batched ``evaluate_candidate`` (one frustum unprojection for all
depth slabs, one projection per view, sliced overlap pass) must
reproduce the seed loop implementation bit-for-bit — the per-element
arithmetic is unchanged, only the batching differs.  Also pins the
vectorised ``rectangle_bank_load`` residue counting against a direct
per-row evaluation for every layout.
"""

import numpy as np
import pytest

from repro.core.pipeline import hardware_rig
from repro.hardware.interleave import (FeatureStore, FootprintRegion,
                                       LAYOUTS, _residue_counts,
                                       spatial_skew)
from repro.hardware.scheduler import (DEFAULT_CANDIDATES,
                                      GreedyPatchScheduler, SchedulerConfig)
from repro.perf import reference
from repro.scenes.datasets import DatasetSpec

SMALL_SPEC = DatasetSpec("small", width=128, height=96, fov_x_deg=50.0,
                         near=2.0, far=6.0, rig="orbit", rig_distance=4.0)


@pytest.fixture(scope="module")
def rig():
    return hardware_rig(SMALL_SPEC, num_views=4, seed=0)


@pytest.mark.parametrize("shape", DEFAULT_CANDIDATES,
                         ids=lambda s: f"{s.dh}x{s.dw}x{s.dd}")
def test_evaluate_candidate_matches_seed_loop(rig, shape):
    scheduler = GreedyPatchScheduler(SchedulerConfig())
    fast = scheduler.evaluate_candidate(rig.novel, rig.sources, 96, 128,
                                        shape, rig.near, rig.far)
    loop = reference.evaluate_candidate_loop(scheduler, rig.novel,
                                             rig.sources, 96, 128, shape,
                                             rig.near, rig.far)
    names = ("h0", "w0", "h1", "w1", "full_bytes", "delta_bytes",
             "delta_locs", "bboxes")
    for name, fast_arr, loop_arr in zip(names, fast, loop):
        assert np.array_equal(np.asarray(fast_arr), np.asarray(loop_arr)), \
            f"{name} diverged for candidate {shape}"


def _bank_load_loop(store, region, num_banks):
    """Direct per-row evaluation of the bank mapping (seed structure)."""
    loads = np.zeros(num_banks, dtype=np.int64)
    acts = np.zeros(num_banks, dtype=np.int64)
    rows, cols = region.num_rows, region.num_cols
    if rows <= 0 or cols <= 0:
        return loads, acts
    if store.layout == "row_major":
        rows_per_bank = max(1, (store.num_views * store.height) // num_banks)
        flat0 = region.view * store.height + region.row0
        for flat in range(flat0, flat0 + rows):
            bank = min(flat // rows_per_bank, num_banks - 1)
            loads[bank] += cols
            acts[bank] += 1
        return loads, acts
    if store.layout == "row_interleaved":
        flat0 = region.view * store.height + region.row0
        row_counts = _residue_counts(flat0, flat0 + rows, num_banks)
        return row_counts * cols, row_counts
    if store.layout == "view_interleaved":
        bank = region.view % num_banks
        loads[bank] = rows * cols
        acts[bank] = rows
        return loads, acts
    skew = spatial_skew(num_banks)
    for row in range(region.row0, region.row1):
        offset = skew * row
        row_counts = _residue_counts(offset + region.col0,
                                     offset + region.col1, num_banks)
        loads += row_counts
        acts += (row_counts > 0).astype(np.int64)
    return loads, acts


@pytest.mark.parametrize("layout", LAYOUTS)
def test_rectangle_bank_load_matches_per_row_loop(layout):
    rng = np.random.default_rng(42)
    store = FeatureStore(num_views=6, height=120, width=160, channels=32,
                         layout=layout)
    for banks in (4, 8, 16, 13):
        for _ in range(40):
            row0 = int(rng.integers(0, store.height))
            row1 = int(rng.integers(row0, store.height + 1))
            col0 = int(rng.integers(0, store.width))
            col1 = int(rng.integers(col0, store.width + 1))
            region = FootprintRegion(view=int(rng.integers(0, 6)),
                                     row0=row0, row1=row1,
                                     col0=col0, col1=col1)
            fast = store.rectangle_bank_load(region, banks)
            loop = _bank_load_loop(store, region, banks)
            assert np.array_equal(fast[0], loop[0])
            assert np.array_equal(fast[1], loop[1])


def test_plan_frame_matches_seed_loop(rig):
    """The vectorised plan (batched assembly) reproduces the seed
    per-tile/per-slab plan patch-for-patch."""
    scheduler = GreedyPatchScheduler(SchedulerConfig())
    fast = scheduler.plan_frame(rig.novel, rig.sources, rig.near, rig.far)
    loop = reference.plan_frame_loop(scheduler, rig.novel, rig.sources,
                                     rig.near, rig.far)
    assert fast.num_patches == loop.num_patches
    assert fast.total_prefetch_bytes == loop.total_prefetch_bytes
    assert fast.candidate_histogram == loop.candidate_histogram
    for fast_patch, loop_patch in zip(fast.patches, loop.patches):
        assert fast_patch == loop_patch


# ----------------------------------------------------------------------
# Struct-of-arrays FramePlan: flat assembly vs the object path
# ----------------------------------------------------------------------

def test_plan_arrays_match_object_packing(rig):
    """``plan_frame`` builds the flat arrays directly; packing the
    *materialised* objects back into arrays must give the same bits —
    the two representations describe one plan."""
    from repro.hardware.scheduler import FramePlan

    plan = GreedyPatchScheduler(SchedulerConfig()).plan_frame(
        rig.novel, rig.sources, rig.near, rig.far)
    direct = plan.arrays
    repacked = FramePlan(
        patches=list(plan.patches),
        total_prefetch_bytes=plan.total_prefetch_bytes,
        candidate_histogram=plan.candidate_histogram,
        image_height=plan.image_height, image_width=plan.image_width,
        depth_bins=plan.depth_bins).arrays
    for name in ("bounds", "prefetch_bytes", "fetch_regions",
                 "fetch_counts", "resident_regions", "resident_counts"):
        assert np.array_equal(getattr(direct, name),
                              getattr(repacked, name)), name


def test_seed_plan_arrays_match_fast_plan_arrays(rig):
    """An object-built seed plan derives the same array view the
    struct-of-arrays planner emits directly."""
    scheduler = GreedyPatchScheduler(SchedulerConfig())
    fast = scheduler.plan_frame(rig.novel, rig.sources, rig.near, rig.far)
    loop = reference.plan_frame_loop(scheduler, rig.novel, rig.sources,
                                     rig.near, rig.far)
    for name in ("bounds", "prefetch_bytes", "fetch_regions",
                 "fetch_counts", "resident_regions", "resident_counts"):
        assert np.array_equal(getattr(fast.arrays, name),
                              getattr(loop.arrays, name)), name


def test_materialised_patches_are_cached_and_plain_ints(rig):
    plan = GreedyPatchScheduler(SchedulerConfig()).plan_frame(
        rig.novel, rig.sources, rig.near, rig.far)
    patches = plan.patches
    assert plan.patches is patches            # materialised once
    sample = patches[0]
    for value in (sample.h0, sample.h1, sample.w0, sample.w1,
                  sample.d0, sample.d1):
        assert type(value) is int
    assert type(sample.prefetch_bytes) is float
    region = sample.footprints[0]
    for value in (region.view, region.row0, region.row1, region.col0,
                  region.col1):
        assert type(value) is int


def test_simulation_identical_from_arrays_and_objects(rig):
    """The batched frame simulation consumes ``plan.arrays``; feeding it
    an object-built plan of the same patches must give bit-identical
    frame results."""
    from repro.hardware import GenNerfAccelerator
    from repro.hardware.scheduler import FramePlan
    from repro.models.workload import typical_workload

    workload = typical_workload(height=96, width=128, num_views=4)
    accelerator = GenNerfAccelerator()
    plan = accelerator.plan_frame(rig.novel, rig.sources, rig.near,
                                  rig.far, workload)
    object_plan = FramePlan(
        patches=list(plan.patches),
        total_prefetch_bytes=plan.total_prefetch_bytes,
        candidate_histogram=plan.candidate_histogram,
        image_height=plan.image_height, image_width=plan.image_width,
        depth_bins=plan.depth_bins)
    sim_arrays = accelerator.simulate_frame(
        workload, rig.novel, rig.sources, rig.near, rig.far, plan=plan)
    sim_objects = GenNerfAccelerator().simulate_frame(
        workload, rig.novel, rig.sources, rig.near, rig.far,
        plan=object_plan)
    assert sim_arrays.total_time_s == sim_objects.total_time_s
    assert sim_arrays.energy_j == sim_objects.energy_j
    assert sim_arrays.pool_macs == sim_objects.pool_macs
    assert sim_arrays.prefetch_bytes == sim_objects.prefetch_bytes
