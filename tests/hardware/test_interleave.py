"""Feature-storage interleaving tests (paper Fig. 6 / Sec. 4.4)."""

import numpy as np
import pytest

from repro.hardware.interleave import (FeatureStore, FootprintRegion,
                                       LAYOUTS, _residue_counts,
                                       balance_factor,
                                       bank_load_for_footprints,
                                       spatial_skew)


def brute_force_load(store, region, num_banks):
    """Reference implementation: enumerate every feature location."""
    loads = np.zeros(num_banks, dtype=np.int64)
    rows_touched = [set() for _ in range(num_banks)]
    skew = spatial_skew(num_banks)
    for row in range(region.row0, region.row1):
        for col in range(region.col0, region.col1):
            if store.layout == "row_major":
                rows_per_bank = max(1, (store.num_views * store.height)
                                    // num_banks)
                bank = min((region.view * store.height + row)
                           // rows_per_bank, num_banks - 1)
            elif store.layout == "row_interleaved":
                bank = (region.view * store.height + row) % num_banks
            elif store.layout == "view_interleaved":
                bank = region.view % num_banks
            else:
                bank = (skew * row + col) % num_banks
            loads[bank] += 1
            rows_touched[bank].add(row)
    acts = np.array([len(s) for s in rows_touched], dtype=np.int64)
    return loads, acts


class TestResidueCounts:
    def test_exact_enumeration(self):
        for start, stop, mod in [(0, 10, 3), (5, 23, 4), (7, 7, 2),
                                 (1, 100, 7)]:
            counts = _residue_counts(start, stop, mod)
            expected = np.bincount([i % mod for i in range(start, stop)],
                                   minlength=mod)
            assert (counts == expected).all()


@pytest.mark.parametrize("layout", LAYOUTS)
class TestRectangleLoads:
    def test_matches_brute_force(self, layout):
        store = FeatureStore(num_views=4, height=37, width=53, channels=8,
                             layout=layout)
        region = FootprintRegion(view=2, row0=5, row1=21, col0=7, col1=30)
        loads, acts = store.rectangle_bank_load(region, num_banks=8)
        expected_loads, expected_acts = brute_force_load(store, region, 8)
        assert (loads == expected_loads).all()
        assert acts.sum() >= expected_acts.sum()   # activation estimate
        assert (loads.sum() == region.num_locations)

    def test_empty_region(self, layout):
        store = FeatureStore(num_views=2, height=16, width=16, channels=4,
                             layout=layout)
        region = FootprintRegion(view=0, row0=5, row1=5, col0=0, col1=8)
        loads, acts = store.rectangle_bank_load(region, 8)
        assert loads.sum() == 0 and acts.sum() == 0


class TestLayoutQuality:
    def test_spatial_beats_others_on_local_region(self):
        """The paper's claim: a local footprint — here a short, wide
        epipolar stripe — is balanced under spatial interleaving and
        concentrated otherwise."""
        region = FootprintRegion(view=1, row0=10, row1=13, col0=12, col1=72)
        balances = {}
        for layout in LAYOUTS:
            store = FeatureStore(num_views=6, height=200, width=200,
                                 channels=32, layout=layout)
            loads, _ = bank_load_for_footprints(store, [region], 8)
            balances[layout] = balance_factor(loads)
        assert balances["spatial_interleaved"] \
            == max(balances.values())
        assert balances["spatial_interleaved"] > 0.85
        assert balances["view_interleaved"] < 0.2
        assert balances["row_interleaved"] < 0.5
        assert balances["row_major"] < 0.5

    def test_balance_factor_bounds(self, rng):
        loads = rng.random(8)
        value = balance_factor(loads)
        assert 0 < value <= 1.0
        assert balance_factor(np.ones(8)) == 1.0
        assert balance_factor(np.zeros(8)) == 1.0

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            FeatureStore(num_views=1, height=4, width=4, channels=1,
                         layout="diagonal")

    def test_store_geometry(self):
        store = FeatureStore(num_views=2, height=10, width=20, channels=8,
                             bytes_per_element=2)
        assert store.location_bytes == 16
        assert store.total_bytes == 2 * 10 * 20 * 16

    def test_multi_view_footprints_aggregate(self):
        store = FeatureStore(num_views=4, height=64, width=64, channels=8,
                             layout="view_interleaved")
        regions = [FootprintRegion(view=v, row0=0, row1=8, col0=0, col1=8)
                   for v in range(4)]
        loads, _ = bank_load_for_footprints(store, regions, 8)
        assert (loads[:4] > 0).all()
        assert loads.sum() == 4 * 64 * store.location_bytes
