"""Structured event logging: the REPRO_LOG knob, event records, and
caplog visibility regardless of the stderr handler's level."""

import logging

import pytest

from repro.core import log


@pytest.fixture(autouse=True)
def restore_handler():
    """Each test reconfigures the shared handler; put the env-derived
    default back afterwards so other suites see standard behaviour."""
    yield
    log.configure()


class TestParseLevel:
    def test_default_when_unset_or_blank(self):
        assert log.parse_level(None) == log.DEFAULT_LEVEL
        assert log.parse_level("") == log.DEFAULT_LEVEL
        assert log.parse_level("   ") == log.DEFAULT_LEVEL

    def test_level_names_case_insensitive(self):
        assert log.parse_level("debug") == logging.DEBUG
        assert log.parse_level("INFO") == logging.INFO
        assert log.parse_level("Warning") == logging.WARNING
        assert log.parse_level("warn") == logging.WARNING
        assert log.parse_level("error") == logging.ERROR

    def test_off_values_silence(self):
        for value in ("off", "none", "silent", "0", "disabled", "OFF"):
            assert log.parse_level(value) is None

    def test_malformed_warns_and_falls_back(self, capsys):
        assert log.parse_level("loud") == log.DEFAULT_LEVEL
        err = capsys.readouterr().err
        assert "REPRO_LOG" in err and "loud" in err


class TestConfigure:
    def test_env_knob_sets_handler_level(self, monkeypatch):
        monkeypatch.setenv(log.ENV_KNOB, "info")
        handler = log.configure()
        assert handler is not None
        assert handler.level == logging.INFO

    def test_off_knob_returns_no_stderr_handler(self, monkeypatch):
        monkeypatch.setenv(log.ENV_KNOB, "off")
        assert log.configure() is None

    def test_reconfigure_never_stacks_handlers(self):
        log.configure("warning")
        log.configure("info")
        log.configure("debug")
        root = logging.getLogger(log.ROOT_NAME)
        ours = [h for h in root.handlers
                if isinstance(h, (logging.StreamHandler,
                                  logging.NullHandler))]
        assert len(ours) == 1

    def test_logger_level_stays_notset_for_caplog(self):
        log.configure("error")
        assert logging.getLogger(log.ROOT_NAME).level == logging.NOTSET


class TestEvent:
    def test_event_message_and_record_fields(self, caplog):
        logger = log.get_logger("unit")
        with caplog.at_level(logging.WARNING, logger="repro"):
            log.event(logger, "unit.fell_over", task=3, reason="test")
        record, = log.events_named(caplog.records, "unit.fell_over")
        assert record.name == "repro.unit"
        assert record.levelno == logging.WARNING
        assert record.repro_fields == {"task": 3, "reason": "test"}
        assert "unit.fell_over task=3 reason='test'" in record.message

    def test_caplog_sees_events_even_when_knob_is_off(self, caplog):
        # The satellite contract: structured events must stay
        # assertable under any REPRO_LOG setting.
        log.configure("off")
        logger = log.get_logger("unit")
        with caplog.at_level(logging.WARNING, logger="repro"):
            log.event(logger, "unit.quiet_event", n=1)
        assert log.events_named(caplog.records, "unit.quiet_event")

    def test_event_level_override(self, caplog):
        logger = log.get_logger("unit")
        with caplog.at_level(logging.INFO, logger="repro"):
            log.event(logger, "unit.progress", level=logging.INFO, step=2)
        record, = log.events_named(caplog.records, "unit.progress")
        assert record.levelno == logging.INFO

    def test_events_named_filters(self, caplog):
        logger = log.get_logger("unit")
        with caplog.at_level(logging.WARNING, logger="repro"):
            log.event(logger, "unit.a", i=1)
            log.event(logger, "unit.b", i=2)
            log.event(logger, "unit.a", i=3)
            logger.warning("a plain non-event record")
        named = log.events_named(caplog.records, "unit.a")
        assert [r.repro_fields["i"] for r in named] == [1, 3]
