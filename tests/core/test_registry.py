"""Experiment-registry round-trip suite.

Every registered experiment must list, declare a committed artefact,
and — at downscaled parameters — produce rows matching the legacy
``run_*`` entry points (which now delegate through the registry, so
this pins the wrapper's parameter mapping).  The cheap experiments
additionally pin the registry's rendered text byte-identical to the
committed artefacts.
"""

import os

import pytest

from repro import core
from repro.core.context import RunContext
from repro.core.registry import (all_experiments, experiment_names,
                                 get_experiment)

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         "..", ".."))
RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")

EXPECTED = ["table1", "fig2", "fig9", "table2", "table3", "fig10",
            "fig11", "table4", "fig12", "ablation_coarse_budget",
            "ablation_patch_candidates", "serve_replay",
            "occupancy_profile"]


def _read_cache_knob():
    import os

    from repro.core.scene_cache import ENV_KNOB

    return os.environ.get(ENV_KNOB)


class TestRegistryShape:
    def test_all_paper_experiments_registered(self):
        assert experiment_names() == EXPECTED

    def test_every_experiment_declares_a_committed_artefact(self):
        for experiment in all_experiments():
            path = os.path.join(RESULTS_DIR, f"{experiment.artefact}.txt")
            assert os.path.isfile(path), \
                f"{experiment.name}: missing artefact {path}"

    def test_lookup_and_error_path(self):
        assert get_experiment("table1").name == "table1"
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("nope")

    def test_unknown_override_rejected(self):
        with pytest.raises(KeyError, match="unknown parameter"):
            get_experiment("table1").run(not_a_param=1)

    def test_context_seed_overrides_seed_param(self):
        experiment = get_experiment("fig10")
        params = experiment.bind(RunContext(seed=7), {})
        assert params["seed"] == 7
        # Explicit overrides beat the context.
        params = experiment.bind(RunContext(seed=7), {"seed": 3})
        assert params["seed"] == 3

    def test_rng_streams_deterministic_and_independent(self):
        ctx = RunContext(seed=3)
        assert ctx.rng("sweep").uniform() == ctx.rng("sweep").uniform()
        assert ctx.rng("sweep").uniform() != ctx.rng("other").uniform()
        assert ctx.rng("sweep").uniform() \
            != RunContext(seed=4).rng("sweep").uniform()
        # An explicit seed argument overrides the context anchor.
        assert ctx.rng("sweep", seed=9).uniform() \
            == RunContext(seed=9).rng("sweep").uniform()

    def test_run_honours_context_cache_dir(self, tmp_path, monkeypatch):
        # ctx.cache_dir must reach the units (and pool workers) via the
        # exported env knob for the duration of the run — programmatic
        # callers get the disk cache without touching os.environ — and
        # the previous env value must be restored afterwards.
        import os

        from repro.core.registry import Experiment
        from repro.core.scene_cache import ENV_KNOB

        probe = Experiment(
            name="knob-probe", title="probe", kind="table",
            artefact="unused", description="reads the exported knob",
            params={},
            units=lambda ctx, params, shared: [(_read_cache_knob, {})],
            reduce=lambda results, params: results[0],
            render=lambda rows, params: str(rows))
        monkeypatch.delenv(ENV_KNOB, raising=False)
        result = probe.run(RunContext(cache_dir=str(tmp_path)))
        assert result.rows == str(tmp_path)
        assert ENV_KNOB not in os.environ
        monkeypatch.setenv(ENV_KNOB, "previous")
        probe.run(RunContext(cache_dir=str(tmp_path)))
        assert os.environ[ENV_KNOB] == "previous"

    def test_scale_rules_clamp_at_floor(self):
        experiment = get_experiment("table2")
        params = experiment.bind(RunContext(scale=0.1), {})
        assert params["train_steps"] == 30       # 300 * 0.1
        params = experiment.bind(RunContext(scale=0.001), {})
        assert params["train_steps"] == 6        # the floor
        # scale=1 keeps the committed-artefact configuration.
        assert experiment.bind(RunContext(), {}) == dict(experiment.params)


class TestArtefactByteIdentity:
    """The registry's render path reproduces the committed artefacts
    byte for byte (the cheap ones here; training/figure-scale ones are
    covered by the ``benchmarks/`` harnesses regenerating with zero
    drift)."""

    @pytest.mark.parametrize("name", ["table1", "fig2"])
    def test_fast_artefacts_identical(self, name):
        experiment = get_experiment(name)
        committed = open(os.path.join(
            RESULTS_DIR, f"{experiment.artefact}.txt")).read()
        assert experiment.run().text + "\n" == committed

    @pytest.mark.slow
    @pytest.mark.parametrize("name", ["ablation_patch_candidates",
                                      "table4", "fig10", "fig11",
                                      "fig12", "fig9",
                                      "ablation_coarse_budget"])
    def test_hardware_artefacts_identical(self, name):
        experiment = get_experiment(name)
        committed = open(os.path.join(
            RESULTS_DIR, f"{experiment.artefact}.txt")).read()
        assert experiment.run().text + "\n" == committed


class TestRegistryMatchesLegacy:
    """Downscaled registry runs return exactly what the legacy entry
    points return (same structures, same values)."""

    def test_table1(self):
        assert get_experiment("table1").run().rows == core.run_table1()

    def test_fig2(self):
        assert get_experiment("fig2").run().rows == core.run_fig2()

    def test_table4(self):
        assert get_experiment("table4").run().rows == core.run_table4()

    def test_fig9_tiny(self):
        overrides = dict(datasets=("nerf_synthetic",), step=16,
                         image_scale=1 / 16, pairs=((4, 8),),
                         uniform_points=(12,), reference_points=64)
        via_registry = get_experiment("fig9").run(**overrides).rows
        legacy = core.run_fig9(**overrides)
        assert via_registry == legacy

    def test_fig11_tiny(self):
        overrides = dict(view_counts=(6, 2), point_counts=(96,))
        via_registry = get_experiment("fig11").run(**overrides).rows
        assert via_registry == core.run_fig11(**overrides)
        assert [row["num_views"]
                for row in via_registry["views"]] == [6, 2]

    def test_fig12_tiny(self):
        overrides = dict(view_counts=(2,))
        via_registry = get_experiment("fig12").run(**overrides).rows
        assert via_registry == core.run_fig12(**overrides)
        assert set(via_registry[2]) == {"ours", "var1", "var2", "var3"}

    def test_coarse_budget_tiny(self):
        overrides = dict(image_scale=1 / 16, step=8, coarse_counts=(8,),
                         taus=(1e-3,), focused=16)
        via_registry = get_experiment(
            "ablation_coarse_budget").run(**overrides).rows
        assert via_registry == core.run_coarse_budget_ablation(**overrides)

    def test_patch_candidates(self):
        via_registry = get_experiment(
            "ablation_patch_candidates").run().rows
        assert via_registry == core.run_patch_candidate_ablation()

    @pytest.mark.slow
    def test_table2_tiny(self):
        overrides = dict(train_steps=6, eval_step=16, image_scale=1 / 16,
                         num_points=10, scenes=("fortress",),
                         num_source_views=4)
        via_registry = get_experiment("table2").run(**overrides).rows
        legacy = core.run_table2(**overrides)
        assert [(row.method, row.mflops_per_pixel,
                 sorted(row.per_scene.items())) for row in via_registry] \
            == [(row.method, row.mflops_per_pixel,
                 sorted(row.per_scene.items())) for row in legacy]
        assert len(via_registry) == 7

    @pytest.mark.slow
    def test_table3_tiny(self):
        overrides = dict(train_steps=5, finetune_steps=3, eval_step=16,
                         image_scale=1 / 16, num_points=10,
                         view_counts=(4,))
        via_registry = get_experiment("table3").run(**overrides).rows
        legacy = core.run_table3(**overrides)
        assert [(row.method, row.mflops_per_pixel,
                 sorted(row.per_scene.items())) for row in via_registry] \
            == [(row.method, row.mflops_per_pixel,
                 sorted(row.per_scene.items())) for row in legacy]
        assert len(via_registry) == 2


class TestRenderAndRegenerate:
    def test_render_contains_title_and_rows(self):
        result = get_experiment("table1").run()
        assert "Table 1 — Gen-NeRF hardware module area/power" \
            in result.text
        assert "Workload Scheduler" in result.text

    def test_regenerate_writes_artefact_elsewhere(self, tmp_path):
        ctx = RunContext(results_dir=str(tmp_path))
        result, path = get_experiment("table1").regenerate(ctx)
        assert path == str(tmp_path / "table1_area_power.txt")
        assert open(path).read() == result.text + "\n"


class TestSweep:
    def test_parse_grid_defaults_and_overrides(self):
        from repro.core.registry import parse_sweep_grid

        grid = parse_sweep_grid(["views=2,6", "variant=ours,var1"])
        assert grid["views"] == (2, 6)
        assert grid["variant"] == ("ours", "var1")
        assert grid["dataset"] == ("nerf_synthetic",)
        assert grid["points"] == (64,)

    @pytest.mark.parametrize("token", ["bogus=1", "views=", "views=,",
                                       "views=x", "views=-2",
                                       "dataset=unknown", "variant=var9"])
    def test_parse_grid_rejects_bad_tokens(self, token):
        from repro.core.registry import parse_sweep_grid

        with pytest.raises(ValueError):
            parse_sweep_grid([token])

    def test_two_point_sweep_rows_and_text(self):
        rows, text = core.run_sweep(
            {"dataset": ("deepvoxels",), "views": (2,), "points": (8,),
             "variant": ("ours", "var1")},
            RunContext(workers=1))
        assert [row["variant"] for row in rows] == ["ours", "var1"]
        assert all(row["gen_nerf_fps"] > 0 for row in rows)
        assert "Registry sweep — 2 grid point(s)" in text
        assert "deepvoxels" in text
