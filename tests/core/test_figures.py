"""ASCII figure rendering tests."""

import numpy as np
import pytest

from repro.core.figures import (ascii_bar_chart, ascii_line_chart,
                                stacked_latency_chart)


class TestLineChart:
    def test_contains_markers_and_legend(self):
        text = ascii_line_chart({
            "gen_nerf": ([10, 20, 40], [30.0, 34.0, 38.0]),
            "ibrnet": ([10, 20, 40], [28.0, 30.0, 33.0]),
        }, title="Fig 9")
        assert "Fig 9" in text
        assert "o = gen_nerf" in text
        assert "x = ibrnet" in text
        assert "o" in text.splitlines()[1]

    def test_axis_annotations(self):
        text = ascii_line_chart({"a": ([0, 100], [1.0, 5.0])},
                                x_label="points", y_label="psnr")
        assert "points" in text and "psnr" in text
        assert "0" in text and "100" in text

    def test_flat_series_handled(self):
        text = ascii_line_chart({"flat": ([1, 2, 3], [2.0, 2.0, 2.0])})
        assert "flat" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_line_chart({})

    def test_higher_values_plot_higher(self):
        text = ascii_line_chart({"up": ([0, 1], [0.0, 10.0])},
                                width=20, height=10)
        lines = [l for l in text.splitlines() if "|" in l]
        top_cols = lines[0].index("o") if "o" in lines[0] else None
        assert top_cols is not None   # max value lands on the top row


class TestBarChart:
    def test_bars_scale(self):
        text = ascii_bar_chart({"group": {"big": 10.0, "small": 1.0}},
                               width=20)
        lines = text.splitlines()
        big = next(l for l in lines if "big" in l)
        small = next(l for l in lines if "small" in l)
        assert big.count("#") > 5 * small.count("#")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({})

    def test_zero_values_safe(self):
        text = ascii_bar_chart({"g": {"zero": 0.0}})
        assert "zero" in text


class TestStackedChart:
    def test_phases_in_legend(self):
        text = stacked_latency_chart({
            "ours": {"data": 0.01, "compute": 0.04},
            "var1": {"data": 0.08, "compute": 0.04},
        }, title="Fig 12")
        assert "Fig 12" in text
        assert "# = data" in text
        assert "= = compute" in text

    def test_totals_shown(self):
        text = stacked_latency_chart({"x": {"a": 1.0, "b": 2.0}})
        assert "3" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stacked_latency_chart({})
