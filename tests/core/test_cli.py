"""CLI smoke tests: ``python -m repro`` list / run / sweep."""

import pytest

from repro.cli import main
from repro.core.registry import experiment_names


class TestList:
    def test_lists_every_registered_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in experiment_names():
            assert name in out
        assert "benchmarks/results" in out


class TestRun:
    def test_run_prints_artefact_text(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1 — Gen-NeRF hardware module area/power" in out
        assert "Workload Scheduler" in out

    def test_unknown_name_fails_with_listing(self, capsys):
        assert main(["run", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "table1" in err

    def test_write_lands_in_results_dir(self, tmp_path, capsys):
        assert main(["run", "table1", "--write",
                     "--results-dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        path = tmp_path / "table1_area_power.txt"
        assert path.is_file()
        assert path.read_text().rstrip("\n") in captured.out
        assert str(path) in captured.err

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "list" in capsys.readouterr().out

    def test_malformed_workers_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "table1", "--workers", "44x"])
        assert "invalid int value" in capsys.readouterr().err

    def test_cache_dir_flag_does_not_leak_into_environ(self, tmp_path,
                                                       monkeypatch):
        import os

        from repro.core.scene_cache import ENV_KNOB

        monkeypatch.delenv(ENV_KNOB, raising=False)
        assert main(["run", "table1",
                     "--cache-dir", str(tmp_path)]) == 0
        assert ENV_KNOB not in os.environ
        monkeypatch.setenv(ENV_KNOB, "previous")
        assert main(["run", "table1",
                     "--cache-dir", str(tmp_path)]) == 0
        assert os.environ[ENV_KNOB] == "previous"


class TestSweep:
    def test_two_point_sweep(self, capsys):
        assert main(["sweep", "dataset=deepvoxels", "views=2", "points=8",
                     "variant=ours,var1", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "Registry sweep — 2 grid point(s)" in out
        assert "Var-1" not in out            # variant key, not config name
        assert "var1" in out and "ours" in out

    def test_bad_grid_token_fails(self, capsys):
        assert main(["sweep", "bogus=1"]) == 2
        assert "bad grid token" in capsys.readouterr().err
        assert main(["sweep", "views=,"]) == 2       # empty axis
        assert "bad grid token" in capsys.readouterr().err

    def test_sweep_rejects_scale_flag(self, capsys):
        # sweep has no scale rules; --scale must be a usage error, not
        # a silently ignored flag.
        with pytest.raises(SystemExit):
            main(["sweep", "views=2", "--scale", "0.1"])
        assert "unrecognized arguments" in capsys.readouterr().err

    def test_sweep_out_writes_artifact(self, tmp_path, capsys):
        assert main(["sweep", "dataset=deepvoxels", "views=1", "points=8",
                     "--workers", "1", "--out", "sweep_smoke",
                     "--results-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        path = tmp_path / "sweep_smoke.txt"
        assert path.is_file()
        text = path.read_text()
        assert "Registry sweep — 1 grid point(s)" in text
        assert text.rstrip("\n") in out
