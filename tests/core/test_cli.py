"""CLI smoke tests: ``python -m repro`` list / run / sweep / batch."""

import json

import pytest

from repro.cli import main
from repro.core.registry import experiment_names


class TestList:
    def test_lists_every_registered_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in experiment_names():
            assert name in out
        assert "benchmarks/results" in out


class TestRun:
    def test_run_prints_artefact_text(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1 — Gen-NeRF hardware module area/power" in out
        assert "Workload Scheduler" in out

    def test_unknown_name_fails_with_listing(self, capsys):
        assert main(["run", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "table1" in err

    def test_write_lands_in_results_dir(self, tmp_path, capsys):
        assert main(["run", "table1", "--write",
                     "--results-dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        path = tmp_path / "table1_area_power.txt"
        assert path.is_file()
        assert path.read_text().rstrip("\n") in captured.out
        assert str(path) in captured.err

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "list" in capsys.readouterr().out

    def test_malformed_workers_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "table1", "--workers", "44x"])
        assert "invalid int value" in capsys.readouterr().err

    def test_cache_dir_flag_does_not_leak_into_environ(self, tmp_path,
                                                       monkeypatch):
        import os

        from repro.core.scene_cache import ENV_KNOB

        monkeypatch.delenv(ENV_KNOB, raising=False)
        assert main(["run", "table1",
                     "--cache-dir", str(tmp_path)]) == 0
        assert ENV_KNOB not in os.environ
        monkeypatch.setenv(ENV_KNOB, "previous")
        assert main(["run", "table1",
                     "--cache-dir", str(tmp_path)]) == 0
        assert os.environ[ENV_KNOB] == "previous"


class TestSweep:
    def test_two_point_sweep(self, capsys):
        assert main(["sweep", "dataset=deepvoxels", "views=2", "points=8",
                     "variant=ours,var1", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "Registry sweep — 2 grid point(s)" in out
        assert "Var-1" not in out            # variant key, not config name
        assert "var1" in out and "ours" in out

    def test_bad_grid_token_fails(self, capsys):
        assert main(["sweep", "bogus=1"]) == 2
        assert "bad grid token" in capsys.readouterr().err
        assert main(["sweep", "views=,"]) == 2       # empty axis
        assert "bad grid token" in capsys.readouterr().err

    def test_sweep_rejects_scale_flag(self, capsys):
        # sweep has no scale rules; --scale must be a usage error, not
        # a silently ignored flag.
        with pytest.raises(SystemExit):
            main(["sweep", "views=2", "--scale", "0.1"])
        assert "unrecognized arguments" in capsys.readouterr().err

    def test_sweep_out_writes_artifact(self, tmp_path, capsys):
        assert main(["sweep", "dataset=deepvoxels", "views=1", "points=8",
                     "--workers", "1", "--out", "sweep_smoke",
                     "--results-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        path = tmp_path / "sweep_smoke.txt"
        assert path.is_file()
        text = path.read_text()
        assert "Registry sweep — 1 grid point(s)" in text
        assert text.rstrip("\n") in out


class TestBatch:
    def _jobs_dir(self, tmp_path):
        jobs = tmp_path / "jobs"
        jobs.mkdir()
        (jobs / "good.json").write_text(
            json.dumps({"experiment": "table1"}))
        (jobs / "broken.json").write_text('{"experiment": ')
        return jobs

    def test_batch_quarantines_and_exits_zero(self, tmp_path, capsys):
        jobs = self._jobs_dir(tmp_path)
        assert main(["batch", str(jobs)]) == 0
        captured = capsys.readouterr()
        assert "completed 1  skipped 0  quarantined 1" in captured.out
        assert (jobs / "out" / "good.txt").is_file()
        assert (jobs / "out" / "errors" / "broken.report.txt").is_file()
        assert "batch_summary.txt" in captured.err     # [wrote ...] note

    def test_strict_flag_fails_on_quarantine(self, tmp_path, capsys):
        jobs = self._jobs_dir(tmp_path)
        assert main(["batch", str(jobs), "--strict"]) == 1
        capsys.readouterr()
        # A clean re-run (everything skipped, nothing quarantined)
        # passes --strict: the broken spec was quarantined, so remove
        # it as its report instructs.
        (jobs / "broken.json").unlink()
        assert main(["batch", str(jobs), "--strict"]) == 0
        assert "skipped 1" in capsys.readouterr().out

    def test_missing_jobs_dir_is_a_usage_error(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path / "absent")]) == 2
        assert "jobs directory not found" in capsys.readouterr().err

    def test_out_flag_redirects_artefacts(self, tmp_path, capsys):
        jobs = self._jobs_dir(tmp_path)
        out = tmp_path / "elsewhere"
        assert main(["batch", str(jobs), "--out", str(out)]) == 0
        capsys.readouterr()
        assert (out / "good.txt").is_file()
        assert not (jobs / "out").exists()

    def test_task_timeout_and_retries_flags_parse(self, tmp_path,
                                                  capsys):
        jobs = self._jobs_dir(tmp_path)
        assert main(["batch", str(jobs), "--task-timeout", "30",
                     "--retries", "2"]) == 0
        capsys.readouterr()
