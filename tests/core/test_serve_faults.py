"""Request-scoped fault injection for the serving layer.

A :class:`repro.core.faults.FaultPlan` maps request ids to a fault
kind (``error`` / ``corrupt`` / ``hang``).  The contract under test:
the poisoned request is quarantined into an error response (with a
``serve.request_failed`` event) while its batch-mates complete with
pixels bitwise identical to an undisturbed run — request faults never
leak across the batch boundary.
"""

import logging

import numpy as np
import pytest

from repro.core import log, serve
from repro.core.faults import FaultPlan, injected_faults
from repro.core.serve import (QUALITIES, RenderRequest, RenderScheduler,
                              SceneStore, ServeConfig)

SCENE_KW = dict(step=8, image_scale=1 / 16, views=4, scene_seed=1)


@pytest.fixture(scope="module")
def store():
    return SceneStore(capacity=4, source_points=24, cache=None)


@pytest.fixture(scope="module")
def models():
    return {quality: serve.build_model(quality) for quality in QUALITIES}


@pytest.fixture(scope="module")
def clean_images(store, models):
    """Reference responses from a fault-free run of the same trio."""
    scheduler = _scheduler(store, models)
    for request in _trio():
        scheduler.submit(request, 0)
    responses, _ = scheduler.drain(0)
    assert all(r.status == "ok" for r in responses)
    return {r.request_id: r.image for r in responses}


def _trio():
    """Three same-group requests that coalesce into shared batches."""
    return [RenderRequest(request_id=name, scene="fern",
                          quality="standard", **SCENE_KW)
            for name in ("good-a", "victim", "good-b")]


def _scheduler(store, models, **overrides):
    kwargs = dict(batch_window=1, max_batch=512, queue_limit=16,
                  scene_capacity=4, workers=1, source_points=24)
    kwargs.update(overrides)
    return RenderScheduler(ServeConfig(**kwargs), store=store,
                           models=models)


def _run_with_plan(store, models, plan, **config):
    scheduler = _scheduler(store, models, **config)
    with injected_faults(plan):
        for request in _trio():
            scheduler.submit(request, 0)
        responses, _ = scheduler.drain(0)
    return scheduler, {r.request_id: r for r in responses}


class TestErrorFault:
    def test_poisoned_request_quarantined_mates_identical(
            self, store, models, clean_images, caplog):
        plan = FaultPlan(requests={"victim": "error"})
        with caplog.at_level(logging.WARNING, logger="repro.serve"):
            scheduler, responses = _run_with_plan(store, models, plan)
        assert responses["victim"].status == "error"
        assert "injected request fault" in responses["victim"].error
        assert responses["victim"].image is None
        for name in ("good-a", "good-b"):
            assert responses[name].status == "ok"
            assert np.array_equal(responses[name].image,
                                  clean_images[name])
        events = log.events_named(caplog.records, "serve.request_failed")
        assert [e.repro_fields["request_id"] for e in events] \
            == ["victim"]
        assert scheduler.counters["failed"] == 1
        assert scheduler.counters["completed"] == 2


class TestCorruptFault:
    def test_corrupt_result_detected_mates_identical(
            self, store, models, clean_images, caplog):
        plan = FaultPlan(requests={"victim": "corrupt"})
        with caplog.at_level(logging.WARNING, logger="repro.serve"):
            scheduler, responses = _run_with_plan(store, models, plan)
        assert responses["victim"].status == "error"
        assert "corrupt result detected" in responses["victim"].error
        for name in ("good-a", "good-b"):
            assert np.array_equal(responses[name].image,
                                  clean_images[name])
        events = log.events_named(caplog.records, "serve.request_failed")
        assert [e.repro_fields["request_id"] for e in events] \
            == ["victim"]

    def test_non_finite_pixels_always_quarantined(self, store, models):
        """The corruption check is a real output validation, not just a
        flag: NaN pixels fail the request even without a plan."""
        scheduler = _scheduler(store, models)
        request = RenderRequest(request_id="nan", scene="fern",
                                quality="draft", **SCENE_KW)
        scheduler.submit(request, 0)
        state = scheduler._pending["nan"]
        original = serve._CHUNK_FUNCTIONS["uniform"]

        def poisoned(payload, origins, directions):
            out = original(payload, origins, directions)
            out = np.array(out, copy=True)
            out[0, 0] = np.nan
            return out

        serve._CHUNK_FUNCTIONS = dict(serve._CHUNK_FUNCTIONS,
                                      uniform=poisoned)
        try:
            responses, _ = scheduler.drain(0)
        finally:
            serve._CHUNK_FUNCTIONS = dict(serve._CHUNK_FUNCTIONS,
                                          uniform=original)
        assert responses[0].status == "error"
        assert "corrupt result detected" in responses[0].error
        assert state.failed is not None


class TestHangFault:
    def test_hang_fails_at_deadline_mates_identical(
            self, store, models, clean_images, caplog):
        plan = FaultPlan(requests={"victim": "hang"})
        with caplog.at_level(logging.INFO, logger="repro.serve"):
            scheduler, responses = _run_with_plan(
                store, models, plan, request_deadline=5)
        assert responses["victim"].status == "error"
        assert "deadline exceeded after 5 ticks" \
            in responses["victim"].error
        assert responses["victim"].latency_ticks >= 5
        for name in ("good-a", "good-b"):
            assert responses[name].status == "ok"
            assert np.array_equal(responses[name].image,
                                  clean_images[name])
        hung = log.events_named(caplog.records, "serve.request_hung")
        assert [e.repro_fields["request_id"] for e in hung] == ["victim"]

    def test_hang_without_deadline_raises_on_drain(self, store, models):
        plan = FaultPlan(requests={"victim": "hang"})
        scheduler = _scheduler(store, models)
        with injected_faults(plan):
            for request in _trio():
                scheduler.submit(request, 0)
            with pytest.raises(RuntimeError, match="did not drain"):
                scheduler.drain(0, max_ticks=50)
        assert scheduler.depth == 1          # only the hung one is stuck


class TestPlanPlumbing:
    def test_no_plan_means_no_faults(self, store, models, clean_images):
        scheduler = _scheduler(store, models)
        for request in _trio():
            scheduler.submit(request, 0)
        responses, _ = scheduler.drain(0)
        assert all(r.status == "ok" for r in responses)
        for response in responses:
            assert np.array_equal(response.image,
                                  clean_images[response.request_id])

    def test_request_fault_accessor(self):
        plan = FaultPlan(requests={"a": "error", "b": "hang"})
        assert plan.request_fault("a") == "error"
        assert plan.request_fault("b") == "hang"
        assert plan.request_fault("c") is None
        assert FaultPlan().request_fault("a") is None

    def test_replay_applies_plan(self, store, models):
        """The trace-replay harness honours an installed plan too."""
        trace = [(0, request) for request in _trio()]
        config = ServeConfig(batch_window=1, max_batch=512,
                             queue_limit=16, workers=1,
                             source_points=24)
        with injected_faults(FaultPlan(requests={"victim": "error"})):
            result = serve.replay(trace, config, store=store,
                                  models=models)
        by_id = {r.request_id: r for r in result.responses}
        assert by_id["victim"].status == "error"
        assert by_id["good-a"].status == "ok"
        assert by_id["good-b"].status == "ok"
        assert len(result.ok_responses()) == 2
