"""Intra-frame worker pool: dispatch, persistence, guards, fallback.

The byte-identity of *real* sharded work (image renders, frame
simulations) is pinned in ``tests/models/test_render_sharded.py`` and
``tests/hardware/test_frame_sim_sharded.py``; this suite covers the
pool machinery itself with cheap picklable functions.
"""

import concurrent.futures

import pytest

from repro.core import frame_pool, runner
from repro.core.runner import POOL_WORKER_ENV, in_pool_worker


# Module-level so process pools can pickle them.
def _scaled(payload, value):
    scale, = payload
    return scale * value


def _pair(payload, start, stop):
    return (payload[0], start, stop)


def _chunk_boom(payload, value):
    raise RuntimeError("chunk failure")


def _chunk_oserror(payload, value):
    raise FileNotFoundError("missing chunk input")


def _worker_flag(payload):
    return in_pool_worker()


def _flag_unit():
    return in_pool_worker()


@pytest.fixture(autouse=True)
def clean_pool():
    """Every test starts and ends without a live persistent pool."""
    frame_pool.shutdown_pool()
    yield
    frame_pool.shutdown_pool()


class TestMapChunks:
    def test_sequential_and_parallel_agree(self):
        payload = (3,)
        tasks = [(value,) for value in range(7)]
        sequential = frame_pool.map_chunks(_scaled, payload, tasks,
                                           workers=1)
        parallel = frame_pool.map_chunks(_scaled, payload, tasks,
                                         workers=3)
        assert sequential == [0, 3, 6, 9, 12, 15, 18]
        assert parallel == sequential

    def test_results_in_task_order_with_multi_arg_tasks(self):
        payload = ("tag",)
        tasks = [(i, i + 10) for i in range(5)]
        results = frame_pool.map_chunks(_pair, payload, tasks, workers=2)
        assert results == [("tag", i, i + 10) for i in range(5)]

    def test_single_task_stays_in_process(self, monkeypatch):
        def bomb(*args, **kwargs):
            raise AssertionError("pool constructed for a single task")

        monkeypatch.setattr(frame_pool.concurrent.futures,
                            "ProcessPoolExecutor", bomb)
        assert frame_pool.map_chunks(_scaled, (2,), [(21,)],
                                     workers=8) == [42]

    def test_workers_one_stays_in_process(self, monkeypatch):
        def bomb(*args, **kwargs):
            raise AssertionError("pool constructed at workers=1")

        monkeypatch.setattr(frame_pool.concurrent.futures,
                            "ProcessPoolExecutor", bomb)
        assert frame_pool.map_chunks(_scaled, (2,), [(1,), (2,)],
                                     workers=1) == [2, 4]

    def test_chunk_exceptions_propagate_sequential_and_parallel(self):
        with pytest.raises(RuntimeError, match="chunk failure"):
            frame_pool.map_chunks(_chunk_boom, (0,), [(1,)], workers=1)
        with pytest.raises(RuntimeError, match="chunk failure"):
            frame_pool.map_chunks(_chunk_boom, (0,), [(1,), (2,)],
                                  workers=2)

    def test_chunk_oserror_propagates_from_parallel_path(self):
        # An OSError raised *by the chunk function* is the chunk's own
        # failure — it must not trigger the sequential fallback (which
        # would re-run every chunk).
        with pytest.raises(FileNotFoundError, match="missing chunk"):
            frame_pool.map_chunks(_chunk_oserror, (0,), [(1,), (2,)],
                                  workers=2)

    def test_pool_spawn_failure_falls_back_sequentially(self, monkeypatch,
                                                        capsys):
        def broken_pool(payload, workers):
            raise OSError("no process spawning here")

        monkeypatch.setattr(frame_pool, "get_pool", broken_pool)
        results = frame_pool.map_chunks(_scaled, (5,), [(1,), (2,), (3,)],
                                        workers=3)
        assert results == [5, 10, 15]
        assert "frame pool unavailable" in capsys.readouterr().err

    def test_broken_pool_falls_back_sequentially(self, monkeypatch,
                                                 capsys):
        class BrokenExecutor:
            def submit(self, *args, **kwargs):
                raise concurrent.futures.process.BrokenProcessPool(
                    "worker died")

        monkeypatch.setattr(frame_pool, "get_pool",
                            lambda payload, workers: BrokenExecutor())
        results = frame_pool.map_chunks(_scaled, (7,), [(1,), (2,)],
                                        workers=2)
        assert results == [7, 14]
        assert "frame pool broke" in capsys.readouterr().err


class TestPoolPersistence:
    def test_pool_reused_for_identical_payload(self):
        payload = (11,)
        assert frame_pool.map_chunks(_scaled, payload, [(1,), (2,)],
                                     workers=2) == [11, 22]
        first = frame_pool._POOL
        assert first is not None
        assert frame_pool.map_chunks(_scaled, payload, [(3,), (4,)],
                                     workers=2) == [33, 44]
        assert frame_pool._POOL[0] is first[0]   # same executor object

    def test_pool_replaced_when_payload_changes(self):
        frame_pool.map_chunks(_scaled, (1,), [(1,), (2,)], workers=2)
        first = frame_pool._POOL[0]
        assert frame_pool.map_chunks(_scaled, (2,), [(1,), (2,)],
                                     workers=2) == [2, 4]
        assert frame_pool._POOL[0] is not first

    def test_pool_replaced_when_width_changes(self):
        payload = (9,)
        frame_pool.map_chunks(_scaled, payload,
                              [(i,) for i in range(4)], workers=2)
        first = frame_pool._POOL[0]
        frame_pool.map_chunks(_scaled, payload,
                              [(i,) for i in range(4)], workers=3)
        assert frame_pool._POOL[0] is not first
        assert frame_pool._POOL[1] == 3

    def test_shutdown_is_idempotent(self):
        frame_pool.map_chunks(_scaled, (1,), [(1,), (2,)], workers=2)
        frame_pool.shutdown_pool()
        assert frame_pool._POOL is None
        frame_pool.shutdown_pool()


class TestNestedPoolGuard:
    def test_resolve_workers_inside_pool_worker_is_one(self, monkeypatch):
        monkeypatch.setenv(POOL_WORKER_ENV, "1")
        assert frame_pool.resolve_workers(100, workers=8) == 1

    def test_resolve_workers_outside_matches_detect(self, monkeypatch):
        monkeypatch.delenv(POOL_WORKER_ENV, raising=False)
        assert frame_pool.resolve_workers(10, workers=4) == \
            runner.detect_workers(10, 4)

    def test_frame_pool_workers_are_marked(self):
        flags = frame_pool.map_chunks(_worker_flag, (0,), [(), ()],
                                      workers=2)
        assert flags == [True, True]
        assert not in_pool_worker()      # the parent stays unmarked

    def test_run_variants_workers_are_marked(self):
        flags = runner.run_variants([(_flag_unit, {}), (_flag_unit, {})],
                                    workers=2)
        assert flags == [True, True]
        assert not in_pool_worker()


class TestRunVariantsPoolBypass:
    """Satellite: a sequential resolution must never pay pool spawn cost."""

    def test_workers_one_never_constructs_pool(self, monkeypatch):
        def bomb(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor constructed for a "
                                 "sequential run")

        monkeypatch.setattr(runner.concurrent.futures,
                            "ProcessPoolExecutor", bomb)
        tasks = [(_flag_unit, {}), (_flag_unit, {})]
        assert runner.run_variants(tasks, workers=1) == [False, False]

    def test_single_task_never_constructs_pool(self, monkeypatch):
        def bomb(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor constructed for a "
                                 "single task")

        monkeypatch.setattr(runner.concurrent.futures,
                            "ProcessPoolExecutor", bomb)
        assert runner.run_variants([(_flag_unit, {})],
                                   workers=8) == [False]
