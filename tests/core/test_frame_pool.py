"""Intra-frame worker pool: dispatch, persistence, guards, fallback.

The byte-identity of *real* sharded work (image renders, frame
simulations) is pinned in ``tests/models/test_render_sharded.py`` and
``tests/hardware/test_frame_sim_sharded.py``; this suite covers the
pool machinery itself with cheap picklable functions.
"""

import concurrent.futures
import logging

import pytest

from repro.core import faults, frame_pool, log, runner
from repro.core.faults import FaultPlan, FaultSpec, injected_faults
from repro.core.runner import POOL_WORKER_ENV, in_pool_worker


# Module-level so process pools can pickle them.
def _scaled(payload, value):
    scale, = payload
    return scale * value


def _pair(payload, start, stop):
    return (payload[0], start, stop)


def _chunk_boom(payload, value):
    raise RuntimeError("chunk failure")


def _chunk_oserror(payload, value):
    raise FileNotFoundError("missing chunk input")


def _worker_flag(payload):
    return in_pool_worker()


def _flag_unit():
    return in_pool_worker()


@pytest.fixture(autouse=True)
def clean_pool():
    """Every test starts and ends without a live persistent pool."""
    frame_pool.shutdown_pool()
    yield
    frame_pool.shutdown_pool()


class TestMapChunks:
    def test_sequential_and_parallel_agree(self):
        payload = (3,)
        tasks = [(value,) for value in range(7)]
        sequential = frame_pool.map_chunks(_scaled, payload, tasks,
                                           workers=1)
        parallel = frame_pool.map_chunks(_scaled, payload, tasks,
                                         workers=3)
        assert sequential == [0, 3, 6, 9, 12, 15, 18]
        assert parallel == sequential

    def test_results_in_task_order_with_multi_arg_tasks(self):
        payload = ("tag",)
        tasks = [(i, i + 10) for i in range(5)]
        results = frame_pool.map_chunks(_pair, payload, tasks, workers=2)
        assert results == [("tag", i, i + 10) for i in range(5)]

    def test_single_task_stays_in_process(self, monkeypatch):
        def bomb(*args, **kwargs):
            raise AssertionError("pool constructed for a single task")

        monkeypatch.setattr(frame_pool.concurrent.futures,
                            "ProcessPoolExecutor", bomb)
        assert frame_pool.map_chunks(_scaled, (2,), [(21,)],
                                     workers=8) == [42]

    def test_workers_one_stays_in_process(self, monkeypatch):
        def bomb(*args, **kwargs):
            raise AssertionError("pool constructed at workers=1")

        monkeypatch.setattr(frame_pool.concurrent.futures,
                            "ProcessPoolExecutor", bomb)
        assert frame_pool.map_chunks(_scaled, (2,), [(1,), (2,)],
                                     workers=1) == [2, 4]

    def test_chunk_exceptions_propagate_sequential_and_parallel(self):
        with pytest.raises(RuntimeError, match="chunk failure"):
            frame_pool.map_chunks(_chunk_boom, (0,), [(1,)], workers=1)
        with pytest.raises(RuntimeError, match="chunk failure"):
            frame_pool.map_chunks(_chunk_boom, (0,), [(1,), (2,)],
                                  workers=2)

    def test_chunk_oserror_propagates_from_parallel_path(self):
        # An OSError raised *by the chunk function* is the chunk's own
        # failure — it must not trigger the sequential fallback (which
        # would re-run every chunk).
        with pytest.raises(FileNotFoundError, match="missing chunk"):
            frame_pool.map_chunks(_chunk_oserror, (0,), [(1,), (2,)],
                                  workers=2)

    def test_pool_spawn_failure_falls_back_sequentially(self, monkeypatch,
                                                        caplog):
        def broken_pool(payload, workers):
            raise OSError("no process spawning here")

        monkeypatch.setattr(frame_pool, "get_pool", broken_pool)
        with caplog.at_level(logging.WARNING, logger="repro"):
            results = frame_pool.map_chunks(_scaled, (5,),
                                            [(1,), (2,), (3,)], workers=3)
        assert results == [5, 10, 15]
        # Satellite requirement: the sequential fallback is reported as
        # a structured event exactly once per degradation.
        degraded = log.events_named(caplog.records,
                                    "frame_pool.degraded_sequential")
        assert len(degraded) == 1
        assert "pool unavailable" in degraded[0].repro_fields["reason"]

    def test_broken_pool_falls_back_sequentially(self, monkeypatch,
                                                 caplog):
        class BrokenExecutor:
            def submit(self, *args, **kwargs):
                raise concurrent.futures.process.BrokenProcessPool(
                    "worker died")

        monkeypatch.setattr(frame_pool, "get_pool",
                            lambda payload, workers: BrokenExecutor())
        with caplog.at_level(logging.WARNING, logger="repro"):
            results = frame_pool.map_chunks(_scaled, (7,), [(1,), (2,)],
                                            workers=2)
        assert results == [7, 14]
        # Break -> rebuild once -> break again -> degrade: one rebuild
        # attempt, then exactly one degradation event.
        broken = log.events_named(caplog.records, "frame_pool.pool_broken")
        assert len(broken) == 2
        degraded = log.events_named(caplog.records,
                                    "frame_pool.degraded_sequential")
        assert len(degraded) == 1
        assert degraded[0].repro_fields["reason"] == "pool broke twice"


class TestPoolPersistence:
    def test_pool_reused_for_identical_payload(self):
        payload = (11,)
        assert frame_pool.map_chunks(_scaled, payload, [(1,), (2,)],
                                     workers=2) == [11, 22]
        first = frame_pool._POOL
        assert first is not None
        assert frame_pool.map_chunks(_scaled, payload, [(3,), (4,)],
                                     workers=2) == [33, 44]
        assert frame_pool._POOL[0] is first[0]   # same executor object

    def test_pool_replaced_when_payload_changes(self):
        frame_pool.map_chunks(_scaled, (1,), [(1,), (2,)], workers=2)
        first = frame_pool._POOL[0]
        assert frame_pool.map_chunks(_scaled, (2,), [(1,), (2,)],
                                     workers=2) == [2, 4]
        assert frame_pool._POOL[0] is not first

    def test_pool_replaced_when_width_changes(self):
        payload = (9,)
        frame_pool.map_chunks(_scaled, payload,
                              [(i,) for i in range(4)], workers=2)
        first = frame_pool._POOL[0]
        frame_pool.map_chunks(_scaled, payload,
                              [(i,) for i in range(4)], workers=3)
        assert frame_pool._POOL[0] is not first
        assert frame_pool._POOL[1] == 3

    def test_shutdown_is_idempotent(self):
        frame_pool.map_chunks(_scaled, (1,), [(1,), (2,)], workers=2)
        frame_pool.shutdown_pool()
        assert frame_pool._POOL is None
        frame_pool.shutdown_pool()


class TestNestedPoolGuard:
    def test_resolve_workers_inside_pool_worker_is_one(self, monkeypatch):
        monkeypatch.setenv(POOL_WORKER_ENV, "1")
        assert frame_pool.resolve_workers(100, workers=8) == 1

    def test_resolve_workers_outside_matches_detect(self, monkeypatch):
        monkeypatch.delenv(POOL_WORKER_ENV, raising=False)
        assert frame_pool.resolve_workers(10, workers=4) == \
            runner.detect_workers(10, 4)

    def test_frame_pool_workers_are_marked(self):
        flags = frame_pool.map_chunks(_worker_flag, (0,), [(), ()],
                                      workers=2)
        assert flags == [True, True]
        assert not in_pool_worker()      # the parent stays unmarked

    def test_run_variants_workers_are_marked(self):
        flags = runner.run_variants([(_flag_unit, {}), (_flag_unit, {})],
                                    workers=2)
        assert flags == [True, True]
        assert not in_pool_worker()


def _unit_triple(value=0):
    return value * 3


class TestMapChunksFaultInjection:
    """Deterministic fault drills against a *real* pool: crashed, hung,
    and corrupt workers re-execute only their chunk, and the output
    stays identical to the sequential path."""

    EXPECTED = [0, 5, 10, 15]

    def _run(self, workers=2, timeout=None, retries=None):
        return frame_pool.map_chunks(
            _scaled, (5,), [(i,) for i in range(4)],
            workers=workers, timeout=timeout, retries=retries)

    def test_worker_crash_rebuilds_pool_and_retries(self, caplog):
        plan = FaultPlan(tasks={1: FaultSpec("crash")}, scope="frame_pool")
        with caplog.at_level(logging.INFO, logger="repro"):
            with injected_faults(plan):
                assert self._run() == self.EXPECTED
        assert log.events_named(caplog.records, "frame_pool.pool_broken")
        assert log.events_named(caplog.records, "frame_pool.pool_rebuild")
        # A single crash must never degrade the whole frame.
        assert not log.events_named(caplog.records,
                                    "frame_pool.degraded_sequential")

    def test_persistent_crashes_degrade_once_then_finish_in_process(
            self, caplog):
        plan = FaultPlan(tasks={0: FaultSpec("crash",
                                             attempts=tuple(range(8)))},
                         scope="frame_pool")
        with caplog.at_level(logging.WARNING, logger="repro"):
            with injected_faults(plan):
                assert self._run(retries=3) == self.EXPECTED
        degraded = log.events_named(caplog.records,
                                    "frame_pool.degraded_sequential")
        assert len(degraded) == 1
        assert degraded[0].repro_fields["reason"] == "pool broke twice"

    def test_hung_worker_times_out_and_retries(self, caplog):
        plan = FaultPlan(tasks={2: FaultSpec("hang", hang_s=5.0)},
                         scope="frame_pool")
        with caplog.at_level(logging.WARNING, logger="repro"):
            with injected_faults(plan):
                assert self._run(timeout=0.25) == self.EXPECTED
        timeouts = log.events_named(caplog.records,
                                    "frame_pool.task_timeout")
        assert [r.repro_fields["task"] for r in timeouts] == [2]

    def test_corrupt_result_is_retried_not_returned(self, caplog):
        plan = FaultPlan(tasks={3: FaultSpec("corrupt")},
                         scope="frame_pool")
        with caplog.at_level(logging.WARNING, logger="repro"):
            with injected_faults(plan):
                results = self._run()
        assert results == self.EXPECTED
        assert not any(isinstance(value, faults.CorruptResult)
                       for value in results)
        corrupt = log.events_named(caplog.records,
                                   "frame_pool.task_corrupt")
        assert [r.repro_fields["task"] for r in corrupt] == [3]

    def test_validate_hook_rejections_are_retried(self, caplog):
        rejected = []

        def validate(value, index):
            # Parent-side validator: reject task 1's first result only.
            if index == 1 and not rejected:
                rejected.append(index)
                return False
            return True

        with caplog.at_level(logging.WARNING, logger="repro"):
            results = frame_pool.map_chunks(
                _scaled, (5,), [(i,) for i in range(4)],
                workers=2, validate=validate)
        assert results == self.EXPECTED
        assert rejected == [1]
        assert log.events_named(caplog.records, "frame_pool.task_corrupt")

    def test_scope_mismatch_injects_nothing(self):
        plan = FaultPlan(tasks={0: FaultSpec("crash",
                                             attempts=tuple(range(8)))},
                         scope="run_variants")
        with injected_faults(plan):
            assert self._run() == self.EXPECTED


class TestRunVariantsFaultInjection:
    TASKS = [(_unit_triple, {"value": i}) for i in range(4)]
    EXPECTED = [0, 3, 6, 9]

    def test_worker_crash_rebuilds_pool_and_retries(self, caplog):
        plan = FaultPlan(tasks={0: FaultSpec("crash")},
                         scope="run_variants")
        with caplog.at_level(logging.INFO, logger="repro"):
            with injected_faults(plan):
                assert runner.run_variants(self.TASKS,
                                           workers=2) == self.EXPECTED
        assert log.events_named(caplog.records, "run_variants.pool_broken")
        assert log.events_named(caplog.records,
                                "run_variants.pool_rebuild")
        assert not log.events_named(caplog.records,
                                    "run_variants.degraded_sequential")

    def test_variant_timeout_once_then_succeeds(self, caplog):
        # Satellite drill: one variant hangs past its timeout on the
        # first attempt, is retried on a fresh pool, and the run's
        # results are identical to the no-fault run.
        plan = FaultPlan(tasks={1: FaultSpec("hang", hang_s=5.0)},
                         scope="run_variants")
        with caplog.at_level(logging.WARNING, logger="repro"):
            with injected_faults(plan):
                results = runner.run_variants(self.TASKS, workers=2,
                                              timeout=0.25)
        assert results == self.EXPECTED
        timeouts = log.events_named(caplog.records,
                                    "run_variants.task_timeout")
        assert [r.repro_fields["task"] for r in timeouts] == [1]

    def test_persistent_crashes_degrade_once_then_finish_in_process(
            self, caplog):
        plan = FaultPlan(tasks={2: FaultSpec("crash",
                                             attempts=tuple(range(8)))},
                         scope="run_variants")
        with caplog.at_level(logging.WARNING, logger="repro"):
            with injected_faults(plan):
                assert runner.run_variants(self.TASKS, workers=2,
                                           retries=3) == self.EXPECTED
        degraded = log.events_named(caplog.records,
                                    "run_variants.degraded_sequential")
        assert len(degraded) == 1

    def test_corrupt_unit_result_is_retried(self, caplog):
        plan = FaultPlan(tasks={3: FaultSpec("corrupt")},
                         scope="run_variants")
        with caplog.at_level(logging.WARNING, logger="repro"):
            with injected_faults(plan):
                assert runner.run_variants(self.TASKS,
                                           workers=2) == self.EXPECTED
        assert log.events_named(caplog.records,
                                "run_variants.task_corrupt")


class TestRunVariantsPoolBypass:
    """Satellite: a sequential resolution must never pay pool spawn cost."""

    def test_workers_one_never_constructs_pool(self, monkeypatch):
        def bomb(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor constructed for a "
                                 "sequential run")

        monkeypatch.setattr(runner.concurrent.futures,
                            "ProcessPoolExecutor", bomb)
        tasks = [(_flag_unit, {}), (_flag_unit, {})]
        assert runner.run_variants(tasks, workers=1) == [False, False]

    def test_single_task_never_constructs_pool(self, monkeypatch):
        def bomb(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor constructed for a "
                                 "single task")

        monkeypatch.setattr(runner.concurrent.futures,
                            "ProcessPoolExecutor", bomb)
        assert runner.run_variants([(_flag_unit, {})],
                                   workers=8) == [False]
