"""Fault plans, the shared retry policy, and the timeout/retry knobs."""

import logging

import pytest

from repro.core import faults, log
from repro.core.faults import (RETRIES_ENV, TIMEOUT_ENV, CorruptResult,
                               FaultPlan, FaultSpec, backoff_delay,
                               detect_retries, detect_task_timeout,
                               injected_faults, retry_call)


class TestFaultPlan:
    def test_keyed_by_task_index_and_attempt(self):
        plan = FaultPlan(tasks={2: FaultSpec("corrupt", attempts=(0, 1))})
        assert plan.fault_for(2, 0).kind == "corrupt"
        assert plan.fault_for(2, 1).kind == "corrupt"
        assert plan.fault_for(2, 2) is None       # budget exhausted
        assert plan.fault_for(0, 0) is None       # other tasks clean

    def test_scope_restricts_call_site(self):
        plan = FaultPlan(tasks={0: FaultSpec("crash")}, scope="frame_pool")
        assert plan.fault_for(0, 0, scope="frame_pool") is not None
        assert plan.fault_for(0, 0, scope="run_variants") is None
        # An unscoped plan (or an unscoped call site) matches anywhere.
        assert plan.fault_for(0, 0, scope="") is not None
        assert FaultPlan(tasks={0: FaultSpec("crash")}).fault_for(
            0, 0, scope="frame_pool") is not None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meltdown")

    def test_cache_and_job_faults(self):
        plan = FaultPlan(cache_keys=("llff-src-fern",),
                         jobs={"job_a": "interrupt", "job_b": "error"})
        assert plan.corrupts_cache("llff-src-fern-0a1b2c3d")
        assert not plan.corrupts_cache("llff-src-horns-0a1b2c3d")
        assert plan.job_fault("job_a") == "interrupt"
        assert plan.job_fault("job_b") == "error"
        assert plan.job_fault("job_c") is None

    def test_injected_faults_installs_and_restores(self):
        assert faults.active_plan() is None
        plan = FaultPlan(tasks={0: FaultSpec("corrupt")})
        with injected_faults(plan) as active:
            assert active is plan
            assert faults.active_plan() is plan
            inner = FaultPlan()
            with injected_faults(inner):
                assert faults.active_plan() is inner
            assert faults.active_plan() is plan
        assert faults.active_plan() is None

    def test_corrupt_marker_is_identifiable(self):
        marker = faults.apply_worker_fault(FaultSpec("corrupt"), 7)
        assert isinstance(marker, CorruptResult)
        assert marker.task_index == 7


class TestBackoff:
    def test_deterministic_for_seed_and_salt(self):
        assert backoff_delay(1, seed=3, salt="x") \
            == backoff_delay(1, seed=3, salt="x")

    def test_exponential_base_with_bounded_jitter(self):
        base = 0.1
        for attempt in range(4):
            delay = backoff_delay(attempt, base=base)
            floor = base * 2 ** attempt
            assert floor <= delay < floor + base

    def test_salt_desynchronises_callers(self):
        delays_a = [backoff_delay(i, salt="frame_pool") for i in range(4)]
        delays_b = [backoff_delay(i, salt="run_variants") for i in range(4)]
        assert delays_a != delays_b


class TestRetryCall:
    def _flaky(self, failures, error=RuntimeError):
        calls = []

        def function(value):
            calls.append(value)
            if len(calls) <= failures:
                raise error("transient")
            return value * 2

        return function, calls

    def test_succeeds_after_transient_failures(self):
        function, calls = self._flaky(2)
        slept = []
        assert retry_call(function, 21, retries=3,
                          sleep=slept.append) == 42
        assert len(calls) == 3
        assert slept == [backoff_delay(0), backoff_delay(1)]

    def test_budget_exhaustion_propagates_last_error(self):
        function, calls = self._flaky(10)
        with pytest.raises(RuntimeError, match="transient"):
            retry_call(function, 1, retries=2, sleep=lambda _: None)
        assert len(calls) == 3        # initial + 2 retries

    def test_undeclared_exceptions_never_retried(self):
        function, calls = self._flaky(1, error=KeyError)
        with pytest.raises(KeyError):
            retry_call(function, 1, retries=5, retry_on=(RuntimeError,),
                       sleep=lambda _: None)
        assert len(calls) == 1

    def test_on_retry_observes_each_attempt(self):
        function, _ = self._flaky(2)
        seen = []
        retry_call(function, 1, retries=2, sleep=lambda _: None,
                   on_retry=lambda attempt, error: seen.append(attempt))
        assert seen == [0, 1]

    def test_zero_retries_is_single_attempt(self):
        function, calls = self._flaky(1)
        with pytest.raises(RuntimeError):
            retry_call(function, 1, retries=0, sleep=lambda _: None)
        assert len(calls) == 1


class TestTimeoutKnob:
    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "9")
        assert detect_task_timeout(2.5) == 2.5

    def test_env_then_default_off(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "7.5")
        assert detect_task_timeout() == 7.5
        monkeypatch.delenv(TIMEOUT_ENV)
        assert detect_task_timeout() is None

    def test_non_positive_disables(self, monkeypatch):
        assert detect_task_timeout(0) is None
        assert detect_task_timeout(-3) is None
        monkeypatch.setenv(TIMEOUT_ENV, "0")
        assert detect_task_timeout() is None

    def test_blank_env_skipped(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "   ")
        assert detect_task_timeout() is None

    def test_malformed_env_warns_and_falls_back(self, monkeypatch,
                                                caplog):
        monkeypatch.setenv(TIMEOUT_ENV, "fast")
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert detect_task_timeout() is None
        record, = log.events_named(caplog.records, "knob.ignored")
        assert record.repro_fields["knob"] == TIMEOUT_ENV

    def test_malformed_argument_degrades_to_env(self, monkeypatch,
                                                caplog):
        monkeypatch.setenv(TIMEOUT_ENV, "4")
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert detect_task_timeout("soon") == 4.0
        assert log.events_named(caplog.records, "knob.ignored")


class TestRetriesKnob:
    def test_argument_beats_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "5")
        assert detect_retries(2) == 2
        assert detect_retries() == 5
        monkeypatch.delenv(RETRIES_ENV)
        assert detect_retries() == faults.DEFAULT_RETRIES

    def test_negative_clamps_to_zero(self, monkeypatch):
        assert detect_retries(-4) == 0
        monkeypatch.setenv(RETRIES_ENV, "-1")
        assert detect_retries() == 0

    def test_malformed_env_warns_and_falls_back(self, monkeypatch,
                                                caplog):
        monkeypatch.setenv(RETRIES_ENV, "lots")
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert detect_retries() == faults.DEFAULT_RETRIES
        record, = log.events_named(caplog.records, "knob.ignored")
        assert record.repro_fields["knob"] == RETRIES_ENV

    def test_run_context_exposes_both_knobs(self, monkeypatch):
        from repro.core.context import RunContext

        monkeypatch.setenv(TIMEOUT_ENV, "11")
        monkeypatch.setenv(RETRIES_ENV, "4")
        ctx = RunContext()
        assert ctx.resolve_task_timeout() == 11.0
        assert ctx.resolve_retries() == 4
        explicit = RunContext(task_timeout=1.5, retries=0)
        assert explicit.resolve_task_timeout() == 1.5
        assert explicit.resolve_retries() == 0
