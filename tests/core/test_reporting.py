"""Text table/series formatting and artefact-write tests."""

import os

import pytest

from repro.core.reporting import (format_series, format_table, ratio_note,
                                  write_artifact)


class TestFormatTable:
    def test_contains_all_cells(self):
        text = format_table(["name", "value"],
                            [["alpha", 1.5], ["beta", 2.25]])
        assert "alpha" in text and "beta" in text
        assert "1.500" in text and "2.250" in text

    def test_title_underlined(self):
        text = format_table(["a"], [[1]], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_columns_aligned(self):
        text = format_table(["col", "x"], [["aaaaaaaa", 1], ["b", 22]])
        lines = text.splitlines()
        first = lines[-2]
        second = lines[-1]
        assert first.index("1") == second.index("2")

    def test_large_and_tiny_numbers(self):
        text = format_table(["v"], [[123456.0], [0.00001]])
        assert "1.23e+05" in text or "123456" in text or "1.23e5" in text
        assert "1e-05" in text

    def test_precision_option(self):
        text = format_table(["v"], [[1.23456]], precision=1)
        assert "1.2" in text and "1.23" not in text


class TestFormatSeries:
    def test_series_layout(self):
        text = format_series("curve", [1, 2], [10.0, 20.0],
                             x_label="points", y_label="psnr")
        assert "points" in text and "psnr" in text
        assert "curve" in text


class TestRatioNote:
    def test_with_paper_value(self):
        note = ratio_note(10.0, 20.0, label="fps")
        assert "0.50x" in note and "fps" in note

    def test_without_paper_value(self):
        note = ratio_note(10.0, 0.0, label="fps")
        assert "N/A" in note


class TestWriteArtifact:
    def test_creates_directories_and_writes(self, tmp_path):
        path = str(tmp_path / "nested" / "result.txt")
        assert write_artifact(path, "hello\n") == path
        assert open(path).read() == "hello\n"

    def test_overwrites_atomically_without_temp_residue(self, tmp_path):
        path = str(tmp_path / "result.txt")
        write_artifact(path, "first\n")
        write_artifact(path, "second\n")
        assert open(path).read() == "second\n"
        assert os.listdir(tmp_path) == ["result.txt"]

    def test_failed_write_preserves_existing_artifact(self, tmp_path,
                                                      monkeypatch):
        # If the write itself dies (e.g. disk full mid-write), the
        # previously committed artefact must survive intact and no temp
        # file may linger.
        path = str(tmp_path / "result.txt")
        write_artifact(path, "committed\n")

        import repro.core.reporting as reporting

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(reporting.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="disk full"):
            write_artifact(path, "half-written\n")
        monkeypatch.undo()
        assert open(path).read() == "committed\n"
        assert os.listdir(tmp_path) == ["result.txt"]
