"""Fault-isolated batch ingestion: validation, quarantine, resume."""

import json
import logging
import os

import pytest

from repro.core import batch, log, registry
from repro.core.batch import (BatchSpecError, discover_jobs, run_batch,
                              validate_spec)
from repro.core.context import RunContext
from repro.core.faults import FaultPlan, injected_faults
from repro.core.registry import Experiment


# Module-level so the variant pool could pickle them (the 1-worker
# default keeps these sequential, but the contract is the same).
def _tiny_unit(seed=1, width=3):
    return [seed * i for i in range(width)]


def _boom_unit():
    raise RuntimeError("synthetic job failure")


def _make_tiny(name, artefact):
    return Experiment(
        name=name, title="synthetic tiny", kind="table",
        artefact=artefact, description="batch-test fixture",
        params={"seed": 1, "width": 3},
        units=lambda ctx, params, shared: [
            (_tiny_unit, {"seed": params["seed"],
                          "width": params["width"]})],
        reduce=lambda results, params: results[0],
        render=lambda rows, params: "tiny " + " ".join(
            str(value) for value in rows))


@pytest.fixture()
def tiny_registry():
    """Register two synthetic experiments (one fast, one that raises)
    so batch tests never pay real harness compute."""
    tiny = _make_tiny("_batch_tiny", "_batch_tiny")
    boom = Experiment(
        name="_batch_boom", title="synthetic failure", kind="table",
        artefact="_batch_boom", description="batch-test fixture",
        params={},
        units=lambda ctx, params, shared: [(_boom_unit, {})],
        reduce=lambda results, params: results,
        render=lambda rows, params: "never rendered")
    registry.register(tiny)
    registry.register(boom)
    yield tiny
    del registry._REGISTRY["_batch_tiny"]
    del registry._REGISTRY["_batch_boom"]


def _write_spec(jobs_dir, stem, payload):
    path = os.path.join(jobs_dir, f"{stem}.json")
    with open(path, "w", encoding="utf-8") as handle:
        if isinstance(payload, str):
            handle.write(payload)
        else:
            json.dump(payload, handle)
    return path


class TestValidateSpec:
    def _check(self, spec, match):
        with pytest.raises(BatchSpecError, match=match):
            validate_spec(spec, "job.json")

    def test_rejections_cover_every_field(self, tiny_registry):
        self._check(["not", "an", "object"], "must be a JSON object")
        self._check({"experiment": "_batch_tiny", "workersz": 2},
                    "unknown spec field")
        self._check({}, "needs an 'experiment' name")
        self._check({"experiment": 7}, "needs an 'experiment' name")
        self._check({"experiment": "no_such_thing"}, "no_such_thing")
        self._check({"experiment": "_batch_tiny", "overrides": [1]},
                    "'overrides' must be a JSON object")
        self._check({"experiment": "_batch_tiny",
                     "overrides": {"depth": 2}}, "unknown parameter")
        self._check({"experiment": "_batch_tiny", "seed": True},
                    "'seed' must be an integer")
        self._check({"experiment": "_batch_tiny", "seed": "four"},
                    "'seed' must be an integer")
        self._check({"experiment": "_batch_tiny", "scale": 0},
                    "'scale' must be a positive number")
        self._check({"experiment": "_batch_tiny", "artefact": "../esc"},
                    "plain file stem")
        self._check({"experiment": "_batch_tiny", "artefact": "a/b"},
                    "plain file stem")

    def test_valid_spec_resolves(self, tiny_registry):
        name, overrides, fields, artefact = validate_spec(
            {"experiment": "_batch_tiny", "overrides": {"width": 5},
             "seed": 9, "scale": 0.5, "artefact": "custom_stem"},
            "job.json")
        assert name == "_batch_tiny"
        assert overrides == {"width": 5}
        assert fields == {"seed": 9, "scale": 0.5}
        assert artefact == "custom_stem"

    def test_minimal_spec_defaults(self, tiny_registry):
        name, overrides, fields, artefact = validate_spec(
            {"experiment": "_batch_tiny"}, "job.json")
        assert (overrides, fields, artefact) == ({}, {}, None)


class TestDiscoverJobs:
    def test_sorted_json_only(self, tmp_path):
        _write_spec(tmp_path, "b", {})
        _write_spec(tmp_path, "a", {})
        (tmp_path / "notes.txt").write_text("ignored")
        names = [os.path.basename(p) for p in discover_jobs(str(tmp_path))]
        assert names == ["a.json", "b.json"]

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            discover_jobs(str(tmp_path / "absent"))


class TestRunBatch:
    def test_quarantine_isolates_bad_specs_and_run_continues(
            self, tmp_path, tiny_registry, caplog):
        jobs = tmp_path / "jobs"
        jobs.mkdir()
        _write_spec(jobs, "a_good", {"experiment": "_batch_tiny"})
        _write_spec(jobs, "b_broken", '{"experiment": "_batch_tiny",')
        _write_spec(jobs, "c_custom", {"experiment": "_batch_tiny",
                                       "seed": 4,
                                       "artefact": "renamed"})
        with caplog.at_level(logging.WARNING, logger="repro"):
            summary = run_batch(str(jobs))
        assert (summary.completed, summary.skipped,
                summary.quarantined) == (2, 0, 1)

        out = tmp_path / "jobs" / "out"
        assert (out / "a_good.txt").exists()
        assert (out / "renamed.txt").exists()          # custom stem
        assert (out / "batch_summary.txt").exists()
        # Quarantine layout: spec copy + traceback report.
        errors = out / "errors"
        assert (errors / "b_broken.json").exists()
        report = (errors / "b_broken.report.txt").read_text()
        assert "JSONDecodeError" in report
        assert "Traceback" in report
        events = log.events_named(caplog.records, "batch.job_quarantined")
        assert [r.repro_fields["job"] for r in events] == ["b_broken"]

    def test_artefacts_byte_identical_to_direct_run(self, tmp_path,
                                                    tiny_registry):
        jobs = tmp_path / "jobs"
        jobs.mkdir()
        _write_spec(jobs, "job", {"experiment": "_batch_tiny", "seed": 6})
        run_batch(str(jobs))
        direct = tiny_registry.run(RunContext(seed=6)).text + "\n"
        written = (jobs / "out" / "job.txt").read_bytes()
        assert written == direct.encode("utf-8")

    def test_resume_skips_existing_artefacts(self, tmp_path,
                                             tiny_registry, caplog):
        jobs = tmp_path / "jobs"
        jobs.mkdir()
        _write_spec(jobs, "one", {"experiment": "_batch_tiny"})
        _write_spec(jobs, "two", {"experiment": "_batch_tiny", "seed": 2})
        first = run_batch(str(jobs))
        assert first.completed == 2
        before = (jobs / "out" / "one.txt").read_bytes()

        with caplog.at_level(logging.INFO, logger="repro"):
            second = run_batch(str(jobs))
        assert (second.completed, second.skipped) == (0, 2)
        assert (jobs / "out" / "one.txt").read_bytes() == before
        skips = log.events_named(caplog.records, "batch.job_skipped")
        assert len(skips) == 2

    def test_runtime_failure_quarantined_later_jobs_still_run(
            self, tmp_path, tiny_registry):
        jobs = tmp_path / "jobs"
        jobs.mkdir()
        _write_spec(jobs, "a_fails", {"experiment": "_batch_boom"})
        _write_spec(jobs, "b_runs", {"experiment": "_batch_tiny"})
        summary = run_batch(str(jobs))
        assert (summary.completed, summary.quarantined) == (1, 1)
        report = (jobs / "out" / "errors" /
                  "a_fails.report.txt").read_text()
        assert "RuntimeError: synthetic job failure" in report
        assert (jobs / "out" / "b_runs.txt").exists()

    def test_kill_mid_run_then_resume_completes_remainder(
            self, tmp_path, tiny_registry):
        # Satellite drill: the run dies mid-flight (injected interrupt
        # standing in for SIGINT/kill); a plain re-invocation resumes —
        # finished artefacts skip, the remainder completes, and the
        # final artefact set is identical to an uninterrupted run.
        jobs = tmp_path / "jobs"
        jobs.mkdir()
        _write_spec(jobs, "a", {"experiment": "_batch_tiny", "seed": 1})
        _write_spec(jobs, "b", {"experiment": "_batch_tiny", "seed": 2})
        _write_spec(jobs, "c", {"experiment": "_batch_tiny", "seed": 3})
        plan = FaultPlan(jobs={"b": "interrupt"})
        with injected_faults(plan):
            with pytest.raises(KeyboardInterrupt):
                run_batch(str(jobs))
        out = jobs / "out"
        assert (out / "a.txt").exists()        # completed before the kill
        assert not (out / "b.txt").exists()    # interrupted
        assert not (out / "errors").exists()   # a kill is not a quarantine

        resumed = run_batch(str(jobs))
        assert (resumed.completed, resumed.skipped,
                resumed.quarantined) == (2, 1, 0)
        for stem, seed in (("a", 1), ("b", 2), ("c", 3)):
            expected = tiny_registry.run(RunContext(seed=seed)).text + "\n"
            assert (out / f"{stem}.txt").read_bytes() \
                == expected.encode("utf-8")

    def test_injected_job_error_is_quarantined(self, tmp_path,
                                               tiny_registry):
        jobs = tmp_path / "jobs"
        jobs.mkdir()
        _write_spec(jobs, "doomed", {"experiment": "_batch_tiny"})
        with injected_faults(FaultPlan(jobs={"doomed": "error"})):
            summary = run_batch(str(jobs))
        assert summary.quarantined == 1
        assert "injected job error" in summary.reports[0].detail

    def test_spec_seed_beats_context_default(self, tmp_path,
                                             tiny_registry):
        jobs = tmp_path / "jobs"
        jobs.mkdir()
        _write_spec(jobs, "pinned", {"experiment": "_batch_tiny",
                                     "seed": 8})
        _write_spec(jobs, "inherits", {"experiment": "_batch_tiny"})
        run_batch(str(jobs), ctx=RunContext(seed=2))
        pinned = tiny_registry.run(RunContext(seed=8)).text + "\n"
        inherited = tiny_registry.run(RunContext(seed=2)).text + "\n"
        assert (jobs / "out" / "pinned.txt").read_text() == pinned
        assert (jobs / "out" / "inherits.txt").read_text() == inherited

    def test_summary_render_is_deterministic(self, tmp_path,
                                             tiny_registry):
        jobs = tmp_path / "jobs"
        jobs.mkdir()
        _write_spec(jobs, "only", {"experiment": "_batch_tiny"})
        first = run_batch(str(jobs)).render()
        # Re-render after a resume: statuses differ (skipped), but the
        # render itself carries no timings/paths that could drift.
        assert "completed 1  skipped 0  quarantined 0" in first
        assert str(jobs) not in first          # no absolute paths
        second = run_batch(str(jobs)).render()
        assert "completed 0  skipped 1  quarantined 0" in second

    def test_explicit_out_dir(self, tmp_path, tiny_registry):
        jobs = tmp_path / "jobs"
        jobs.mkdir()
        _write_spec(jobs, "job", {"experiment": "_batch_tiny"})
        out = tmp_path / "elsewhere"
        summary = run_batch(str(jobs), out_dir=str(out))
        assert (out / "job.txt").exists()
        assert summary.errors_dir == str(out / "errors")

    def test_empty_jobs_dir_is_a_clean_run(self, tmp_path):
        jobs = tmp_path / "jobs"
        jobs.mkdir()
        summary = run_batch(str(jobs))
        assert summary.reports == []
        assert os.path.exists(summary.summary_path)
