"""Byte-identity, backpressure, LRU, and knob tests for the serving
layer (:mod:`repro.core.serve`).

The headline contract: every request served through the coalescing
scheduler produces pixels **bitwise identical** to a direct
``render_image_*`` call — across batch windows {1, 4, 16}, interleaved
scenes, merged cross-request batches, and 1/2/4 worker settings.  All
scheduling runs on the virtual clock; no test sleeps.
"""

import logging

import numpy as np
import pytest

from repro import models as M
from repro.core import log, serve
from repro.core.scene_cache import SceneCache
from repro.core.serve import (QUALITIES, RenderRequest, RenderScheduler,
                              SceneStore, ServeConfig, ServeError,
                              ServiceOverloaded)

SCENE_KW = dict(step=8, image_scale=1 / 16, views=4, scene_seed=1)
SOURCE_POINTS = 24


@pytest.fixture(scope="module")
def store():
    """One warm scene store shared by the whole module (capacity large
    enough that byte-identity tests never evict)."""
    return SceneStore(capacity=8, source_points=SOURCE_POINTS, cache=None)


@pytest.fixture(scope="module")
def models():
    return {quality: serve.build_model(quality) for quality in QUALITIES}


@pytest.fixture(scope="module")
def direct_render(store, models):
    """Reference pixels via the direct render_image_* path, memoised
    per (scene, quality, chunk)."""
    memo = {}

    def render(request: RenderRequest) -> np.ndarray:
        key = (request.scene, request.quality, request.chunk)
        if key in memo:
            return memo[key]
        prepared = store.get(request.scene_key)
        spec = QUALITIES[request.quality]
        model = models[request.quality]
        maps = prepared.data.encoded_maps(model)
        if spec.kind == "uniform":
            image = M.render_image_ibrnet(
                model, prepared.scene, prepared.data.source_images,
                num_points=spec.num_points, step=request.step,
                chunk=request.chunk, feature_maps=maps)
        elif spec.kind == "hierarchical":
            image = M.render_image_ibrnet(
                model, prepared.scene, prepared.data.source_images,
                num_points=spec.num_points, step=request.step,
                chunk=request.chunk, hierarchical=True,
                coarse_points=spec.coarse_points, feature_maps=maps)
        else:
            image, _ = M.render_image_gen_nerf(
                model, prepared.scene, prepared.data.source_images,
                step=request.step, chunk=request.chunk, feature_maps=maps)
        memo[key] = image
        return image

    return render


def _interleaved_requests(chunk=None):
    """Every quality tier on two interleaved scenes."""
    requests = []
    for index, quality in enumerate(QUALITIES):
        for scene in ("fern", "fortress"):
            requests.append(RenderRequest(
                request_id=f"{scene}-{quality}", scene=scene,
                quality=quality, chunk=chunk, **SCENE_KW))
    return requests


def _config(store, **overrides):
    kwargs = dict(batch_window=4, max_batch=256, queue_limit=64,
                  scene_capacity=store.capacity, workers=1,
                  source_points=SOURCE_POINTS)
    kwargs.update(overrides)
    return ServeConfig(**kwargs)


class TestByteIdentity:
    @pytest.mark.parametrize("window", [1, 4, 16])
    def test_windows(self, window, store, models, direct_render):
        scheduler = RenderScheduler(_config(store, batch_window=window),
                                    store=store, models=models)
        requests = _interleaved_requests()
        for tick, request in enumerate(requests):
            scheduler.submit(request, tick)
        responses, _ = scheduler.drain(len(requests))
        assert len(responses) == len(requests)
        for response in responses:
            assert response.status == "ok"
            expected = direct_render(
                next(r for r in requests
                     if r.request_id == response.request_id))
            assert np.array_equal(response.image, expected), \
                f"{response.request_id} diverged at window={window}"

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_workers(self, workers, store, models, direct_render):
        # chunk=16 forces multi-chunk requests, so coalesced dispatches
        # genuinely shard over the frame pool at workers > 1.
        scheduler = RenderScheduler(
            _config(store, workers=workers, max_batch=128),
            store=store, models=models)
        requests = _interleaved_requests(chunk=16)
        for request in requests:
            scheduler.submit(request, 0)
        responses, _ = scheduler.drain(0)
        assert len(responses) == len(requests)
        for response in responses:
            assert response.status == "ok"
            expected = direct_render(
                next(r for r in requests
                     if r.request_id == response.request_id))
            assert np.array_equal(response.image, expected), \
                f"{response.request_id} diverged at workers={workers}"

    def test_merged_uniform_requests(self, store, models, direct_render):
        """Same-group uniform requests merge rays into one model call
        and still scatter back byte-identical rows."""
        scheduler = RenderScheduler(_config(store), store=store,
                                    models=models)
        requests = [RenderRequest(request_id=f"m{i}", scene="fern",
                                  quality="standard", **SCENE_KW)
                    for i in range(4)]
        for request in requests:
            scheduler.submit(request, 0)
        responses, _ = scheduler.drain(0)
        assert scheduler.counters["merged_rays"] > 0
        expected = direct_render(requests[0])
        for response in responses:
            assert response.status == "ok"
            assert np.array_equal(response.image, expected)

    def test_single_request_single_dispatch(self, store, models,
                                            direct_render):
        """window=0 serves a lone request on its submission tick."""
        scheduler = RenderScheduler(_config(store, batch_window=0),
                                    store=store, models=models)
        request = RenderRequest(request_id="solo", scene="fern",
                                quality="draft", **SCENE_KW)
        scheduler.submit(request, 7)
        responses = scheduler.run_tick(7)
        assert [r.status for r in responses] == ["ok"]
        assert responses[0].latency_ticks == 0
        assert np.array_equal(responses[0].image, direct_render(request))


class TestBackpressure:
    def test_high_water_sheds_deterministically(self, store, models,
                                                caplog):
        scheduler = RenderScheduler(_config(store, queue_limit=2),
                                    store=store, models=models)
        requests = [RenderRequest(request_id=f"q{i}", scene="fern",
                                  quality="draft", **SCENE_KW)
                    for i in range(4)]
        accepted, shed = [], []
        with caplog.at_level(logging.WARNING, logger="repro.serve"):
            for request in requests:
                try:
                    scheduler.submit(request, 0)
                    accepted.append(request.request_id)
                except ServiceOverloaded:
                    shed.append(request.request_id)
        assert accepted == ["q0", "q1"]
        assert shed == ["q2", "q3"]
        assert scheduler.counters["shed"] == 2
        events = log.events_named(caplog.records, "serve.request_shed")
        assert [e.repro_fields["request_id"] for e in events] == shed
        responses, _ = scheduler.drain(0)
        assert sorted(r.request_id for r in responses) == accepted
        assert all(r.status == "ok" for r in responses)

    def test_shed_request_can_resubmit_after_drain(self, store, models):
        scheduler = RenderScheduler(_config(store, queue_limit=1),
                                    store=store, models=models)
        scheduler.submit(RenderRequest(request_id="first", scene="fern",
                                       quality="draft", **SCENE_KW), 0)
        retry = RenderRequest(request_id="retry", scene="fern",
                              quality="draft", **SCENE_KW)
        with pytest.raises(ServiceOverloaded, match="429|queue_limit"):
            scheduler.submit(retry, 0)
        scheduler.drain(0)
        scheduler.submit(retry, 5)          # shed != consumed id
        responses, _ = scheduler.drain(5)
        assert [r.status for r in responses] == ["ok"]


class TestSceneLRU:
    def test_capacity_one_alternating_scenes(self, store, models,
                                             direct_render):
        """At capacity 1 every scene switch evicts and re-prepares —
        and the cold re-prep is pinned byte-identical to the warm
        reference."""
        small = SceneStore(capacity=1, source_points=SOURCE_POINTS,
                           cache=None)
        scheduler = RenderScheduler(
            _config(store, batch_window=0, scene_capacity=1),
            store=small, models=models)
        requests = [RenderRequest(request_id=f"alt{i}",
                                  scene=("fern", "fortress")[i % 2],
                                  quality="draft", **SCENE_KW)
                    for i in range(4)]
        responses = []
        for tick, request in enumerate(requests):
            scheduler.submit(request, tick)
            responses.extend(scheduler.run_tick(tick))
        assert len(responses) == 4
        assert small.evictions >= 3
        assert small.misses == 4            # every access was cold
        for response, request in zip(responses, requests):
            assert response.status == "ok"
            assert np.array_equal(response.image, direct_render(request))

    def test_warm_hits_and_counters(self, models):
        small = SceneStore(capacity=2, source_points=SOURCE_POINTS,
                           cache=None)
        key = ("fern", 1 / 16, 4, 1)
        first = small.get(key)
        second = small.get(key)
        assert second is first
        assert small.counters == {"hits": 1, "misses": 1, "evictions": 0}

    def test_disk_cache_shared_with_experiment_layer(self, tmp_path):
        """The store's disk recipe is the same ``llff-src`` key the
        experiment memos use, so daemon and harness share entries."""
        from repro.core.context import _source_images_key

        cache = SceneCache(str(tmp_path))
        cold = SceneStore(capacity=2, source_points=SOURCE_POINTS,
                          cache=cache)
        key = ("fern", 1 / 16, 4, 1)
        prepared = cold.get(key)
        disk_key = _source_images_key(
            "fern", (1 / 16, 4, 1, SOURCE_POINTS))
        assert cache.load(disk_key) is not None
        warm = SceneStore(capacity=2, source_points=SOURCE_POINTS,
                          cache=cache)
        reloaded = warm.get(key)
        assert np.array_equal(reloaded.data.source_images,
                              prepared.data.source_images)


class TestKnobs:
    def test_env_knobs_resolve(self, monkeypatch):
        monkeypatch.setenv(serve.WINDOW_ENV, "7")
        monkeypatch.setenv(serve.MAX_BATCH_ENV, "512")
        monkeypatch.setenv(serve.QUEUE_ENV, "9")
        assert serve.detect_batch_window() == 7
        assert serve.detect_max_batch() == 512
        assert serve.detect_queue_limit() == 9
        config = ServeConfig.from_env()
        assert (config.batch_window, config.max_batch,
                config.queue_limit) == (7, 512, 9)

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(serve.WINDOW_ENV, "7")
        assert serve.detect_batch_window(2) == 2
        assert ServeConfig.from_env(batch_window=2).batch_window == 2

    def test_malformed_env_warns_and_falls_back(self, monkeypatch,
                                                caplog):
        monkeypatch.setenv(serve.WINDOW_ENV, "soon")
        monkeypatch.setenv(serve.MAX_BATCH_ENV, "lots")
        with caplog.at_level(logging.WARNING, logger="repro.faults"):
            assert serve.detect_batch_window() \
                == serve.DEFAULT_BATCH_WINDOW
            assert serve.detect_max_batch() == serve.DEFAULT_MAX_BATCH
        ignored = log.events_named(caplog.records, "knob.ignored")
        assert {e.repro_fields["knob"] for e in ignored} \
            == {serve.WINDOW_ENV, serve.MAX_BATCH_ENV}

    def test_negative_values_clamp(self):
        assert serve.detect_batch_window(-3) == 0
        assert serve.detect_max_batch(0) == 1
        assert serve.detect_queue_limit(-1) == 1


class TestValidation:
    def test_bad_requests_rejected(self, store, models):
        scheduler = RenderScheduler(_config(store), store=store,
                                    models=models)
        bad = [RenderRequest(request_id="", scene="fern"),
               RenderRequest(request_id="x", scene=""),
               RenderRequest(request_id="x", scene="fern",
                             quality="ultra"),
               RenderRequest(request_id="x", scene="fern", step=0),
               RenderRequest(request_id="x", scene="fern",
                             image_scale=0.0),
               RenderRequest(request_id="x", scene="fern", chunk=0)]
        for request in bad:
            with pytest.raises(ServeError):
                scheduler.submit(request, 0)
        assert scheduler.counters["submitted"] == 0

    def test_duplicate_id_rejected(self, store, models):
        scheduler = RenderScheduler(_config(store), store=store,
                                    models=models)
        request = RenderRequest(request_id="dup", scene="fern",
                                quality="draft", **SCENE_KW)
        scheduler.submit(request, 0)
        with pytest.raises(ServeError, match="duplicate"):
            scheduler.submit(request, 1)
        scheduler.drain(0)
        # Completed ids stay burned: responses map 1:1 to ids forever.
        with pytest.raises(ServeError, match="duplicate"):
            scheduler.submit(request, 10)

    def test_bad_config_rejected(self):
        with pytest.raises(ServeError):
            ServeConfig(max_batch=0)
        with pytest.raises(ServeError):
            ServeConfig(batch_window=-1)
        with pytest.raises(ServeError):
            ServeConfig(queue_limit=0)
        with pytest.raises(ServeError):
            ServeConfig(request_deadline=0)

    def test_unknown_quality_model(self):
        with pytest.raises(ServeError, match="unknown quality"):
            serve.build_model("ultra")


class TestDaemon:
    """The stdio wrapper: JSON-lines in, JSON-lines out.  A StringIO
    has no selectable descriptor, so the daemon falls back to
    one-tick-per-line iteration — still fully deterministic."""

    def test_jsonl_round_trip(self, tmp_path, direct_render):
        import io
        import json
        import zlib

        lines = [
            json.dumps({"id": "a", "scene": "fern", "quality": "draft"}),
            "this is not json",
            json.dumps({"scene": "fern", "quality": "draft"}),
            json.dumps({"id": "bad", "scene": "fern",
                        "quality": "ultra"}),
        ]
        out = io.StringIO()
        config = ServeConfig(batch_window=1, max_batch=512,
                             queue_limit=8, scene_capacity=2, workers=1,
                             source_points=SOURCE_POINTS)
        stats = serve.run_daemon(
            config, input_stream=io.StringIO("\n".join(lines) + "\n"),
            output_stream=out, out_dir=str(tmp_path))
        payloads = [json.loads(line)
                    for line in out.getvalue().splitlines()]
        by_id = {p["id"]: p for p in payloads}
        assert by_id["a"]["status"] == "ok"
        assert by_id["req-000003"]["status"] == "ok"   # defaulted id
        assert by_id["req-000002"]["status"] == "error"  # bad JSON
        # Validation fails before the id is trusted, so the rejection
        # is reported under the sequence default id.
        assert by_id["req-000004"]["status"] == "error"
        assert "unknown quality" in by_id["req-000004"]["error"]
        assert stats["completed"] == 2
        assert stats["failed"] == 0            # rejected pre-submit

        # The wire form carries a crc32 witness and lands the pixels.
        reference = direct_render(RenderRequest(
            request_id="a", scene="fern", quality="draft", **SCENE_KW))
        assert by_id["a"]["shape"] == list(reference.shape)
        assert by_id["a"]["crc32"] \
            == f"{zlib.crc32(reference.tobytes()):08x}"
        saved = np.load(tmp_path / "a.npy")
        assert np.array_equal(saved, reference)

    def test_request_json_validation(self):
        with pytest.raises(ServeError, match="unknown request field"):
            serve.request_from_json({"scene": "fern", "bogus": 1}, "d")
        with pytest.raises(ServeError, match="must name a scene"):
            serve.request_from_json({"quality": "draft"}, "d")
        with pytest.raises(ServeError, match="JSON object"):
            serve.request_from_json(["fern"], "d")
        request = serve.request_from_json({"scene": "fern"}, "fallback")
        assert request.request_id == "fallback"
        assert request.quality == "standard"
