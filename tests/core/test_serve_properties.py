"""Scheduler invariants under randomized arrival schedules.

A seeded-random loop (a lightweight property test — no external
framework) drives :func:`repro.core.serve.replay` across random batch
windows, ray budgets, concurrency levels, and burst/open arrivals, and
asserts the invariants the serving design promises:

* responses map 1:1 to submitted requests (shed included, no dupes);
* no accepted request starves — its first dispatch happens within
  ``batch_window`` ticks of submission on the virtual clock;
* every dispatched batch holds at most ``max_batch`` rays unless it is
  a single atomic chunk (which dispatches alone);
* the whole replay is deterministic: same trace, same config, same
  pixels, same batch log;
* nothing in the measured path touches wall time (``time.sleep`` is
  booby-trapped for the duration of every replay).
"""

import time

import numpy as np
import pytest

from repro.core import serve
from repro.core.serve import (QUALITIES, RenderScheduler, SceneStore,
                              ServeConfig, synthetic_trace)

SOURCE_POINTS = 24
N_SCHEDULES = 12


@pytest.fixture(scope="module")
def store():
    return SceneStore(capacity=8, source_points=SOURCE_POINTS, cache=None)


@pytest.fixture(scope="module")
def models():
    return {quality: serve.build_model(quality) for quality in QUALITIES}


@pytest.fixture(autouse=True)
def no_real_time_sleeps(monkeypatch):
    """Zero real-time sleeps in the measured path: any ``time.sleep``
    during a replay is a test failure, not a slow test."""

    def trapped(seconds):
        raise AssertionError(
            f"time.sleep({seconds!r}) called inside a virtual-clock "
            f"replay")

    monkeypatch.setattr(time, "sleep", trapped)


def _random_setup(seed):
    """One randomized (config, trace) pair, fully determined by seed."""
    rng = np.random.default_rng((seed, 0xC0FFEE))
    config = ServeConfig(
        batch_window=int(rng.integers(0, 7)),
        max_batch=int(rng.choice([32, 64, 96, 512])),
        queue_limit=int(rng.integers(3, 20)),
        scene_capacity=8, workers=1, source_points=SOURCE_POINTS)
    qualities = [("draft",), ("standard",), ("draft", "standard"),
                 ("draft", "high")][int(rng.integers(0, 4))]
    trace = synthetic_trace(
        seed=seed, clients=int(rng.integers(1, 6)),
        requests_per_client=int(rng.integers(1, 4)),
        scenes=("fern", "fortress"), qualities=qualities,
        mean_gap=int(rng.integers(1, 6)),
        burst=bool(rng.integers(0, 2)))
    return config, trace


def _replay(config, trace, store, models):
    return serve.replay(trace, config, store=store, models=models)


@pytest.mark.parametrize("seed", range(N_SCHEDULES))
def test_scheduler_invariants(seed, store, models):
    config, trace = _random_setup(seed)
    result = _replay(config, trace, store, models)
    scheduler = result.scheduler

    # --- 1:1 mapping: every submitted request answered exactly once.
    submitted_ids = [request.request_id for _, request in trace]
    answered_ids = [response.request_id for response in result.responses]
    assert sorted(answered_ids) == sorted(submitted_ids)
    assert len(set(answered_ids)) == len(answered_ids)

    # --- Status partition and counter accounting.
    by_status = {"ok": 0, "error": 0, "shed": 0}
    for response in result.responses:
        by_status[response.status] += 1
    assert by_status["error"] == 0           # no faults in this loop
    assert by_status["ok"] == scheduler.counters["completed"]
    assert by_status["shed"] == scheduler.counters["shed"]
    assert scheduler.counters["submitted"] \
        == len(trace) - by_status["shed"]
    assert scheduler.idle

    # --- No starvation: first dispatch within the batch window.
    for response in result.ok_responses():
        waited = response.stats["first_dispatch_tick"] \
            - response.submitted_tick
        assert 0 <= waited <= config.batch_window, \
            f"{response.request_id} waited {waited} ticks " \
            f"(window {config.batch_window})"
        assert response.completed_tick >= \
            response.stats["first_dispatch_tick"]

    # --- Batch-size bound: <= max_batch rays unless atomic.
    assert scheduler.batch_log, "replay dispatched nothing"
    for entry in scheduler.batch_log:
        assert entry["rays"] <= config.max_batch or entry["atomic"], \
            f"oversized non-atomic batch: {entry}"
        assert entry["chunks"] >= entry["requests"] >= 1
    assert sum(e["rays"] for e in scheduler.batch_log) \
        == scheduler.counters["batched_rays"]
    assert scheduler.counters["batched_rays"] \
        >= sum(r.stats["rays"] for r in result.ok_responses())


@pytest.mark.parametrize("seed", [0, 5, 9])
def test_replay_is_deterministic(seed, store, models):
    config, trace = _random_setup(seed)
    first = _replay(config, trace, store, models)
    second = _replay(config, trace, store, models)
    assert first.pixels_crc32() == second.pixels_crc32()
    assert first.ticks == second.ticks
    assert first.scheduler.batch_log == second.scheduler.batch_log
    assert [(r.request_id, r.status, r.submitted_tick, r.completed_tick)
            for r in first.responses] \
        == [(r.request_id, r.status, r.submitted_tick, r.completed_tick)
            for r in second.responses]


def test_trace_itself_deterministic_and_sorted():
    a = synthetic_trace(seed=3, clients=4, requests_per_client=3,
                        scenes=("fern", "fortress"),
                        qualities=("draft", "standard"))
    b = synthetic_trace(seed=3, clients=4, requests_per_client=3,
                        scenes=("fern", "fortress"),
                        qualities=("draft", "standard"))
    assert [(t, r.request_id, r.scene, r.quality) for t, r in a] \
        == [(t, r.request_id, r.scene, r.quality) for t, r in b]
    assert [t for t, _ in a] == sorted(t for t, _ in a)
    different = synthetic_trace(seed=4, clients=4, requests_per_client=3,
                                scenes=("fern", "fortress"),
                                qualities=("draft", "standard"))
    assert [(t, r.request_id) for t, r in a] \
        != [(t, r.request_id) for t, r in different]


def test_burst_trace_all_arrive_at_tick_zero():
    trace = synthetic_trace(seed=0, clients=6, requests_per_client=2,
                            burst=True)
    assert {t for t, _ in trace} == {0}
    assert len(trace) == 12


def test_serve_module_never_reads_wall_clock():
    """The scheduler module has no wall-time dependency at all — the
    only clock is the integer tick threaded through submit/run_tick.
    (The daemon wrapper's pacing sleep lives behind ``tick_s`` and is
    outside every measured path.)"""
    import ast
    import inspect

    tree = ast.parse(inspect.getsource(serve))
    daemon = next(node for node in ast.walk(tree)
                  if isinstance(node, ast.FunctionDef)
                  and node.name == "run_daemon")
    offenders = [
        (node.lineno, node.attr) for node in ast.walk(tree)
        if isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name) and node.value.id == "time"
        and not daemon.lineno <= node.lineno <= daemon.end_lineno]
    assert not offenders, f"wall-clock use outside run_daemon: {offenders}"


def test_percentile_nearest_rank():
    values = list(range(1, 101))
    assert serve.percentile(values, 50) == 50.0
    assert serve.percentile(values, 99) == 99.0
    assert serve.percentile(values, 100) == 100.0
    assert serve.percentile([7], 99) == 7.0
    assert serve.percentile([], 50) == 0.0


def test_max_batch_one_still_serves(store, models):
    """Degenerate budget: every chunk dispatches alone (atomic), and
    requests still complete correctly."""
    config = ServeConfig(batch_window=2, max_batch=1, queue_limit=16,
                         workers=1, source_points=SOURCE_POINTS)
    trace = synthetic_trace(seed=1, clients=3, requests_per_client=1,
                            qualities=("draft",))
    result = _replay(config, trace, store, models)
    assert len(result.ok_responses()) == 3
    assert all(entry["atomic"] for entry in result.scheduler.batch_log)
