"""Disk-backed scene-prep cache: keys, knob, byte-identical hits, and
corrupt-entry self-healing."""

import logging
import os

import numpy as np
import pytest

from repro import models as M
from repro.core import context as ctx_mod
from repro.core import log
from repro.core.context import (clear_scene_memos, llff_references,
                                llff_scene_data)
from repro.core.faults import FaultPlan, injected_faults
from repro.core.scene_cache import ENV_KNOB, SceneCache, recipe_key

TINY = dict(image_scale=1 / 16, num_source_views=3, seed=5, gt_points=8)


@pytest.fixture()
def fresh_memos():
    """Isolate the process-wide memos (tests must not poison — or be
    fed by — the harness-shared prepared scenes)."""
    saved_scene = dict(ctx_mod._SCENE_DATA_MEMO)
    saved_refs = dict(ctx_mod._REFERENCE_MEMO)
    clear_scene_memos()
    yield
    clear_scene_memos()
    ctx_mod._SCENE_DATA_MEMO.update(saved_scene)
    ctx_mod._REFERENCE_MEMO.update(saved_refs)


class TestRecipeKey:
    def test_stable_and_parameter_sensitive(self):
        key = recipe_key("llff-src-fern", scale=0.125, views=10, seed=1)
        assert key == recipe_key("llff-src-fern", scale=0.125, views=10,
                                 seed=1)
        assert key.startswith("llff-src-fern-")
        assert key != recipe_key("llff-src-fern", scale=0.125, views=10,
                                 seed=2)
        assert key != recipe_key("llff-src-horns", scale=0.125, views=10,
                                 seed=1)


class TestKnob:
    def test_off_values_disable(self, monkeypatch):
        for value in ("", "0", "off", "none", "disabled", "OFF"):
            monkeypatch.setenv(ENV_KNOB, value)
            assert SceneCache.from_env() is None
        monkeypatch.delenv(ENV_KNOB)
        assert SceneCache.from_env() is None

    def test_env_and_explicit_paths(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_KNOB, str(tmp_path / "env"))
        assert SceneCache.from_env().directory == str(tmp_path / "env")
        explicit = SceneCache.from_env(str(tmp_path / "explicit"))
        assert explicit.directory == str(tmp_path / "explicit")

    def test_cache_none_disables_even_with_env_set(
            self, monkeypatch, tmp_path, fresh_memos):
        # An explicitly disabled cache (e.g. a RunContext with an
        # off-value cache_dir) must not be re-enabled by the env knob.
        monkeypatch.setenv(ENV_KNOB, str(tmp_path))
        llff_scene_data(names=("fortress",), cache=None, **TINY)
        assert os.listdir(tmp_path) == []

    def test_run_context_off_value_disables(self, monkeypatch, tmp_path,
                                            fresh_memos):
        from repro.core.context import RunContext

        monkeypatch.setenv(ENV_KNOB, str(tmp_path))
        ctx = RunContext(cache_dir="off")
        assert ctx.scene_cache() is None
        ctx.scene_data(names=("fortress",), **TINY)
        assert os.listdir(tmp_path) == []


class TestStoreLoad:
    def test_round_trip_is_byte_identical(self, tmp_path):
        cache = SceneCache(str(tmp_path))
        array = np.random.default_rng(0).normal(size=(3, 4, 5))
        cache.store("unit", array)
        loaded = cache.load("unit")
        assert loaded.dtype == array.dtype
        assert loaded.tobytes() == array.tobytes()

    def test_miss_returns_none(self, tmp_path):
        assert SceneCache(str(tmp_path)).load("absent") is None

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = SceneCache(str(tmp_path))
        cache.store("broken", np.ones((4, 4)))
        path = cache.path_for("broken")
        with open(path, "r+b") as handle:
            handle.truncate(10)
        assert cache.load("broken") is None

    def test_store_leaves_no_temp_files(self, tmp_path):
        cache = SceneCache(str(tmp_path))
        cache.store("clean", np.zeros(3))
        assert sorted(os.listdir(tmp_path)) == ["clean.npy"]


class TestSelfHeal:
    """Satellite: a corrupt entry is deleted on read failure (with a
    structured warning) so the next store writes a good one back."""

    def test_truncated_entry_is_deleted_and_warned(self, tmp_path,
                                                   caplog):
        cache = SceneCache(str(tmp_path))
        cache.store("damaged", np.arange(24.0).reshape(4, 6))
        path = cache.path_for("damaged")
        with open(path, "r+b") as handle:
            handle.truncate(10)
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert cache.load("damaged") is None
        assert not os.path.exists(path)      # bad file gone
        events = log.events_named(caplog.records,
                                  "scene_cache.corrupt_entry")
        assert len(events) == 1
        assert events[0].repro_fields["key"] == "damaged"
        assert events[0].repro_fields["deleted"] is True

    def test_heal_then_store_recovers_round_trip(self, tmp_path):
        cache = SceneCache(str(tmp_path))
        array = np.arange(12.0).reshape(3, 4)
        cache.store("entry", array)
        with open(cache.path_for("entry"), "r+b") as handle:
            handle.truncate(4)
        assert cache.load("entry") is None   # heals: entry removed
        cache.store("entry", array)          # caller recomputed
        assert cache.load("entry").tobytes() == array.tobytes()

    def test_foreign_file_is_healed(self, tmp_path, caplog):
        cache = SceneCache(str(tmp_path))
        path = cache.path_for("foreign")
        with open(path, "w") as handle:
            handle.write("not an npy file at all")
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert cache.load("foreign") is None
        assert not os.path.exists(path)
        assert log.events_named(caplog.records,
                                "scene_cache.corrupt_entry")

    def test_injected_cache_corruption_heals(self, tmp_path, caplog):
        cache = SceneCache(str(tmp_path))
        cache.store("llff-src-fern-deadbeef", np.ones(5))
        plan = FaultPlan(cache_keys=("llff-src-fern",))
        with caplog.at_level(logging.WARNING, logger="repro"):
            with injected_faults(plan):
                assert cache.load("llff-src-fern-deadbeef") is None
        assert not os.path.exists(cache.path_for("llff-src-fern-deadbeef"))
        events = log.events_named(caplog.records,
                                  "scene_cache.corrupt_entry")
        assert events[0].repro_fields["reason"] == "injected corruption"
        # Keys the plan does not name are untouched.
        cache.store("other", np.zeros(2))
        with injected_faults(plan):
            assert cache.load("other") is not None


class TestPreparedSceneCache:
    def test_warm_hit_skips_prepare_and_is_byte_identical(
            self, tmp_path, monkeypatch, fresh_memos):
        monkeypatch.setenv(ENV_KNOB, str(tmp_path))
        prepare_calls = []
        original = M.SceneData.prepare

        def counting_prepare(scene, gt_points=128, workers=1):
            prepare_calls.append(scene.name)
            return original(scene, gt_points=gt_points, workers=workers)

        monkeypatch.setattr(M.SceneData, "prepare",
                            staticmethod(counting_prepare))

        cold = llff_scene_data(names=("fortress",), **TINY)["fortress"]
        assert len(prepare_calls) == 1
        assert os.listdir(tmp_path)          # entry persisted

        clear_scene_memos()                  # simulate a new session
        warm = llff_scene_data(names=("fortress",), **TINY)["fortress"]
        assert len(prepare_calls) == 1        # no re-render on the hit
        assert warm.source_images.tobytes() == cold.source_images.tobytes()
        assert warm.source_images.dtype == cold.source_images.dtype

        # Cache off: a from-scratch prep matches the cached arrays, so
        # hits are byte-identical to cold preparation.
        monkeypatch.setenv(ENV_KNOB, "off")
        clear_scene_memos()
        scratch = llff_scene_data(names=("fortress",), **TINY)["fortress"]
        assert len(prepare_calls) == 2
        assert scratch.source_images.tobytes() \
            == warm.source_images.tobytes()

    def test_reference_cache_round_trip(self, tmp_path, monkeypatch,
                                        fresh_memos):
        monkeypatch.setenv(ENV_KNOB, str(tmp_path))
        render_calls = []
        original = M.render_target_reference

        def counting_render(scene, num_points=192, step=8):
            render_calls.append(scene.name)
            return original(scene, num_points=num_points, step=step)

        monkeypatch.setattr(ctx_mod.M, "render_target_reference",
                            counting_render)

        key = (TINY["image_scale"], TINY["num_source_views"],
               TINY["seed"], TINY["gt_points"])
        data = llff_scene_data(names=("fortress",), **TINY)
        cold = llff_references(data, key, eval_step=16)["fortress"]
        assert len(render_calls) == 1

        clear_scene_memos()
        data = llff_scene_data(names=("fortress",), **TINY)
        warm = llff_references(data, key, eval_step=16)["fortress"]
        assert len(render_calls) == 1          # disk hit, no re-render
        assert warm.tobytes() == cold.tobytes()

        # A different eval step is a different recipe -> cold again.
        llff_references(data, key, eval_step=8)
        assert len(render_calls) == 2
