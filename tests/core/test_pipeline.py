"""Co-design pipeline tests (small-frame where a simulator runs)."""

import numpy as np
import pytest

from repro.core.pipeline import (CoDesignPipeline, dataflow_ablation,
                                 hardware_rig)
from repro.scenes.datasets import DATASETS, DatasetSpec


class TestHardwareRig:
    @pytest.mark.parametrize("family", ["llff", "nerf_synthetic",
                                        "deepvoxels"])
    def test_rig_sees_scene(self, family):
        rig = hardware_rig(DATASETS[family], num_views=6)
        assert rig.novel.in_view(np.zeros((1, 3)))[0]
        for source in rig.sources:
            assert source.in_view(np.zeros((1, 3)))[0]

    def test_sources_cluster_near_novel(self):
        """IBRNet-style closest-view conditioning: every source's viewing
        direction is within ~25 degrees of the novel view's."""
        rig = hardware_rig(DATASETS["nerf_synthetic"], num_views=10)
        for source in rig.sources:
            cosine = float(np.dot(source.forward, rig.novel.forward))
            assert cosine > np.cos(np.radians(25.0))

    def test_requested_view_count(self):
        rig = hardware_rig(DATASETS["llff"], num_views=7)
        assert len(rig.sources) == 7

    def test_reproducible_by_seed(self):
        a = hardware_rig(DATASETS["llff"], 4, seed=3)
        b = hardware_rig(DATASETS["llff"], 4, seed=3)
        assert np.allclose(a.sources[1].center, b.sources[1].center)


class TestPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        return CoDesignPipeline()

    def test_dataset_workload_resolution(self, pipeline):
        workload = pipeline.dataset_workload("llff")
        assert (workload.height, workload.width) == (756, 1008)
        assert workload.prune_scale == 0.25

    def test_gpu_simulation(self, pipeline):
        simulation = pipeline.simulate_gpu("rtx2080ti", "deepvoxels")
        assert simulation.total_time_s > 0

    def test_unknown_gpu_raises(self, pipeline):
        with pytest.raises(KeyError):
            pipeline.simulate_gpu("h100", "llff")

    def test_fps_comparison_keys_and_ordering(self, pipeline):
        result = pipeline.fps_comparison("deepvoxels")
        assert result["gen_nerf_fps"] > result["rtx2080ti_fps"] \
            > result["tx2_fps"]
        assert result["speedup_vs_2080ti"] > 50


SMALL_SPEC = DatasetSpec("small", width=128, height=96, fov_x_deg=50.0,
                         near=2.0, far=6.0, rig="orbit", rig_distance=4.0)


def test_dataflow_ablation_runs_small(monkeypatch):
    monkeypatch.setitem(DATASETS, "small", SMALL_SPEC)
    results = dataflow_ablation("small", num_views=4)
    assert set(results) == {"ours", "var1", "var2", "var3"}
    assert results["ours"].total_time_s \
        <= min(r.total_time_s for r in results.values()) * 1.01
