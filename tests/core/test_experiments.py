"""Experiment registry smoke tests (fast configurations).

Full paper-scale regeneration lives in ``benchmarks/``; here each
runner executes with reduced knobs and its output structure is checked.
"""

import numpy as np
import pytest

from repro import core


class TestCheapRunners:
    def test_table1_rows(self):
        rows = core.run_table1()
        assert len(rows) == 5
        names = [row[0] for row in rows]
        assert "Total" in names

    def test_fig2_structure(self):
        results = core.run_fig2()
        assert set(results) == {"rtx2080ti", "tx2"}
        llff = results["rtx2080ti"]["llff"]
        assert llff["acquire_features"] > 0
        assert llff["total"] >= llff["acquire_features"]

    def test_table4_rows(self):
        rows = core.run_table4()
        devices = [row["device"] for row in rows]
        assert any("simulated" in d for d in devices)
        assert any("ICARUS" in d for d in devices)
        simulated = rows[0]
        assert simulated["typical_fps"] > 1.0


class TestFig9Small:
    def test_curve_structure_and_ordering(self):
        results = core.run_fig9(datasets=["nerf_synthetic"], step=8,
                                image_scale=1 / 12,
                                pairs=((8, 16),),
                                uniform_points=(24,))
        curves = results["nerf_synthetic"]
        gen = curves["gen_nerf"][0]
        ibr = curves["ibrnet"][0]
        assert abs(gen.avg_points - ibr.avg_points) < 6
        assert gen.psnr > ibr.psnr   # the paper's headline ordering
        assert gen.mflops_per_pixel < ibr.mflops_per_pixel * 1.2


class TestAblationRunners:
    def test_coarse_budget_rows(self):
        rows = core.run_coarse_budget_ablation(
            image_scale=1 / 16, step=8, coarse_counts=(8,), taus=(1e-3,),
            focused=16)
        assert len(rows) == 1
        assert rows[0]["psnr"] > 20

    def test_patch_candidate_rows(self):
        rows = core.run_patch_candidate_ablation()
        assert len(rows) >= 3
        assert all(row["fps"] > 0 for row in rows)


@pytest.mark.slow
class TestTrainingRunners:
    def test_table2_tiny(self):
        rows = core.run_table2(train_steps=12, eval_step=16,
                               image_scale=1 / 16, num_points=12,
                               scenes=("fortress",), num_source_views=4)
        methods = [row.method for row in rows]
        assert "vanilla IBRNet" in methods
        assert any("Ray-Mixer" in m for m in methods)
        assert len(rows) == 7

    def test_table3_tiny(self):
        rows = core.run_table3(train_steps=10, finetune_steps=4,
                               eval_step=16, image_scale=1 / 16,
                               num_points=10, view_counts=(4,))
        assert len(rows) == 2
        assert all(row.per_scene for row in rows)


# ----------------------------------------------------------------------
# Multi-process variant runner
# ----------------------------------------------------------------------
def _square(value):          # module-level so process pools can pickle it
    return value * value


def _slow_identity(value, delay):
    import time

    time.sleep(delay)
    return value


def _touch_marker(path):
    with open(path, "a") as handle:
        handle.write("ran\n")


def _raise_oserror():
    raise FileNotFoundError("missing scene file")


class TestVariantRunner:
    def test_sequential_and_parallel_agree(self):
        tasks = [(_square, {"value": v}) for v in range(5)]
        sequential = core.run_variants(tasks, workers=1)
        parallel = core.run_variants(tasks, workers=3)
        assert sequential == [0, 1, 4, 9, 16]
        assert parallel == sequential

    def test_result_order_is_task_order_not_completion_order(self):
        # The first task finishes last; results must still come back in
        # submission order.
        tasks = [(_slow_identity, {"value": 0, "delay": 0.4}),
                 (_slow_identity, {"value": 1, "delay": 0.0}),
                 (_slow_identity, {"value": 2, "delay": 0.0})]
        assert core.run_variants(tasks, workers=3) == [0, 1, 2]

    def test_unit_exceptions_propagate(self):
        def boom():
            raise RuntimeError("unit failure")

        with pytest.raises(RuntimeError, match="unit failure"):
            core.run_variants([(boom, {})], workers=1)

    def test_unit_oserror_propagates_without_sequential_rerun(self,
                                                              tmp_path):
        # A unit raising an OSError subclass is a *unit* failure, not a
        # pool failure: it must propagate from the parallel path and
        # must not trigger the sequential fallback (which would quietly
        # re-run every — potentially hours-long — unit).  The marker
        # file counts how often the healthy unit executed.
        marker = str(tmp_path / "ran")
        with pytest.raises(FileNotFoundError, match="missing scene"):
            core.run_variants([(_touch_marker, {"path": marker}),
                               (_raise_oserror, {})], workers=2)
        with open(marker) as handle:
            assert len(handle.readlines()) == 1

    def test_blocked_process_spawning_falls_back_sequentially(
            self, monkeypatch):
        # Worker processes spawn lazily inside ``submit``; a sandbox
        # that blocks process creation surfaces a PermissionError there
        # and the runner must fall back to the sequential path instead
        # of crashing the harness.
        import concurrent.futures

        def blocked_submit(self, fn, *args, **kwargs):
            raise PermissionError("process spawning blocked")

        monkeypatch.setattr(
            concurrent.futures.ProcessPoolExecutor, "submit",
            blocked_submit)
        tasks = [(_square, {"value": v}) for v in range(3)]
        assert core.run_variants(tasks, workers=2) == [0, 1, 4]

    def test_detect_workers_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "6")
        assert core.detect_workers(10) == 6          # env wins over cpu
        assert core.detect_workers(3) == 3           # clamped to tasks
        assert core.detect_workers(10, workers=2) == 2   # arg wins over env
        monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
        assert core.detect_workers(1) == 1           # bad env ignored
        monkeypatch.delenv("REPRO_WORKERS")
        assert core.detect_workers(0) == 1           # never below one

    def test_detect_workers_malformed_env_falls_back(self, monkeypatch,
                                                     caplog):
        # Malformed REPRO_WORKERS values must fall back cleanly, never
        # raise mid-harness: non-numeric degrades to CPU autodetection
        # with a structured knob.ignored warning, non-positive clamps
        # to the sequential path (the historical semantics of
        # REPRO_WORKERS=0).
        import logging

        from repro.core import log, runner

        monkeypatch.setattr(runner.os, "cpu_count", lambda: 4)
        with caplog.at_level(logging.WARNING, logger="repro"):
            for bad in ("not-a-number", "2.5"):
                caplog.clear()
                monkeypatch.setenv("REPRO_WORKERS", bad)
                assert core.detect_workers(10) == 4, bad
                assert log.events_named(caplog.records, "knob.ignored")
            for sequential in ("0", "-3"):
                caplog.clear()
                monkeypatch.setenv("REPRO_WORKERS", sequential)
                assert core.detect_workers(10) == 1, sequential
                assert not caplog.records
            # Empty / whitespace-only values are silently skipped.
            for empty in ("", "   "):
                caplog.clear()
                monkeypatch.setenv("REPRO_WORKERS", empty)
                assert core.detect_workers(10) == 4
                assert not caplog.records
        # Whitespace-padded integers still parse.
        monkeypatch.setenv("REPRO_WORKERS", "  3  ")
        assert core.detect_workers(10) == 3

    def test_detect_workers_malformed_argument_falls_back(
            self, monkeypatch, caplog):
        import logging

        from repro.core import log, runner

        monkeypatch.setattr(runner.os, "cpu_count", lambda: 4)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert core.detect_workers(10, workers="garbage") == 4
        record, = log.events_named(caplog.records, "knob.ignored")
        assert record.repro_fields["knob"] == "workers"
        # Explicit non-positive counts keep the historical clamp to the
        # sequential path (not a silent upgrade to full parallelism).
        assert core.detect_workers(10, workers=0) == 1
        assert core.detect_workers(10, workers=-2) == 1
        assert core.detect_workers(10, workers="5") == 5  # str int ok


@pytest.mark.slow
class TestParallelFigureHarness:
    """The acceptance property: table2/table3 rows are byte-identical
    whether the variant units run in one process or a pool."""

    @staticmethod
    def _as_tuples(rows):
        return [(row.method, row.mflops_per_pixel,
                 sorted(row.per_scene.items())) for row in rows]

    def test_table2_rows_identical_across_runners(self):
        kwargs = dict(train_steps=6, eval_step=16, image_scale=1 / 16,
                      num_points=10, scenes=("fortress",),
                      num_source_views=4)
        sequential = core.run_table2(workers=1, **kwargs)
        parallel = core.run_table2(workers=3, **kwargs)
        assert self._as_tuples(sequential) == self._as_tuples(parallel)

    def test_table3_rows_identical_across_runners(self):
        kwargs = dict(train_steps=5, finetune_steps=3, eval_step=16,
                      image_scale=1 / 16, num_points=10, view_counts=(4,))
        sequential = core.run_table3(workers=1, **kwargs)
        parallel = core.run_table3(workers=2, **kwargs)
        assert self._as_tuples(sequential) == self._as_tuples(parallel)

    def test_fig9_curves_identical_across_runners(self):
        kwargs = dict(datasets=["nerf_synthetic", "llff"], step=16,
                      image_scale=1 / 16, pairs=((4, 8),),
                      uniform_points=(12,), reference_points=64)
        sequential = core.run_fig9(workers=1, **kwargs)
        parallel = core.run_fig9(workers=2, **kwargs)
        assert list(sequential) == list(parallel)
        for dataset in sequential:
            for curve in ("gen_nerf", "ibrnet"):
                seq_pts = sequential[dataset][curve]
                par_pts = parallel[dataset][curve]
                assert [(p.label, p.avg_points, p.mflops_per_pixel, p.psnr)
                        for p in seq_pts] \
                    == [(p.label, p.avg_points, p.mflops_per_pixel, p.psnr)
                        for p in par_pts]

    def test_fig11_rows_identical_across_runners(self):
        kwargs = dict(view_counts=(6, 2), point_counts=(96,))
        sequential = core.run_fig11(workers=1, **kwargs)
        parallel = core.run_fig11(workers=3, **kwargs)
        assert sequential == parallel
        assert [row["num_views"] for row in sequential["views"]] == [6, 2]
        assert [row["points_per_ray"]
                for row in sequential["points"]] == [96]
