"""Experiment registry smoke tests (fast configurations).

Full paper-scale regeneration lives in ``benchmarks/``; here each
runner executes with reduced knobs and its output structure is checked.
"""

import numpy as np
import pytest

from repro import core


class TestCheapRunners:
    def test_table1_rows(self):
        rows = core.run_table1()
        assert len(rows) == 5
        names = [row[0] for row in rows]
        assert "Total" in names

    def test_fig2_structure(self):
        results = core.run_fig2()
        assert set(results) == {"rtx2080ti", "tx2"}
        llff = results["rtx2080ti"]["llff"]
        assert llff["acquire_features"] > 0
        assert llff["total"] >= llff["acquire_features"]

    def test_table4_rows(self):
        rows = core.run_table4()
        devices = [row["device"] for row in rows]
        assert any("simulated" in d for d in devices)
        assert any("ICARUS" in d for d in devices)
        simulated = rows[0]
        assert simulated["typical_fps"] > 1.0


class TestFig9Small:
    def test_curve_structure_and_ordering(self):
        results = core.run_fig9(datasets=["nerf_synthetic"], step=8,
                                image_scale=1 / 12,
                                pairs=((8, 16),),
                                uniform_points=(24,))
        curves = results["nerf_synthetic"]
        gen = curves["gen_nerf"][0]
        ibr = curves["ibrnet"][0]
        assert abs(gen.avg_points - ibr.avg_points) < 6
        assert gen.psnr > ibr.psnr   # the paper's headline ordering
        assert gen.mflops_per_pixel < ibr.mflops_per_pixel * 1.2


class TestAblationRunners:
    def test_coarse_budget_rows(self):
        rows = core.run_coarse_budget_ablation(
            image_scale=1 / 16, step=8, coarse_counts=(8,), taus=(1e-3,),
            focused=16)
        assert len(rows) == 1
        assert rows[0]["psnr"] > 20

    def test_patch_candidate_rows(self):
        rows = core.run_patch_candidate_ablation()
        assert len(rows) >= 3
        assert all(row["fps"] > 0 for row in rows)


@pytest.mark.slow
class TestTrainingRunners:
    def test_table2_tiny(self):
        rows = core.run_table2(train_steps=12, eval_step=16,
                               image_scale=1 / 16, num_points=12,
                               scenes=("fortress",), num_source_views=4)
        methods = [row.method for row in rows]
        assert "vanilla IBRNet" in methods
        assert any("Ray-Mixer" in m for m in methods)
        assert len(rows) == 7

    def test_table3_tiny(self):
        rows = core.run_table3(train_steps=10, finetune_steps=4,
                               eval_step=16, image_scale=1 / 16,
                               num_points=10, view_counts=(4,))
        assert len(rows) == 2
        assert all(row.per_scene for row in rows)
