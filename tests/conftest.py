"""Shared fixtures: small scenes, rigs, and RNGs reused across the suite.

Session-scoped where construction is expensive (procedural scenes render
their source views once); tests treat them as read-only.
"""

import numpy as np
import pytest

from repro import models as M
from repro.scenes import make_scene


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def llff_scene():
    """A tiny LLFF-style scene (63x47) with 6 source views."""
    return make_scene("llff", seed=1, scene_name="fortress",
                      image_scale=1 / 16, num_source_views=6)


@pytest.fixture(scope="session")
def orbit_scene():
    """A tiny NeRF-Synthetic-style scene (50x50) with 6 source views."""
    return make_scene("nerf_synthetic", seed=3, image_scale=1 / 16,
                      num_source_views=6)


@pytest.fixture(scope="session")
def llff_scene_data(llff_scene):
    return M.SceneData.prepare(llff_scene, gt_points=96)


@pytest.fixture(scope="session")
def orbit_scene_data(orbit_scene):
    return M.SceneData.prepare(orbit_scene, gt_points=96)


def numerical_gradient(func, array, eps=1e-5):
    """Central-difference gradient of a scalar function of ``array``."""
    grad = np.zeros_like(array, dtype=np.float64)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        index = it.multi_index
        original = array[index]
        array[index] = original + eps
        high = func(array)
        array[index] = original - eps
        low = func(array)
        array[index] = original
        grad[index] = (high - low) / (2 * eps)
        it.iternext()
    return grad


@pytest.fixture()
def numgrad():
    return numerical_gradient
