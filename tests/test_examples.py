"""Smoke tests: the fast example scripts run end to end.

``quickstart.py`` (minutes of training) is exercised with a reduced
schedule by importing its module and monkey-patching; the two
seconds-scale examples run as subprocesses exactly as a user would.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_sampling_comparison_example():
    out = run_example("sampling_comparison.py")
    assert "Gen-NeRF 8/16" in out
    assert "PSNR" in out


def test_epipolar_dataflow_example():
    out = run_example("epipolar_dataflow.py", timeout=300)
    assert "Property 1" in out
    assert "greedy plan" in out
    assert "Var-1" in out


@pytest.mark.slow
def test_quickstart_example():
    out = run_example("quickstart.py", timeout=900)
    assert "PSNR" in out
    assert "trained" in out


@pytest.mark.slow
def test_accelerator_simulation_example():
    out = run_example("accelerator_simulation.py", timeout=900)
    assert "Fig. 10" in out
    assert "Fig. 12" in out
    assert "batched frame simulation" in out
    assert "outputs bit-identical" in out
