"""Generalizable NeRF backbone tests."""

import numpy as np
import pytest

from repro import models as M
from repro.nn import Tensor
from repro.geometry import rays_for_pixels, stratified_depths


@pytest.fixture(scope="module")
def small_model():
    cfg = M.ModelConfig(feature_dim=8, view_hidden=8, score_hidden=4,
                        density_hidden=12, density_feature_dim=6,
                        ray_module="transformer", n_max=10, encoder_hidden=4)
    return M.GeneralizableNeRF(cfg, rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def forward_setup(llff_scene_data, small_model):
    scene = llff_scene_data.scene
    maps = small_model.encode_scene(llff_scene_data.source_images)
    bundle = rays_for_pixels(scene.target_camera,
                             np.array([[10.0, 10.0], [30.0, 20.0],
                                       [50.0, 30.0]]),
                             scene.near, scene.far)
    depths = stratified_depths(np.random.default_rng(0), 3, 10, scene.near,
                               scene.far, jitter=False)
    return scene, maps, bundle, depths


class TestForward:
    def test_output_shapes(self, llff_scene_data, small_model,
                           forward_setup):
        scene, maps, bundle, depths = forward_setup
        points = bundle.points_at(depths)
        out = small_model(points, bundle.directions, scene.source_cameras,
                          maps, llff_scene_data.source_images)
        assert out.rgb.shape == (3, 10, 3)
        assert out.sigma.shape == (3, 10)
        assert out.density_features.shape == (3, 10, 6)
        assert out.any_visible.shape == (3, 10)

    def test_sigma_nonnegative(self, llff_scene_data, small_model,
                               forward_setup):
        scene, maps, bundle, depths = forward_setup
        out = small_model(bundle.points_at(depths), bundle.directions,
                          scene.source_cameras, maps,
                          llff_scene_data.source_images)
        assert (out.sigma.data >= 0).all()

    def test_rgb_is_blend_of_sources(self, llff_scene_data, small_model,
                                     forward_setup):
        """Colour comes from blending source pixels, so it stays within
        the per-point min/max of the fetched source colours."""
        scene, maps, bundle, depths = forward_setup
        out = small_model(bundle.points_at(depths), bundle.directions,
                          scene.source_cameras, maps,
                          llff_scene_data.source_images)
        assert (out.rgb.data >= -1e-5).all()
        assert (out.rgb.data <= 1 + 1e-5).all()

    def test_invisible_points_get_zero_sigma(self, llff_scene_data,
                                             small_model):
        scene = llff_scene_data.scene
        maps = small_model.encode_scene(llff_scene_data.source_images)
        behind = np.full((1, 4, 3), 100.0)   # far outside every frustum
        dirs = np.array([[0.0, 0.0, 1.0]])
        out = small_model(behind, dirs, scene.source_cameras, maps,
                          llff_scene_data.source_images)
        assert np.allclose(out.sigma.data, 0.0)

    def test_mask_excludes_points(self, llff_scene_data, small_model,
                                  forward_setup):
        scene, maps, bundle, depths = forward_setup
        mask = np.ones((3, 10), dtype=bool)
        mask[:, 5:] = False
        out = small_model(bundle.points_at(depths), bundle.directions,
                          scene.source_cameras, maps,
                          llff_scene_data.source_images, mask=mask)
        assert np.allclose(out.sigma.data[:, 5:], 0.0)

    def test_gradients_reach_all_parameters(self, llff_scene_data,
                                            small_model, forward_setup):
        scene, maps, bundle, depths = forward_setup
        small_model.zero_grad()
        maps = small_model.encode_scene(llff_scene_data.source_images)
        out = small_model(bundle.points_at(depths), bundle.directions,
                          scene.source_cameras, maps,
                          llff_scene_data.source_images)
        (out.rgb.sum() + out.sigma.sum()).backward()
        missing = [name for name, p in small_model.named_parameters()
                   if p.grad is None]
        assert not missing, f"no gradient for {missing}"


class TestConfig:
    def test_scaled_shrinks_widths(self):
        cfg = M.ModelConfig(feature_dim=16, view_hidden=16)
        scaled = cfg.scaled(0.25)
        assert scaled.feature_dim == 4
        assert scaled.view_hidden == 4
        assert np.isclose(scaled.channel_scale, 0.25)

    def test_scaled_floors_at_two(self):
        cfg = M.ModelConfig(view_hidden=4)
        assert cfg.scaled(0.1).view_hidden == 2

    def test_unknown_ray_module_raises(self):
        with pytest.raises(ValueError):
            M.GeneralizableNeRF(M.ModelConfig(ray_module="lstm"))

    def test_flops_scale_with_views(self, small_model):
        assert small_model.per_point_flops(10) > small_model.per_point_flops(4)

    def test_ray_module_flops(self, small_model):
        assert small_model.per_ray_flops(16) > 0
