"""``adaptive_chunk`` edge cases: override precedence, degenerate ray
counts, and the exact one-chunk -> streaming boundary."""

from repro.models.renderer import _CHUNK_CELL_BUDGET, adaptive_chunk


class TestRequestedOverride:
    def test_requested_wins_over_adaptive_choice(self):
        # A tiny render would fit in one chunk; the explicit tile size
        # must win anyway (chunking is semantically visible to the
        # Gen-NeRF budget redistribution).
        assert adaptive_chunk(100, 4, 16, requested=32) == 32

    def test_requested_wins_even_when_larger_than_budget_allows(self):
        assert adaptive_chunk(10**6, 10, 128, requested=123456) == 123456

    def test_requested_wins_at_degenerate_sizes(self):
        assert adaptive_chunk(0, 4, 16, requested=7) == 7
        assert adaptive_chunk(1, 4, 16, requested=1) == 1


class TestDegenerateRayCounts:
    def test_zero_rays_yields_positive_chunk(self):
        # An empty bundle must not produce chunk=0 (range step of zero).
        assert adaptive_chunk(0, 4, 16) == 1

    def test_one_ray_is_one_chunk(self):
        assert adaptive_chunk(1, 4, 16) == 1

    def test_zero_views_or_points_never_divides_by_zero(self):
        assert adaptive_chunk(100, 0, 16) == 100
        assert adaptive_chunk(100, 4, 0) == 100


class TestStreamingBoundary:
    def test_exact_budget_fit_renders_in_one_chunk(self):
        views, points = 4, 50          # 200 cells per ray
        cells_per_ray = views * points
        num_rays = _CHUNK_CELL_BUDGET // cells_per_ray   # exact fit
        assert num_rays * cells_per_ray == _CHUNK_CELL_BUDGET
        assert adaptive_chunk(num_rays, views, points) == num_rays

    def test_one_ray_past_budget_flips_to_streaming(self):
        views, points = 4, 50
        cells_per_ray = views * points
        num_rays = _CHUNK_CELL_BUDGET // cells_per_ray + 1
        chunk = adaptive_chunk(num_rays, views, points)
        assert chunk == max(256, _CHUNK_CELL_BUDGET // cells_per_ray)
        assert chunk < num_rays

    def test_streaming_chunk_never_below_floor(self):
        # Monstrous per-ray cost: the 256-ray floor bounds per-chunk
        # Python overhead even when the budget says fewer.
        assert adaptive_chunk(10**6, 100, 10**4) == 256

    def test_custom_budget_is_respected(self):
        assert adaptive_chunk(10, 1, 100, cell_budget=1000) == 10
        assert adaptive_chunk(11, 1, 100, cell_budget=1000) == 256
