"""Ray transformer, Ray-Mixer, and pointwise density head tests."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.models.ray_mixer import RayMixer
from repro.models.ray_transformer import (PointwiseDensityHead,
                                          RayTransformer)


class TestRayMixer:
    def test_output_shape(self, rng):
        mixer = RayMixer(density_feature_dim=8, n_max=16, rng=rng)
        out = mixer(Tensor(rng.standard_normal((4, 16, 8))))
        assert out.shape == (4, 16)

    def test_rejects_wrong_point_count(self, rng):
        mixer = RayMixer(8, n_max=16, rng=rng)
        with pytest.raises(ValueError):
            mixer(Tensor(rng.standard_normal((2, 8, 8))))

    def test_token_mixing_couples_points(self, rng):
        """Eq. 4: changing one point's features changes other points'
        logits (unlike a pointwise head)."""
        mixer = RayMixer(8, n_max=12, rng=rng)
        base = rng.standard_normal((1, 12, 8)).astype(np.float32)
        out_a = mixer(Tensor(base.copy())).data
        perturbed = base.copy()
        perturbed[0, 3] += 1.0
        out_b = mixer(Tensor(perturbed)).data
        others = np.delete(np.arange(12), 3)
        assert np.abs(out_a[0, others] - out_b[0, others]).max() > 1e-6

    def test_masked_points_inject_nothing(self, rng):
        mixer = RayMixer(8, n_max=12, rng=rng)
        base = rng.standard_normal((1, 12, 8)).astype(np.float32)
        mask = np.ones((1, 12), dtype=bool)
        mask[0, 9:] = False
        out_a = mixer(Tensor(base.copy()), mask=mask).data
        poisoned = base.copy()
        poisoned[0, 9:] += 50.0
        out_b = mixer(Tensor(poisoned), mask=mask).data
        assert np.allclose(out_a[0, :9], out_b[0, :9], atol=1e-5)

    def test_gradients_flow(self, rng):
        mixer = RayMixer(8, n_max=10, rng=rng)
        x = Tensor(rng.standard_normal((3, 10, 8)), requires_grad=True)
        mixer(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in mixer.parameters())

    def test_flops_formula(self, rng):
        mixer = RayMixer(8, n_max=64, rng=rng)
        expected = 2 * (8 * 64 * 64) + 2 * (64 * 64) + 2 * (64 * 8)
        assert mixer.flops(1, 64) == expected

    def test_flops_eliminate_quadratic_attention(self, rng):
        """At matched dims the mixer's cost is linear in D while the
        transformer carries the P^2 attention term (the paper's point)."""
        points = 128
        mixer = RayMixer(8, n_max=points, rng=rng)
        transformer = RayTransformer(8, qk_dim=8, rng=rng)
        # Mixer token-mix is P^2 * D; attention is 4 * P^2 * qk + proj.
        assert mixer.flops(1, points) < transformer.flops(1, points)


class TestRayTransformer:
    def test_output_shape(self, rng):
        transformer = RayTransformer(8, qk_dim=4, rng=rng)
        out = transformer(Tensor(rng.standard_normal((3, 20, 8))))
        assert out.shape == (3, 20)

    def test_variable_point_count_supported(self, rng):
        """Unlike the mixer, attention handles any P."""
        transformer = RayTransformer(8, qk_dim=4, rng=rng)
        for points in (5, 17, 33):
            out = transformer(Tensor(rng.standard_normal((2, points, 8))))
            assert out.shape == (2, points)

    def test_mask_blocks_attention(self, rng):
        transformer = RayTransformer(8, qk_dim=4, rng=rng)
        base = rng.standard_normal((1, 10, 8)).astype(np.float32)
        mask = np.ones((1, 10), dtype=bool)
        mask[0, 7:] = False
        out_a = transformer(Tensor(base.copy()), mask=mask).data
        poisoned = base.copy()
        poisoned[0, 7:] += 50.0
        out_b = transformer(Tensor(poisoned), mask=mask).data
        assert np.allclose(out_a[0, :7], out_b[0, :7], atol=1e-4)

    def test_flops_quadratic_in_points(self, rng):
        transformer = RayTransformer(8, qk_dim=4, rng=rng)
        assert transformer.flops(1, 64) > 3 * transformer.flops(1, 32) / 2


class TestPointwiseHead:
    def test_no_cross_point_coupling(self, rng):
        head = PointwiseDensityHead(8, rng=rng)
        base = rng.standard_normal((1, 10, 8)).astype(np.float32)
        out_a = head(Tensor(base.copy())).data
        perturbed = base.copy()
        perturbed[0, 3] += 5.0
        out_b = head(Tensor(perturbed)).data
        others = np.delete(np.arange(10), 3)
        assert np.allclose(out_a[0, others], out_b[0, others], atol=1e-6)

    def test_flops_linear(self, rng):
        head = PointwiseDensityHead(8, rng=rng)
        assert head.flops(1, 64) == 2 * head.flops(1, 32)
