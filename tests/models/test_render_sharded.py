"""Sharded-vs-sequential byte-identity for full image renders.

The intra-frame fan-out (``workers=``) computes the same chunk
boundaries as the sequential loop, runs each chunk as an independent
function of its slice, and stitches ``out[start:stop]`` slices in task
order — so the rendered image must be **byte-identical** at any worker
count.  This suite pins that for both models (explicit and adaptive
chunking, hierarchical IBRNet included), the source-view renderer, and
the pool-failure fallback.
"""

import logging

import numpy as np
import pytest

from repro.core import frame_pool, log
from repro.models import (GenNeRF, GenNerfConfig, GeneralizableNeRF,
                          ModelConfig, SceneData, render_image_gen_nerf,
                          render_image_ibrnet, render_source_views)
from repro.scenes.datasets import make_scene

WORKER_COUNTS = (2, 4)

TINY_MODEL = dict(feature_dim=8, view_hidden=8, score_hidden=4,
                  density_hidden=12, density_feature_dim=6,
                  ray_module="mixer", n_max=12, encoder_hidden=6)


@pytest.fixture(scope="module")
def scene():
    return make_scene("llff", seed=3, image_scale=1 / 16)


@pytest.fixture(scope="module")
def source_images(scene):
    return render_source_views(scene, num_points=32)


@pytest.fixture(scope="module")
def ibrnet(scene):
    return GeneralizableNeRF(ModelConfig(**TINY_MODEL),
                             rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def gen_nerf(scene):
    return GenNeRF(GenNerfConfig(fine=ModelConfig(**TINY_MODEL),
                                 coarse_points=6, focused_points=8),
                   rng=np.random.default_rng(0))


@pytest.fixture(scope="module", autouse=True)
def retire_pool():
    yield
    frame_pool.shutdown_pool()


class TestSourceViewsSharded:
    def test_byte_identical_at_all_widths(self, scene):
        sequential = render_source_views(scene, num_points=32, workers=1)
        for workers in WORKER_COUNTS:
            sharded = render_source_views(scene, num_points=32,
                                          workers=workers)
            assert sharded.tobytes() == sequential.tobytes()
            assert sharded.dtype == sequential.dtype
            assert sharded.shape == sequential.shape

    def test_scene_data_prepare_threads_workers(self, scene):
        sequential = SceneData.prepare(scene, gt_points=32, workers=1)
        sharded = SceneData.prepare(scene, gt_points=32, workers=2)
        assert sharded.source_images.tobytes() == \
            sequential.source_images.tobytes()


class TestIbrnetSharded:
    def test_explicit_chunk_byte_identical(self, scene, source_images,
                                           ibrnet):
        sequential = render_image_ibrnet(ibrnet, scene, source_images,
                                         num_points=12, step=4, chunk=64,
                                         workers=1)
        for workers in WORKER_COUNTS:
            sharded = render_image_ibrnet(ibrnet, scene, source_images,
                                          num_points=12, step=4, chunk=64,
                                          workers=workers)
            assert sharded.tobytes() == sequential.tobytes()

    def test_adaptive_chunk_byte_identical(self, scene, source_images,
                                           ibrnet):
        sequential = render_image_ibrnet(ibrnet, scene, source_images,
                                         num_points=12, step=4, workers=1)
        sharded = render_image_ibrnet(ibrnet, scene, source_images,
                                      num_points=12, step=4, workers=2)
        assert sharded.tobytes() == sequential.tobytes()

    def test_hierarchical_byte_identical(self, scene, source_images,
                                         ibrnet):
        # Hierarchical sampling consumes the frame rng chunk by chunk;
        # the sharded path pre-draws those uniforms in chunk order, so
        # at a fixed chunking the image must not depend on workers.
        sequential = render_image_ibrnet(ibrnet, scene, source_images,
                                         num_points=12, step=4, chunk=64,
                                         hierarchical=True, workers=1)
        for workers in WORKER_COUNTS:
            sharded = render_image_ibrnet(ibrnet, scene, source_images,
                                          num_points=12, step=4, chunk=64,
                                          hierarchical=True,
                                          workers=workers)
            assert sharded.tobytes() == sequential.tobytes()


class TestGenNerfSharded:
    def test_explicit_chunk_byte_identical_with_stats(self, scene,
                                                      source_images,
                                                      gen_nerf):
        sequential, seq_stats = render_image_gen_nerf(
            gen_nerf, scene, source_images, step=4, chunk=64, workers=1)
        for workers in WORKER_COUNTS:
            sharded, stats = render_image_gen_nerf(
                gen_nerf, scene, source_images, step=4, chunk=64,
                workers=workers)
            assert sharded.tobytes() == sequential.tobytes()
            assert stats == seq_stats

    def test_adaptive_chunk_byte_identical(self, scene, source_images,
                                           gen_nerf):
        sequential, _ = render_image_gen_nerf(gen_nerf, scene,
                                              source_images, step=4,
                                              workers=1)
        sharded, _ = render_image_gen_nerf(gen_nerf, scene, source_images,
                                           step=4, workers=2)
        assert sharded.tobytes() == sequential.tobytes()


class TestPoolFailureFallback:
    def test_render_survives_pool_failure_byte_identically(
            self, scene, source_images, gen_nerf, monkeypatch, caplog):
        sequential, _ = render_image_gen_nerf(gen_nerf, scene,
                                              source_images, step=4,
                                              chunk=64, workers=1)

        def broken_pool(payload, workers):
            raise OSError("process spawning disabled")

        monkeypatch.setattr(frame_pool, "get_pool", broken_pool)
        with caplog.at_level(logging.WARNING, logger="repro"):
            sharded, _ = render_image_gen_nerf(gen_nerf, scene,
                                               source_images, step=4,
                                               chunk=64, workers=2)
        assert sharded.tobytes() == sequential.tobytes()
        degraded = log.events_named(caplog.records,
                                    "frame_pool.degraded_sequential")
        assert len(degraded) == 1
