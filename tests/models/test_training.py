"""Trainer and renderer integration tests."""

import numpy as np
import pytest

from repro import models as M


@pytest.fixture(scope="module")
def tiny_ibrnet():
    cfg = M.ModelConfig(feature_dim=8, view_hidden=8, score_hidden=4,
                        density_hidden=12, density_feature_dim=6,
                        ray_module="none", n_max=10, encoder_hidden=4)
    return M.GeneralizableNeRF(cfg, rng=np.random.default_rng(3))


class TestTrainer:
    def test_requires_scenes(self, tiny_ibrnet):
        with pytest.raises(ValueError):
            M.Trainer(tiny_ibrnet, [])

    def test_training_is_stable_and_steps_apply(self, tiny_ibrnet,
                                                 llff_scene_data):
        """The colour-blending prior puts the initial loss near its
        floor on this easy scene, so we assert stability (no divergence)
        and that optimisation actually updates parameters; the clear
        loss-decrease check lives in test_gen_nerf (harder objective)."""
        before = {name: p.data.copy()
                  for name, p in tiny_ibrnet.named_parameters()}
        trainer = M.Trainer(tiny_ibrnet, [llff_scene_data],
                            M.TrainConfig(steps=50, rays_per_batch=32,
                                          num_points=10, seed=1))
        losses = trainer.fit(50)
        assert len(losses) == 50
        assert np.mean(losses[-10:]) < np.mean(losses[:10]) * 1.5
        assert all(np.isfinite(losses))
        changed = any(not np.allclose(before[name], p.data)
                      for name, p in tiny_ibrnet.named_parameters())
        assert changed

    def test_history_accumulates(self, tiny_ibrnet, llff_scene_data):
        trainer = M.Trainer(tiny_ibrnet, [llff_scene_data],
                            M.TrainConfig(steps=3, rays_per_batch=8,
                                          num_points=6))
        trainer.fit(2)
        trainer.fit(2)
        assert len(trainer.history) == 4

    def test_sample_pixel_batch_in_bounds(self, llff_scene, rng):
        bundle = M.sample_pixel_batch(llff_scene, 64, rng)
        assert len(bundle) == 64
        width = llff_scene.target_camera.intrinsics.width
        height = llff_scene.target_camera.intrinsics.height
        assert (bundle.pixels[:, 0] <= width).all()
        assert (bundle.pixels[:, 1] <= height).all()

    def test_finetune_runs(self, tiny_ibrnet, llff_scene):
        losses = M.finetune(tiny_ibrnet, llff_scene, steps=4,
                            config=M.TrainConfig(steps=4, rays_per_batch=8,
                                                 num_points=6),
                            gt_points=32)
        assert len(losses) == 4


class TestRenderers:
    def test_render_source_views_shape(self, llff_scene):
        images = M.render_source_views(llff_scene, num_points=24, step=1)
        assert images.shape[0] == llff_scene.num_source_views
        assert images.shape[1] == 3
        assert images.min() >= 0 and images.max() <= 1 + 1e-6

    def test_render_image_ibrnet(self, tiny_ibrnet, llff_scene_data):
        image = M.render_image_ibrnet(tiny_ibrnet, llff_scene_data.scene,
                                      llff_scene_data.source_images,
                                      num_points=8, step=16)
        assert image.ndim == 3 and np.isfinite(image).all()

    def test_render_image_ibrnet_hierarchical(self, tiny_ibrnet,
                                              llff_scene_data):
        image = M.render_image_ibrnet(tiny_ibrnet, llff_scene_data.scene,
                                      llff_scene_data.source_images,
                                      num_points=8, step=16,
                                      hierarchical=True, coarse_points=6)
        assert np.isfinite(image).all()

    def test_render_image_gen_nerf_stats(self, llff_scene_data):
        cfg = M.GenNerfConfig(
            fine=M.ModelConfig(feature_dim=8, view_hidden=8, score_hidden=4,
                               density_hidden=12, density_feature_dim=6,
                               ray_module="mixer", n_max=10,
                               encoder_hidden=4),
            coarse_points=4, focused_points=6)
        model = M.GenNeRF(cfg, rng=np.random.default_rng(0))
        image, stats = M.render_image_gen_nerf(
            model, llff_scene_data.scene, llff_scene_data.source_images,
            step=16)
        assert np.isfinite(image).all()
        assert stats["avg_focused_points"] <= 10
        assert stats["coarse_points"] == 4.0

    def test_reference_render(self, llff_scene):
        ref = M.render_target_reference(llff_scene, num_points=32, step=16)
        assert ref.ndim == 3 and np.isfinite(ref).all()


class TestEncoder:
    def test_encode_views_channel_last(self, rng):
        encoder = M.ConvEncoder(feature_dim=6, hidden=4, rng=rng)
        images = rng.uniform(0, 1, (3, 3, 12, 16)).astype(np.float32)
        maps = encoder.encode_views(images)
        assert len(maps) == 3
        assert maps[0].shape == (6, 8, 6)

    def test_flops_positive(self, rng):
        encoder = M.ConvEncoder(feature_dim=8, hidden=8, rng=rng)
        assert encoder.flops(64, 64, views=2) > 0
