"""Metric tests: PSNR, SSIM, LPIPS proxy."""

import numpy as np
import pytest

from repro.models.metrics import lpips_proxy, mse, psnr, ssim


@pytest.fixture()
def image(rng):
    return rng.uniform(0, 1, (32, 40, 3))


class TestPsnr:
    def test_identical_images(self, image):
        assert psnr(image, image) == 99.0

    def test_known_value(self):
        a = np.zeros((8, 8, 3))
        b = np.full((8, 8, 3), 0.1)
        assert np.isclose(psnr(a, b), 20.0, atol=1e-6)

    def test_monotone_in_noise(self, image, rng):
        small = psnr(image + rng.normal(0, 0.01, image.shape), image)
        large = psnr(image + rng.normal(0, 0.1, image.shape), image)
        assert small > large

    def test_shape_mismatch_raises(self, image):
        with pytest.raises(ValueError):
            mse(image, image[:16])


class TestSsim:
    def test_identical_is_one(self, image):
        assert np.isclose(ssim(image, image), 1.0, atol=1e-9)

    def test_noise_decreases(self, image, rng):
        noisy = np.clip(image + rng.normal(0, 0.2, image.shape), 0, 1)
        assert ssim(noisy, image) < 0.95

    def test_ordering(self, image, rng):
        slightly = np.clip(image + rng.normal(0, 0.02, image.shape), 0, 1)
        badly = np.clip(image + rng.normal(0, 0.3, image.shape), 0, 1)
        assert ssim(slightly, image) > ssim(badly, image)

    def test_grayscale_input(self, rng):
        gray = rng.uniform(0, 1, (16, 16))
        assert np.isclose(ssim(gray, gray), 1.0, atol=1e-9)


class TestLpipsProxy:
    def test_identical_is_zero(self, image):
        assert lpips_proxy(image, image) < 1e-12

    def test_monotone_in_blur(self, image):
        """Perceptual distance grows with blur strength."""
        def blur(img, times):
            out = img.copy()
            for _ in range(times):
                padded = np.pad(out, ((1, 1), (1, 1), (0, 0)), mode="edge")
                out = (padded[:-2, 1:-1] + padded[2:, 1:-1]
                       + padded[1:-1, :-2] + padded[1:-1, 2:]
                       + padded[1:-1, 1:-1]) / 5.0
            return out

        mild = lpips_proxy(blur(image, 1), image)
        strong = lpips_proxy(blur(image, 6), image)
        assert 0 < mild < strong

    def test_deterministic(self, image, rng):
        noisy = np.clip(image + rng.normal(0, 0.1, image.shape), 0, 1)
        assert lpips_proxy(noisy, image) == lpips_proxy(noisy, image)

    def test_shape_mismatch_raises(self, image):
        with pytest.raises(ValueError):
            lpips_proxy(image, image[:16])

    def test_small_images_handled(self, rng):
        tiny = rng.uniform(0, 1, (6, 6, 3))
        other = rng.uniform(0, 1, (6, 6, 3))
        value = lpips_proxy(tiny, other)
        assert np.isfinite(value) and value > 0
