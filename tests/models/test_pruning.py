"""Channel pruning tests: structure, importance, function preservation."""

import numpy as np
import pytest

from repro import models as M
from repro.models.pruning import channel_importance, select_channels
from repro.geometry import rays_for_pixels, stratified_depths


class TestImportance:
    def test_importance_ranks_by_magnitude(self):
        weight_in = np.array([[1.0, 0.1, 5.0],
                              [1.0, 0.1, 5.0]])
        importance = channel_importance(weight_in)
        assert importance.argmax() == 2 and importance.argmin() == 1

    def test_fanout_included(self):
        weight_in = np.ones((2, 3))
        weight_out = np.array([[10.0], [0.0], [0.0]])
        importance = channel_importance(weight_in, weight_out)
        assert importance[0] > importance[1]

    def test_select_channels_sorted(self):
        importance = np.array([0.1, 9.0, 5.0, 7.0])
        keep = select_channels(importance, 2)
        assert list(keep) == [1, 3]

    def test_select_at_least_one(self):
        assert len(select_channels(np.array([1.0, 2.0]), 0)) == 1


@pytest.fixture(scope="module")
def trained_ish_model():
    """A model with structured weights: half the latent channels are
    scaled up so pruning has a clear right answer."""
    cfg = M.ModelConfig(feature_dim=8, view_hidden=8, score_hidden=4,
                        density_hidden=12, density_feature_dim=6,
                        ray_module="mixer", n_max=10, encoder_hidden=4)
    model = M.GeneralizableNeRF(cfg, rng=np.random.default_rng(0))
    # Make channels 0..3 of the latent dominant everywhere.
    for mlp in (model.view_mlp,):
        last = [m for m in mlp.net if hasattr(m, "weight")][-1]
        last.weight.data[:, 4:] *= 0.01
    return model


class TestPruneGeneralizableNerf:
    def test_widths_shrink(self, trained_ish_model):
        pruned = M.prune_generalizable_nerf(trained_ish_model, sparsity=0.5)
        assert pruned.config.view_hidden == 4
        assert pruned.config.density_hidden == 6
        assert pruned.config.feature_dim == 8      # interface preserved
        assert pruned.config.density_feature_dim == 6

    def test_parameter_count_drops(self, trained_ish_model):
        pruned = M.prune_generalizable_nerf(trained_ish_model, sparsity=0.75)
        assert pruned.num_parameters() < trained_ish_model.num_parameters()

    def test_invalid_sparsity(self, trained_ish_model):
        with pytest.raises(ValueError):
            M.prune_generalizable_nerf(trained_ish_model, sparsity=1.5)

    def test_outputs_correlate_with_original(self, trained_ish_model,
                                             llff_scene_data):
        """Pruning dominant channels keeps the function close."""
        scene = llff_scene_data.scene
        pruned = M.prune_generalizable_nerf(trained_ish_model, sparsity=0.5)
        bundle = rays_for_pixels(scene.target_camera,
                                 np.array([[12.0, 9.0], [30.0, 25.0]]),
                                 scene.near, scene.far)
        depths = stratified_depths(np.random.default_rng(0), 2, 10,
                                   scene.near, scene.far, jitter=False)
        points = bundle.points_at(depths)

        maps_full = trained_ish_model.encode_scene(
            llff_scene_data.source_images)
        maps_pruned = pruned.encode_scene(llff_scene_data.source_images)
        out_full = trained_ish_model(points, bundle.directions,
                                     scene.source_cameras, maps_full,
                                     llff_scene_data.source_images)
        out_pruned = pruned(points, bundle.directions, scene.source_cameras,
                            maps_pruned, llff_scene_data.source_images)
        corr = np.corrcoef(out_full.rgb.data.ravel(),
                           out_pruned.rgb.data.ravel())[0, 1]
        assert corr > 0.8

    def test_ray_module_preserved_exactly(self, trained_ish_model):
        pruned = M.prune_generalizable_nerf(trained_ish_model, sparsity=0.5)
        for (_, a), (_, b) in zip(
                trained_ish_model.ray_module.named_parameters(),
                pruned.ray_module.named_parameters()):
            assert np.allclose(a.data, b.data)


class TestPruneGenNerf:
    def test_prunes_both_members(self):
        cfg = M.GenNerfConfig(
            fine=M.ModelConfig(feature_dim=8, view_hidden=8, score_hidden=4,
                               density_hidden=12, density_feature_dim=6,
                               ray_module="mixer", n_max=10,
                               encoder_hidden=4),
            coarse_points=4, focused_points=6)
        model = M.GenNeRF(cfg, rng=np.random.default_rng(0))
        pruned = M.prune_gen_nerf(model, sparsity=0.5)
        assert pruned.fine.num_parameters() < model.fine.num_parameters()
        assert pruned.coarse.num_parameters() \
            <= model.coarse.num_parameters()
