"""Oracle-field evaluation tests (the Fig. 9 machinery)."""

import numpy as np
import pytest

from repro import models as M
from repro.models.oracle import OracleStrategy, oracle_render, \
    oracle_render_image
from repro.geometry import rays_for_image


class TestStrategies:
    def test_label_and_points(self):
        s = OracleStrategy(kind="coarse_focus", coarse_points=8, points=16)
        assert "8/16" in s.label
        assert s.total_points_per_ray == 24
        u = OracleStrategy(kind="uniform", points=32)
        assert u.total_points_per_ray == 32

    def test_unknown_kind_raises(self, orbit_scene):
        bundle = rays_for_image(orbit_scene.target_camera, orbit_scene.near,
                                orbit_scene.far, step=16)
        with pytest.raises(ValueError):
            oracle_render(orbit_scene.field, bundle,
                          OracleStrategy(kind="magic"))


class TestOracleRender:
    @pytest.mark.parametrize("kind,coarse", [("uniform", 0),
                                             ("hierarchical", 8),
                                             ("coarse_focus", 8)])
    def test_output_shapes_and_stats(self, orbit_scene, kind, coarse):
        bundle = rays_for_image(orbit_scene.target_camera, orbit_scene.near,
                                orbit_scene.far, step=16)
        strategy = OracleStrategy(kind=kind, coarse_points=coarse, points=12,
                                  white_background=True)
        pixels, stats = oracle_render(orbit_scene.field, bundle, strategy)
        assert pixels.shape == (len(bundle), 3)
        assert np.isfinite(pixels).all()
        assert stats["avg_points"] > 0

    def test_coarse_focus_realises_budget(self, orbit_scene):
        bundle = rays_for_image(orbit_scene.target_camera, orbit_scene.near,
                                orbit_scene.far, step=8)
        strategy = OracleStrategy(kind="coarse_focus", coarse_points=8,
                                  points=16, white_background=True)
        _, stats = oracle_render(orbit_scene.field, bundle, strategy)
        # Focused budget is redistributed, not inflated (merging critical
        # coarse points may add a few per ray).
        assert 8 <= stats["avg_points"] <= 8 + 16 + 8 + 1

    def test_image_wrapper_shape(self, orbit_scene):
        strategy = OracleStrategy(kind="uniform", points=8,
                                  white_background=True)
        image, stats = oracle_render_image(
            orbit_scene.field, orbit_scene.target_camera, orbit_scene.near,
            orbit_scene.far, strategy, step=16)
        assert image.ndim == 3 and image.shape[2] == 3


class TestFig9Shape:
    def test_coarse_focus_beats_hierarchical_at_budget(self, orbit_scene):
        """The paper's headline algorithm claim, on one scene."""
        reference = M.render_target_reference(orbit_scene, num_points=384,
                                              step=8)
        results = {}
        for kind in ("hierarchical", "coarse_focus"):
            strategy = OracleStrategy(kind=kind, coarse_points=8, points=16,
                                      white_background=True)
            image, _ = oracle_render_image(
                orbit_scene.field, orbit_scene.target_camera,
                orbit_scene.near, orbit_scene.far, strategy, step=8)
            results[kind] = M.psnr(image, reference)
        assert results["coarse_focus"] > results["hierarchical"] + 1.0

    def test_more_budget_does_not_hurt_much(self, orbit_scene):
        reference = M.render_target_reference(orbit_scene, num_points=384,
                                              step=8)
        psnrs = []
        for coarse, focused in ((8, 8), (16, 32)):
            strategy = OracleStrategy(kind="coarse_focus",
                                      coarse_points=coarse, points=focused,
                                      white_background=True)
            image, _ = oracle_render_image(
                orbit_scene.field, orbit_scene.target_camera,
                orbit_scene.near, orbit_scene.far, strategy, step=8)
            psnrs.append(M.psnr(image, reference))
        assert psnrs[1] > psnrs[0] - 1.0
