"""Footprint-restricted training encode vs the pinned full encode.

:class:`repro.models.Trainer` (footprint on, the default) plans the
exact feature-map pixel set a step's ray bundle gathers and convolves
only the matching receptive-field crops;
:func:`repro.perf.reference.trainer_full_encode` runs the same trainer
with the planner forced off, convolving every source image end to end
— the layout the committed training artefacts were generated with.
These tests pin the two **bit-identical**: every per-step loss and
every final weight, for the IBRNet baseline and the Gen-NeRF pair,
across scene families (including the degenerate ``thicket`` /
``orbit_sparse`` rigs) and 1/2/4-worker scene preparation — plus the
``REPRO_FOOTPRINT`` knob semantics and the encoder FLOPs arithmetic
the planner's shapes are derived from.
"""

import logging

import numpy as np
import pytest

from repro import models as M
from repro.core import frame_pool, log
from repro.models.footprint import (FOOTPRINT_ENV, FOOTPRINT_STATS,
                                    footprint_enabled, parse_footprint_flag)
from repro.perf.reference import trainer_full_encode
from repro.scenes.datasets import make_scene

FAMILIES = ("llff", "thicket", "orbit_sparse")

TINY_MODEL = dict(feature_dim=8, view_hidden=8, score_hidden=4,
                  density_hidden=12, density_feature_dim=6,
                  ray_module="mixer", n_max=12, encoder_hidden=6)


def _ibrnet(seed=9):
    return M.GeneralizableNeRF(M.ModelConfig(**TINY_MODEL),
                               rng=np.random.default_rng(seed))


def _gen_nerf(seed=7):
    return M.GenNeRF(M.GenNerfConfig(fine=M.ModelConfig(**TINY_MODEL),
                                     coarse_points=4, focused_points=6),
                     rng=np.random.default_rng(seed))


def _config(rays, steps=4):
    return M.TrainConfig(steps=steps, rays_per_batch=rays, num_points=12,
                         gt_points=64, seed=11, pixel_block_steps=4)


# orbit_sparse frames are 512x512: at 1/12 scale the encoder's strided
# GEMM sits in the sgemm small-kernel regime where no bitwise-safe row
# padding exists, so the planner (correctly) refuses every step.  A
# slightly larger scale keeps that family exercising the *engaged*
# path; the fallback path is pinned by
# ``test_dense_fallback_path_is_still_identical``.
_SCALES = {"orbit_sparse": 1 / 9}


def _prepare(family, workers=1):
    scene = make_scene(family, seed=3, num_source_views=6,
                       image_scale=_SCALES.get(family, 1 / 12))
    return [M.SceneData.prepare(scene, gt_points=64, workers=workers)]


@pytest.fixture(scope="module")
def family_data():
    return {family: _prepare(family) for family in FAMILIES}


@pytest.fixture(scope="module", autouse=True)
def retire_pool():
    yield
    frame_pool.shutdown_pool()


def _run_pair(model_fn, data, rays, steps=4):
    """Fit footprint-on and full-encode trainers on the same scenes."""
    cfg = _config(rays, steps)
    fast_model, ref_model = model_fn(), model_fn()
    fast = M.Trainer(fast_model, data, cfg, footprint=True)
    fast_losses = fast.fit(cfg.steps)
    ref = trainer_full_encode(ref_model, data, cfg)
    ref_losses = ref.fit(cfg.steps)
    return fast, ref, fast_losses, ref_losses


def _assert_same_run(fast, ref, fast_losses, ref_losses):
    assert fast_losses == ref_losses
    fast_state = fast.model.state_dict()
    ref_state = ref.model.state_dict()
    assert fast_state.keys() == ref_state.keys()
    for name in fast_state:
        assert fast_state[name].tobytes() == ref_state[name].tobytes(), name
    # The pinned reference never plans a footprint.
    assert ref.footprint_stats["footprint"] == 0
    assert ref.footprint_stats["dense"] == 0


class TestFootprintBitIdentity:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_ibrnet_losses_and_weights(self, family_data, family):
        fast, ref, fl, rl = _run_pair(_ibrnet, family_data[family], rays=4)
        _assert_same_run(fast, ref, fl, rl)
        # Small ray batches gather far fewer pixels than the maps hold,
        # so the planner must actually engage — otherwise this test
        # would silently compare dense against dense.
        assert fast.footprint_stats["footprint"] > 0
        assert 0.0 < fast.footprint_stats["coverage"]

    @pytest.mark.parametrize("family", ("llff", "orbit_sparse"))
    def test_gen_nerf_losses_and_weights(self, family_data, family):
        fast, ref, fl, rl = _run_pair(_gen_nerf, family_data[family],
                                      rays=12)
        _assert_same_run(fast, ref, fl, rl)
        # The coarse pass (few rays x few points against tiny coarse
        # maps) engages; the fine pass at this scale falls back dense.
        assert fast.footprint_stats["footprint"] > 0

    def test_dense_fallback_path_is_still_identical(self, family_data):
        """Wide ray batches saturate the maps: every step falls back to
        the dense encode, and the run still matches the reference."""
        fast, ref, fl, rl = _run_pair(_ibrnet, family_data["llff"], rays=48)
        _assert_same_run(fast, ref, fl, rl)
        assert fast.footprint_stats["footprint"] == 0
        assert fast.footprint_stats["dense"] > 0


class TestWorkerWidths:
    @pytest.mark.parametrize("workers", (2, 4))
    def test_prepared_scenes_byte_identical(self, family_data, workers):
        pooled = _prepare("llff", workers=workers)
        baseline = family_data["llff"]
        assert (pooled[0].source_images.tobytes()
                == baseline[0].source_images.tobytes())

    def test_footprint_on_pooled_scene_matches_reference(self, family_data):
        cfg = _config(rays=4, steps=3)
        fast_model, ref_model = _ibrnet(), _ibrnet()
        fast = M.Trainer(fast_model, _prepare("llff", workers=2), cfg,
                         footprint=True)
        fast_losses = fast.fit(cfg.steps)
        ref = trainer_full_encode(ref_model, family_data["llff"], cfg)
        ref_losses = ref.fit(cfg.steps)
        _assert_same_run(fast, ref, fast_losses, ref_losses)
        assert fast.footprint_stats["footprint"] > 0


class TestFootprintKnob:
    def test_env_off_switch(self, family_data, monkeypatch):
        """``REPRO_FOOTPRINT=0`` disables the planner wholesale."""
        monkeypatch.setenv(FOOTPRINT_ENV, "0")
        cfg = _config(rays=4, steps=2)
        trainer = M.Trainer(_ibrnet(), family_data["llff"], cfg)
        before = dict(FOOTPRINT_STATS)
        trainer.fit(cfg.steps)
        assert trainer.footprint_stats["footprint"] == 0
        assert trainer.footprint_stats["dense"] == 0
        assert FOOTPRINT_STATS == before

    def test_priority_argument_env_default(self, monkeypatch):
        monkeypatch.delenv(FOOTPRINT_ENV, raising=False)
        assert footprint_enabled() is True               # default: on
        monkeypatch.setenv(FOOTPRINT_ENV, "off")
        assert footprint_enabled() is False              # env wins
        assert footprint_enabled(override=True) is True  # argument beats env
        monkeypatch.setenv(FOOTPRINT_ENV, "   ")
        assert footprint_enabled() is True               # blank env skipped

    def test_true_and_false_words(self):
        for word in ("1", "true", "YES", " On "):
            assert parse_footprint_flag(word) is True
        for word in ("0", "false", "No", " off "):
            assert parse_footprint_flag(word) is False

    def test_malformed_env_warns_and_falls_back(self, monkeypatch, caplog):
        monkeypatch.setenv(FOOTPRINT_ENV, "banana")
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert footprint_enabled() is True
        record, = log.events_named(caplog.records, "knob.ignored")
        assert record.repro_fields["knob"] == FOOTPRINT_ENV
        assert record.repro_fields["value"] == "banana"


class TestFootprintLogEvent:
    def test_fit_emits_encode_footprint_event(self, family_data, caplog):
        cfg = _config(rays=4, steps=2)
        trainer = M.Trainer(_ibrnet(), family_data["llff"], cfg,
                            footprint=True)
        with caplog.at_level(logging.INFO, logger="repro"):
            trainer.fit(cfg.steps)
        record, = log.events_named(caplog.records, "train.encode_footprint")
        fields = record.repro_fields
        assert fields["footprint"] == trainer.footprint_stats["footprint"]
        assert fields["dense"] == trainer.footprint_stats["dense"]
        assert fields["footprint"] > 0
        assert 0.0 < fields["mean_coverage"] < 1.0


class TestEncoderFlops:
    def test_strided_stage_uses_conv_arithmetic(self):
        """conv2's k3/s2/p1 output is ceil(H/2), not floor(H/2); the
        FLOPs count must feed conv3 the actual shape."""
        enc = M.ConvEncoder(feature_dim=8, hidden=6,
                            rng=np.random.default_rng(0))
        assert enc.conv2.output_shape(63, 85) == (32, 43)
        assert enc.feature_shape(63, 85) == (32, 43)
        expected = (enc.conv1.flops(1, 63, 85)
                    + enc.conv2.flops(1, 63, 85)
                    + enc.conv3.flops(1, 32, 43))
        assert enc.flops(63, 85) == expected
        # The floor-halved shape undercounts conv3: the bug this pins.
        assert enc.flops(63, 85) != (enc.conv1.flops(1, 63, 85)
                                     + enc.conv2.flops(1, 63, 85)
                                     + enc.conv3.flops(1, 31, 42))

    def test_even_sizes_match_legacy_halving(self):
        enc = M.ConvEncoder(feature_dim=8, hidden=6,
                            rng=np.random.default_rng(0))
        assert enc.feature_shape(64, 96) == (32, 48)
        expected = (enc.conv1.flops(2, 64, 96)
                    + enc.conv2.flops(2, 64, 96)
                    + enc.conv3.flops(2, 32, 48))
        assert enc.flops(64, 96, views=2) == expected
