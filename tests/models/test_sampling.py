"""Coarse-then-focus sampling: PDF estimation, budgets, plans."""

import numpy as np
import pytest

from repro.models.sampling import (SampleSet, allocate_ray_budget,
                                   coarse_then_focus_plan, focused_depths,
                                   hierarchical_depths,
                                   merge_critical_points, sampling_pdf)


@pytest.fixture()
def coarse(rng):
    """Synthetic coarse pass: 8 rays x 16 points; rays 0-3 hit a surface
    around depth 4, rays 4-7 are empty."""
    depths = np.tile(np.linspace(2.0, 6.0, 16), (8, 1))
    weights = np.zeros((8, 16))
    weights[:4, 7:10] = np.array([0.2, 0.5, 0.2])
    return depths, weights


class TestSamplingPdf:
    def test_ray_probability_zero_for_empty(self, coarse):
        _, weights = coarse
        ray_p, point_pdf, counts = sampling_pdf(weights, tau=1e-3)
        assert np.allclose(ray_p[4:], 0.0)
        assert np.isclose(ray_p.sum(), 1.0)
        assert (counts[:4] == 3).all() and (counts[4:] == 0).all()

    def test_point_pdf_normalised(self, coarse):
        _, weights = coarse
        _, point_pdf, _ = sampling_pdf(weights, tau=1e-3)
        assert np.allclose(point_pdf.sum(-1), 1.0)

    def test_fallback_when_nothing_critical(self):
        weights = np.full((4, 8), 1e-9)
        ray_p, _, counts = sampling_pdf(weights, tau=1e-3)
        assert counts.sum() == 0
        assert np.isclose(ray_p.sum(), 1.0)

    def test_threshold_is_bin_normalised(self):
        """Halving bin width (doubling N_c) must not change criticality."""
        coarse_w = np.zeros((1, 8))
        coarse_w[0, 4] = 0.008
        fine_w = np.zeros((1, 16))
        fine_w[0, 8:10] = 0.004     # same mass, twice the bins
        _, _, counts_coarse = sampling_pdf(coarse_w, tau=1e-2)
        _, _, counts_fine = sampling_pdf(fine_w, tau=1e-2)
        assert counts_coarse[0] > 0
        assert counts_fine[0] > 0


class TestAllocateBudget:
    def test_exact_total(self, rng):
        prob = rng.random(32)
        prob /= prob.sum()
        counts = allocate_ray_budget(prob, total_points=320, n_max=64)
        assert counts.sum() == 320

    def test_respects_n_max(self):
        prob = np.array([0.97, 0.01, 0.01, 0.01])
        counts = allocate_ray_budget(prob, total_points=100, n_max=40)
        assert counts.max() <= 40
        assert counts.sum() == 100

    def test_proportionality(self):
        prob = np.array([0.5, 0.25, 0.25])
        counts = allocate_ray_budget(prob, total_points=100, n_max=100)
        assert counts[0] == 50 and counts[1] == 25 and counts[2] == 25

    def test_min_points_floor(self):
        prob = np.array([1.0, 0.0, 0.0])
        counts = allocate_ray_budget(prob, total_points=10, n_max=10,
                                     min_points=1)
        assert (counts >= 1).all()

    def test_zero_probability_uniform_fallback(self):
        counts = allocate_ray_budget(np.zeros(4), total_points=8, n_max=8)
        assert counts.sum() == 8

    def test_deterministic(self, rng):
        prob = rng.random(16)
        a = allocate_ray_budget(prob, 100, 32)
        b = allocate_ray_budget(prob, 100, 32)
        assert (a == b).all()


class TestFocusedDepths:
    def test_counts_and_padding(self, coarse, rng):
        depths, weights = coarse
        _, point_pdf, _ = sampling_pdf(weights, tau=1e-3)
        counts = np.array([10, 5, 0, 3, 0, 0, 0, 0])
        plan = focused_depths(depths, point_pdf, counts, n_max=12,
                              near=2.0, far=6.0, rng=rng)
        assert (plan.counts == counts).all()
        assert plan.depths.shape == (8, 12)
        # Valid depths sorted and in range.
        valid = plan.depths[0][plan.mask[0]]
        assert (np.diff(valid) >= 0).all()
        assert valid.min() >= 2.0 and valid.max() <= 6.0

    def test_samples_land_in_high_weight_region(self, coarse, rng):
        depths, weights = coarse
        _, point_pdf, _ = sampling_pdf(weights, tau=1e-3)
        counts = np.full(8, 16)
        plan = focused_depths(depths, point_pdf, counts, n_max=16,
                              near=2.0, far=6.0, rng=rng)
        surface = plan.depths[0][plan.mask[0]]
        # Weights concentrate around depth ~4 (bins 7..9 of 2..6).
        assert np.median(surface) > 3.2 and np.median(surface) < 4.8

    def test_zero_budget_everywhere(self, coarse, rng):
        depths, weights = coarse
        _, point_pdf, _ = sampling_pdf(weights, tau=1e-3)
        plan = focused_depths(depths, point_pdf, np.zeros(8, dtype=int),
                              n_max=4, near=2.0, far=6.0, rng=rng)
        assert plan.total_points == 0


class TestPlanEndToEnd:
    def test_budget_and_shape(self, coarse, rng):
        depths, weights = coarse
        plan = coarse_then_focus_plan(depths, weights, num_focused_avg=8,
                                      n_max=32, tau=1e-3, near=2.0, far=6.0,
                                      rng=rng)
        assert isinstance(plan, SampleSet)
        assert plan.depths.shape == (8, 32)
        # Empty rays got (almost) nothing; surface rays got plenty.
        assert plan.counts[:4].min() >= 8
        assert plan.counts[4:].max() <= 2

    def test_merge_critical_included(self, coarse, rng):
        depths, weights = coarse
        plan = coarse_then_focus_plan(depths, weights, num_focused_avg=4,
                                      n_max=32, tau=1e-3, near=2.0, far=6.0,
                                      rng=rng, merge_critical=True)
        # The three critical coarse depths of ray 0 appear in the plan.
        critical_depths = depths[0, 7:10]
        valid = plan.depths[0][plan.mask[0]]
        for depth in critical_depths:
            assert np.min(np.abs(valid - depth)) < 1e-9

    def test_no_merge_option(self, coarse, rng):
        depths, weights = coarse
        plan = coarse_then_focus_plan(depths, weights, num_focused_avg=4,
                                      n_max=32, tau=1e-3, near=2.0, far=6.0,
                                      rng=rng, merge_critical=False)
        assert plan.counts[:4].sum() >= 12   # focused budget went there

    def test_merge_respects_n_max(self, coarse, rng):
        depths, weights = coarse
        merged = merge_critical_points(
            SampleSet.dense(np.tile(np.linspace(2, 6, 30), (8, 1))),
            depths, weights, tau=1e-3, n_max=16, far=6.0)
        assert merged.depths.shape[1] == 16
        assert (merged.counts <= 16).all()


class TestHierarchical:
    def test_equal_counts_every_ray(self, coarse, rng):
        depths, weights = coarse
        fine = hierarchical_depths(depths, weights + 1e-6, num_fine=24,
                                   near=2.0, far=6.0, rng=rng)
        assert fine.shape == (8, 24)
        assert (np.diff(fine, axis=-1) >= 0).all()

    def test_include_coarse(self, coarse, rng):
        depths, weights = coarse
        fine = hierarchical_depths(depths, weights + 1e-6, num_fine=8,
                                   near=2.0, far=6.0, rng=rng,
                                   include_coarse=True)
        assert fine.shape == (8, 24)

    def test_importance_concentration(self, coarse, rng):
        depths, weights = coarse
        fine = hierarchical_depths(depths[:4], weights[:4] + 1e-9,
                                   num_fine=64, near=2.0, far=6.0, rng=rng)
        # Most fine samples land near the surface at ~4.
        fraction_near = np.mean(np.abs(fine - 4.0) < 0.8)
        assert fraction_near > 0.8

    def test_sample_set_dense(self):
        depths = np.zeros((3, 5))
        dense = SampleSet.dense(depths)
        assert dense.mask.all()
        assert dense.total_points == 15

    def test_sample_set_validates(self):
        with pytest.raises(ValueError):
            SampleSet(np.zeros((2, 3)), np.zeros((2, 4), dtype=bool))
