"""Fault-injected renders stay byte-identical to the sequential path.

The ISSUE-level guarantee: a worker crash, hang, or corrupt return
mid-frame re-executes only the affected chunk, and the stitched image
is byte-identical to the fault-free sequential render at every worker
count.  Faults inject **only inside pool workers**, so the 1-worker
row doubles as the no-fault control.
"""

import numpy as np
import pytest

from repro.core import frame_pool
from repro.core.faults import FaultPlan, FaultSpec, injected_faults
from repro.models import (GenNeRF, GenNerfConfig, ModelConfig,
                          render_image_gen_nerf, render_source_views)
from repro.scenes.datasets import make_scene

WORKER_COUNTS = (1, 2, 4)

TINY_MODEL = dict(feature_dim=8, view_hidden=8, score_hidden=4,
                  density_hidden=12, density_feature_dim=6,
                  ray_module="mixer", n_max=12, encoder_hidden=6)


@pytest.fixture(scope="module")
def scene():
    return make_scene("llff", seed=3, image_scale=1 / 16)


@pytest.fixture(scope="module")
def source_images(scene):
    return render_source_views(scene, num_points=32)


@pytest.fixture(scope="module")
def gen_nerf(scene):
    return GenNeRF(GenNerfConfig(fine=ModelConfig(**TINY_MODEL),
                                 coarse_points=6, focused_points=8),
                   rng=np.random.default_rng(0))


@pytest.fixture(autouse=True)
def retire_pool():
    frame_pool.shutdown_pool()
    yield
    frame_pool.shutdown_pool()


def _render(gen_nerf, scene, source_images, workers):
    image, _ = render_image_gen_nerf(gen_nerf, scene, source_images,
                                     step=4, chunk=64, workers=workers)
    return image


class TestRenderUnderInjectedFaults:
    @pytest.fixture(scope="class")
    def sequential(self, gen_nerf, scene, source_images):
        return _render(gen_nerf, scene, source_images, workers=1)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_worker_crash_mid_frame(self, gen_nerf, scene, source_images,
                                    sequential, workers):
        plan = FaultPlan(tasks={0: FaultSpec("crash")}, scope="frame_pool")
        with injected_faults(plan):
            image = _render(gen_nerf, scene, source_images, workers)
        assert image.tobytes() == sequential.tobytes()
        assert image.dtype == sequential.dtype

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_hung_worker_times_out_mid_frame(self, gen_nerf, scene,
                                             source_images, sequential,
                                             workers, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0.5")
        plan = FaultPlan(tasks={1: FaultSpec("hang", hang_s=5.0)},
                         scope="frame_pool")
        with injected_faults(plan):
            image = _render(gen_nerf, scene, source_images, workers)
        assert image.tobytes() == sequential.tobytes()

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_corrupt_chunk_result_mid_frame(self, gen_nerf, scene,
                                            source_images, sequential,
                                            workers):
        plan = FaultPlan(tasks={0: FaultSpec("corrupt")},
                         scope="frame_pool")
        with injected_faults(plan):
            image = _render(gen_nerf, scene, source_images, workers)
        assert image.tobytes() == sequential.tobytes()

    def test_persistent_crash_degrades_but_stays_identical(
            self, gen_nerf, scene, source_images, sequential):
        # Every pooled attempt crashes chunk 0: the frame finishes on
        # the in-process backstop, still byte-identical.
        plan = FaultPlan(tasks={0: FaultSpec("crash",
                                             attempts=tuple(range(8)))},
                         scope="frame_pool")
        with injected_faults(plan):
            image = _render(gen_nerf, scene, source_images, workers=2)
        assert image.tobytes() == sequential.tobytes()


class TestSourceViewsUnderInjectedFaults:
    def test_crash_during_source_view_render(self, scene):
        sequential = render_source_views(scene, num_points=32, workers=1)
        plan = FaultPlan(tasks={0: FaultSpec("crash")}, scope="frame_pool")
        with injected_faults(plan):
            sharded = render_source_views(scene, num_points=32, workers=2)
        assert sharded.tobytes() == sequential.tobytes()
