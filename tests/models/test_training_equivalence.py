"""Training fast path vs the seed per-step loop.

:class:`repro.models.Trainer` amortises supervision (blocked pixel
pre-generation + GT quadrature cached on the ``SceneData``), shares
im2col columns at scene level, and updates through the fused
flat-buffer Adam with the gradient clip folded in.
:class:`repro.perf.reference.TrainerLoop` unwinds all of it — per-step
ground truth, per-layer caches only, per-parameter Adam plus the
standalone clip — while following the same pixel-stream protocol.
These tests pin the two **bit-identical**: every per-step loss and
every final weight, for the IBRNet baseline and the Gen-NeRF pair,
single- and multi-scene, cold and warm caches.
"""

import numpy as np
import pytest

from repro import models as M
from repro import nn
from repro.perf import reference
from repro.scenes.datasets import make_scene


def _model_config():
    return M.ModelConfig(feature_dim=8, view_hidden=8, score_hidden=4,
                         density_hidden=12, density_feature_dim=6,
                         ray_module="mixer", n_max=10, encoder_hidden=4)


def _gen_nerf(seed=7):
    return M.GenNeRF(M.GenNerfConfig(fine=_model_config(), coarse_points=4,
                                     focused_points=6),
                     rng=np.random.default_rng(seed))


def _ibrnet(seed=9):
    return M.GeneralizableNeRF(_model_config(),
                               rng=np.random.default_rng(seed))


def _config(**overrides):
    base = dict(steps=12, rays_per_batch=16, num_points=10, gt_points=48,
                seed=2, pixel_block_steps=4)
    base.update(overrides)
    return M.TrainConfig(**base)


@pytest.fixture(scope="module")
def fern_scene():
    return make_scene("llff", seed=3, scene_name="fern",
                      num_source_views=4, image_scale=1 / 24)


@pytest.fixture(scope="module")
def trex_scene():
    return make_scene("llff", seed=3, scene_name="trex",
                      num_source_views=4, image_scale=1 / 24)


def _prepare(scene):
    return M.SceneData.prepare(scene, gt_points=48)


def _assert_same_run(fast_model, seed_model, fast_losses, seed_losses):
    assert fast_losses == seed_losses
    fast_state = fast_model.state_dict()
    seed_state = seed_model.state_dict()
    for name in fast_state:
        assert fast_state[name].tobytes() == seed_state[name].tobytes(), name


class TestFastVsSeedTrainer:
    def test_gen_nerf_losses_and_weights_bit_identical(self, fern_scene):
        cfg = _config()
        fast_model, seed_model = _gen_nerf(), _gen_nerf()
        fast_losses = M.Trainer(fast_model, [_prepare(fern_scene)],
                                cfg).fit(cfg.steps)
        seed_losses = reference.trainer_fit_loop(
            seed_model, [_prepare(fern_scene)], cfg, cfg.steps)
        _assert_same_run(fast_model, seed_model, fast_losses, seed_losses)

    def test_ibrnet_losses_and_weights_bit_identical(self, fern_scene):
        cfg = _config()
        fast_model, seed_model = _ibrnet(), _ibrnet()
        fast_losses = M.Trainer(fast_model, [_prepare(fern_scene)],
                                cfg).fit(cfg.steps)
        seed_losses = reference.trainer_fit_loop(
            seed_model, [_prepare(fern_scene)], cfg, cfg.steps)
        _assert_same_run(fast_model, seed_model, fast_losses, seed_losses)

    def test_multi_scene_rotation_bit_identical(self, fern_scene,
                                                trex_scene):
        # Two scenes: the block protocol interleaves them, and the GT
        # cache keys must respect scene positions.
        cfg = _config(steps=10, pixel_block_steps=3)
        fast_model, seed_model = _gen_nerf(), _gen_nerf()
        fast_losses = M.Trainer(
            fast_model, [_prepare(fern_scene), _prepare(trex_scene)],
            cfg).fit(cfg.steps)
        seed_losses = reference.trainer_fit_loop(
            seed_model, [_prepare(fern_scene), _prepare(trex_scene)],
            cfg, cfg.steps)
        _assert_same_run(fast_model, seed_model, fast_losses, seed_losses)

    def test_partial_block_fit_bit_identical(self, fern_scene):
        # fit() lengths that do not divide the block size must not
        # change the trajectory (blocks advance lazily but in order).
        cfg = _config(steps=7, pixel_block_steps=4)
        fast_model, seed_model = _gen_nerf(), _gen_nerf()
        trainer = M.Trainer(fast_model, [_prepare(fern_scene)], cfg)
        trainer.fit(3)
        fast_losses = trainer.fit(4)
        seed_losses = reference.trainer_fit_loop(
            seed_model, [_prepare(fern_scene)], cfg, 7)
        _assert_same_run(fast_model, seed_model, fast_losses, seed_losses)


class TestSupervisionReuse:
    def test_shared_scene_data_reuses_gt_and_stays_identical(self,
                                                             fern_scene):
        # Variant-ladder shape: two models, same schedule, same
        # SceneData.  The second trainer must hit the GT cache (no new
        # entries) and still produce the exact trajectory a cold-cache
        # run produces.
        cfg = _config()
        shared = _prepare(fern_scene)
        model_a, model_b, model_cold = _gen_nerf(1), _gen_nerf(2), \
            _gen_nerf(2)
        M.Trainer(model_a, [shared], cfg).fit(cfg.steps)
        entries_after_first = len(shared.gt_cache)
        assert entries_after_first > 0
        losses_warm = M.Trainer(model_b, [shared], cfg).fit(cfg.steps)
        assert len(shared.gt_cache) == entries_after_first   # pure reuse
        losses_cold = M.Trainer(model_cold, [_prepare(fern_scene)],
                                cfg).fit(cfg.steps)
        assert losses_warm == losses_cold

    def test_different_schedule_does_not_hit_stale_gt(self, fern_scene):
        shared = _prepare(fern_scene)
        cfg_a = _config(seed=2)
        cfg_b = _config(seed=5)
        M.Trainer(_gen_nerf(1), [shared], cfg_a).fit(4)
        before = len(shared.gt_cache)
        M.Trainer(_gen_nerf(1), [shared], cfg_b).fit(4)
        assert len(shared.gt_cache) > before     # new keys, no aliasing

    def test_partial_runs_render_only_needed_supervision(self, fern_scene):
        # A fit() that ends mid-block must not pay GT quadrature for
        # the unreached steps; a longer identically scheduled run later
        # extends the same cache entries instead of re-rendering.
        data = _prepare(fern_scene)
        cfg = _config(steps=6, pixel_block_steps=4)
        M.Trainer(_gen_nerf(1), [data], cfg).fit(6)
        rendered = sum(len(entry) for entry in data.gt_cache.values())
        assert rendered == 6                      # not 8 (two full blocks)
        losses_ext = M.Trainer(_gen_nerf(2), [data], cfg).fit(8)
        rendered = sum(len(entry) for entry in data.gt_cache.values())
        assert rendered == 8                      # extended, not redone
        losses_cold = M.Trainer(_gen_nerf(2), [_prepare(fern_scene)],
                                cfg).fit(8)
        assert losses_ext == losses_cold

    def test_gt_cache_blocks_match_per_step_quadrature(self, fern_scene):
        # The blocked GT render must slice back to exactly what a
        # per-step render of the same pixels produces.
        from repro.geometry.rays import rays_for_pixels
        from repro.models.training import draw_pixel_block
        from repro.scenes.render_gt import render_rays as render_gt_rays

        data = _prepare(fern_scene)
        cfg = _config()
        trainer = M.Trainer(_gen_nerf(), [data], cfg)
        trainer.fit(cfg.pixel_block_steps)
        protocol_rng = np.random.default_rng((cfg.seed, 0x5EED))
        entries = draw_pixel_block([data], cfg, protocol_rng)
        key = trainer._gt_block_key(0, 0)
        cached = data.gt_cache[key]
        for j, (_, pixels) in enumerate(entries):
            bundle = rays_for_pixels(fern_scene.target_camera, pixels,
                                     fern_scene.near, fern_scene.far)
            direct = render_gt_rays(
                fern_scene.field, bundle, cfg.gt_points,
                white_background=fern_scene.spec.white_background)
            assert direct.tobytes() == cached[j].tobytes()


class TestEncoderCaches:
    def test_conv_cache_is_shared_across_models(self, fern_scene):
        data = _prepare(fern_scene)
        cfg = _config(steps=2, pixel_block_steps=2)
        M.Trainer(_gen_nerf(1), [data], cfg).fit(2)
        assert data.conv_cache            # populated by the first model
        keys_after_first = set(data.conv_cache)
        M.Trainer(_gen_nerf(2), [data], cfg).fit(2)
        # Same images, same conv geometries -> no new im2col entries.
        assert set(data.conv_cache) == keys_after_first

    def test_coarse_and_fine_first_layers_share_one_entry(self, fern_scene):
        # Both encoders' first convs are 3x3/s1/p1 over the same source
        # images: exactly one shared-cache entry for that geometry.
        data = _prepare(fern_scene)
        cfg = _config(steps=1, pixel_block_steps=1)
        M.Trainer(_gen_nerf(), [data], cfg).fit(1)
        # Exactly one 3x3/s1/p1 entry holds the raw source images: the
        # coarse encoder's conv1 and the fine encoder's conv1 hit it
        # together instead of keeping one each.
        source_entries = [key for key, value in data.conv_cache.items()
                          if key[1:] == (3, 1, 1)
                          and value[0] is data.source_images]
        assert len(source_entries) == 1

    def test_encoded_maps_cache_invalidates_on_encoder_update(self,
                                                              fern_scene):
        data = _prepare(fern_scene)
        model = _gen_nerf()
        model.eval()
        maps_a = data.encoded_maps(model)
        maps_b = data.encoded_maps(model)
        assert maps_a is maps_b                       # warm hit
        # Train one step: encoder parameters update -> re-encode.
        model.train()
        cfg = _config(steps=1, pixel_block_steps=1)
        M.Trainer(model, [data], cfg).fit(1)
        model.eval()
        maps_c = data.encoded_maps(model)
        assert maps_c is not maps_b
        # No update since -> warm hit again.
        assert data.encoded_maps(model) is maps_c

    def test_encoded_maps_values_match_direct_encode(self, fern_scene):
        data = _prepare(fern_scene)
        model = _gen_nerf()
        model.eval()
        cached_coarse, cached_fine = data.encoded_maps(model)
        with nn.inference_mode():
            direct_coarse, direct_fine = model.encode_scene(
                data.source_images)
        assert cached_coarse.data.tobytes() == direct_coarse.data.tobytes()
        assert cached_fine.data.tobytes() == direct_fine.data.tobytes()
