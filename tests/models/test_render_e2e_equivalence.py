"""End-to-end fast path vs the seed loop reference.

``repro.perf.reference`` keeps the seed inference path (per-view
gathers, stack-copied pooling, grad-mode chunked rendering).  The
batched fast path must reproduce it: scene features and visibility
bit-for-bit (identical per-element arithmetic), colours/directions to
float32 interpolation tolerance (the fast path deliberately carries
those lerps at float32), and whole rendered pixels to the same
tolerance when the chunk split is equalised.
"""

import numpy as np
import pytest

from repro import nn
from repro.geometry.rays import rays_for_image
from repro.models.features import fetch_features
from repro.models.gen_nerf import GenNeRF, GenNerfConfig
from repro.models.ibrnet import ModelConfig
from repro.models.renderer import render_source_views
from repro.perf import reference
from repro.scenes.datasets import make_scene


@pytest.fixture(scope="module")
def setup():
    scene = make_scene("llff", seed=3, image_scale=1 / 16)
    config = GenNerfConfig(
        fine=ModelConfig(feature_dim=8, view_hidden=8, score_hidden=4,
                         density_hidden=12, density_feature_dim=6,
                         ray_module="mixer", n_max=12, encoder_hidden=6),
        coarse_points=6, focused_points=8)
    model = GenNeRF(config, rng=np.random.default_rng(5))
    model.eval()
    source_images = render_source_views(scene, num_points=24, step=4)
    with nn.inference_mode():
        coarse_maps, fine_maps = model.encode_scene(source_images)
        coarse_list = [coarse_maps[i] for i in range(len(source_images))]
        fine_list = [fine_maps[i] for i in range(len(source_images))]
    return (scene, model, source_images, coarse_maps, fine_maps,
            coarse_list, fine_list)


class TestFetchEquivalence:
    def test_batched_gather_matches_per_view_loop(self, setup):
        scene, model, source_images, _, fine_maps, _, fine_list = setup
        rng = np.random.default_rng(11)
        bundle = rays_for_image(scene.target_camera, scene.near, scene.far,
                                step=4)
        num_rays, pts = min(40, len(bundle)), 6
        bundle = bundle.select(slice(0, num_rays))
        depths = np.sort(rng.uniform(scene.near, scene.far,
                                     (num_rays, pts)), axis=-1)
        points = bundle.points_at(depths)

        with nn.inference_mode():
            fast = fetch_features(points, bundle.directions,
                                  scene.source_cameras, fine_maps,
                                  source_images)
            loop = reference.fetch_features_loop(points, bundle.directions,
                                                 scene.source_cameras,
                                                 fine_list, source_images)
        # Identical per-element arithmetic -> identical bits.
        assert np.array_equal(fast.features.data, loop.features.data)
        assert np.array_equal(fast.visibility, loop.visibility)
        # float32 vs the seed's float64 lerp: tolerance-equal.
        np.testing.assert_allclose(fast.rgb, loop.rgb, atol=2e-6)
        np.testing.assert_allclose(fast.direction_delta,
                                   loop.direction_delta, atol=2e-5)

    def test_list_and_stacked_maps_agree(self, setup):
        scene, model, source_images, _, fine_maps, _, fine_list = setup
        rng = np.random.default_rng(3)
        bundle = rays_for_image(scene.target_camera, scene.near, scene.far,
                                step=4)
        num_rays = min(16, len(bundle))
        bundle = bundle.select(slice(0, num_rays))
        depths = np.sort(rng.uniform(scene.near, scene.far,
                                     (num_rays, 4)), -1)
        points = bundle.points_at(depths)
        with nn.inference_mode():
            stacked = fetch_features(points, bundle.directions,
                                     scene.source_cameras, fine_maps,
                                     source_images)
            listed = fetch_features(points, bundle.directions,
                                    scene.source_cameras, fine_list,
                                    source_images)
        assert np.array_equal(stacked.features.data, listed.features.data)


class TestRenderEquivalence:
    def test_fast_path_matches_seed_loop_single_chunk(self, setup):
        (scene, model, source_images, coarse_maps, fine_maps,
         coarse_list, fine_list) = setup
        bundle = rays_for_image(scene.target_camera, scene.near, scene.far,
                                step=16).select(slice(0, 96))
        with nn.inference_mode():
            fast = model.render_rays(bundle, scene.source_cameras,
                                     coarse_maps, fine_maps, source_images)
        loop = reference.render_rays_chunked_loop(
            model, bundle, scene.source_cameras, coarse_list, fine_list,
            source_images, chunk=len(bundle))
        np.testing.assert_allclose(fast.data, loop, atol=1e-4)

    def test_seed_loop_chunking_is_stable(self, setup):
        """The loop reference itself: 2 chunks == 1 chunk when the
        per-chunk rng draws line up (single-chunk sub-bundles)."""
        (scene, model, source_images, _, _, coarse_list, fine_list) = setup
        bundle = rays_for_image(scene.target_camera, scene.near, scene.far,
                                step=16).select(slice(0, 64))
        once = reference.render_rays_chunked_loop(
            model, bundle, scene.source_cameras, coarse_list, fine_list,
            source_images, chunk=64)
        assert np.isfinite(once).all()
