"""Gen-NeRF model pair and pipeline tests."""

import numpy as np
import pytest

from repro import models as M
from repro.geometry import rays_for_pixels


@pytest.fixture(scope="module")
def gen_model():
    cfg = M.GenNerfConfig(
        fine=M.ModelConfig(feature_dim=8, view_hidden=8, score_hidden=4,
                           density_hidden=12, density_feature_dim=6,
                           ray_module="mixer", n_max=12, encoder_hidden=4),
        coarse_points=6, focused_points=8, coarse_views=3)
    return M.GenNeRF(cfg, rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def pipeline_setup(llff_scene_data, gen_model):
    scene = llff_scene_data.scene
    coarse_maps, fine_maps = gen_model.encode_scene(
        llff_scene_data.source_images)
    bundle = rays_for_pixels(scene.target_camera,
                             np.array([[8.0, 8.0], [25.0, 18.0],
                                       [40.0, 28.0], [55.0, 40.0]]),
                             scene.near, scene.far)
    return scene, coarse_maps, fine_maps, bundle


class TestConstruction:
    def test_coarse_model_is_scaled_down(self, gen_model):
        assert gen_model.coarse.config.ray_module == "none"
        assert gen_model.coarse.config.feature_dim \
            == max(2, round(8 * 0.25))
        assert gen_model.coarse.num_parameters() \
            < gen_model.fine.num_parameters()

    def test_parameters_include_both_models(self, gen_model):
        names = [n for n, _ in gen_model.named_parameters()]
        assert any(n.startswith("coarse.") for n in names)
        assert any(n.startswith("fine.") for n in names)


class TestCoarseViewSelection:
    def test_selects_requested_count(self, gen_model, pipeline_setup):
        scene, _, _, bundle = pipeline_setup
        chosen = gen_model.select_coarse_views(bundle, scene.source_cameras)
        assert len(chosen) == 3

    def test_selects_most_aligned_views(self, gen_model, pipeline_setup):
        scene, _, _, bundle = pipeline_setup
        chosen = gen_model.select_coarse_views(bundle, scene.source_cameras)
        mean_dir = bundle.directions.mean(axis=0)
        mean_dir /= np.linalg.norm(mean_dir)
        sims = np.array([float(np.dot(c.forward, mean_dir))
                         for c in scene.source_cameras])
        assert set(chosen) == set(np.argsort(sims)[::-1][:3])


class TestPipeline:
    def test_coarse_pass_outputs(self, gen_model, pipeline_setup,
                                 llff_scene_data):
        scene, coarse_maps, _, bundle = pipeline_setup
        depths, weights, output = gen_model.coarse_pass(
            bundle, scene.source_cameras, coarse_maps,
            llff_scene_data.source_images)
        assert depths.shape == (4, 6)
        assert weights.shape == (4, 6)
        assert (weights >= 0).all() and (weights.sum(-1) <= 1 + 1e-6).all()

    def test_plan_respects_n_max(self, gen_model, pipeline_setup,
                                 llff_scene_data):
        scene, coarse_maps, _, bundle = pipeline_setup
        depths, weights, _ = gen_model.coarse_pass(
            bundle, scene.source_cameras, coarse_maps,
            llff_scene_data.source_images)
        plan = gen_model.plan_samples(depths, weights, bundle)
        assert plan.depths.shape == (4, 12)
        assert (plan.counts <= 12).all()

    def test_plan_min_points_floor(self, gen_model, pipeline_setup,
                                   llff_scene_data):
        scene, coarse_maps, _, bundle = pipeline_setup
        depths, weights, _ = gen_model.coarse_pass(
            bundle, scene.source_cameras, coarse_maps,
            llff_scene_data.source_images)
        plan = gen_model.plan_samples(depths, np.zeros_like(weights), bundle,
                                      min_points=2)
        assert (plan.counts >= 2).all()

    def test_render_rays_end_to_end(self, gen_model, pipeline_setup,
                                    llff_scene_data):
        scene, coarse_maps, fine_maps, bundle = pipeline_setup
        pixel, aux = gen_model.render_rays(
            bundle, scene.source_cameras, coarse_maps, fine_maps,
            llff_scene_data.source_images, return_aux=True)
        assert pixel.shape == (4, 3)
        assert np.isfinite(pixel.data).all()
        assert "samples" in aux and "coarse_pixel" in aux

    def test_render_rays_plain_return(self, gen_model, pipeline_setup,
                                      llff_scene_data):
        scene, coarse_maps, fine_maps, bundle = pipeline_setup
        pixel = gen_model.render_rays(bundle, scene.source_cameras,
                                      coarse_maps, fine_maps,
                                      llff_scene_data.source_images)
        assert pixel.shape == (4, 3)

    def test_training_reduces_loss(self, llff_scene_data):
        cfg = M.GenNerfConfig(
            fine=M.ModelConfig(feature_dim=8, view_hidden=8, score_hidden=4,
                               density_hidden=12, density_feature_dim=6,
                               ray_module="mixer", n_max=12,
                               encoder_hidden=4),
            coarse_points=6, focused_points=8)
        model = M.GenNeRF(cfg, rng=np.random.default_rng(7))
        trainer = M.Trainer(model, [llff_scene_data],
                            M.TrainConfig(steps=40, rays_per_batch=24,
                                          num_points=10, seed=0))
        losses = trainer.fit(40)
        early = float(np.mean(losses[:8]))
        late = float(np.mean(losses[-8:]))
        assert late < early * 1.05
        assert min(losses[8:]) < losses[0]
