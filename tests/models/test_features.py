"""Feature acquisition: bilinear gather, visibility, direction encoding."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.models.features import (bilinear_gather, direction_features,
                                   feature_access_bytes, fetch_features)
from repro.models.encoder import ConvEncoder
from repro.geometry import Intrinsics, camera_at


class TestBilinearGather:
    def test_exact_at_integer_pixels(self, rng):
        fmap = Tensor(rng.standard_normal((6, 8, 4)).astype(np.float32))
        pixels = np.array([[3.0, 2.0], [0.0, 0.0], [7.0, 5.0]])
        out = bilinear_gather(fmap, pixels)
        assert np.allclose(out.data[0], fmap.data[2, 3], atol=1e-6)
        assert np.allclose(out.data[1], fmap.data[0, 0], atol=1e-6)
        assert np.allclose(out.data[2], fmap.data[5, 7], atol=1e-6)

    def test_midpoint_average(self):
        fmap_data = np.zeros((2, 2, 1), dtype=np.float32)
        fmap_data[0, 0, 0] = 1.0
        fmap_data[0, 1, 0] = 3.0
        fmap_data[1, 0, 0] = 5.0
        fmap_data[1, 1, 0] = 7.0
        out = bilinear_gather(Tensor(fmap_data), np.array([[0.5, 0.5]]))
        assert np.isclose(out.data[0, 0], 4.0)

    def test_out_of_bounds_clamped(self, rng):
        fmap = Tensor(rng.standard_normal((4, 4, 2)).astype(np.float32))
        out = bilinear_gather(fmap, np.array([[-3.0, -3.0], [10.0, 10.0]]))
        assert np.allclose(out.data[0], fmap.data[0, 0], atol=1e-6)
        assert np.allclose(out.data[1], fmap.data[3, 3], atol=1e-6)

    def test_gradient_scatters_to_map(self, rng):
        fmap = Tensor(rng.standard_normal((4, 4, 2)).astype(np.float32),
                      requires_grad=True)
        out = bilinear_gather(fmap, np.array([[1.5, 1.5]]))
        out.sum().backward()
        # Four corners each receive weight 0.25 (x2 channels).
        touched = fmap.grad.sum(-1)
        assert np.isclose(touched[1:3, 1:3].sum(), 2.0)
        assert np.isclose(touched.sum(), 2.0)


class TestDirectionFeatures:
    def test_shape_and_dot_range(self, rng):
        intr = Intrinsics.from_fov(16, 16, 60.0)
        source = camera_at(np.array([0, 0, -4.0]), np.zeros(3), intr)
        points = rng.uniform(-1, 1, (5, 7, 3))
        ray_dirs = rng.standard_normal((5, 3))
        ray_dirs /= np.linalg.norm(ray_dirs, axis=-1, keepdims=True)
        feats = direction_features(points, ray_dirs, source)
        assert feats.shape == (5, 7, 4)
        assert (np.abs(feats[..., 3]) <= 1 + 1e-5).all()

    def test_aligned_directions_give_dot_one(self):
        intr = Intrinsics.from_fov(16, 16, 60.0)
        source = camera_at(np.array([0, 0, -4.0]), np.zeros(3), intr)
        # Point straight ahead of the source, ray in the same direction.
        points = np.array([[[0.0, 0.0, 0.0]]])
        ray_dirs = np.array([[0.0, 0.0, 1.0]])
        feats = direction_features(points, ray_dirs, source)
        assert np.isclose(feats[0, 0, 3], 1.0, atol=1e-6)
        assert np.allclose(feats[0, 0, :3], 0.0, atol=1e-6)


class TestFetchFeatures:
    @pytest.fixture()
    def setup(self, rng):
        intr = Intrinsics.from_fov(24, 18, 60.0)
        cameras = [camera_at(np.array([x, 0, -4.0]), np.zeros(3), intr)
                   for x in (-0.5, 0.5)]
        images = rng.uniform(0, 1, (2, 3, 18, 24)).astype(np.float32)
        encoder = ConvEncoder(feature_dim=6, hidden=4, rng=rng)
        maps = encoder.encode_views(images)
        return cameras, images, maps

    def test_shapes(self, setup, rng):
        cameras, images, maps = setup
        points = rng.uniform(-0.5, 0.5, (4, 6, 3))
        dirs = np.tile(np.array([0, 0, 1.0]), (4, 1))
        fetched = fetch_features(points, dirs, cameras, maps, images,
                                 feature_scale=0.5)
        assert fetched.features.shape == (2, 4, 6, 6)
        assert fetched.rgb.shape == (2, 4, 6, 3)
        assert fetched.direction_delta.shape == (2, 4, 6, 4)
        assert fetched.visibility.shape == (2, 4, 6)
        assert fetched.num_views == 2

    def test_visibility_for_points_behind(self, setup):
        cameras, images, maps = setup
        behind = np.full((1, 2, 3), -10.0)   # behind both cameras
        dirs = np.array([[0, 0, 1.0]])
        fetched = fetch_features(behind, dirs, cameras, maps, images, 0.5)
        assert not fetched.visibility.any()

    def test_center_point_visible_everywhere(self, setup):
        cameras, images, maps = setup
        points = np.zeros((1, 1, 3))
        dirs = np.array([[0, 0, 1.0]])
        fetched = fetch_features(points, dirs, cameras, maps, images, 0.5)
        assert fetched.visibility.all()

    def test_gradient_reaches_encoder_maps(self, setup, rng):
        cameras, images, maps = setup
        points = rng.uniform(-0.3, 0.3, (2, 3, 3))
        dirs = np.tile(np.array([0, 0, 1.0]), (2, 1))
        fetched = fetch_features(points, dirs, cameras, maps, images, 0.5)
        fetched.features.sum().backward()
        assert maps[0].grad is not None or maps[0]._parents  # graph built


def test_feature_access_bytes_headline_formula():
    """H*W*P*S*D, the paper's Sec. 1 access count."""
    assert feature_access_bytes(100, 200, 64, 6, 32) \
        == 100 * 200 * 64 * 6 * 32
    assert feature_access_bytes(10, 10, 8, 2, 4, bytes_per_element=2) \
        == 10 * 10 * 8 * 2 * 4 * 2
