"""Differentiable volume rendering: parity with numpy, masks, gradients."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.models.volume_rendering import composite, expected_depth, opacity
from repro.scenes import composite_numpy


@pytest.fixture()
def ray_batch(rng):
    sigmas = np.abs(rng.standard_normal((6, 12))).astype(np.float32) * 2
    colors = rng.uniform(0, 1, (6, 12, 3)).astype(np.float32)
    depths = np.sort(rng.uniform(2, 6, (6, 12)), axis=-1)
    return sigmas, colors, depths


class TestParity:
    def test_matches_numpy_composite(self, ray_batch):
        sigmas, colors, depths = ray_batch
        pixel_t, weights_t = composite(Tensor(sigmas), Tensor(colors),
                                       depths, far=6.0)
        pixel_n, weights_n, _ = composite_numpy(sigmas, colors, depths, 6.0)
        assert np.allclose(pixel_t.data, pixel_n, atol=1e-4)
        assert np.allclose(weights_t.data, weights_n, atol=1e-4)

    def test_white_background_parity(self, ray_batch):
        sigmas, colors, depths = ray_batch
        pixel_t, _ = composite(Tensor(sigmas * 0.01), Tensor(colors), depths,
                               far=6.0, white_background=True)
        pixel_n, _, _ = composite_numpy(sigmas * 0.01, colors, depths, 6.0,
                                        white_background=True)
        assert np.allclose(pixel_t.data, pixel_n, atol=1e-4)

    def test_max_delta_parity(self, ray_batch):
        sigmas, colors, depths = ray_batch
        pixel_t, _ = composite(Tensor(sigmas), Tensor(colors), depths,
                               far=6.0, max_delta=0.2)
        pixel_n, _, _ = composite_numpy(sigmas, colors, depths, 6.0,
                                        max_delta=0.2)
        assert np.allclose(pixel_t.data, pixel_n, atol=1e-4)


class TestMask:
    def test_padded_points_contribute_nothing(self, ray_batch):
        """Whatever sigma/colour the padded slots carry, the pixel is
        unchanged — 'the padded ones do not contribute' (Sec. 3.2)."""
        sigmas, colors, depths = ray_batch
        mask = np.ones_like(sigmas, dtype=bool)
        mask[:, 8:] = False
        poisoned_sigma = sigmas.copy()
        poisoned_sigma[:, 8:] = 100.0
        poisoned_color = colors.copy()
        poisoned_color[:, 8:] = 123.0
        clean, _ = composite(Tensor(sigmas), Tensor(colors), depths,
                             far=6.0, mask=mask)
        masked, _ = composite(Tensor(poisoned_sigma), Tensor(poisoned_color),
                              depths, far=6.0, mask=mask)
        assert np.allclose(clean.data, masked.data, atol=1e-6)

    def test_fully_masked_ray_is_black(self, ray_batch):
        sigmas, colors, depths = ray_batch
        mask = np.zeros_like(sigmas, dtype=bool)
        pixel, weights = composite(Tensor(sigmas), Tensor(colors), depths,
                                   far=6.0, mask=mask)
        assert np.allclose(pixel.data, 0.0)
        assert np.allclose(weights.data, 0.0)


class TestGradients:
    def test_gradients_reach_sigma_and_color(self, ray_batch):
        sigmas, colors, depths = ray_batch
        sig = Tensor(sigmas, requires_grad=True)
        col = Tensor(colors, requires_grad=True)
        pixel, _ = composite(sig, col, depths, far=6.0)
        pixel.sum().backward()
        assert sig.grad is not None and np.isfinite(sig.grad).all()
        assert col.grad is not None and (col.grad >= -1e-6).all()

    def test_sigma_gradient_numerical(self, ray_batch, numgrad):
        sigmas, colors, depths = ray_batch
        sig0 = sigmas[:2, :6].astype(np.float64)
        col0 = colors[:2, :6]
        d0 = depths[:2, :6]

        sig = Tensor(sig0.copy(), requires_grad=True)
        pixel, _ = composite(sig, Tensor(col0), d0, far=6.0)
        pixel.sum().backward()

        def scalar(s):
            p, _ = composite(Tensor(s), Tensor(col0), d0, far=6.0)
            return float(p.sum().data)

        expected = numgrad(scalar, sig0.copy(), eps=1e-4)
        assert np.abs(sig.grad - expected).max() < 1e-3


class TestAuxiliaries:
    def test_expected_depth_range(self, ray_batch):
        sigmas, colors, depths = ray_batch
        _, weights = composite(Tensor(sigmas), Tensor(colors), depths, 6.0)
        depth = expected_depth(weights, depths)
        assert (depth.data <= 6.0 + 1e-5).all()
        assert (depth.data >= 0.0).all()

    def test_opacity_bounds(self, ray_batch):
        sigmas, colors, depths = ray_batch
        _, weights = composite(Tensor(sigmas), Tensor(colors), depths, 6.0)
        alpha = opacity(weights)
        assert ((alpha.data >= 0) & (alpha.data <= 1 + 1e-6)).all()
