"""Vectorised sampling paths vs the seed loop implementations.

The batched ``searchsorted`` / sort-and-pack rewrites of the sampling
hot paths must be drop-in: at fixed seeds they reproduce the seed
per-ray loops bit-for-bit (same depths, same masks), including the
degenerate shapes — single ray, zero-count rays, all rays saturated at
``n_max``.
"""

import numpy as np
import pytest

from repro.models.sampling import (SampleSet, _inverse_transform,
                                   allocate_ray_budget, focused_depths,
                                   merge_critical_points, sampling_pdf)
from repro.perf.reference import (focused_depths_loop,
                                  inverse_transform_loop,
                                  merge_critical_points_loop)

RAY_COUNTS = [1, 7, 256]


def synthetic_coarse(num_rays, num_bins, seed):
    """Coarse depths/weights with a mix of surface and empty rays."""
    rng = np.random.default_rng(seed)
    depths = np.tile(np.linspace(2.0, 6.0, num_bins), (num_rays, 1))
    depths += rng.random((num_rays, num_bins)) * 1e-3
    depths = np.sort(depths, axis=-1)
    weights = rng.random((num_rays, num_bins)) ** 4
    weights[rng.random(num_rays) < 0.4] = 0.0     # empty rays
    weights /= max(weights.sum(), 1.0)
    return depths, weights


class TestInverseTransform:
    @pytest.mark.parametrize("num_rays", RAY_COUNTS)
    def test_bit_identical(self, num_rays):
        rng = np.random.default_rng(num_rays)
        num_bins, num_draws = 16, 24
        edges = np.sort(rng.random((num_rays, num_bins + 1)), -1) * 4 + 2
        pdf = rng.random((num_rays, num_bins))
        uniforms = rng.random((num_rays, num_draws))
        vectorised = _inverse_transform(edges, pdf, uniforms)
        looped = inverse_transform_loop(edges, pdf, uniforms)
        np.testing.assert_array_equal(vectorised, looped)

    @pytest.mark.parametrize("num_rays", RAY_COUNTS)
    def test_large_bin_count_flat_searchsorted_path(self, num_rays):
        """B > 64 takes the flat offset-CDF searchsorted branch."""
        rng = np.random.default_rng(num_rays + 17)
        num_bins, num_draws = 128, 16
        edges = np.sort(rng.random((num_rays, num_bins + 1)), -1) * 4 + 2
        pdf = rng.random((num_rays, num_bins))
        uniforms = rng.random((num_rays, num_draws))
        np.testing.assert_array_equal(
            _inverse_transform(edges, pdf, uniforms),
            inverse_transform_loop(edges, pdf, uniforms))

    def test_spiky_pdf_bit_identical(self):
        """Near-degenerate PDFs (one dominant bin) exercise the CDF's
        flat stretches where the bin lookup is most tie-prone."""
        rng = np.random.default_rng(99)
        pdf = np.full((64, 12), 1e-15)
        pdf[np.arange(64), rng.integers(0, 12, 64)] = 1.0
        edges = np.tile(np.linspace(2.0, 6.0, 13), (64, 1))
        uniforms = rng.random((64, 32))
        np.testing.assert_array_equal(
            _inverse_transform(edges, pdf, uniforms),
            inverse_transform_loop(edges, pdf, uniforms))


class TestFocusedDepths:
    @pytest.mark.parametrize("num_rays", RAY_COUNTS)
    def test_bit_identical(self, num_rays):
        depths, weights = synthetic_coarse(num_rays, 16, seed=num_rays)
        _, point_pdf, _ = sampling_pdf(weights, tau=1e-3)
        counts = np.random.default_rng(7).integers(0, 20, num_rays)
        vec = focused_depths(depths, point_pdf, counts, n_max=16,
                             near=2.0, far=6.0,
                             rng=np.random.default_rng(42))
        loop = focused_depths_loop(depths, point_pdf, counts, n_max=16,
                                   near=2.0, far=6.0,
                                   rng=np.random.default_rng(42))
        np.testing.assert_array_equal(vec.depths, loop.depths)
        np.testing.assert_array_equal(vec.mask, loop.mask)

    @pytest.mark.parametrize("counts_kind", ["zero", "saturated"])
    def test_degenerate_counts(self, counts_kind):
        depths, weights = synthetic_coarse(7, 16, seed=5)
        _, point_pdf, _ = sampling_pdf(weights, tau=1e-3)
        n_max = 12
        counts = np.zeros(7, dtype=int) if counts_kind == "zero" \
            else np.full(7, n_max + 5)
        vec = focused_depths(depths, point_pdf, counts, n_max, 2.0, 6.0,
                             np.random.default_rng(0))
        loop = focused_depths_loop(depths, point_pdf, counts, n_max,
                                   2.0, 6.0, np.random.default_rng(0))
        np.testing.assert_array_equal(vec.depths, loop.depths)
        np.testing.assert_array_equal(vec.mask, loop.mask)


class TestMergeCriticalPoints:
    @pytest.mark.parametrize("num_rays", RAY_COUNTS)
    def test_bit_identical(self, num_rays):
        depths, weights = synthetic_coarse(num_rays, 16, seed=num_rays + 1)
        _, point_pdf, _ = sampling_pdf(weights, tau=1e-3)
        counts = np.random.default_rng(3).integers(0, 16, num_rays)
        plan = focused_depths(depths, point_pdf, counts, n_max=16,
                              near=2.0, far=6.0,
                              rng=np.random.default_rng(11))
        vec = merge_critical_points(plan, depths, weights, tau=1e-3,
                                    n_max=16, far=6.0)
        loop = merge_critical_points_loop(plan, depths, weights, tau=1e-3,
                                          n_max=16, far=6.0)
        np.testing.assert_array_equal(vec.depths, loop.depths)
        np.testing.assert_array_equal(vec.mask, loop.mask)

    def test_duplicates_collapse_and_truncate(self):
        """Duplicated depths dedupe and overflow truncates farthest."""
        plan = SampleSet.dense(np.tile(np.linspace(2, 6, 30), (4, 1)))
        coarse = np.tile(np.linspace(2, 6, 30), (4, 1))   # all duplicates
        weights = np.full((4, 30), 1.0)                   # all critical
        vec = merge_critical_points(plan, coarse, weights, tau=1e-3,
                                    n_max=8, far=6.0)
        loop = merge_critical_points_loop(plan, coarse, weights, tau=1e-3,
                                          n_max=8, far=6.0)
        np.testing.assert_array_equal(vec.depths, loop.depths)
        np.testing.assert_array_equal(vec.mask, loop.mask)
        assert (vec.counts == 8).all()


class TestBudgetClamp:
    """Satellite: the min_points floor must not blow the global budget."""

    @pytest.mark.parametrize("num_rays", RAY_COUNTS)
    @pytest.mark.parametrize("min_points", [1, 3])
    def test_sum_exact_when_budget_covers_floor(self, num_rays, min_points):
        rng = np.random.default_rng(num_rays * 13 + min_points)
        probability = rng.random(num_rays) ** 6   # very skewed
        total = max(8 * num_rays, min_points * num_rays)
        counts = allocate_ray_budget(probability, total, n_max=64,
                                     min_points=min_points)
        assert counts.sum() == total
        assert (counts >= min_points).all()
        assert counts.max() <= 64

    def test_concentrated_probability_steals_from_largest(self):
        counts = allocate_ray_budget(np.array([1.0, 0.0, 0.0, 0.0]),
                                     total_points=10, n_max=10, min_points=2)
        assert counts.sum() == 10
        assert (counts >= 2).all()
        assert counts[0] == 4          # paid for the three floors

    def test_floor_wins_when_budget_cannot_cover(self):
        counts = allocate_ray_budget(np.ones(8), total_points=4, n_max=8,
                                     min_points=2)
        assert (counts >= 2).all()     # documented: floor takes precedence
