"""Packed fine pass == padded reference, byte for byte.

The sparse fine pass (``repro.models.sparse``, ISSUE 9) gathers the
mask-valid samples, runs feature fetch + the pointwise MLP stacks on
flat packed buffers, and scatters zeros back before the cross-point
module.  Its contract is *byte-identity* with the pinned padded path
(:func:`repro.perf.reference.model_forward_padded`): every committed
artefact regenerates unchanged whether the knob is on or off.  This
suite pins that for both model classes (IBRNet with mixer and
transformer ray modules, Gen-NeRF end-to-end), every scene family
including the occupancy-stress ones, explicit and adaptive chunking,
and 1/2/4 workers — plus the ``REPRO_SPARSE`` knob semantics.
"""

import logging

import numpy as np
import pytest

from repro import nn
from repro.core import frame_pool, log
from repro.geometry.rays import rays_for_image, stratified_depths
from repro.models import (GenNeRF, GenNerfConfig, GeneralizableNeRF,
                          ModelConfig, render_image_gen_nerf,
                          render_source_views)
from repro.models.ibrnet import PACK_STATS
from repro.models.sampling import coarse_then_focus_plan
from repro.models.sparse import SPARSE_ENV, parse_sparse_flag, sparse_enabled
from repro.perf.reference import model_forward_padded
from repro.scenes.datasets import make_scene
from repro.scenes.render_gt import composite_numpy, field_sigma_color

FAMILIES = ("llff", "nerf_synthetic", "deepvoxels", "thicket",
            "orbit_sparse")

TINY_MODEL = dict(feature_dim=8, view_hidden=8, score_hidden=4,
                  density_hidden=12, density_feature_dim=6,
                  ray_module="mixer", n_max=12, encoder_hidden=6)


def _forward_setup(family):
    """Scene, encoded maps, and a *real* sampler mask for one family."""
    scene = make_scene(family, seed=1, image_scale=1 / 16,
                       num_source_views=6)
    source_images = render_source_views(scene, num_points=32)
    bundle = rays_for_image(scene.target_camera, scene.near, scene.far,
                            step=4).select(slice(0, 64))
    coarse = stratified_depths(np.random.default_rng(0), len(bundle), 24,
                               scene.near, scene.far, jitter=False)
    sigmas, colors = field_sigma_color(scene.field, bundle, coarse)
    _, weights, _ = composite_numpy(sigmas, colors, coarse, bundle.far)
    plan = coarse_then_focus_plan(coarse, weights, 4, TINY_MODEL["n_max"],
                                  1e-3, scene.near, scene.far,
                                  rng=np.random.default_rng(0))
    return scene, source_images, bundle, plan


@pytest.fixture(scope="module")
def family_setups():
    return {family: _forward_setup(family) for family in FAMILIES}


@pytest.fixture(scope="module", autouse=True)
def retire_pool():
    yield
    frame_pool.shutdown_pool()


def _assert_outputs_identical(packed, padded):
    assert packed.rgb.data.tobytes() == padded.rgb.data.tobytes()
    assert packed.sigma.data.tobytes() == padded.sigma.data.tobytes()
    np.testing.assert_array_equal(packed.any_visible, padded.any_visible)


class TestForwardByteIdentity:
    """Direct ``GeneralizableNeRF.forward`` equivalence, per family."""

    @pytest.mark.parametrize("ray_module", ["mixer", "transformer"])
    @pytest.mark.parametrize("family", FAMILIES)
    def test_packed_matches_padded(self, family_setups, family, ray_module):
        scene, source_images, bundle, plan = family_setups[family]
        config = ModelConfig(**{**TINY_MODEL, "ray_module": ray_module})
        model = GeneralizableNeRF(config,
                                  rng=np.random.default_rng(0)).eval()
        points = bundle.points_at(plan.depths)
        with nn.inference_mode():
            maps = model.encode_scene(source_images)
            before = dict(PACK_STATS)
            packed = model(points, bundle.directions, scene.source_cameras,
                           maps, source_images, mask=plan.mask, sparse=True)
            padded = model_forward_padded(model, points, bundle.directions,
                                          scene.source_cameras, maps,
                                          source_images, mask=plan.mask)
        _assert_outputs_identical(packed, padded)
        assert PACK_STATS["dense"] > before["dense"]
        # The packed path must actually engage when there is real
        # sparsity to exploit; near-saturated masks may honestly bail.
        occupancy = plan.mask.mean()
        if occupancy <= 0.6:
            assert PACK_STATS["packed"] > before["packed"], \
                f"{family} at {occupancy:.0%} occupancy fell back to dense"

    def test_training_mode_never_packs(self, family_setups):
        scene, source_images, bundle, plan = family_setups["orbit_sparse"]
        model = GeneralizableNeRF(ModelConfig(**TINY_MODEL),
                                  rng=np.random.default_rng(0))
        model.train()
        maps = model.encode_scene(source_images)
        before = PACK_STATS["packed"]
        model(bundle.points_at(plan.depths), bundle.directions,
              scene.source_cameras, maps, source_images, mask=plan.mask,
              sparse=True)
        assert PACK_STATS["packed"] == before


class TestGenNerfEndToEnd:
    """Full ``render_image_gen_nerf`` equivalence at every width.

    The padded reference always renders in-process (``workers=1``) with
    the knob forced off; packed renders fan over the worker pool, whose
    subprocesses resolve the knob to its default (on)."""

    @pytest.fixture(scope="class")
    def rendered(self, family_setups, class_monkeypatch):
        results = {}
        for family in FAMILIES:
            scene, source_images, _, _ = family_setups[family]
            model = GenNeRF(GenNerfConfig(fine=ModelConfig(**TINY_MODEL),
                                          coarse_points=6,
                                          focused_points=4),
                            rng=np.random.default_rng(0)).eval()
            feature_maps = model.encode_scene(source_images)
            class_monkeypatch.setenv(SPARSE_ENV, "0")
            padded = render_image_gen_nerf(model, scene, source_images,
                                           step=4, chunk=64,
                                           feature_maps=feature_maps,
                                           workers=1)
            class_monkeypatch.delenv(SPARSE_ENV)
            results[family] = (scene, source_images, model, feature_maps,
                               padded)
        return results

    @pytest.mark.parametrize("family", FAMILIES)
    def test_workers1_explicit_chunk(self, rendered, family):
        scene, source_images, model, feature_maps, padded = rendered[family]
        packed = render_image_gen_nerf(model, scene, source_images, step=4,
                                       chunk=64, feature_maps=feature_maps,
                                       workers=1)
        assert packed[0].tobytes() == padded[0].tobytes()
        assert packed[1] == padded[1]

    @pytest.mark.parametrize("family", FAMILIES)
    def test_workers2_adaptive_chunk(self, rendered, family):
        scene, source_images, model, feature_maps, _ = rendered[family]
        adaptive_padded = render_image_gen_nerf(
            model, scene, source_images, step=4, chunk=None,
            feature_maps=feature_maps, workers=1)
        packed = render_image_gen_nerf(model, scene, source_images, step=4,
                                       chunk=None,
                                       feature_maps=feature_maps,
                                       workers=2)
        assert packed[0].tobytes() == adaptive_padded[0].tobytes()

    @pytest.mark.parametrize("family", ["llff", "orbit_sparse"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_width_matrix(self, rendered, family, workers):
        scene, source_images, model, feature_maps, padded = rendered[family]
        packed = render_image_gen_nerf(model, scene, source_images, step=4,
                                       chunk=64, feature_maps=feature_maps,
                                       workers=workers)
        assert packed[0].tobytes() == padded[0].tobytes()
        assert packed[1] == padded[1]

    def test_render_rays_sparse_argument(self, family_setups):
        """``render_rays(..., sparse=...)`` forwards the override."""
        scene, source_images, bundle, _ = family_setups["orbit_sparse"]
        model = GenNeRF(GenNerfConfig(fine=ModelConfig(**TINY_MODEL),
                                      coarse_points=6, focused_points=4),
                        rng=np.random.default_rng(0)).eval()
        with nn.inference_mode():
            coarse_maps, fine_maps = model.encode_scene(source_images)
            before = dict(PACK_STATS)
            on = model.render_rays(bundle, scene.source_cameras,
                                   coarse_maps, fine_maps, source_images,
                                   sparse=True)
            mid = dict(PACK_STATS)
            off = model.render_rays(bundle, scene.source_cameras,
                                    coarse_maps, fine_maps, source_images,
                                    sparse=False)
        assert on.data.tobytes() == off.data.tobytes()
        assert mid["packed"] > before["packed"]
        assert PACK_STATS["packed"] == mid["packed"]


@pytest.fixture(scope="class")
def class_monkeypatch():
    patcher = pytest.MonkeyPatch()
    yield patcher
    patcher.undo()


class TestSparseKnob:
    def test_env_off_switch(self, family_setups, monkeypatch):
        """``REPRO_SPARSE=0`` disables packing wholesale."""
        scene, source_images, bundle, plan = family_setups["orbit_sparse"]
        model = GeneralizableNeRF(ModelConfig(**TINY_MODEL),
                                  rng=np.random.default_rng(0)).eval()
        monkeypatch.setenv(SPARSE_ENV, "0")
        with nn.inference_mode():
            maps = model.encode_scene(source_images)
            before = dict(PACK_STATS)
            model(bundle.points_at(plan.depths), bundle.directions,
                  scene.source_cameras, maps, source_images,
                  mask=plan.mask)
        assert PACK_STATS["packed"] == before["packed"]
        assert PACK_STATS["dense"] == before["dense"] + 1

    def test_priority_argument_env_default(self, monkeypatch):
        monkeypatch.delenv(SPARSE_ENV, raising=False)
        assert sparse_enabled() is True              # default: on
        monkeypatch.setenv(SPARSE_ENV, "off")
        assert sparse_enabled() is False             # env wins
        assert sparse_enabled(override=True) is True  # argument beats env
        monkeypatch.setenv(SPARSE_ENV, "   ")
        assert sparse_enabled() is True              # blank env skipped

    def test_true_and_false_words(self):
        for word in ("1", "true", "YES", " On "):
            assert parse_sparse_flag(word) is True
        for word in ("0", "false", "No", " off "):
            assert parse_sparse_flag(word) is False

    def test_malformed_env_warns_and_falls_back(self, monkeypatch, caplog):
        monkeypatch.setenv(SPARSE_ENV, "banana")
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert sparse_enabled() is True
        record, = log.events_named(caplog.records, "knob.ignored")
        assert record.repro_fields["knob"] == SPARSE_ENV
        assert record.repro_fields["value"] == "banana"
