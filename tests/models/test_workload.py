"""Paper-scale workload accounting: the calibration test suite.

These assertions pin the FLOPs model to the numbers the paper reports;
tolerances reflect that our layer dimensions are reconstructions (the
paper gives no architecture table) calibrated once against Tables 2-3.
"""

import numpy as np
import pytest

from repro.models.workload import (DEFAULT_DIMS, PaperScaleDims,
                                   RenderWorkload, encoder_macs_per_view,
                                   per_point_macs, per_view_point_macs,
                                   profiling_workload, ray_mixer_macs,
                                   ray_transformer_macs, table2_workload,
                                   typical_workload)


def within(measured, paper, tolerance):
    assert abs(measured - paper) <= tolerance * paper, \
        f"measured {measured:.4g} vs paper {paper:.4g} " \
        f"(>{tolerance:.0%} off)"


class TestTable2Calibration:
    @pytest.mark.parametrize("row,paper_mflops,tol", [
        ("vanilla", 13.94, 0.10),
        ("no_ray_transformer", 13.25, 0.10),
        ("ray_mixer", 13.88, 0.10),
        ("coarse_focus", 4.27, 0.12),
        ("pruned", 0.80, 0.15),
    ])
    def test_mflops_per_pixel(self, row, paper_mflops, tol):
        workload = table2_workload(row)
        within(workload.flops_per_pixel() / 1e6, paper_mflops, tol)

    def test_unknown_row_raises(self):
        with pytest.raises(KeyError):
            table2_workload("quantized")

    def test_table3_view_scaling(self):
        """IBRNet 4 views: 6.31; Gen-NeRF pruned 4/10 views: 0.368/0.803."""
        within(table2_workload("vanilla", num_views=4).flops_per_pixel()
               / 1e6, 6.31, 0.12)
        within(table2_workload("pruned", num_views=4).flops_per_pixel()
               / 1e6, 0.368, 0.15)
        within(table2_workload("pruned", num_views=10).flops_per_pixel()
               / 1e6, 0.803, 0.15)

    def test_flops_reduction_factor(self):
        """The delivered 6-view model reduces FLOPs by >17x (Sec. 5.2)."""
        vanilla = table2_workload("vanilla").flops_per_pixel()
        delivered = table2_workload("pruned", num_views=6).flops_per_pixel()
        assert vanilla / delivered > 17


class TestTypicalWorkload:
    def test_total_flops_near_paper(self):
        """Sec. 5.1: 800x800, 64 focused points, 6 views = 0.328 TFLOPs."""
        workload = typical_workload()
        within(workload.total_flops() / 1e12, 0.328, 0.25)

    def test_feature_traffic_headline(self):
        workload = typical_workload()
        expected_fine = 800 * 800 * 80 * 6 * 32
        assert workload.feature_elements() > expected_fine  # + coarse pass

    def test_weight_bytes_fit_on_chip(self):
        workload = typical_workload()
        assert workload.weight_bytes() < 8 * 1024  # the 8KB weight buffer


class TestStructure:
    def test_ray_transformer_macs_quadratic(self):
        assert ray_transformer_macs(DEFAULT_DIMS, 128) \
            > 3 * ray_transformer_macs(DEFAULT_DIMS, 64)

    def test_ray_mixer_macs_formula(self):
        dims = DEFAULT_DIMS
        macs = ray_mixer_macs(dims, 64)
        expected = dims.density_feature_dim * 64 * 64 \
            + 64 * dims.density_feature_dim ** 2 \
            + 64 * dims.density_feature_dim
        assert macs == expected

    def test_per_point_macs_linear_in_views(self):
        base = per_point_macs(DEFAULT_DIMS, 0)
        slope = per_point_macs(DEFAULT_DIMS, 1) - base
        assert per_point_macs(DEFAULT_DIMS, 10) == base + 10 * slope
        assert slope == per_view_point_macs(DEFAULT_DIMS)

    def test_scaled_dims_keep_interface(self):
        scaled = DEFAULT_DIMS.scaled(0.25, keep_interface=True)
        assert scaled.feature_dim == DEFAULT_DIMS.feature_dim
        assert scaled.density_feature_dim == DEFAULT_DIMS.density_feature_dim
        assert scaled.view_hidden == 7

    def test_scaled_dims_full(self):
        scaled = DEFAULT_DIMS.scaled(0.25, keep_interface=False)
        assert scaled.feature_dim == 8

    def test_breakdown_sums_to_most_of_total(self):
        workload = table2_workload("vanilla")
        breakdown = workload.breakdown_flops_per_pixel()
        assert np.isclose(sum(breakdown.values()),
                          workload.flops_per_pixel())

    def test_fine_points_include_coarse(self):
        workload = table2_workload("coarse_focus")
        assert workload.fine_points_per_ray == 48 + 16

    def test_encoder_macs_positive(self):
        assert encoder_macs_per_view(DEFAULT_DIMS, 756, 1008) > 0

    def test_include_encoder_adds_flops(self):
        base = typical_workload()
        with_encoder = RenderWorkload(
            height=800, width=800, num_views=6, points_per_ray=64,
            ray_module="mixer", coarse_points=16, prune_scale=0.25,
            include_encoder=True)
        assert with_encoder.total_flops() > base.total_flops()

    def test_unknown_ray_module_raises(self):
        workload = RenderWorkload(height=8, width=8, num_views=2,
                                  points_per_ray=4, ray_module="rnn")
        with pytest.raises(ValueError):
            workload.ray_module_flops_per_pixel()


class TestProfilingWorkload:
    def test_fig2_config(self):
        workload = profiling_workload(756, 1008)
        assert workload.points_per_ray == 196
        assert workload.num_views == 10
        assert workload.ray_module == "transformer"
        assert workload.coarse_points == 0
