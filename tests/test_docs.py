"""Documentation link & reference checker (``make docs-check``).

Walks ``README.md`` and everything under ``docs/`` and verifies that

* relative markdown links point at files/directories that exist,
* backticked repo paths (``src/...``, ``benchmarks/results/*.txt``,
  root-level ``*.md``/``*.json``) resolve, including
  ``path::TestName`` pytest references, and
* backticked dotted code references rooted at ``repro`` import and
  resolve attribute by attribute (so renaming a function without
  updating the docs fails CI).

External URLs are not fetched — the repo is offline; only repo-local
targets are validated.
"""

import importlib
import os
import re

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DOCS_DIR = os.path.join(REPO_ROOT, "docs")

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_RE = re.compile(r"`([^`\n]+)`")
MODULE_RE = re.compile(r"^repro(\.[A-Za-z_][A-Za-z0-9_]*)+$")
PATH_PREFIXES = ("src/", "docs/", "tests/", "benchmarks/", "examples/")
ROOT_FILE_EXTENSIONS = (".md", ".json")


def doc_files():
    files = [os.path.join(REPO_ROOT, "README.md")]
    if os.path.isdir(DOCS_DIR):
        files.extend(os.path.join(DOCS_DIR, name)
                     for name in sorted(os.listdir(DOCS_DIR))
                     if name.endswith(".md"))
    return files


def doc_ids():
    return [os.path.relpath(path, REPO_ROOT) for path in doc_files()]


def test_documentation_suite_exists():
    assert os.path.isfile(os.path.join(REPO_ROOT, "README.md"))
    assert os.path.isfile(os.path.join(DOCS_DIR, "architecture.md"))
    assert os.path.isfile(os.path.join(DOCS_DIR, "performance.md"))


@pytest.mark.parametrize("path", doc_files(), ids=doc_ids())
def test_markdown_links_resolve(path):
    text = open(path).read()
    base = os.path.dirname(path)
    broken = []
    for target in LINK_RE.findall(text):
        if "://" in target or target.startswith("mailto:"):
            continue                       # external; not fetched offline
        target = target.split("#", 1)[0]
        if not target:
            continue                       # pure in-page anchor
        if not os.path.exists(os.path.join(base, target)):
            broken.append(target)
    assert not broken, f"broken links in {os.path.basename(path)}: {broken}"


def _path_reference_ok(token: str) -> bool:
    """Does a backticked repo-path reference exist?"""
    target = token.split("::", 1)[0]       # pytest node ids
    return os.path.exists(os.path.join(REPO_ROOT, target))


def _code_reference_ok(dotted: str) -> bool:
    """Import the longest importable prefix, then walk attributes."""
    parts = dotted.split(".")
    for end in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:end]))
        except ImportError:
            continue
        try:
            for attribute in parts[end:]:
                obj = getattr(obj, attribute)
        except AttributeError:
            return False
        return True
    return False


@pytest.mark.parametrize("path", doc_files(), ids=doc_ids())
def test_code_references_resolve(path):
    text = open(path).read()
    broken = []
    for token in CODE_RE.findall(text):
        token = token.strip().rstrip("()")
        if not token or any(ch.isspace() for ch in token):
            continue                       # shell lines, prose snippets
        if "/" in token:
            if token.startswith(PATH_PREFIXES) \
                    and not _path_reference_ok(token):
                broken.append(token)
            continue
        if token.endswith(ROOT_FILE_EXTENSIONS):
            if not os.path.exists(os.path.join(REPO_ROOT, token)):
                broken.append(token)
            continue
        if MODULE_RE.match(token) and not _code_reference_ok(token):
            broken.append(token)
    assert not broken, \
        f"stale code references in {os.path.basename(path)}: {broken}"
