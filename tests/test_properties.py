"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.frustum import convex_hull_area
from repro.hardware.interleave import (FeatureStore, FootprintRegion,
                                       _residue_counts)
from repro.hardware.sram import PrefetchDoubleBuffer
from repro.hardware.systolic import GemmShape, gemm_cycles, gemm_utilization
from repro.models.sampling import allocate_ray_budget, sampling_pdf
from repro.nn.tensor import Tensor, unbroadcast
from repro.scenes.render_gt import composite_numpy

settings.register_profile("repro", deadline=None, max_examples=50)
settings.load_profile("repro")


finite_floats = st.floats(min_value=-100, max_value=100,
                          allow_nan=False, allow_infinity=False)


@given(arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 5)),
              elements=finite_floats))
def test_unbroadcast_preserves_sum(grad):
    """Summing the gradient is invariant under unbroadcasting."""
    for shape in [(1, grad.shape[1]), (grad.shape[1],), (1, 1)]:
        reduced = unbroadcast(grad.copy(), shape)
        assert reduced.shape == shape
        assert np.isclose(reduced.sum(), grad.sum(), rtol=1e-9)


@given(arrays(np.float64, st.tuples(st.integers(1, 6), st.integers(2, 24)),
              elements=st.floats(0, 50, allow_nan=False)),
       st.floats(0.05, 2.0))
def test_composite_weights_are_subprobability(sigmas, span):
    rays, points = sigmas.shape
    depths = np.linspace(2.0, 2.0 + span, points)[None].repeat(rays, axis=0)
    colors = np.ones((rays, points, 3)) * 0.5
    pixel, weights, transmittance = composite_numpy(sigmas, colors, depths,
                                                    far=2.0 + span + 0.1)
    assert (weights >= -1e-12).all()
    assert (weights.sum(-1) <= 1 + 1e-9).all()
    assert (np.diff(transmittance, axis=-1) <= 1e-9).all()
    assert (pixel >= -1e-9).all() and (pixel <= 1 + 1e-9).all()


@given(arrays(np.float64, st.tuples(st.integers(3, 24), st.just(2)),
              elements=st.floats(-50, 50, allow_nan=False)))
def test_hull_area_invariances(points):
    """Hull area is translation invariant and scales quadratically."""
    base = convex_hull_area(points)
    shifted = convex_hull_area(points + np.array([13.0, -7.0]))
    doubled = convex_hull_area(points * 2.0)
    assert base >= 0
    assert np.isclose(base, shifted, rtol=1e-6, atol=1e-6)
    assert np.isclose(doubled, 4 * base, rtol=1e-6, atol=1e-6)


@given(arrays(np.float64, st.integers(1, 64),
              elements=st.floats(0, 1, allow_nan=False)),
       st.integers(0, 2000), st.integers(1, 64))
def test_allocate_budget_exact_and_bounded(probability, total, n_max):
    capacity = len(probability) * n_max
    counts = allocate_ray_budget(probability, total, n_max)
    assert (counts >= 0).all()
    assert (counts <= n_max).all()
    assert counts.sum() == min(total, capacity)


@given(arrays(np.float64, st.tuples(st.integers(1, 8), st.integers(2, 32)),
              elements=st.floats(0, 0.2, allow_nan=False)),
       st.floats(1e-5, 1e-1))
def test_sampling_pdf_invariants(weights, tau):
    ray_p, point_pdf, counts = sampling_pdf(weights, tau)
    assert np.isclose(ray_p.sum(), 1.0)
    assert (ray_p >= 0).all()
    assert np.allclose(point_pdf.sum(-1), 1.0)
    assert (counts >= 0).all() and (counts <= weights.shape[1]).all()


@given(st.integers(0, 100), st.integers(0, 200), st.integers(1, 16))
def test_residue_counts_total(start, length, modulus):
    counts = _residue_counts(start, start + length, modulus)
    assert counts.sum() == length
    assert counts.max() - counts.min() <= 1


@given(st.integers(1, 6), st.integers(0, 30), st.integers(1, 30),
       st.integers(0, 30), st.integers(1, 30),
       st.sampled_from(["row_major", "row_interleaved", "view_interleaved",
                        "spatial_interleaved"]))
def test_rectangle_load_conservation(view, row0, rows, col0, cols, layout):
    """Bank loads always sum to the rectangle's location count."""
    store = FeatureStore(num_views=8, height=64, width=64, channels=4,
                         layout=layout)
    region = FootprintRegion(view=view, row0=row0, row1=row0 + rows,
                             col0=col0, col1=col0 + cols)
    loads, acts = store.rectangle_bank_load(region, num_banks=8)
    assert loads.sum() == rows * cols
    assert (acts >= 0).all()


@given(st.integers(1, 512), st.integers(1, 64), st.integers(1, 64),
       st.integers(1, 8), st.booleans())
def test_gemm_cycles_bounds(m, k, n, count, shared):
    shape = GemmShape(m, k, n, count=count, shared_weights=shared)
    cycles = gemm_cycles(shape)
    assert cycles >= shape.macs / (16 * 16)     # never beats peak
    assert 0 < gemm_utilization(shape) <= 1 + 1e-9


@given(arrays(np.float64, st.integers(1, 32),
              elements=st.floats(0, 1e-3, allow_nan=False)),
       arrays(np.float64, st.integers(1, 32),
              elements=st.floats(0, 1e-3, allow_nan=False)))
def test_pipeline_time_bounds(fetch, compute):
    """Double-buffered time is between max(sums) and their total."""
    n = min(len(fetch), len(compute))
    fetch, compute = fetch[:n], compute[:n]
    total, busy = PrefetchDoubleBuffer.pipeline_time(fetch, compute)
    assert total >= max(fetch.sum(), compute.sum()) - 1e-12
    assert total <= fetch.sum() + compute.sum() + 1e-12
    assert np.isclose(busy, compute.sum())


@given(arrays(np.float32, st.tuples(st.integers(1, 4), st.integers(1, 6)),
              elements=st.floats(-10, 10, allow_nan=False, width=32)))
def test_tensor_softmax_rows_normalised(values):
    from repro.nn import functional as F

    out = F.softmax(Tensor(values), axis=-1).data
    assert np.allclose(out.sum(-1), 1.0, atol=1e-4)
    assert (out >= 0).all()
