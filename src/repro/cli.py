"""``python -m repro`` — the experiment-registry command line.

Four subcommands drive :mod:`repro.core.registry`:

* ``list`` — every registered experiment (name, kind, artefact,
  one-line description);
* ``run <name>`` — execute one experiment (``--seed`` / ``--scale`` /
  ``--workers`` overrides; ``--write`` atomically regenerates the
  committed artefact, ``--results-dir`` redirects it);
* ``sweep [axis=v1,v2 ...]`` — a dataset x views x points x
  hardware-variant grid through the co-design pipeline
  (``variant=`` names map to :func:`repro.hardware.variant_config`),
  fanned out over the multi-process variant runner;
* ``batch <jobs_dir>`` — fault-isolated bulk ingestion of a directory
  of JSON job specs (:mod:`repro.core.batch`): malformed or crashing
  jobs are quarantined under ``errors/`` with traceback reports, the
  run continues, and a re-invocation resumes by skipping jobs whose
  artefact already exists;
* ``serve`` — the long-lived render daemon (:mod:`repro.core.serve`):
  JSON-lines requests on stdin, JSON-lines responses on stdout, with
  cross-request micro-batching under the ``REPRO_BATCH_WINDOW`` /
  ``REPRO_MAX_BATCH`` knobs (see ``docs/serving.md``).

Examples::

    python -m repro list
    python -m repro run table1
    python -m repro run fig9 --scale 0.25 --workers 4
    python -m repro sweep dataset=llff,nerf_synthetic views=2,6 \
        variant=ours,var1 --workers 4 --out sweep_dataflow
    python -m repro batch customer_jobs/ --out results/customer_a
    echo '{"scene": "fern", "quality": "draft"}' | python -m repro serve
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .core.batch import run_batch
from .core.context import RunContext
from .core.faults import RETRIES_ENV, TIMEOUT_ENV
from .core.registry import (all_experiments, get_experiment,
                            parse_sweep_grid, run_sweep)
from .core.scene_cache import ENV_KNOB
from .core.serve import (MAX_BATCH_ENV, QUEUE_ENV, WINDOW_ENV, ServeConfig,
                         run_daemon)
from .models.footprint import FOOTPRINT_ENV
from .models.sparse import SPARSE_ENV


def _add_common_options(parser: argparse.ArgumentParser,
                        scale: bool = True) -> None:
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for the variant fan-out AND "
                             "intra-frame sharding (renders and frame "
                             "simulations split across cores when the "
                             "outer fan-out is sequential; results are "
                             "byte-identical at any width). Default: "
                             "REPRO_WORKERS env, then CPU count; "
                             "<= 0 forces fully sequential runs")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the experiment's seed parameter")
    if scale:
        parser.add_argument("--scale", type=float, default=1.0,
                            help="work multiplier applied through the "
                                 "experiment's scale rules (1.0 = the "
                                 "committed-artefact configuration)")
    parser.add_argument("--cache-dir", default=None,
                        help=f"disk scene-cache directory (default: the "
                             f"{ENV_KNOB} env knob)")
    parser.add_argument("--results-dir", default=None,
                        help="artefact output directory (default: the "
                             "committed benchmarks/results)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        help=f"per-task timeout in seconds for the "
                             f"worker pools (default: the {TIMEOUT_ENV} "
                             f"env knob; <= 0 disables timeouts)")
    parser.add_argument("--retries", type=int, default=None,
                        help=f"bounded retry budget for failed/hung "
                             f"pool tasks (default: the {RETRIES_ENV} "
                             f"env knob, then 1; the final attempt "
                             f"always runs in-process)")
    parser.add_argument("--sparse", action=argparse.BooleanOptionalAction,
                        default=None,
                        help=f"force the packed fine pass on/off for "
                             f"every render in this invocation "
                             f"(exported as the {SPARSE_ENV} env knob; "
                             f"default: the knob, then on — outputs "
                             f"are byte-identical either way)")
    parser.add_argument("--footprint", action=argparse.BooleanOptionalAction,
                        default=None,
                        help=f"force the footprint-restricted training "
                             f"encode on/off for every training run in "
                             f"this invocation (exported as the "
                             f"{FOOTPRINT_ENV} env knob; default: the "
                             f"knob, then on — training trajectories "
                             f"are byte-identical either way)")


def _context(args: argparse.Namespace) -> RunContext:
    kwargs = dict(seed=args.seed, scale=getattr(args, "scale", 1.0),
                  workers=args.workers, cache_dir=args.cache_dir,
                  task_timeout=args.task_timeout, retries=args.retries)
    if args.results_dir is not None:
        kwargs["results_dir"] = args.results_dir
    return RunContext(**kwargs)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Declarative experiment registry for the Gen-NeRF "
                    "(ISCA 2023) reproduction.")
    commands = parser.add_subparsers(dest="command")

    commands.add_parser(
        "list", help="list every registered experiment")

    run_parser = commands.add_parser(
        "run", help="run one experiment and print its artefact text")
    run_parser.add_argument("name", help="registered experiment name")
    run_parser.add_argument("--write", action="store_true",
                            help="also (re)write the artefact file "
                                 "atomically")
    _add_common_options(run_parser)

    sweep_parser = commands.add_parser(
        "sweep", help="run a dataset x views x points x variant grid")
    sweep_parser.add_argument("grid", nargs="*", metavar="axis=v1,v2",
                              help="grid axes: dataset=, views=, "
                                   "points=, variant= (unset axes use "
                                   "single-point defaults)")
    sweep_parser.add_argument("--out", default=None, metavar="NAME",
                              help="also write the sweep table as "
                                   "artefact NAME.txt")
    # No --scale: a sweep's cost is its grid, there are no scale rules.
    _add_common_options(sweep_parser, scale=False)

    batch_parser = commands.add_parser(
        "batch", help="fault-isolated bulk ingestion of a directory of "
                      "JSON job specs")
    batch_parser.add_argument("jobs_dir",
                              help="directory of <job>.json specs "
                                   "({'experiment': ..., 'overrides': "
                                   "..., 'seed': ..., 'scale': ..., "
                                   "'artefact': ...})")
    batch_parser.add_argument("--out", default=None, metavar="DIR",
                              help="artefact output directory "
                                   "(default: <jobs_dir>/out; "
                                   "quarantine lands in DIR/errors)")
    batch_parser.add_argument("--strict", action="store_true",
                              help="exit 1 when any job was quarantined "
                                   "(the run itself always continues "
                                   "past bad jobs)")
    _add_common_options(batch_parser)

    serve_parser = commands.add_parser(
        "serve", help="long-lived render daemon: JSON-lines requests on "
                      "stdin, responses on stdout, with cross-request "
                      "micro-batching")
    serve_parser.add_argument("--batch-window", type=int, default=None,
                              help=f"ticks a request may wait for "
                                   f"batch-mates (default: the "
                                   f"{WINDOW_ENV} env knob)")
    serve_parser.add_argument("--max-batch", type=int, default=None,
                              help=f"rays per dispatch before the window "
                                   f"cuts (default: the {MAX_BATCH_ENV} "
                                   f"env knob)")
    serve_parser.add_argument("--queue-limit", type=int, default=None,
                              help=f"in-flight requests before shedding "
                                   f"with a 429-style refusal (default: "
                                   f"the {QUEUE_ENV} env knob)")
    serve_parser.add_argument("--scene-capacity", type=int, default=4,
                              help="prepared-scene LRU capacity")
    serve_parser.add_argument("--source-points", type=int, default=32,
                              help="quadrature points for source-view "
                                   "preparation on a scene-cache miss")
    serve_parser.add_argument("--deadline", type=int, default=None,
                              help="fail a request not completed within "
                                   "this many ticks (default: off)")
    serve_parser.add_argument("--tick-s", type=float, default=0.02,
                              help="wall seconds per scheduler tick")
    serve_parser.add_argument("--out-dir", default=None, metavar="DIR",
                              help="also write each rendered image as "
                                   "DIR/<request_id>.npy")
    serve_parser.add_argument("--workers", type=int, default=None,
                              help="intra-batch shard width over the "
                                   "frame pool (default: REPRO_WORKERS, "
                                   "then CPU count)")
    serve_parser.add_argument("--seed", type=int, default=None,
                              help="serving model weight seed "
                                   "(default: 0)")
    serve_parser.add_argument("--cache-dir", default=None,
                              help=f"disk scene-cache directory "
                                   f"(default: the {ENV_KNOB} env knob)")
    return parser


def _cmd_list() -> int:
    experiments = all_experiments()
    width = max(len(e.name) for e in experiments)
    kind_width = max(len(e.kind) for e in experiments)
    print(f"{len(experiments)} registered experiments "
          f"(artefacts under benchmarks/results/):\n")
    for experiment in experiments:
        print(f"  {experiment.name.ljust(width)}  "
              f"[{experiment.kind.ljust(kind_width)}]  "
              f"{experiment.artefact}.txt  —  {experiment.description}")
    print("\nrun one with: python -m repro run <name> "
          "[--scale F] [--seed N] [--workers N]")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        experiment = get_experiment(args.name)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    ctx = _context(args)
    if args.write:
        result, path = experiment.regenerate(ctx)
        print(result.text)
        print(f"\n[wrote {path}]", file=sys.stderr)
    else:
        print(experiment.run(ctx).text)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        grid = parse_sweep_grid(args.grid)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    ctx = _context(args)
    rows, text = run_sweep(grid, ctx)
    print(text)
    if args.out:
        path = ctx.write_artifact(args.out, text)
        print(f"\n[wrote {path}]", file=sys.stderr)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    try:
        summary = run_batch(args.jobs_dir, ctx=_context(args),
                            out_dir=args.out or args.results_dir)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(summary.render())
    print(f"\n[wrote {summary.summary_path}]", file=sys.stderr)
    if args.strict and summary.quarantined:
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    overrides = dict(scene_capacity=args.scene_capacity,
                     source_points=args.source_points,
                     request_deadline=args.deadline,
                     workers=args.workers, cache_dir=args.cache_dir)
    if args.seed is not None:
        overrides["model_seed"] = args.seed
    config = ServeConfig.from_env(batch_window=args.batch_window,
                                  max_batch=args.max_batch,
                                  queue_limit=args.queue_limit,
                                  **overrides)
    stats = run_daemon(config, tick_s=args.tick_s, out_dir=args.out_dir)
    print(f"[served {stats['completed']} requests, "
          f"{stats['dispatches']} dispatches, shed {stats['shed']}, "
          f"failed {stats['failed']}]", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    sparse = getattr(args, "sparse", None)
    if sparse is not None:
        # Exported (not passed through call chains) so worker-pool
        # subprocesses inherit the choice too.
        os.environ[SPARSE_ENV] = "1" if sparse else "0"
    footprint = getattr(args, "footprint", None)
    if footprint is not None:
        os.environ[FOOTPRINT_ENV] = "1" if footprint else "0"
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return _cmd_sweep(args)
