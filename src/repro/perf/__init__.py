"""Performance infrastructure: seed reference implementations.

:mod:`repro.perf.reference` preserves the pre-vectorisation per-ray /
per-request loop implementations of the hot paths.  They are the ground
truth the equivalence tests pin the batched numpy paths against, and the
baselines ``benchmarks/harness.py`` measures speedups over.
"""

from . import reference  # noqa: F401
