"""Seed loop implementations of the vectorised hot paths.

These are verbatim copies of the original per-ray / per-request Python
loop code that :mod:`repro.models.sampling` and
:mod:`repro.hardware.trace` shipped with, kept for two jobs:

* the equivalence suites (``tests/models/test_sampling_equivalence.py``,
  ``tests/hardware/test_trace_equivalence.py``) assert the batched numpy
  paths reproduce these bit-for-bit at fixed seeds, and
* ``benchmarks/harness.py`` times them to report the speedup of the
  vectorised paths (recorded in ``BENCH_hotpaths.json``).

Do not "optimise" this module — its value is being the slow, obviously
correct original.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from ..hardware.dram import DramConfig
from ..hardware.interleave import FeatureStore, FootprintRegion, spatial_skew
from ..hardware.trace import MemoryRequest, ReplayResult
from ..models.sampling import SampleSet, _edges_from_centers

__all__ = [
    "inverse_transform_loop", "focused_depths_loop",
    "merge_critical_points_loop", "footprint_trace_loop",
    "replay_trace_loop",
]


def inverse_transform_loop(bin_edges: np.ndarray, pdf: np.ndarray,
                           uniforms: np.ndarray) -> np.ndarray:
    """Seed ``_inverse_transform``: per-ray ``searchsorted`` loop."""
    pdf = np.maximum(pdf, 0.0) + 1e-12
    cdf = np.cumsum(pdf, axis=-1)
    cdf = cdf / cdf[..., -1:]
    cdf = np.concatenate([np.zeros_like(cdf[..., :1]), cdf], axis=-1)

    rows = np.arange(cdf.shape[0])[:, None]
    indices = np.empty(uniforms.shape, dtype=np.int64)
    for r in range(cdf.shape[0]):  # per-ray searchsorted keeps memory flat
        indices[r] = np.searchsorted(cdf[r], uniforms[r], side="right") - 1
    indices = np.clip(indices, 0, pdf.shape[-1] - 1)

    cdf_lo = cdf[rows, indices]
    cdf_hi = cdf[rows, indices + 1]
    frac = (uniforms - cdf_lo) / np.maximum(cdf_hi - cdf_lo, 1e-12)
    edge_lo = bin_edges[rows, indices]
    edge_hi = bin_edges[rows, indices + 1]
    return edge_lo + frac * (edge_hi - edge_lo)


def focused_depths_loop(coarse_depths: np.ndarray, point_pdf: np.ndarray,
                        counts: np.ndarray, n_max: int, near: float,
                        far: float, rng: np.random.Generator) -> SampleSet:
    """Seed ``focused_depths``: per-ray slice/sort/pack loop."""
    num_rays = coarse_depths.shape[0]
    counts = np.minimum(np.asarray(counts, dtype=np.int64), n_max)
    edges = _edges_from_centers(coarse_depths, near, far)
    max_count = int(counts.max()) if len(counts) else 0
    depths = np.full((num_rays, n_max), far, dtype=np.float64)
    mask = np.zeros((num_rays, n_max), dtype=bool)
    if max_count == 0:
        return SampleSet(depths, mask)

    uniforms = rng.random((num_rays, max_count))
    all_samples = inverse_transform_loop(edges, point_pdf, uniforms)
    for j in range(num_rays):
        c = int(counts[j])
        if c == 0:
            continue
        chosen = np.sort(all_samples[j, :c])
        depths[j, :c] = chosen
        mask[j, :c] = True
    return SampleSet(depths, mask)


def merge_critical_points_loop(plan: SampleSet, coarse_depths: np.ndarray,
                               coarse_weights: np.ndarray, tau: float,
                               n_max: int, far: float) -> SampleSet:
    """Seed ``merge_critical_points``: per-ray concatenate/unique loop."""
    weights = np.asarray(coarse_weights)
    critical = weights * max(weights.shape[-1], 1) >= tau
    num_rays = plan.depths.shape[0]
    depths = np.full((num_rays, n_max), far, dtype=np.float64)
    mask = np.zeros((num_rays, n_max), dtype=bool)
    for j in range(num_rays):
        merged = np.concatenate([plan.depths[j][plan.mask[j]],
                                 coarse_depths[j][critical[j]]])
        merged = np.unique(merged)[:n_max]
        depths[j, :len(merged)] = merged
        mask[j, :len(merged)] = True
    return SampleSet(depths, mask)


def footprint_trace_loop(store: FeatureStore, region: FootprintRegion,
                         num_banks: int, row_bytes: int
                         ) -> Iterator[MemoryRequest]:
    """Seed ``footprint_trace``: per-location generator with a Python
    per-bank byte cursor."""
    skew = spatial_skew(num_banks)
    cursors = [0] * num_banks
    for row in range(region.row0, region.row1):
        for col in range(region.col0, region.col1):
            if store.layout == "row_major":
                rows_per_bank = max(1, (store.num_views * store.height)
                                    // num_banks)
                bank = min((region.view * store.height + row)
                           // rows_per_bank, num_banks - 1)
            elif store.layout == "row_interleaved":
                bank = (region.view * store.height + row) % num_banks
            elif store.layout == "view_interleaved":
                bank = region.view % num_banks
            else:
                bank = (skew * row + col) % num_banks
            dram_row = cursors[bank] // row_bytes
            cursors[bank] += store.location_bytes
            yield MemoryRequest(bank=bank, row=dram_row,
                                num_bytes=store.location_bytes)


def replay_trace_loop(requests: Sequence[MemoryRequest],
                      config: DramConfig = DramConfig()) -> ReplayResult:
    """Seed ``replay_trace``: per-request bank state machine loop."""
    bank_time = np.zeros(config.num_banks)
    open_row = np.full(config.num_banks, -1, dtype=np.int64)
    total_bytes = 0.0
    hits = 0
    misses = 0
    for request in requests:
        bursts = int(np.ceil(request.num_bytes / config.burst_bytes))
        time = bursts * config.t_burst_s
        if open_row[request.bank] != request.row:
            time += config.t_rc_s
            open_row[request.bank] = request.row
            misses += 1
        else:
            hits += 1
        bank_time[request.bank] += time
        total_bytes += request.num_bytes

    bus_time = total_bytes / config.peak_bandwidth_bytes
    service = max(float(bank_time.max(initial=0.0)), bus_time)
    return ReplayResult(service_time_s=service, total_bytes=total_bytes,
                        row_hits=hits, row_misses=misses)
