"""Seed loop implementations of the vectorised hot paths.

These are verbatim copies of the original per-ray / per-request /
per-view Python loop code that :mod:`repro.models.sampling`,
:mod:`repro.hardware.trace`, :mod:`repro.models.features`, and
:mod:`repro.hardware.scheduler` shipped with, kept for two jobs:

* the equivalence suites (``tests/models/test_sampling_equivalence.py``,
  ``tests/hardware/test_trace_equivalence.py``,
  ``tests/hardware/test_scheduler_equivalence.py``) assert the batched
  numpy paths reproduce these bit-for-bit at fixed seeds, and
* ``benchmarks/harness.py`` times them to report the speedup of the
  vectorised paths (recorded in ``BENCH_hotpaths.json``).

The end-to-end ``render_rays_chunked_loop`` reproduces the seed
inference path in structure: fixed 512-ray renderer chunks, a per-view
feature-gather loop, the v0 per-ray sampler loops, ``stack``-copied
pooled statistics, float64 colour/direction interpolation, and
grad-mode graph construction (no :class:`repro.nn.inference_mode`).
Its pixels agree with the fast path to float32 interpolation tolerance
(the fast path carries the colour and direction lerps at float32),
which ``tests/models/test_render_e2e_equivalence.py`` pins.

Do not "optimise" this module — its value is being the slow, obviously
correct original.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from .. import nn
from ..nn import Tensor
from ..hardware.dram import DramConfig
from ..hardware.interleave import FeatureStore, FootprintRegion, spatial_skew
from ..hardware.trace import MemoryRequest, ReplayResult
from ..models.features import FetchedFeatures, bilinear_gather
from ..models.sampling import SampleSet, _edges_from_centers
from ..models.volume_rendering import composite

__all__ = [
    "inverse_transform_loop", "focused_depths_loop",
    "merge_critical_points_loop", "footprint_trace_loop",
    "replay_trace_loop", "encode_views_loop", "fetch_features_loop",
    "forward_fetched_loop", "model_forward_padded",
    "render_rays_chunked_loop",
    "evaluate_candidate_loop", "plan_frame_loop", "simulate_frame_loop",
    "AdamLoop", "clip_grad_norm_loop", "TrainerLoop", "trainer_fit_loop",
    "trainer_full_encode",
]


def inverse_transform_loop(bin_edges: np.ndarray, pdf: np.ndarray,
                           uniforms: np.ndarray) -> np.ndarray:
    """Seed ``_inverse_transform``: per-ray ``searchsorted`` loop."""
    pdf = np.maximum(pdf, 0.0) + 1e-12
    cdf = np.cumsum(pdf, axis=-1)
    cdf = cdf / cdf[..., -1:]
    cdf = np.concatenate([np.zeros_like(cdf[..., :1]), cdf], axis=-1)

    rows = np.arange(cdf.shape[0])[:, None]
    indices = np.empty(uniforms.shape, dtype=np.int64)
    for r in range(cdf.shape[0]):  # per-ray searchsorted keeps memory flat
        indices[r] = np.searchsorted(cdf[r], uniforms[r], side="right") - 1
    indices = np.clip(indices, 0, pdf.shape[-1] - 1)

    cdf_lo = cdf[rows, indices]
    cdf_hi = cdf[rows, indices + 1]
    frac = (uniforms - cdf_lo) / np.maximum(cdf_hi - cdf_lo, 1e-12)
    edge_lo = bin_edges[rows, indices]
    edge_hi = bin_edges[rows, indices + 1]
    return edge_lo + frac * (edge_hi - edge_lo)


def focused_depths_loop(coarse_depths: np.ndarray, point_pdf: np.ndarray,
                        counts: np.ndarray, n_max: int, near: float,
                        far: float, rng: np.random.Generator) -> SampleSet:
    """Seed ``focused_depths``: per-ray slice/sort/pack loop."""
    num_rays = coarse_depths.shape[0]
    counts = np.minimum(np.asarray(counts, dtype=np.int64), n_max)
    edges = _edges_from_centers(coarse_depths, near, far)
    max_count = int(counts.max()) if len(counts) else 0
    depths = np.full((num_rays, n_max), far, dtype=np.float64)
    mask = np.zeros((num_rays, n_max), dtype=bool)
    if max_count == 0:
        return SampleSet(depths, mask)

    uniforms = rng.random((num_rays, max_count))
    all_samples = inverse_transform_loop(edges, point_pdf, uniforms)
    for j in range(num_rays):
        c = int(counts[j])
        if c == 0:
            continue
        chosen = np.sort(all_samples[j, :c])
        depths[j, :c] = chosen
        mask[j, :c] = True
    return SampleSet(depths, mask)


def merge_critical_points_loop(plan: SampleSet, coarse_depths: np.ndarray,
                               coarse_weights: np.ndarray, tau: float,
                               n_max: int, far: float) -> SampleSet:
    """Seed ``merge_critical_points``: per-ray concatenate/unique loop."""
    weights = np.asarray(coarse_weights)
    critical = weights * max(weights.shape[-1], 1) >= tau
    num_rays = plan.depths.shape[0]
    depths = np.full((num_rays, n_max), far, dtype=np.float64)
    mask = np.zeros((num_rays, n_max), dtype=bool)
    for j in range(num_rays):
        merged = np.concatenate([plan.depths[j][plan.mask[j]],
                                 coarse_depths[j][critical[j]]])
        merged = np.unique(merged)[:n_max]
        depths[j, :len(merged)] = merged
        mask[j, :len(merged)] = True
    return SampleSet(depths, mask)


def footprint_trace_loop(store: FeatureStore, region: FootprintRegion,
                         num_banks: int, row_bytes: int
                         ) -> Iterator[MemoryRequest]:
    """Seed ``footprint_trace``: per-location generator with a Python
    per-bank byte cursor."""
    skew = spatial_skew(num_banks)
    cursors = [0] * num_banks
    for row in range(region.row0, region.row1):
        for col in range(region.col0, region.col1):
            if store.layout == "row_major":
                rows_per_bank = max(1, (store.num_views * store.height)
                                    // num_banks)
                bank = min((region.view * store.height + row)
                           // rows_per_bank, num_banks - 1)
            elif store.layout == "row_interleaved":
                bank = (region.view * store.height + row) % num_banks
            elif store.layout == "view_interleaved":
                bank = region.view % num_banks
            else:
                bank = (skew * row + col) % num_banks
            dram_row = cursors[bank] // row_bytes
            cursors[bank] += store.location_bytes
            yield MemoryRequest(bank=bank, row=dram_row,
                                num_bytes=store.location_bytes)


def replay_trace_loop(requests: Sequence[MemoryRequest],
                      config: DramConfig = DramConfig()) -> ReplayResult:
    """Seed ``replay_trace``: per-request bank state machine loop."""
    bank_time = np.zeros(config.num_banks)
    open_row = np.full(config.num_banks, -1, dtype=np.int64)
    total_bytes = 0.0
    hits = 0
    misses = 0
    for request in requests:
        bursts = int(np.ceil(request.num_bytes / config.burst_bytes))
        time = bursts * config.t_burst_s
        if open_row[request.bank] != request.row:
            time += config.t_rc_s
            open_row[request.bank] = request.row
            misses += 1
        else:
            hits += 1
        bank_time[request.bank] += time
        total_bytes += request.num_bytes

    bus_time = total_bytes / config.peak_bandwidth_bytes
    service = max(float(bank_time.max(initial=0.0)), bus_time)
    return ReplayResult(service_time_s=service, total_bytes=total_bytes,
                        row_hits=hits, row_misses=misses)


# ----------------------------------------------------------------------
# Seed end-to-end inference path (pre-batched-gather, pre-no-grad mode)
# ----------------------------------------------------------------------

def encode_views_loop(encoder, images: np.ndarray) -> List[Tensor]:
    """Seed ``ConvEncoder.encode_views``: per-image transpose list."""
    features = encoder.forward(Tensor(np.asarray(images, dtype=np.float32)))
    return [features[i].transpose((1, 2, 0))
            for i in range(features.shape[0])]


def _bilinear_numpy_loop(image_hwc: np.ndarray,
                         pixels: np.ndarray) -> np.ndarray:
    """Seed float64 bilinear sample of one (H, W, C) view."""
    height, width = image_hwc.shape[:2]
    u = np.clip(pixels[:, 0], 0.0, width - 1.0)
    v = np.clip(pixels[:, 1], 0.0, height - 1.0)
    x0 = np.floor(u).astype(np.int64)
    y0 = np.floor(v).astype(np.int64)
    x1 = np.minimum(x0 + 1, width - 1)
    y1 = np.minimum(y0 + 1, height - 1)
    fx = (u - x0)[:, None]
    fy = (v - y0)[:, None]
    top = image_hwc[y0, x0] * (1 - fx) + image_hwc[y0, x1] * fx
    bottom = image_hwc[y1, x0] * (1 - fx) + image_hwc[y1, x1] * fx
    return (top * (1 - fy) + bottom * fy).astype(np.float32)


def _direction_features_loop(points: np.ndarray, ray_dirs: np.ndarray,
                             source) -> np.ndarray:
    """Seed per-view relative direction encoding (float64 geometry)."""
    to_point = points - source.center
    norms = np.linalg.norm(to_point, axis=-1, keepdims=True)
    source_dirs = to_point / np.maximum(norms, 1e-9)
    target_dirs = np.broadcast_to(ray_dirs[:, None, :], points.shape)
    diff = target_dirs - source_dirs
    dot = np.sum(target_dirs * source_dirs, axis=-1, keepdims=True)
    return np.concatenate([diff, dot], axis=-1).astype(np.float32)


def fetch_features_loop(points: np.ndarray, ray_dirs: np.ndarray,
                        source_cameras, feature_maps: Sequence[Tensor],
                        source_images: np.ndarray,
                        feature_scale: float = 0.5) -> FetchedFeatures:
    """Seed ``fetch_features``: one Python iteration per source view."""
    num_views = len(source_cameras)
    rays, pts_per_ray = points.shape[0], points.shape[1]
    flat_points = points.reshape(-1, 3)

    view_features = []
    view_rgb = np.empty((num_views, rays, pts_per_ray, 3), dtype=np.float32)
    view_dirs = np.empty((num_views, rays, pts_per_ray, 4), dtype=np.float32)
    view_visible = np.empty((num_views, rays, pts_per_ray), dtype=bool)

    for index, camera in enumerate(source_cameras):
        pixels, depth = camera.project(flat_points, return_depth=True)
        finite = np.isfinite(pixels).all(axis=-1) & (depth > 1e-6)
        safe_pixels = np.where(finite[:, None], pixels, 0.0)

        feature_pixels = safe_pixels * feature_scale
        gathered = bilinear_gather(feature_maps[index], feature_pixels)
        view_features.append(
            gathered.reshape(rays, pts_per_ray, gathered.shape[-1]))

        image_hwc = np.ascontiguousarray(
            np.transpose(source_images[index], (1, 2, 0)).astype(np.float32))
        rgb = _bilinear_numpy_loop(image_hwc, safe_pixels)
        view_rgb[index] = rgb.reshape(rays, pts_per_ray, 3)

        view_dirs[index] = _direction_features_loop(points, ray_dirs, camera)
        inside = (finite
                  & (pixels[:, 0] >= 0)
                  & (pixels[:, 0] <= camera.intrinsics.width - 1)
                  & (pixels[:, 1] >= 0)
                  & (pixels[:, 1] <= camera.intrinsics.height - 1))
        view_visible[index] = inside.reshape(rays, pts_per_ray)

    stacked = nn.concatenate([f.expand_dims(0) for f in view_features],
                             axis=0)
    return FetchedFeatures(features=stacked, rgb=view_rgb,
                           direction_delta=view_dirs,
                           visibility=view_visible)


def forward_fetched_loop(model, fetched: FetchedFeatures,
                         mask) -> "object":
    """Seed ``GeneralizableNeRF._forward_fetched``: ``stack``-copied
    pooled statistics instead of broadcast views."""
    from ..models.ibrnet import RenderOutput

    num_views = fetched.num_views
    visibility = fetched.visibility
    if mask is not None:
        visibility = visibility & np.asarray(mask, dtype=bool)[None]
    vis_f = visibility.astype(np.float32)[..., None]
    vis_t = Tensor(vis_f)

    per_view_in = nn.concatenate(
        [fetched.features, Tensor(fetched.rgb),
         Tensor(fetched.direction_delta)], axis=-1)
    latents = model.view_mlp(per_view_in) * vis_t

    denom = Tensor(np.maximum(vis_f.sum(axis=0), 1e-6))
    mean = latents.sum(axis=0) / denom
    centered = (latents - mean.expand_dims(0)) * vis_t
    var = (centered * centered).sum(axis=0) / denom

    mean_b = nn.stack([mean] * num_views, axis=0)
    var_b = nn.stack([var] * num_views, axis=0)

    scores = model.score_mlp(
        nn.concatenate([latents, mean_b, var_b], axis=-1))
    alpha = nn.functional.masked_softmax(
        scores, visibility[..., None], axis=0)
    pooled = (alpha * latents).sum(axis=0)

    color_logits = model.color_mlp(
        nn.concatenate([latents, mean_b,
                        Tensor(fetched.direction_delta)], axis=-1))
    beta = nn.functional.masked_softmax(
        color_logits, visibility[..., None], axis=0)
    rgb = (beta * Tensor(fetched.rgb)).sum(axis=0)

    density_features = model.density_mlp(
        nn.concatenate([pooled, var], axis=-1))

    ray_mask = visibility.any(axis=0)
    logits = model.ray_module(density_features, mask=ray_mask)
    sigma = nn.functional.softplus(logits) \
        * Tensor(ray_mask.astype(np.float32))
    return RenderOutput(rgb=rgb, sigma=sigma,
                        density_features=density_features,
                        any_visible=ray_mask)


def model_forward_padded(model, points: np.ndarray, ray_dirs: np.ndarray,
                         source_cameras, feature_maps,
                         source_images: np.ndarray, mask=None):
    """Pinned padded reference for the sparse fine pass.

    Forces the dense ``(R, n_max)`` grid path (``sparse=False``) — the
    layout every committed artefact was generated with.  The sparse
    equivalence suite (``tests/models/test_sparse_fine_pass.py``)
    asserts the packed path reproduces this output **byte-for-byte**,
    the same convention as the other equivalence pins in this module.
    Unlike the seed loops above, this is not a historical copy: it calls
    the current model with the packing disabled, so it tracks pointwise
    stage changes while staying layout-pinned.
    """
    return model(points, ray_dirs, source_cameras, feature_maps,
                 source_images, mask=mask, sparse=False)


def _model_forward_loop(model, points: np.ndarray, ray_dirs: np.ndarray,
                        source_cameras, feature_maps: Sequence[Tensor],
                        source_images: np.ndarray, mask=None):
    fetched = fetch_features_loop(points, ray_dirs, source_cameras,
                                  feature_maps, source_images,
                                  model.encoder.feature_scale)
    return forward_fetched_loop(model, fetched, mask)


def render_rays_chunked_loop(model, bundle, source_cameras,
                             coarse_maps: Sequence[Tensor],
                             fine_maps: Sequence[Tensor],
                             source_images: np.ndarray,
                             chunk: int = 512) -> np.ndarray:
    """Seed end-to-end inference: fixed-size renderer chunks, per-view
    gathers, the v0 per-ray sampler loops, and full grad-mode graph
    construction (the path a naive ``render_rays`` call took before
    ``inference_mode``)."""
    from ..geometry.rays import stratified_depths
    from ..models.sampling import allocate_ray_budget, sampling_pdf

    cfg = model.config
    out = np.zeros((len(bundle), 3), dtype=np.float64)
    for start in range(0, len(bundle), chunk):
        part = bundle.select(slice(start, start + chunk))

        chosen = model.select_coarse_views(part, source_cameras)
        cams = [source_cameras[i] for i in chosen]
        maps = [coarse_maps[i] for i in chosen]
        images = source_images[chosen]
        gen = np.random.default_rng(0)
        coarse_depths = stratified_depths(gen, len(part), cfg.coarse_points,
                                          part.near, part.far, jitter=False)
        coarse_points = part.points_at(coarse_depths)
        coarse_out = _model_forward_loop(model.coarse, coarse_points,
                                         part.directions, cams, maps, images)
        _, weights = composite(coarse_out.sigma, coarse_out.rgb,
                               coarse_depths, part.far)
        coarse_weights = weights.data.astype(np.float64)

        # Steps 2-3 with the v0 per-ray loops (the same seed loop
        # implementations the sampling benches time).
        plan_gen = np.random.default_rng(0)
        ray_p, point_pdf, _ = sampling_pdf(coarse_weights, cfg.tau)
        budget = cfg.focused_points * len(part)
        counts = allocate_ray_budget(ray_p, budget, cfg.n_max)
        plan = focused_depths_loop(coarse_depths, point_pdf, counts,
                                   cfg.n_max, part.near, part.far, plan_gen)
        plan = merge_critical_points_loop(plan, coarse_depths,
                                          coarse_weights, cfg.tau,
                                          cfg.n_max, part.far)

        fine_points = part.points_at(plan.depths)
        fine_out = _model_forward_loop(model.fine, fine_points,
                                       part.directions, source_cameras,
                                       fine_maps, source_images,
                                       mask=plan.mask)
        bin_width = (part.far - part.near) / max(cfg.coarse_points, 1)
        pixel, _ = composite(fine_out.sigma, fine_out.rgb, plan.depths,
                             part.far, mask=plan.mask, max_delta=bin_width)
        out[start:start + chunk] = pixel.data
    return out


# ----------------------------------------------------------------------
# Seed scheduler slab sweep (per-slab / per-view footprint loops)
# ----------------------------------------------------------------------

def evaluate_candidate_loop(scheduler, novel, sources, height: int,
                            width: int, shape, near: float, far: float
                            ) -> Tuple[np.ndarray, ...]:
    """Seed ``GreedyPatchScheduler.evaluate_candidate``: one frustum
    projection per (slab, view) pair and a per-slab overlap loop."""
    cfg = scheduler.config
    h0, w0 = scheduler._tile_grid(height, width, shape)
    h1 = np.minimum(h0 + shape.dh, height)
    w1 = np.minimum(w0 + shape.dw, width)
    n_slabs = cfg.depth_bins // shape.dd
    tiles = h0.shape[0]
    num_views = len(sources)

    def frustum_corners(depth_lo, depth_hi):
        pixel_corners = np.stack([
            np.stack([w0, h0], axis=-1),
            np.stack([w1, h0], axis=-1),
            np.stack([w1, h1], axis=-1),
            np.stack([w0, h1], axis=-1),
        ], axis=1).astype(np.float64)
        corners = np.empty((tiles, 8, 3))
        for index, depth in enumerate((depth_lo, depth_hi)):
            pts = novel.unproject(pixel_corners.reshape(-1, 2),
                                  np.full(tiles * 4, depth))
            corners[:, index * 4:(index + 1) * 4, :] = \
                pts.reshape(tiles, 4, 3)
        return corners

    locs = np.zeros((tiles, n_slabs, num_views))
    bboxes = np.zeros((tiles, n_slabs, num_views, 4), dtype=np.int64)
    for slab in range(n_slabs):
        depth_lo = near + (far - near) * (slab * shape.dd) / cfg.depth_bins
        depth_hi = near + (far - near) * ((slab + 1) * shape.dd) \
            / cfg.depth_bins
        corners = frustum_corners(depth_lo, depth_hi)
        for view, source in enumerate(sources):
            locations, bbox = scheduler._footprint_stats(corners, source)
            locs[:, slab, view] = locations
            bboxes[:, slab, view] = bbox

    delta_locs = locs.copy()
    for slab in range(1, n_slabs):
        prev = bboxes[:, slab - 1]
        curr = bboxes[:, slab]
        inter_rows = np.maximum(
            0, np.minimum(prev[..., 1], curr[..., 1])
            - np.maximum(prev[..., 0], curr[..., 0]))
        inter_cols = np.maximum(
            0, np.minimum(prev[..., 3], curr[..., 3])
            - np.maximum(prev[..., 2], curr[..., 2]))
        area = np.maximum(
            (curr[..., 1] - curr[..., 0])
            * (curr[..., 3] - curr[..., 2]), 1)
        overlap_fraction = np.clip(inter_rows * inter_cols / area, 0, 1)
        delta_locs[:, slab] *= (1.0 - overlap_fraction)
    delta_locs = np.maximum(delta_locs, 16.0)

    elem = cfg.channels * cfg.bytes_per_element
    full_bytes = locs.sum(axis=2) * elem
    delta_bytes = delta_locs.sum(axis=2) * elem
    return h0, w0, h1, w1, full_bytes, delta_bytes, delta_locs, bboxes


def plan_frame_loop(scheduler, novel, sources, near: float, far: float):
    """Seed ``GreedyPatchScheduler.plan_frame``: per-(slab, view)
    candidate evaluation plus the per-tile / per-slab Python patch
    assembly with per-patch ``int`` conversions."""
    from ..hardware.scheduler import FramePlan, Patch, _delta_footprints

    cfg = scheduler.config
    height = novel.intrinsics.height
    width = novel.intrinsics.width
    macro = cfg.macro_tile
    macro_rows = int(np.ceil(height / macro))
    macro_cols = int(np.ceil(width / macro))
    num_macros = macro_rows * macro_cols

    per_candidate = []
    macro_cost = np.full((len(cfg.candidates), num_macros), np.inf)
    for c_index, shape in enumerate(cfg.candidates):
        evaluated = evaluate_candidate_loop(scheduler, novel, sources,
                                            height, width, shape, near, far)
        h0, w0, h1, w1, full_bytes, delta_bytes, delta_locs, bboxes = \
            evaluated
        per_candidate.append(evaluated)
        macro_index = (h0 // macro) * macro_cols + (w0 // macro)
        tile_total = delta_bytes.sum(axis=1)
        fits = (full_bytes <= cfg.buffer_bytes).all(axis=1)
        cost = np.where(fits, tile_total, np.inf)
        sums = np.zeros(num_macros)
        bad = np.zeros(num_macros, dtype=bool)
        np.add.at(sums, macro_index, np.where(np.isinf(cost), 0.0, cost))
        np.logical_or.at(bad, macro_index, np.isinf(cost))
        macro_cost[c_index] = np.where(bad, np.inf, sums)

    chosen = np.argmin(macro_cost, axis=0)
    fallback = int(np.argmin([c.cells for c in cfg.candidates]))
    no_fit = np.isinf(macro_cost.min(axis=0))
    chosen[no_fit] = fallback

    patches = []
    histogram = {c: 0 for c in cfg.candidates}
    total_bytes = 0.0
    for c_index, shape in enumerate(cfg.candidates):
        h0, w0, h1, w1, full_bytes, delta_bytes, delta_locs, bboxes = \
            per_candidate[c_index]
        macro_index = (h0 // macro) * macro_cols + (w0 // macro)
        selected_tiles = np.where(chosen[macro_index] == c_index)[0]
        if selected_tiles.size == 0:
            continue
        n_slabs = delta_bytes.shape[1]
        histogram[shape] += selected_tiles.size * n_slabs
        for t in selected_tiles:
            for slab in range(n_slabs):
                d0 = slab * shape.dd
                footprints = _delta_footprints(bboxes[t, slab],
                                               delta_locs[t, slab])
                resident = [
                    FootprintRegion(view=v,
                                    row0=int(bboxes[t, slab, v, 0]),
                                    row1=int(bboxes[t, slab, v, 1]),
                                    col0=int(bboxes[t, slab, v, 2]),
                                    col1=int(bboxes[t, slab, v, 3]))
                    for v in range(len(sources))]
                patch = Patch(h0=int(h0[t]), h1=int(h1[t]),
                              w0=int(w0[t]), w1=int(w1[t]),
                              d0=d0, d1=d0 + shape.dd,
                              prefetch_bytes=float(delta_bytes[t, slab]),
                              footprints=footprints,
                              resident_footprints=resident)
                patches.append(patch)
                total_bytes += patch.prefetch_bytes
    return FramePlan(patches=patches, total_prefetch_bytes=total_bytes,
                     candidate_histogram=histogram, image_height=height,
                     image_width=width, depth_bins=cfg.depth_bins)


# ----------------------------------------------------------------------
# Seed accelerator frame simulation (per-patch Python loop)
# ----------------------------------------------------------------------

def simulate_frame_loop(accelerator, workload, novel, sources, near: float,
                        far: float, keep_plan: bool = False, plan=None):
    """Seed ``GenNerfAccelerator.simulate_frame``: one Python iteration
    per point patch, each calling ``bank_load_for_footprints`` twice
    (DRAM delta fetch + SRAM residency), ``dram.service``, and the
    memoised ``engine.patch_compute``.

    ``accelerator`` is a :class:`repro.hardware.GenNerfAccelerator`;
    ``plan`` optionally injects a precomputed
    :class:`repro.hardware.FramePlan` (both paths plan identically, so
    sharing one plan lets the equivalence suite and the bench isolate
    the frame-simulation arithmetic).
    """
    from ..hardware.interleave import (balance_factor,
                                       bank_load_for_footprints)
    from ..hardware.scheduler import GreedyPatchScheduler
    from ..hardware.sram import PrefetchDoubleBuffer

    self = accelerator
    if len(sources) != workload.num_views:
        raise ValueError(f"workload expects {workload.num_views} views, "
                         f"got {len(sources)} cameras")
    cfg = self.config
    freq = cfg.frequency_hz
    if plan is None:
        plan = self.plan_frame(novel, sources, near, far, workload)
    store = self._feature_store(workload, sources)
    # On-chip copy of the layout: the prefetch scratchpads use the
    # same interleaving scheme over their own bank count (Sec. 4.5).
    sram_banks = cfg.engine.prefetch_sram.num_banks
    sram_store = store

    points_per_cell = workload.fine_points_per_ray / plan.depth_bins

    fetch_times = np.empty(plan.num_patches)
    compute_times = np.empty(plan.num_patches)
    pool_macs = 0.0
    pool_busy_cycles = 0.0
    dram_energy_pj = 0.0
    sram_bytes = 0.0
    sfu_ops = 0.0

    for index, patch in enumerate(plan.patches):
        bank_bytes, bank_acts = bank_load_for_footprints(
            store, patch.footprints, cfg.dram.num_banks)
        stats = self.dram.service(bank_bytes, bank_acts)
        fetch_times[index] = stats.service_time_s
        dram_energy_pj += stats.energy_pj

        sram_bank_bytes, _ = bank_load_for_footprints(
            sram_store, patch.resident_footprints, sram_banks)
        balance = balance_factor(sram_bank_bytes)
        cells = patch.num_pixels * patch.num_depth_bins
        num_points = max(1, int(round(cells * points_per_cell)))
        num_rays = patch.num_pixels
        compute = self.engine.patch_compute(workload, num_points,
                                            num_rays,
                                            sram_balance=balance)
        compute_times[index] = compute.cycles / freq
        pool_macs += compute.pool_macs
        pool_busy_cycles += compute.pool_cycles
        sram_bytes += patch.prefetch_bytes * 2  # write then read
        sfu_ops += self.engine.sfu.ops_for_points(num_points)

    pipeline_s, engine_busy_s = PrefetchDoubleBuffer.pipeline_time(
        fetch_times, compute_times)

    # Stage 1: the lightweight coarse pass (Sec. 4.5).
    coarse_time_s = 0.0
    if workload.coarse_points > 0:
        coarse_points_total = (plan.image_height * plan.image_width
                               * workload.coarse_points)
        avg_points = max(1, int(round(coarse_points_total
                                      / max(plan.num_patches, 1))))
        compute = self.engine.patch_compute(
            workload, avg_points, num_rays=0, coarse_stage=True)
        coarse_compute_s = compute.cycles * plan.num_patches / freq
        traffic_scale = ((workload.coarse_dims.feature_dim
                          / workload.fine_dims.feature_dim)
                         * (workload.coarse_views
                            / max(workload.num_views, 1)))
        coarse_bytes = plan.total_prefetch_bytes * traffic_scale
        coarse_fetch_s = coarse_bytes / cfg.dram.peak_bandwidth_bytes
        coarse_time_s = max(coarse_compute_s, coarse_fetch_s)
        pool_macs += compute.pool_macs * plan.num_patches
        pool_busy_cycles += compute.cycles * plan.num_patches
        dram_energy_pj += coarse_bytes * cfg.dram.io_pj_per_byte
        sram_bytes += coarse_bytes * 2

    total_time_s = pipeline_s + coarse_time_s
    exposed_data_s = max(0.0, pipeline_s - engine_busy_s)

    sched = GreedyPatchScheduler(cfg.scheduler)
    sched_cycles = sched.scheduling_cycles(len(sources),
                                           plan.image_height,
                                           plan.image_width)
    scheduler_hidden = (sched_cycles / freq) <= total_time_s

    peak_macs_per_s = cfg.engine.pool.macs_per_cycle * freq
    pe_utilization = pool_macs / max(peak_macs_per_s * total_time_s, 1e-12)

    energy_j = (pool_macs * cfg.energy.mac_int8_pj
                + sram_bytes * (cfg.energy.sram_read_pj_per_byte
                                + cfg.energy.sram_write_pj_per_byte) / 2
                + sfu_ops * cfg.energy.special_func_pj
                + dram_energy_pj) * 1e-12

    from ..hardware.accelerator import FrameSimulation
    return FrameSimulation(
        config_name=cfg.name,
        total_time_s=total_time_s,
        data_time_s=exposed_data_s,
        fetch_time_s=float(fetch_times.sum()),
        compute_time_s=engine_busy_s,
        coarse_time_s=coarse_time_s,
        prefetch_bytes=plan.total_prefetch_bytes,
        pool_macs=pool_macs,
        pe_utilization=pe_utilization,
        num_patches=plan.num_patches,
        energy_j=energy_j,
        scheduler_hidden=scheduler_hidden,
        plan=plan if keep_plan else None,
    )


# ----------------------------------------------------------------------
# Seed training step (per-parameter Adam loop, per-step GT rendering)
# ----------------------------------------------------------------------

class AdamLoop:
    """Seed :class:`repro.nn.Adam`: one Python iteration per
    ``Parameter``, separate moment arrays, ~10 numpy dispatches each —
    the loop the fused flat-buffer optimiser replaced."""

    def __init__(self, parameters, lr: float = 5e-4, betas=(0.9, 0.999),
                 eps: float = 1e-8, schedule=None):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.schedule = schedule or nn.ConstantLR(lr)
        self.step_count = 0
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    @property
    def lr(self) -> float:
        return self.schedule(self.step_count)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        self.step_count += 1
        lr = self.lr
        t = self.step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm_loop(parameters, max_norm: float) -> float:
    """Seed ``clip_grad_norm``: the standalone out-of-place helper the
    fused optimiser folded into ``step()``."""
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad = param.grad * scale
    return total


class TrainerLoop:
    """Seed :class:`repro.models.Trainer`: identical pixel-stream
    protocol, but every amortisation unwound — ground truth rendered
    per step (no blocked quadrature, no ``SceneData.gt_cache``), no
    scene-level im2col sharing, unfused :class:`AdamLoop` plus the
    standalone gradient clip.  ``tests/models/test_training_equivalence``
    pins losses and final weights of the fast trainer bit-identical to
    this loop; ``benchmarks/harness.py`` times both as
    ``training_step_e2e``."""

    def __init__(self, model, scenes, config):
        from ..models.training import draw_pixel_block
        from ..models.gen_nerf import GenNeRF as _GenNeRF

        self._draw_pixel_block = draw_pixel_block
        self._gen_nerf_cls = _GenNeRF
        self.model = model
        self.scenes = list(scenes)
        self.config = config
        schedule = nn.ExponentialDecayLR(config.learning_rate,
                                         config.lr_decay_rate,
                                         config.lr_decay_steps)
        self.optimizer = AdamLoop(model.parameters(), schedule=schedule)
        self.rng = np.random.default_rng(config.seed)
        self.pixel_rng = np.random.default_rng((config.seed, 0x5EED))
        self.history = []
        self._step_index = 0
        self._block = []

    def _ground_truth(self, scene_data, bundle) -> np.ndarray:
        from ..scenes.render_gt import render_rays as render_gt_rays
        return render_gt_rays(
            scene_data.scene.field, bundle, self.config.gt_points,
            white_background=scene_data.scene.spec.white_background)

    def _loss(self, scene_data, bundle, target):
        from ..geometry.rays import stratified_depths
        from ..nn import functional as F

        model = self.model
        if isinstance(model, self._gen_nerf_cls):
            coarse_maps, fine_maps = model.encode_scene(
                scene_data.source_images)
            coarse_depths, coarse_weights, coarse_out = model.coarse_pass(
                bundle, scene_data.scene.source_cameras, coarse_maps,
                scene_data.source_images, rng=self.rng)
            samples = model.plan_samples(coarse_depths, coarse_weights,
                                         bundle, rng=self.rng, min_points=2)
            pixel, _, _ = model.fine_pass(bundle, samples,
                                          scene_data.scene.source_cameras,
                                          fine_maps,
                                          scene_data.source_images)
            loss = F.mse_loss(pixel, target.astype(np.float32))
            coarse_pixel, _ = composite(coarse_out.sigma, coarse_out.rgb,
                                        coarse_depths, bundle.far)
            coarse_loss = F.mse_loss(coarse_pixel,
                                     target.astype(np.float32))
            return loss + self.config.coarse_loss_weight * coarse_loss
        feature_maps = model.encode_scene(scene_data.source_images)
        depths = stratified_depths(self.rng, len(bundle),
                                   self.config.num_points, bundle.near,
                                   bundle.far, jitter=True)
        points = bundle.points_at(depths)
        output = model(points, bundle.directions,
                       scene_data.scene.source_cameras, feature_maps,
                       scene_data.source_images)
        pixel, _ = composite(output.sigma, output.rgb, depths, bundle.far)
        return F.mse_loss(pixel, target.astype(np.float32))

    def step(self) -> float:
        from ..geometry.rays import rays_for_pixels

        cfg = self.config
        offset = self._step_index % cfg.pixel_block_steps
        if offset == 0:
            self._block = self._draw_pixel_block(self.scenes, cfg,
                                                 self.pixel_rng)
        scene_pos, pixels = self._block[offset]
        scene_data = self.scenes[scene_pos]
        bundle = rays_for_pixels(scene_data.scene.target_camera, pixels,
                                 scene_data.scene.near,
                                 scene_data.scene.far)
        target = self._ground_truth(scene_data, bundle)

        self.optimizer.zero_grad()
        loss = self._loss(scene_data, bundle, target)
        loss.backward()
        clip_grad_norm_loop(self.optimizer.parameters, cfg.grad_clip)
        self.optimizer.step()
        self._step_index += 1
        value = loss.item()
        self.history.append(value)
        return value

    def fit(self, steps: int):
        for _ in range(steps):
            self.step()
        return self.history


def trainer_fit_loop(model, scenes, config, steps: int):
    """Run ``steps`` seed training steps; returns the loss history."""
    return TrainerLoop(model, scenes, config).fit(steps)


def trainer_full_encode(model, scenes, config):
    """Pinned full-encode reference for the footprint-restricted
    training encode.

    Returns a :class:`repro.models.Trainer` with the footprint planner
    forced off (``footprint=False``) — every step convolves the whole
    source image stack, the layout every committed training artefact
    was generated with.  The footprint equivalence suite
    (``tests/models/test_footprint_equivalence.py``) asserts the
    restricted encode reproduces this trainer's losses, encoder
    gradients, and final weights **byte-for-byte**.  Like
    :func:`model_forward_padded`, this is not a historical copy: it
    runs the current trainer with the optimisation disabled, so it
    tracks trainer changes while staying layout-pinned.
    """
    from ..models.training import Trainer
    return Trainer(model, scenes, config, footprint=False)
