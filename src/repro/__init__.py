"""Gen-NeRF (ISCA 2023) reproduction.

Top-level namespace; subpackages:

* :mod:`repro.nn` — numpy autograd neural-network substrate.
* :mod:`repro.geometry` — cameras, rays, epipolar geometry, frusta.
* :mod:`repro.scenes` — procedural volumetric scenes and camera rigs.
* :mod:`repro.models` — generalizable NeRF models (IBRNet baseline,
  Ray-Mixer, coarse-then-focus sampling, volume rendering, training).
* :mod:`repro.hardware` — cycle-level accelerator simulator, DRAM/SRAM
  models, scheduler, GPU roofline baselines.
* :mod:`repro.core` — end-to-end co-design pipeline and the experiment
  registry reproducing every paper table and figure.
"""

from .version import __version__

__all__ = ["__version__"]
