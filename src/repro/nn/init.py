"""Weight initialisers.

Seeded ``np.random.Generator`` objects are threaded through all module
constructors so every experiment in the reproduction is deterministic.
"""

from __future__ import annotations

import numpy as np

from .tensor import DEFAULT_DTYPE


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int,
                   shape=None) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6/(fan_in+fan_out))."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    shape = shape if shape is not None else (fan_in, fan_out)
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE)


def kaiming_uniform(rng: np.random.Generator, fan_in: int,
                    shape=None) -> np.ndarray:
    """He/Kaiming uniform for ReLU-family activations."""
    bound = np.sqrt(6.0 / fan_in)
    if shape is None:
        raise ValueError("kaiming_uniform requires an explicit shape")
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE)


def normal(rng: np.random.Generator, shape, std: float = 0.02) -> np.ndarray:
    return (rng.standard_normal(shape) * std).astype(DEFAULT_DTYPE)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=DEFAULT_DTYPE)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=DEFAULT_DTYPE)
