"""Reverse-mode automatic differentiation on numpy arrays.

This module is the numerical substrate for the whole reproduction: the
paper's algorithm side (IBRNet-style generalizable NeRF, the ray
transformer baseline, and the Ray-Mixer) is trained with gradient descent,
which the original authors ran through PyTorch.  Offline we have only
numpy, so ``Tensor`` provides the minimal-but-complete reverse-mode
autograd needed: broadcasting-aware elementwise ops, matmul, reductions,
shape ops, and indexing.

Design notes
------------
* A ``Tensor`` wraps an ``np.ndarray`` (``float32`` by default) plus an
  optional gradient accumulated during :meth:`Tensor.backward`.
* Each op records its parents and a closure that pushes the output
  gradient back to them.  ``backward`` runs a topological sort and applies
  the closures in reverse order.
* Broadcasting follows numpy semantics; gradients are un-broadcast by
  summing over expanded axes (see :func:`unbroadcast`).
* Gradient tracking can be suspended with :class:`no_grad` /
  :class:`inference_mode` (used by the renderers at inference time so
  that large image-sized graphs are never built).
* This substrate is both the training and the *inference* hot path.
  Every op short-circuits **before** building its backward closure: when
  gradients are globally disabled or no input requires them, the op
  computes plain ndarray math and returns a graph-free tensor through
  :func:`_plain` (a ``__new__``-based constructor that skips the dtype
  coercion checks of ``Tensor.__init__``).  Under
  :class:`inference_mode` an end-to-end render therefore allocates no
  closures, propagates no ``requires_grad`` flags, and records no
  parents — while producing bit-identical forward values, because the
  array math is the same code path in both modes
  (``tests/nn/test_inference_mode.py`` pins this).
* Training-side accumulation avoids copies where it safely can
  (:meth:`Tensor._accumulate` adopts a sole incoming gradient buffer;
  anything that mutates ``.grad`` in place must own it — see
  ``clip_grad_norm``), integer-array gathers use a ``np.bincount``
  scatter in the backward instead of ``np.add.at``, and the fused ops in
  :mod:`repro.nn.functional` (``linear``, ``softmax``, ``mse_loss``)
  collapse multi-node subgraphs into single nodes.
  ``benchmarks/harness.py`` times a full training step and a full
  inference-mode render.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

DEFAULT_DTYPE = np.float32

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = [True]


class no_grad(contextlib.ContextDecorator):
    """Context manager that disables graph construction.

    Inside the context, ops produce plain result tensors with
    ``requires_grad=False``, record no parents, and skip backward-closure
    allocation entirely, so inference never accumulates memory for
    backward.
    """

    def __enter__(self):
        self._prev = _GRAD_ENABLED[0]
        _GRAD_ENABLED[0] = False
        return self

    def __exit__(self, *exc):
        _GRAD_ENABLED[0] = self._prev
        return False


class inference_mode(no_grad):
    """The end-to-end inference fast path.

    Semantically identical to :class:`no_grad` — ops run plain ndarray
    math through the same fused kernels and return graph-free tensors —
    but named for intent: wrap whole-frame renders in it (or set
    :meth:`repro.nn.Module.eval_inference`) and the forward stays
    bit-identical to the grad-enabled forward while skipping every
    per-op graph cost.  ``Tensor.backward`` raises inside it.
    """


def grad_enabled() -> bool:
    """Return True when ops should record the autograd graph."""
    return _GRAD_ENABLED[0]


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    Broadcasting may have (a) prepended axes and (b) expanded size-1 axes;
    the adjoint of both is a sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were expanded from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _scatter_add_rows(index: np.ndarray, grad: np.ndarray,
                      shape: Tuple[int, ...], dtype) -> np.ndarray:
    """Scatter-add ``grad`` rows into a zero array of ``shape`` at axis-0
    positions ``index``.

    ``np.bincount`` over a combined (row, column) key is ~5-10x faster
    than ``np.add.at`` for the integer-gather indices the models use
    (embedding-style lookups, per-ray feature gathers): bincount is a
    single fused C loop while ``add.at`` dispatches per element.
    """
    num_rows = shape[0]
    num_cols = int(np.prod(shape[1:], dtype=np.int64)) if len(shape) > 1 else 1
    flat_index = index.reshape(-1).astype(np.int64, copy=False)
    flat_index = np.where(flat_index < 0, flat_index + num_rows, flat_index)
    flat_grad = np.ascontiguousarray(grad).reshape(flat_index.size, num_cols)
    if num_cols == 1:
        out = np.bincount(flat_index, weights=flat_grad[:, 0],
                          minlength=num_rows)
    else:
        combined = flat_index[:, None] * num_cols + np.arange(num_cols)
        out = np.bincount(combined.ravel(), weights=flat_grad.ravel(),
                          minlength=num_rows * num_cols)
    return out.reshape(shape).astype(dtype, copy=False)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value, dtype=dtype or DEFAULT_DTYPE)
    return arr


def as_tensor(value: ArrayLike, dtype=None) -> "Tensor":
    """Coerce ``value`` to a :class:`Tensor` without copying when possible."""
    if isinstance(value, Tensor):
        return value
    return Tensor(_as_array(value, dtype))


def _plain(data: np.ndarray) -> "Tensor":
    """Graph-free tensor around a float ndarray, skipping ``__init__``.

    The inference fast path: no dtype inspection, no grad bookkeeping
    beyond zeroing the slots.  Callers guarantee ``data`` is already
    floating (true for every op output whose inputs are); ``asarray``
    only materialises the odd 0-d reduction scalar and passes real
    ndarrays through untouched.
    """
    out = Tensor.__new__(Tensor)
    out.data = np.asarray(data)
    out.grad = None
    out._grad_owned = False
    out.requires_grad = False
    out._parents = ()
    out._backward = None
    out.name = ""
    return out


def _node(data: np.ndarray, parents: Tuple["Tensor", ...],
          backward: Callable[[np.ndarray], None]) -> "Tensor":
    """Graph-recording tensor; callers have already checked grad_enabled."""
    out = _plain(data)
    out.requires_grad = True
    out._parents = parents
    out._backward = backward
    return out


class Tensor:
    """A numpy array with reverse-mode autograd.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.  Stored as ``float32`` unless the
        array already has a floating dtype.
    requires_grad:
        When True, :meth:`backward` will populate :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward",
                 "name", "_grad_owned")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(DEFAULT_DTYPE)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self._grad_owned = False
        self.requires_grad = bool(requires_grad)
        self._parents = _parents if _GRAD_ENABLED[0] else ()
        self._backward = _backward if _GRAD_ENABLED[0] else None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return _plain(self.data)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph mechanics
    # ------------------------------------------------------------------
    def _tracked(self, *others: "Tensor") -> bool:
        """True when this op must record the graph.

        The check every op runs *before* allocating its backward
        closure — the core of the inference fast path.
        """
        if not _GRAD_ENABLED[0]:
            return False
        if self.requires_grad:
            return True
        for other in others:
            if other.requires_grad:
                return True
        return False

    def _make(self, data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Compatibility node builder for out-of-module op definitions."""
        if _GRAD_ENABLED[0] and any(p.requires_grad for p in parents):
            return _node(data, parents, backward)
        return _plain(data)

    def _accumulate(self, grad: np.ndarray) -> None:
        # First gradient with the right dtype is adopted without a copy;
        # the buffer may still alias the producer's output (identity-like
        # backwards pass the child's grad straight through), so it is
        # marked unowned and never written in place.  A second
        # accumulation allocates once — the same cost the old
        # unconditional copy paid on *every* first gradient.
        if self.grad is None:
            if grad.dtype == self.data.dtype:
                self.grad = grad
                self._grad_owned = False
            else:
                self.grad = grad.astype(self.data.dtype, copy=True)
                self._grad_owned = True
        elif self._grad_owned:
            self.grad += grad
        else:
            self.grad = np.add(self.grad, grad, dtype=self.data.dtype)
            self._grad_owned = True

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not _GRAD_ENABLED[0]:
            raise RuntimeError(
                "backward() is disabled inside no_grad/inference_mode "
                "(ops run here record no graph; exit the context to "
                "backpropagate a previously recorded one)")
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        else:
            # Private copy: _accumulate adopts buffers without copying,
            # and identity-like chains pass the root gradient through to
            # leaves — a caller mutating its array after backward() must
            # not corrupt .grad.  One copy per backward call.
            grad = np.array(grad, dtype=self.data.dtype)
            if grad.shape != self.shape:
                raise ValueError(f"grad shape {grad.shape} != tensor shape {self.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        # Each op's backward closure pushes into its parents' ``.grad`` via
        # ``_accumulate``; reversed post-order guarantees a node's grad is
        # complete before its own closure fires.
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None
        self._grad_owned = False

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data
        if not self._tracked(other):
            return _plain(out_data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(g, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(g, other.shape))

        return _node(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out_data = -self.data
        if not self._tracked():
            return _plain(out_data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-g)

        return _node(out_data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data
        if not self._tracked(other):
            return _plain(out_data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(g * self.data, other.shape))

        return _node(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data
        if not self._tracked(other):
            return _plain(out_data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(g / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    unbroadcast(-g * self.data / (other.data ** 2), other.shape))

        return _node(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent
        if not self._tracked():
            return _plain(out_data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1))

        return _node(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        if not self._tracked():
            return _plain(out_data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data)

        return _node(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        if not self._tracked():
            return _plain(out_data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / self.data)

        return _node(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        if not self._tracked():
            return _plain(out_data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (1.0 - out_data ** 2))

        return _node(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic.
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60))),
            np.exp(np.clip(self.data, -60, 60))
            / (1.0 + np.exp(np.clip(self.data, -60, 60))),
        ).astype(self.data.dtype)
        if not self._tracked():
            return _plain(out_data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data * (1.0 - out_data))

        return _node(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask
        if not self._tracked():
            return _plain(out_data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * mask)

        return _node(out_data, (self,), backward)

    def elu(self, alpha: float = 1.0) -> "Tensor":
        pos = self.data > 0
        if not self._tracked():
            # Inference fast path: same element values, two fewer array
            # passes — expm1 over min(x, 0) in place, positives copied
            # over the top, no dtype round-trip.
            out_data = np.minimum(self.data, 0.0)
            np.expm1(out_data, out=out_data)
            if alpha != 1.0:
                out_data *= alpha
            np.copyto(out_data, self.data, where=pos)
            return _plain(out_data)
        expm1 = np.expm1(np.minimum(self.data, 0.0))
        out_data = np.where(pos, self.data, alpha * expm1).astype(self.data.dtype)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                local = np.where(pos, 1.0, alpha * (expm1 + 1.0))
                self._accumulate(g * local)

        return _node(out_data, (self,), backward)

    def softplus(self) -> "Tensor":
        out_data = np.logaddexp(0.0, self.data).astype(self.data.dtype)
        if not self._tracked():
            return _plain(out_data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                sig = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))
                self._accumulate(g * sig)

        return _node(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)
        if not self._tracked():
            return _plain(out_data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * np.sign(self.data))

        return _node(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        if not self._tracked():
            return _plain(out_data)
        mask = (self.data > low) & (self.data < high)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * mask)

        return _node(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if not self._tracked():
            return _plain(out_data)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = g
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        return _node(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for ax in axes:
                count *= self.shape[ax]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if not self._tracked():
            return _plain(np.asarray(out_data))

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = out_data
            grad = g
            if axis is not None and not keepdims:
                expanded = np.expand_dims(out_data, axis=axis)
                grad = np.expand_dims(g, axis=axis)
            mask = (self.data == expanded)
            # Split gradient evenly among ties (matches numpy/pytorch-ish).
            counts = mask.sum(axis=axis if axis is not None else None, keepdims=True)
            self._accumulate(np.broadcast_to(grad, self.shape) * mask / counts)

        return _node(np.asarray(out_data), (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    def cumsum(self, axis: int = -1) -> "Tensor":
        """Cumulative sum; the adjoint is a reversed cumulative sum."""
        out_data = np.cumsum(self.data, axis=axis)
        if not self._tracked():
            return _plain(out_data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                flipped = np.flip(g, axis=axis)
                self._accumulate(np.flip(np.cumsum(flipped, axis=axis),
                                         axis=axis))

        return _node(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data
        if not self._tracked(other):
            return _plain(out_data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    ga = np.multiply.outer(g, other.data) if self.data.ndim > 1 else g * other.data
                else:
                    ga = g @ np.swapaxes(other.data, -1, -2)
                if self.data.ndim == 1 and ga.ndim > 1:
                    ga = ga.sum(axis=tuple(range(ga.ndim - 1)))
                self._accumulate(unbroadcast(np.asarray(ga), self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    gb = np.multiply.outer(self.data, g) if other.data.ndim > 1 else self.data * g
                else:
                    gb = np.swapaxes(self.data, -1, -2) @ g
                if other.data.ndim == 1 and gb.ndim > 1:
                    gb = gb.sum(axis=tuple(range(gb.ndim - 1)))
                other._accumulate(unbroadcast(np.asarray(gb), other.shape))

        return _node(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        if not self._tracked():
            return _plain(out_data)
        in_shape = self.shape

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.reshape(in_shape))

        return _node(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        if not self._tracked():
            return _plain(out_data)
        inverse = np.argsort(axes)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.transpose(inverse))

        return _node(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        if not self._tracked():
            return _plain(out_data)
        fast_gather = (isinstance(index, np.ndarray)
                       and index.dtype != bool
                       and np.issubdtype(index.dtype, np.integer)
                       and self.data.ndim >= 1)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if fast_gather:
                full = _scatter_add_rows(index, g, self.data.shape,
                                         self.data.dtype)
            else:
                full = np.zeros_like(self.data)
                np.add.at(full, index, g)
            self._accumulate(full)

        return _node(out_data, (self,), backward)

    def contiguous(self) -> "Tensor":
        """Materialise a C-contiguous copy of the data (identity op).

        Shape ops like :meth:`transpose` return numpy views; a consumer
        that repeatedly reshapes such a view (e.g. the flat-indexed
        multi-view gather over the stacked feature maps) would re-copy
        it on every call.  Paying the copy once here makes every later
        reshape free.  No-op when already contiguous.
        """
        if self.data.flags.c_contiguous:
            return self
        out_data = np.ascontiguousarray(self.data)
        if not self._tracked():
            return _plain(out_data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g)

        return _node(out_data, (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis)
        if not self._tracked():
            return _plain(out_data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.squeeze(g, axis=axis))

        return _node(out_data, (self,), backward)

    def squeeze(self, axis: int) -> "Tensor":
        out_data = np.squeeze(self.data, axis=axis)
        if not self._tracked():
            return _plain(out_data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.expand_dims(g, axis=axis))

        return _node(out_data, (self,), backward)

    def broadcast_to(self, shape: Tuple[int, ...]) -> "Tensor":
        """Copy-free broadcast view; the adjoint sums expanded axes.

        The forward allocates nothing (``.data`` is a read-only numpy
        broadcast view — consume it, don't write it) and the backward is
        a single ``unbroadcast`` sum instead of n per-slice
        accumulations, making it the cheap alternative to the
        ``stack([t] * n)`` idiom.
        """
        out_data = np.broadcast_to(self.data, tuple(shape))
        if not self._tracked():
            return _plain(out_data)
        in_shape = self.shape

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(g, in_shape))

        return _node(out_data, (self,), backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    if not (_GRAD_ENABLED[0] and any(t.requires_grad for t in tensors)):
        return _plain(out_data)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * g.ndim
                slicer[axis] = slice(int(start), int(stop))
                tensor._accumulate(g[tuple(slicer)])

    return _node(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    expanded = [t.expand_dims(axis) for t in tensors]
    return concatenate(expanded, axis=axis)


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Differentiable ``np.where`` with a constant condition mask."""
    cond = np.asarray(condition, dtype=bool)
    a = as_tensor(a)
    b = as_tensor(b)
    out_data = np.where(cond, a.data, b.data)
    if not (_GRAD_ENABLED[0] and (a.requires_grad or b.requires_grad)):
        return _plain(out_data)

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(g * cond, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(g * ~cond, b.shape))

    return _node(out_data, (a, b), backward)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)
