"""Optimisers and learning-rate schedules.

The paper trains with Adam at an initial LR of 5e-4 with exponential
decay (Sec. 5.1); both are provided here, plus plain SGD for tests.

Fused flat-buffer Adam
----------------------
:class:`Adam` is the training-loop hot path: models here have dozens of
small parameters, and the original per-``Parameter`` Python loop paid
~10 numpy dispatches per parameter per step.  The fused implementation
concatenates every parameter (and its Adam moments) into one contiguous
buffer per dtype at construction time and *rebinds* each
``Parameter.data`` to a view of that buffer, so ``step()`` is a handful
of whole-buffer array ops: gather grads, optional global-norm clip
(``grad_clip=``), decay/update moments, apply the bias-corrected
update in place.  Every elementwise operation matches the seed
per-parameter loop (preserved as
:func:`repro.perf.reference.adam_step_loop`) exactly, so trajectories
are bit-identical — ``tests/nn/test_optim_equivalence.py`` pins losses
and final weights over multi-step runs, including grad-clip edge cases
and parameters whose gradient is ``None``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from .layers import Parameter


class LRSchedule:
    """Base class: maps a step index to a learning rate."""

    def __call__(self, step: int) -> float:
        raise NotImplementedError


class ConstantLR(LRSchedule):
    def __init__(self, lr: float):
        self.lr = lr

    def __call__(self, step: int) -> float:
        return self.lr


class ExponentialDecayLR(LRSchedule):
    """lr(step) = initial * decay_rate ** (step / decay_steps)."""

    def __init__(self, initial: float = 5e-4, decay_rate: float = 0.1,
                 decay_steps: int = 250_000):
        self.initial = initial
        self.decay_rate = decay_rate
        self.decay_steps = decay_steps

    def __call__(self, step: int) -> float:
        return self.initial * self.decay_rate ** (step / self.decay_steps)


class Optimizer:
    """Base optimiser over a flat parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 schedule: Optional[LRSchedule] = None):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.schedule = schedule or ConstantLR(lr)
        self.step_count = 0

    @property
    def lr(self) -> float:
        return self.schedule(self.step_count)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla SGD with optional momentum."""

    def __init__(self, parameters, lr: float = 1e-2, momentum: float = 0.0,
                 schedule: Optional[LRSchedule] = None):
        super().__init__(parameters, lr=lr, schedule=schedule)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        lr = self.lr
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity -= lr * param.grad
                param.data += velocity
            else:
                param.data -= lr * param.grad
            param.bump_version()
        self.step_count += 1


class _FlatGroup:
    """One dtype's parameters fused into contiguous buffers.

    ``data`` holds the live parameter values — each member
    ``Parameter.data`` is rebound to a reshaped view of it, so model
    forwards read, and in-place loads write, the same memory the fused
    update touches.  ``m``/``v`` are the Adam moments, ``grad`` a
    scratch buffer refilled from the per-parameter ``.grad`` arrays at
    each step.
    """

    def __init__(self, params: List[Parameter]):
        self.params = params
        sizes = [p.data.size for p in params]
        offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        dtype = params[0].data.dtype
        total = int(offsets[-1])
        self.data = np.empty(total, dtype=dtype)
        self.slices: List[slice] = []
        for param, start, stop in zip(params, offsets[:-1], offsets[1:]):
            sl = slice(int(start), int(stop))
            self.slices.append(sl)
            self.data[sl] = param.data.ravel()
            # Rebind to a view: a contiguous slice reshaped keeps
            # sharing the flat buffer, so parameter and buffer can
            # never diverge.
            param.data = self.data[sl].reshape(param.data.shape)
        self.m = np.zeros(total, dtype=dtype)
        self.v = np.zeros(total, dtype=dtype)
        self.grad = np.zeros(total, dtype=dtype)

    def gather_grads(self) -> Tuple[bool, Optional[np.ndarray]]:
        """Copy per-parameter grads into the flat scratch buffer.

        Returns ``(any_grad, active)`` where ``active`` is an
        elementwise bool mask, or ``None`` when every parameter has a
        gradient (the common training case — no masking needed).
        """
        missing = [param.grad is None for param in self.params]
        if not any(missing):
            for param, sl in zip(self.params, self.slices):
                self.grad[sl] = param.grad.ravel()
            return True, None
        if all(missing):
            return False, None
        active = np.zeros(self.data.shape[0], dtype=bool)
        for param, sl, absent in zip(self.params, self.slices, missing):
            if absent:
                self.grad[sl] = 0.0
            else:
                self.grad[sl] = param.grad.ravel()
                active[sl] = True
        return True, active


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction — fused flat buffers.

    ``grad_clip`` folds the global-norm gradient clip of
    :func:`clip_grad_norm` into ``step()`` (applied to the gathered
    flat gradients, per-parameter norms accumulated in parameter order
    so the total matches the unfused helper bit for bit).  The LR
    schedule is evaluated once per step, exactly as the seed loop did.

    .. warning:: Construction **rebinds** every ``Parameter.data`` to a
       view of this optimiser's flat buffer.  Constructing a second
       ``Adam`` over the same parameters re-rebinds them to the *new*
       buffer — the normal replace-the-optimizer pattern (a fresh
       ``Trainer`` per run) — but it detaches any **earlier** optimiser:
       its buffer no longer aliases the live parameters, so stepping it
       would update nothing.  Likewise, references to ``param.data``
       captured *before* construction stop tracking the parameter.  Use
       one live optimiser per parameter set.
    """

    def __init__(self, parameters, lr: float = 5e-4, betas=(0.9, 0.999),
                 eps: float = 1e-8, schedule: Optional[LRSchedule] = None,
                 grad_clip: Optional[float] = None):
        super().__init__(parameters, lr=lr, schedule=schedule)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.grad_clip = grad_clip
        groups: dict = {}
        seen: set = set()
        for param in self.parameters:
            # A parameter reachable through two module paths must own
            # exactly one flat segment — the rebound ``.data`` view
            # would otherwise detach from the buffer updated last.
            if id(param) in seen:
                continue
            seen.add(id(param))
            groups.setdefault(np.dtype(param.data.dtype), []).append(param)
        self._groups = [_FlatGroup(params) for params in groups.values()]
        # (group, slice) per parameter in the *original* list order, so
        # the folded grad-clip accumulates per-parameter norms exactly
        # as the unfused helper iterates them.
        located = {}
        for group in self._groups:
            for param, sl in zip(group.params, group.slices):
                located[id(param)] = (group, sl)
        self._param_slots = [(param, *located[id(param)])
                             for param in self.parameters]

    # ------------------------------------------------------------------
    def _clip_gathered(self, gathered) -> None:
        """Global-norm clip over the flat grad buffers.

        Mirrors :func:`clip_grad_norm`: per-parameter squared norms
        (numpy's pairwise reduction over each contiguous segment is
        bit-identical to ``(p.grad ** 2).sum()``), summed sequentially
        in parameter order, then one elementwise scale.
        """
        max_norm = self.grad_clip
        total = 0.0
        for param, group, sl in self._param_slots:
            if param.grad is not None:
                total += float(np.sum(group.grad[sl] ** 2))
        total = float(np.sqrt(total))
        if total > max_norm and total > 0:
            scale = max_norm / total
            for group, (any_grad, _active) in zip(self._groups, gathered):
                if any_grad:
                    group.grad *= scale

    def step(self) -> None:
        self.step_count += 1
        lr = self.lr
        t = self.step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        gathered = [group.gather_grads() for group in self._groups]
        if self.grad_clip is not None:
            self._clip_gathered(gathered)
        for group, (any_grad, active) in zip(self._groups, gathered):
            if not any_grad:
                continue
            grad, m, v = group.grad, group.m, group.v
            if active is None:
                m *= self.beta1
                m += (1.0 - self.beta1) * grad
                v *= self.beta2
                v += (1.0 - self.beta2) * grad * grad
                m_hat = m / bias1
                v_hat = v / bias2
                group.data -= lr * m_hat / (np.sqrt(v_hat) + self.eps)
                for param in group.params:
                    param.bump_version()
            else:
                # Some parameters took no gradient this step: the seed
                # loop skips them entirely, so moments and data must
                # stay untouched outside ``active``.  ``where=`` keeps
                # the arithmetic one fused pass.
                np.multiply(m, self.beta1, out=m, where=active)
                np.add(m, (1.0 - self.beta1) * grad, out=m, where=active)
                np.multiply(v, self.beta2, out=v, where=active)
                np.add(v, (1.0 - self.beta2) * grad * grad, out=v,
                       where=active)
                update = lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
                np.subtract(group.data, update, out=group.data, where=active)
                for param in group.params:
                    if param.grad is not None:
                        param.bump_version()


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so the global L2 norm is <= max_norm.

    Scaling is out-of-place: ``.grad`` buffers may be shared between
    tensors (``Tensor._accumulate`` adopts a sole incoming gradient
    without copying), so an in-place ``*=`` could double-scale an
    aliased buffer.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad = param.grad * scale
    return total
