"""Optimisers and learning-rate schedules.

The paper trains with Adam at an initial LR of 5e-4 with exponential
decay (Sec. 5.1); both are provided here, plus plain SGD for tests.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .layers import Parameter


class LRSchedule:
    """Base class: maps a step index to a learning rate."""

    def __call__(self, step: int) -> float:
        raise NotImplementedError


class ConstantLR(LRSchedule):
    def __init__(self, lr: float):
        self.lr = lr

    def __call__(self, step: int) -> float:
        return self.lr


class ExponentialDecayLR(LRSchedule):
    """lr(step) = initial * decay_rate ** (step / decay_steps)."""

    def __init__(self, initial: float = 5e-4, decay_rate: float = 0.1,
                 decay_steps: int = 250_000):
        self.initial = initial
        self.decay_rate = decay_rate
        self.decay_steps = decay_steps

    def __call__(self, step: int) -> float:
        return self.initial * self.decay_rate ** (step / self.decay_steps)


class Optimizer:
    """Base optimiser over a flat parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 schedule: Optional[LRSchedule] = None):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.schedule = schedule or ConstantLR(lr)
        self.step_count = 0

    @property
    def lr(self) -> float:
        return self.schedule(self.step_count)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla SGD with optional momentum."""

    def __init__(self, parameters, lr: float = 1e-2, momentum: float = 0.0,
                 schedule: Optional[LRSchedule] = None):
        super().__init__(parameters, lr=lr, schedule=schedule)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        lr = self.lr
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity -= lr * param.grad
                param.data += velocity
            else:
                param.data -= lr * param.grad
        self.step_count += 1


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, parameters, lr: float = 5e-4, betas=(0.9, 0.999),
                 eps: float = 1e-8, schedule: Optional[LRSchedule] = None):
        super().__init__(parameters, lr=lr, schedule=schedule)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        lr = self.lr
        t = self.step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so the global L2 norm is <= max_norm.

    Scaling is out-of-place: ``.grad`` buffers may be shared between
    tensors (``Tensor._accumulate`` adopts a sole incoming gradient
    without copying), so an in-place ``*=`` could double-scale an
    aliased buffer.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad = param.grad * scale
    return total
