"""Save/load module parameters with ``np.savez`` — the repo's checkpoint
format for trained models (examples cache small pretrained weights)."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .layers import Module


def save_module(module: Module, path: str) -> None:
    """Serialise ``module.state_dict()`` to an ``.npz`` file."""
    state = module.state_dict()
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez(path, **state)


def load_module(module: Module, path: str) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``."""
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {k: archive[k] for k in archive.files}
    module.load_state_dict(state)
    return module
