"""``repro.nn`` — numpy autograd substrate (PyTorch substitute).

Public surface: :class:`Tensor` with reverse-mode autograd, layer modules,
attention, optimisers and (de)serialisation.  See DESIGN.md for why this
substrate exists.
"""

from . import functional
from .attention import MultiHeadSelfAttention, TransformerBlock
from .layers import (MLP, AvgPool2d, Conv2d, ELU, LayerNorm, Linear, Module,
                     Parameter, ReLU, Sequential, Sigmoid, conv_patch_cache,
                     shared_patch_rows)
from .optim import (Adam, ConstantLR, ExponentialDecayLR, LRSchedule, SGD,
                    clip_grad_norm)
from .serialize import load_module, save_module
from .tensor import (Tensor, as_tensor, concatenate, grad_enabled,
                     inference_mode, no_grad, ones, stack, unbroadcast, where,
                     zeros)

__all__ = [
    "functional",
    "Tensor", "as_tensor", "concatenate", "stack", "where", "zeros", "ones",
    "no_grad", "inference_mode", "grad_enabled", "unbroadcast",
    "Module", "Parameter", "Linear", "Conv2d", "AvgPool2d", "Sequential",
    "MLP", "LayerNorm", "ReLU", "ELU", "Sigmoid", "conv_patch_cache",
    "shared_patch_rows",
    "MultiHeadSelfAttention", "TransformerBlock",
    "Adam", "SGD", "ConstantLR", "ExponentialDecayLR", "LRSchedule",
    "clip_grad_norm", "save_module", "load_module",
]
