"""Multi-head self-attention — the ray-transformer baseline's core op.

The paper's hardware motivation (Sec. 2.3) is that attention is 44.1% of
DNN latency at only 13.8% of FLOPs on a GPU; Gen-NeRF removes it with the
Ray-Mixer.  We therefore keep this implementation faithful (scaled
dot-product, per-head projections, residual + LayerNorm block) so the
workload analysis in :mod:`repro.models.workload` can count its FLOPs and
memory traffic exactly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .layers import LayerNorm, Linear, Module
from .tensor import Tensor, as_tensor


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention over the point axis of a ray.

    Input shape: (rays, points, features).  An optional boolean mask of
    shape (rays, points) marks valid (non-padded) points.
    """

    def __init__(self, features: int, heads: int = 4,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if features % heads != 0:
            raise ValueError(f"features={features} not divisible by heads={heads}")
        rng = rng or np.random.default_rng(0)
        self.features = features
        self.heads = heads
        self.head_dim = features // heads
        self.query = Linear(features, features, rng=rng)
        self.key = Linear(features, features, rng=rng)
        self.value = Linear(features, features, rng=rng)
        self.out = Linear(features, features, rng=rng)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        x = as_tensor(x)
        rays, points, _ = x.shape
        heads, dim = self.heads, self.head_dim

        def split(t: Tensor) -> Tensor:
            # (R, P, F) -> (R, H, P, d)
            return t.reshape(rays, points, heads, dim).transpose((0, 2, 1, 3))

        q = split(self.query(x))
        k = split(self.key(x))
        v = split(self.value(x))

        scores = (q @ k.transpose((0, 1, 3, 2))) * (1.0 / np.sqrt(dim))
        if mask is not None:
            # (R, P) -> broadcast over heads and query positions.
            attend = np.broadcast_to(mask[:, None, None, :],
                                     (rays, heads, points, points))
            weights = F.masked_softmax(scores, attend, axis=-1)
        else:
            weights = F.softmax(scores, axis=-1)
        mixed = weights @ v  # (R, H, P, d)
        merged = mixed.transpose((0, 2, 1, 3)).reshape(rays, points, self.features)
        return self.out(merged)

    def flops(self, rays: int, points: int) -> int:
        """Exact FLOPs: 4 projections + 2 batched matmuls + softmax."""
        proj = 4 * 2 * rays * points * self.features * self.features
        attn = 2 * 2 * rays * self.heads * points * points * self.head_dim
        softmax_ops = 5 * rays * self.heads * points * points
        return proj + attn + softmax_ops


class TransformerBlock(Module):
    """Pre-norm transformer block: attention + feed-forward, residuals."""

    def __init__(self, features: int, heads: int = 4, ff_multiplier: int = 2,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.norm1 = LayerNorm(features)
        self.attention = MultiHeadSelfAttention(features, heads, rng=rng)
        self.norm2 = LayerNorm(features)
        hidden = features * ff_multiplier
        self.ff1 = Linear(features, hidden, rng=rng)
        self.ff2 = Linear(hidden, features, rng=rng)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        x = as_tensor(x)
        x = x + self.attention(self.norm1(x), mask=mask)
        x = x + self.ff2(F.relu(self.ff1(self.norm2(x))))
        return x

    def flops(self, rays: int, points: int) -> int:
        tokens = rays * points
        ff = self.ff1.flops(tokens) + self.ff2.flops(tokens)
        return self.attention.flops(rays, points) + ff
