"""Neural-network modules: the layer zoo used by the Gen-NeRF models.

Provides a torch-like ``Module`` tree with named parameters, plus the
concrete layers the paper's models need — ``Linear`` (the MLP ``f`` and
Ray-Mixer are FC stacks), ``Conv2d`` (the CNN encoder ``E`` over source
views), ``LayerNorm`` (ray transformer blocks), and containers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import functional as F
from . import init
from .tensor import (Tensor, _node, _plain, as_tensor, grad_enabled,
                     no_grad)


class Parameter(Tensor):
    """A tensor registered as trainable state of a :class:`Module`.

    ``version`` counts value updates: optimisers bump it for every
    parameter they actually change (a parameter whose gradient was
    ``None`` keeps its version), and :meth:`Module.load_state_dict`
    bumps every loaded parameter.  Caches over derived quantities
    (e.g. the scene-level encoded-feature cache in
    :mod:`repro.models.training`) compare version tuples to decide
    staleness instead of re-hashing array contents.
    """

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        self.version = 0

    def bump_version(self) -> None:
        self.version += 1


class Module:
    """Base class with parameter registration and traversal.

    Subclasses assign :class:`Parameter` and ``Module`` instances as
    attributes; ``named_parameters`` walks the tree in declaration order,
    which makes ``state_dict`` layouts stable across runs.
    """

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True
        self._inference = False

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        if mode:
            self._inference = False
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def eval_inference(self, mode: bool = True) -> "Module":
        """Switch to eval *and* arm the inference fast path.

        Every subsequent ``module(...)`` call runs its forward under
        :class:`repro.nn.inference_mode`: ops skip graph construction,
        ``requires_grad`` propagation, and backward-closure allocation,
        while the forward values stay bit-identical to the grad-enabled
        path.  ``module.train()`` disarms it.
        """
        self.train(False)
        stack = [self]
        while stack:
            module = stack.pop()
            module._inference = mode
            stack.extend(module._modules.values())
        return self

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{param.data.shape} vs {state[name].shape}")
            param.data[...] = state[name]
            param.bump_version()

    def __call__(self, *args, **kwargs):
        if getattr(self, "_inference", False) and grad_enabled():
            with no_grad():
                return self.forward(*args, **kwargs)
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with ``W`` shaped (in, out)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None, bias: bool = True):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(rng, in_features, out_features))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(as_tensor(x), self.weight, self.bias)

    def flops(self, batch: int) -> int:
        """Multiply-accumulate FLOPs (2 per MAC) for ``batch`` rows."""
        flops = 2 * batch * self.in_features * self.out_features
        if self.bias is not None:
            flops += batch * self.out_features
        return flops


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class ELU(Module):
    def __init__(self, alpha: float = 1.0):
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return F.elu(x, self.alpha)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = f"m{index}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __iter__(self):
        return (getattr(self, name) for name in self._order)

    def __len__(self):
        return len(self._order)


class LayerNorm(Module):
    """Layer normalisation over the trailing feature axis."""

    def __init__(self, features: int, eps: float = 1e-5):
        super().__init__()
        self.features = features
        self.eps = eps
        self.gamma = Parameter(init.ones((features,)))
        self.beta = Parameter(init.zeros((features,)))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(as_tensor(x), self.gamma, self.beta, self.eps)


class MLP(Module):
    """Stack of Linear layers with a shared activation.

    ``hidden`` lists hidden widths; the final Linear has no activation.
    This is the workhorse for the NeRF MLP ``f`` and the mixer blocks.
    """

    def __init__(self, in_features: int, hidden: Sequence[int], out_features: int,
                 rng: Optional[np.random.Generator] = None,
                 activation: str = "elu"):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        widths = [in_features] + list(hidden) + [out_features]
        act = {"relu": ReLU, "elu": ELU, "sigmoid": Sigmoid}[activation]
        modules: List[Module] = []
        for i, (w_in, w_out) in enumerate(zip(widths[:-1], widths[1:])):
            modules.append(Linear(w_in, w_out, rng=rng))
            if i < len(widths) - 2:
                modules.append(act())
        self.net = Sequential(*modules)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)

    def flops(self, batch: int) -> int:
        return sum(m.flops(batch) for m in self.net if isinstance(m, Linear))


_SHARED_COLS_CACHE: List[Optional[Dict]] = [None]


class conv_patch_cache:
    """Scene-level im2col cache shared across :class:`Conv2d` instances.

    Inside the context, every cache-eligible conv (grad-free input under
    grad mode — the training loop's per-step re-encode of fixed source
    images) keys its im2col result by ``(input array, kernel, stride,
    padding)`` in the *caller's* dict instead of the per-layer cache.
    Two encoders whose first layer shares a geometry (the Gen-NeRF
    coarse/fine pair both run 3x3/s1/p1 over the same images) then pay
    the patch rearrangement once per scene — per process, not per layer
    instance — which is the ROADMAP's "training-side im2col reuse".

    The dict is owned by the caller (``SceneData.conv_cache`` in the
    trainer), so its lifetime tracks the scene, and entries carry the
    same identity + fingerprint staleness checks as the per-layer
    cache.  Contexts nest; the innermost cache wins.
    """

    def __init__(self, cache: Dict):
        self.cache = cache

    def __enter__(self):
        self._prev = _SHARED_COLS_CACHE[0]
        _SHARED_COLS_CACHE[0] = self.cache
        return self.cache

    def __exit__(self, *exc):
        _SHARED_COLS_CACHE[0] = self._prev
        return False


def shared_patch_rows(data: np.ndarray, kernel: int, stride: int,
                      padding: int, rows: np.ndarray) -> Optional[np.ndarray]:
    """Gather im2col patch rows from the active :class:`conv_patch_cache`.

    The footprint-restricted encode (:mod:`repro.models.footprint`) only
    needs the patch rows of the output pixels it will actually compute.
    When a full encode already paid for the scene-level im2col of the
    same input array — the trainer's ``SceneData.conv_cache`` after any
    evaluation pass — those rows can be gathered straight from the cached
    cols (same key and staleness checks as :class:`Conv2d`).  Returns
    ``None`` on any miss so the caller assembles patches from its packed
    input rows instead.
    """
    cache = _SHARED_COLS_CACHE[0]
    if cache is None:
        return None
    entry = cache.get((id(data), kernel, stride, padding))
    if entry is None or entry[0] is not data \
            or entry[1] != _array_fingerprint(data):
        return None
    cols = entry[2]
    return cols.reshape(-1, cols.shape[-1])[np.asarray(rows, dtype=np.intp)]


def _array_fingerprint(arr: np.ndarray) -> tuple:
    """Cheap content fingerprint for cache-staleness detection.

    Samples a strided subset (bounded cost regardless of size); any
    in-place edit that touches the array broadly — normalisation,
    augmentation — changes it, while the full-array hash a bulletproof
    check would need costs as much as the work the cache saves.
    """
    flat = arr.reshape(-1)
    sample = flat[::max(1, flat.size // 64)]
    return (arr.shape, float(sample.sum()), float(flat[0]), float(flat[-1]))


class Conv2d(Module):
    """2D convolution on (B, C, H, W) tensors via im2col + GEMM.

    The CNN encoder ``E`` in generalizable NeRFs is a one-time cost per
    scene (paper Sec. 2.2 Step 0), so clarity is preferred over speed.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 3,
                 stride: int = 1, padding: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel * kernel
        self.weight = Parameter(
            init.kaiming_uniform(rng, fan_in, shape=(fan_in, out_channels)))
        self.bias = Parameter(init.zeros((out_channels,)))
        # im2col results for grad-free inputs, keyed by array identity.
        # Training re-runs the encoder every step on the *same* source
        # images (only the weights change), so the patch rearrangement —
        # the most expensive non-GEMM part of the conv — is computed
        # once per scene.  Values keep a reference to the input array,
        # so an id() collision after garbage collection cannot alias:
        # the identity check below compares the stored object itself.
        self._cols_cache: Dict[int, tuple] = {}
        self._cols_cache_limit = 8

    def train(self, mode: bool = True) -> "Module":
        # Phase changes are natural cache boundaries: callers that edit
        # their input buffers between train/eval phases get a fresh
        # im2col even if the cheap fingerprint below would miss the
        # edit.
        self._cols_cache.clear()
        return super().train(mode)

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        batch, _, height, width = x.shape
        # Only worth caching for constant inputs under grad mode (the
        # training loop's per-step re-encode of fixed source images);
        # inference callers cache whole encoded maps a level up.
        cacheable = grad_enabled() and not x.requires_grad
        shared = _SHARED_COLS_CACHE[0]
        if cacheable and shared is not None:
            # Scene-level cache: keyed by geometry too, so different
            # layers with the same (kernel, stride, padding) share one
            # entry per input array.
            key = (id(x.data), self.kernel, self.stride, self.padding)
            cache, limit = shared, 4 * self._cols_cache_limit
        else:
            key = id(x.data)
            cache, limit = self._cols_cache, self._cols_cache_limit
        cached = cache.get(key) if cacheable else None
        if cached is not None and cached[0] is x.data \
                and cached[1] == _array_fingerprint(x.data):
            _, _, cols, out_h, out_w = cached
        else:
            cols, out_h, out_w = F.im2col(x.data, self.kernel, self.stride,
                                          self.padding)
            if cacheable:
                if len(cache) >= limit:
                    cache.clear()
                cache[key] = (
                    x.data, _array_fingerprint(x.data), cols, out_h, out_w)
        image_shape = x.shape
        kernel, stride, padding = self.kernel, self.stride, self.padding
        weight, bias = self.weight, self.bias
        out_channels = self.out_channels

        # Fused single-node conv: one GEMM over the flattened patches,
        # materialised channel-first (contiguous, so downstream
        # elementwise ops don't walk a transposed view), with a single
        # backward closure — the former linear -> reshape -> transpose
        # node chain re-copied the (B, C, H, W) gradient at every hop.
        cols2d = cols.reshape(-1, cols.shape[-1])
        out2d = cols2d @ weight.data + bias.data
        out_data = np.ascontiguousarray(
            out2d.reshape(batch, out_h, out_w, out_channels)
            .transpose(0, 3, 1, 2))
        if not x._tracked(weight, bias):
            return _plain(out_data)

        def backward(g: np.ndarray) -> None:
            g2d = np.ascontiguousarray(
                g.transpose(0, 2, 3, 1)).reshape(-1, out_channels)
            if weight.requires_grad or bias.requires_grad:
                rows = F.grad_live_rows(g2d, g2d.shape[0])
                if rows is None:
                    if weight.requires_grad:
                        weight._accumulate(cols2d.T @ g2d)
                    if bias.requires_grad:
                        bias._accumulate(g2d.sum(axis=0))
                else:
                    g_live = g2d[rows]
                    if weight.requires_grad:
                        weight._accumulate(cols2d[rows].T @ g_live)
                    if bias.requires_grad:
                        bias._accumulate(g_live.sum(axis=0))
            if x.requires_grad:
                gcols = (g2d @ weight.data.T).reshape(batch, -1,
                                                      cols2d.shape[-1])
                x._accumulate(F.col2im(gcols, image_shape, kernel, stride,
                                       padding))

        return _node(out_data, (x, weight, bias), backward)

    def output_shape(self, height: int, width: int) -> tuple:
        """Spatial (out_h, out_w) this conv produces for an (H, W) input."""
        out_h = (height + 2 * self.padding - self.kernel) // self.stride + 1
        out_w = (width + 2 * self.padding - self.kernel) // self.stride + 1
        return out_h, out_w

    def flops(self, batch: int, height: int, width: int) -> int:
        out_h, out_w = self.output_shape(height, width)
        macs = (batch * out_h * out_w * self.out_channels
                * self.in_channels * self.kernel * self.kernel)
        return 2 * macs


class AvgPool2d(Module):
    """Non-overlapping average pooling on (B, C, H, W)."""

    def __init__(self, kernel: int = 2):
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        batch, channels, height, width = x.shape
        k = self.kernel
        out_h, out_w = height // k, width // k
        trimmed = x[:, :, :out_h * k, :out_w * k]
        reshaped = trimmed.reshape(batch, channels, out_h, k, out_w, k)
        return reshaped.mean(axis=(3, 5))
