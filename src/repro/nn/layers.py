"""Neural-network modules: the layer zoo used by the Gen-NeRF models.

Provides a torch-like ``Module`` tree with named parameters, plus the
concrete layers the paper's models need — ``Linear`` (the MLP ``f`` and
Ray-Mixer are FC stacks), ``Conv2d`` (the CNN encoder ``E`` over source
views), ``LayerNorm`` (ray transformer blocks), and containers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor, as_tensor, grad_enabled


class Parameter(Tensor):
    """A tensor registered as trainable state of a :class:`Module`."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with parameter registration and traversal.

    Subclasses assign :class:`Parameter` and ``Module`` instances as
    attributes; ``named_parameters`` walks the tree in declaration order,
    which makes ``state_dict`` layouts stable across runs.
    """

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{param.data.shape} vs {state[name].shape}")
            param.data[...] = state[name]

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with ``W`` shaped (in, out)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None, bias: bool = True):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(rng, in_features, out_features))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(as_tensor(x), self.weight, self.bias)

    def flops(self, batch: int) -> int:
        """Multiply-accumulate FLOPs (2 per MAC) for ``batch`` rows."""
        flops = 2 * batch * self.in_features * self.out_features
        if self.bias is not None:
            flops += batch * self.out_features
        return flops


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class ELU(Module):
    def __init__(self, alpha: float = 1.0):
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return F.elu(x, self.alpha)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = f"m{index}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __iter__(self):
        return (getattr(self, name) for name in self._order)

    def __len__(self):
        return len(self._order)


class LayerNorm(Module):
    """Layer normalisation over the trailing feature axis."""

    def __init__(self, features: int, eps: float = 1e-5):
        super().__init__()
        self.features = features
        self.eps = eps
        self.gamma = Parameter(init.ones((features,)))
        self.beta = Parameter(init.zeros((features,)))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(as_tensor(x), self.gamma, self.beta, self.eps)


class MLP(Module):
    """Stack of Linear layers with a shared activation.

    ``hidden`` lists hidden widths; the final Linear has no activation.
    This is the workhorse for the NeRF MLP ``f`` and the mixer blocks.
    """

    def __init__(self, in_features: int, hidden: Sequence[int], out_features: int,
                 rng: Optional[np.random.Generator] = None,
                 activation: str = "elu"):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        widths = [in_features] + list(hidden) + [out_features]
        act = {"relu": ReLU, "elu": ELU, "sigmoid": Sigmoid}[activation]
        modules: List[Module] = []
        for i, (w_in, w_out) in enumerate(zip(widths[:-1], widths[1:])):
            modules.append(Linear(w_in, w_out, rng=rng))
            if i < len(widths) - 2:
                modules.append(act())
        self.net = Sequential(*modules)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)

    def flops(self, batch: int) -> int:
        return sum(m.flops(batch) for m in self.net if isinstance(m, Linear))


class Conv2d(Module):
    """2D convolution on (B, C, H, W) tensors via im2col + GEMM.

    The CNN encoder ``E`` in generalizable NeRFs is a one-time cost per
    scene (paper Sec. 2.2 Step 0), so clarity is preferred over speed.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 3,
                 stride: int = 1, padding: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel * kernel
        self.weight = Parameter(
            init.kaiming_uniform(rng, fan_in, shape=(fan_in, out_channels)))
        self.bias = Parameter(init.zeros((out_channels,)))

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        batch, _, height, width = x.shape
        cols, out_h, out_w = F.im2col(x.data, self.kernel, self.stride,
                                      self.padding)
        cols_t = Tensor(cols)
        image_shape = x.shape
        kernel, stride, padding = self.kernel, self.stride, self.padding

        if x.requires_grad and grad_enabled():
            def backward(g: np.ndarray) -> None:
                x._accumulate(F.col2im(g, image_shape, kernel, stride, padding))

            cols_t = Tensor(cols, requires_grad=True, _parents=(x,),
                            _backward=backward)

        out = F.linear(cols_t, self.weight, self.bias)  # (B, oh*ow, out_c)
        return out.reshape(batch, out_h, out_w, self.out_channels).transpose(
            (0, 3, 1, 2))

    def flops(self, batch: int, height: int, width: int) -> int:
        out_h = (height + 2 * self.padding - self.kernel) // self.stride + 1
        out_w = (width + 2 * self.padding - self.kernel) // self.stride + 1
        macs = (batch * out_h * out_w * self.out_channels
                * self.in_channels * self.kernel * self.kernel)
        return 2 * macs


class AvgPool2d(Module):
    """Non-overlapping average pooling on (B, C, H, W)."""

    def __init__(self, kernel: int = 2):
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        batch, channels, height, width = x.shape
        k = self.kernel
        out_h, out_w = height // k, width // k
        trimmed = x[:, :, :out_h * k, :out_w * k]
        reshaped = trimmed.reshape(batch, channels, out_h, k, out_w, k)
        return reshaped.mean(axis=(3, 5))
