"""Functional operations built on :class:`repro.nn.tensor.Tensor`.

These mirror the subset of ``torch.nn.functional`` that the Gen-NeRF
algorithm stack needs: activations, softmax (for the ray-transformer
baseline and IBRNet's visibility-style pooling), layer norm, masked ops
(for padded focused samples), and the MSE training loss from paper Eq. 3.

Performance note: the training hot path runs through :func:`linear`,
:func:`softmax` / :func:`masked_softmax`, and :func:`mse_loss`, so these
are *fused* ops — each records a single graph node whose backward is one
closed-form closure, instead of composing 3-5 elementwise autograd nodes
with their temporary arrays.  ``nn.Linear`` (hence ``nn.MLP``) and the
ray-transformer attention route through them; ``benchmarks/harness.py``
tracks the training-step timing.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .tensor import (Tensor, as_tensor, concatenate, grad_enabled,  # noqa: F401
                     stack, unbroadcast, where)
from .tensor import _node, _plain, _scatter_add_rows


def relu(x: Tensor) -> Tensor:
    return as_tensor(x).relu()


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    return as_tensor(x).elu(alpha)


def sigmoid(x: Tensor) -> Tensor:
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    return as_tensor(x).tanh()


def softplus(x: Tensor) -> Tensor:
    return as_tensor(x).softplus()


def exp(x: Tensor) -> Tensor:
    return as_tensor(x).exp()


def log(x: Tensor) -> Tensor:
    return as_tensor(x).log()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    Fused: a single graph node with the closed-form backward
    ``y * (g - sum(g * y))`` instead of the exp/sum/divide composition.
    """
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)
    if not x._tracked():
        return _plain(out_data)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            inner = (g * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (g - inner))

    return _node(out_data, (x,), backward)


def masked_softmax(x: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax that assigns zero probability where ``mask`` is False.

    Used by the ray transformer when focused sampling pads rays to
    ``N_max``: padded points must not attend or be attended to.  Fused
    like :func:`softmax`; masked entries have zero output, so the same
    closed-form backward routes them zero gradient.
    """
    x = as_tensor(x)
    mask = np.asarray(mask, dtype=bool)
    if mask.all():
        # All-valid masks are the common case on dense renders; adding
        # a zero bias and multiplying by 1.0 are bit-exact identities,
        # so skip those passes (the +1e-12 denominator stays).
        shifted = x.data - x.data.max(axis=axis, keepdims=True)
        exps = np.exp(shifted)
    else:
        neg = np.where(mask, 0.0, -1e9).astype(x.dtype)
        shifted = x.data + neg
        shifted = shifted - shifted.max(axis=axis, keepdims=True)
        exps = np.exp(shifted) * mask.astype(x.dtype)
    out_data = exps / (exps.sum(axis=axis, keepdims=True) + 1e-12)
    if not x._tracked():
        return _plain(out_data)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            inner = (g * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(unbroadcast(out_data * (g - inner), x.shape))

    return _node(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis."""
    x = as_tensor(x)
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normed = (x - mu) / (var + eps).sqrt()
    return normed * gamma + beta


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean-square error, paper Eq. 3 (averaged rather than summed).

    Fused: sub/square/mean collapse into one node whose backward is
    ``2 * diff / N`` — the training loop's every-step op builds one graph
    node instead of four.
    """
    prediction = as_tensor(prediction)
    diff = prediction.data - as_tensor(target).data
    out_data = np.asarray((diff * diff).mean(), dtype=prediction.dtype)
    if not prediction._tracked():
        return _plain(out_data)
    scale = 2.0 / max(diff.size, 1)

    def backward(g: np.ndarray) -> None:
        if prediction.requires_grad:
            prediction._accumulate(
                unbroadcast((g * scale) * diff, prediction.shape))

    return _node(out_data, (prediction,), backward)


def masked_mse_loss(prediction: Tensor, target, mask: np.ndarray) -> Tensor:
    """MSE over valid entries only; padded focused samples carry no loss."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    mask_arr = np.asarray(mask, dtype=prediction.dtype)
    diff = (prediction - target.detach()) * Tensor(mask_arr)
    denom = float(mask_arr.sum()) if mask_arr.sum() > 0 else 1.0
    return (diff * diff).sum() * (1.0 / denom)


def dropout(x: Tensor, rate: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or rate==0."""
    x = as_tensor(x)
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
    return x * Tensor(mask)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ W + b`` with ``W`` of shape (in, out).

    Fused: matmul and bias-add record a single graph node with one
    backward closure (``gx = g W^T``, ``gW = x^T g`` summed over batch
    axes, ``gb = sum(g)``), halving the node and temporary churn of the
    training loop's dominant op.  Falls back to composed ops for
    non-matrix weights.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    if weight.ndim != 2 or x.ndim == 0:
        out = x @ weight
        return out + bias if bias is not None else out
    bias_t = as_tensor(bias) if bias is not None else None

    # Batched (..., in) inputs flatten to one (N, in) GEMM: numpy's
    # stacked matmul dispatches a BLAS call per leading-axis matrix,
    # which for the model's small per-ray matrices is call-overhead
    # bound; a single large GEMM also lets the weight gradient skip the
    # per-batch (B, in, out) intermediate and its reduction.
    batch_shape = x.data.shape[:-1]
    x2d = x.data.reshape(-1, x.data.shape[-1]) if x.data.ndim > 2 else x.data
    out_data = x2d @ weight.data
    if bias_t is not None:
        out_data = out_data + bias_t.data
    if x.data.ndim > 2:
        out_data = out_data.reshape(batch_shape + (weight.data.shape[1],))
    if not x._tracked(weight, *(() if bias_t is None else (bias_t,))):
        return _plain(out_data)

    def backward(g: np.ndarray) -> None:
        g2d = g.reshape(-1, g.shape[-1]) if g.ndim > 2 else g
        if x.requires_grad:
            gx = g2d @ weight.data.T
            x._accumulate(unbroadcast(gx.reshape(g.shape[:-1] + (x.data.shape[-1],))
                                      if g.ndim > 2 else gx, x.shape))
        if weight.requires_grad:
            if x.data.ndim == 1:
                gw = np.multiply.outer(x.data, g)
            else:
                gw = x2d.T @ g2d
            weight._accumulate(unbroadcast(np.asarray(gw), weight.shape))
        if bias_t is not None and bias_t.requires_grad:
            gb = g2d.sum(axis=0) if g2d.ndim > 1 else g2d
            bias_t._accumulate(unbroadcast(gb, bias_t.shape))

    parents = (x, weight) if bias_t is None else (x, weight, bias_t)
    return _node(out_data, parents, backward)


def pad_last_axes(x: Tensor, pad: Sequence[tuple], value: float = 0.0) -> Tensor:
    """Constant-pad trailing axes; gradient flows to the unpadded region."""
    x = as_tensor(x)
    widths = [(0, 0)] * (x.ndim - len(pad)) + list(pad)
    out_data = np.pad(x.data, widths, constant_values=value)
    if not x._tracked():
        return _plain(out_data)
    slicer = tuple(slice(lo, out_data.shape[i] - hi)
                   for i, (lo, hi) in enumerate(widths))

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g[slicer])

    return _node(out_data, (x,), backward)


def gather_rows(x: Tensor, index: np.ndarray) -> Tensor:
    """Axis-0 rows of ``x`` at integer ``index`` — the packing gather.

    Fused equivalent of ``x[index]`` for integer row indices: one graph
    node whose backward is the bincount-based scatter-add (duplicate
    indices accumulate), instead of ``__getitem__``'s generic fancy-index
    node.  Under :class:`repro.nn.inference_mode` it returns a plain
    tensor — no graph, no closure — which is how the sparse fine pass
    uses it (see :mod:`repro.models.ibrnet`).
    """
    x = as_tensor(x)
    index = np.asarray(index, dtype=np.intp)
    out_data = x.data[index]
    if not x._tracked():
        return _plain(out_data)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(_scatter_add_rows(index, g, x.data.shape,
                                            x.data.dtype))

    return _node(out_data, (x,), backward)


def scatter_rows(x: Tensor, index: np.ndarray, num_rows: int) -> Tensor:
    """Scatter ``x``'s axis-0 rows into a zero tensor of ``num_rows`` rows.

    ``out[index[i]] = x[i]``; every row of the output not named by
    ``index`` is exactly ``+0.0``.  ``index`` must be unique (the packed
    fine pass scatters each valid sample to its own padded slot; with
    duplicates numpy's last-write-wins applies and the backward would
    overcount).  Gradient flows only to the scattered rows — backward is
    the plain gather ``g[index]`` — and under
    :class:`repro.nn.inference_mode` no graph is recorded, keeping the
    op autograd- and inference-clean in both modes.
    """
    x = as_tensor(x)
    index = np.asarray(index, dtype=np.intp)
    out_data = np.zeros((num_rows,) + x.data.shape[1:], dtype=x.data.dtype)
    out_data[index] = x.data
    if not x._tracked():
        return _plain(out_data)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g[index])

    return _node(out_data, (x,), backward)


def im2col(images: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Rearrange (B, C, H, W) into (B, out_h*out_w, C*k*k) patches.

    Pure-numpy strided gather used by :class:`repro.nn.layers.Conv2d`; the
    same rearrangement is how the accelerator's systolic arrays consume
    convolutions as GEMMs, so keeping it explicit documents the mapping.
    """
    batch, channels, height, width = images.shape
    if padding:
        images = np.pad(images,
                        ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    strides = images.strides
    shape = (batch, channels, out_h, out_w, kernel, kernel)
    view = np.lib.stride_tricks.as_strided(
        images,
        shape=shape,
        strides=(strides[0], strides[1],
                 strides[2] * stride, strides[3] * stride,
                 strides[2], strides[3]),
        writeable=False,
    )
    # (B, out_h, out_w, C, k, k) -> (B, out_h*out_w, C*k*k)
    cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch, out_h * out_w, channels * kernel * kernel)
    return np.ascontiguousarray(cols), out_h, out_w


def col2im(cols: np.ndarray, image_shape, kernel: int, stride: int,
           padding: int) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patches back into an image."""
    batch, channels, height, width = image_shape
    padded_h = height + 2 * padding
    padded_w = width + 2 * padding
    out_h = (padded_h - kernel) // stride + 1
    out_w = (padded_w - kernel) // stride + 1
    images = np.zeros((batch, channels, padded_h, padded_w), dtype=cols.dtype)
    cols6 = cols.reshape(batch, out_h, out_w, channels, kernel, kernel)
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            images[:, :, ky:y_max:stride, kx:x_max:stride] += (
                cols6[:, :, :, :, ky, kx].transpose(0, 3, 1, 2))
    if padding:
        images = images[:, :, padding:-padding, padding:-padding]
    return images


def grad_live_rows(g2d: np.ndarray, dense_rows: int) -> Optional[np.ndarray]:
    """Rows of ``g2d`` carrying any nonzero gradient, when compacting pays.

    The conv weight/bias gradient skips exactly-zero gradient rows when
    fewer than half of ``dense_rows`` are live; returns ``None`` when the
    dense GEMM should run unchanged.  Training gradients are sparse in
    feature-map pixels (only gathered bilinear corners receive gradient),
    so this makes the backward GEMM cost track the fetched footprint.

    Both the dense conv backward (:class:`repro.nn.layers.Conv2d`) and
    the footprint-restricted :func:`conv2d_at` apply this same rule
    against the *dense* row count — that is what keeps their weight
    gradients bit-identical: they reduce the same compacted GEMM rather
    than two differently shaped ones (OpenBLAS's reduction blocking
    depends on the row count, so dropping zero rows is not a bitwise
    no-op).
    """
    rows = np.flatnonzero(np.any(g2d != 0, axis=1))
    if rows.size * 2 < dense_rows:
        return rows
    return None


def conv2d_at(x: Tensor, gather: np.ndarray, weight: Tensor,
              bias: Optional[Tensor], dense_rows: int, pad_rows: int = 0,
              pad_rows_grad: int = 0,
              cols: Optional[np.ndarray] = None) -> Tensor:
    """Convolution restricted to a packed set of output pixels.

    ``x`` holds the *input* pixels the requested outputs depend on, one
    row per pixel, channels last (``(n_in, C)``).  ``gather`` maps each
    output pixel to its ``k*k`` input rows in ``(ky, kx)`` order, with
    the out-of-range sentinel ``n_in`` standing in for the zeros the
    full image's padding would supply — so crop borders read real
    neighbours exactly where the full conv does and zero-pad exactly
    where it does.  The patch rows this builds are bitwise the rows
    :func:`im2col` would produce at the same output positions, which is
    what makes the footprint-restricted encode byte-identical to the
    dense one (see :mod:`repro.models.footprint` for the planner and
    the kernel-regime reasoning behind ``pad_rows``/``pad_rows_grad``).

    ``cols`` short-circuits patch assembly with pre-gathered im2col rows
    (the :func:`repro.nn.layers.shared_patch_rows` cache hit); it must
    contain exactly the rows ``gather`` would build.

    The weight/bias gradient applies :func:`grad_live_rows` against
    ``dense_rows`` — the caller must guarantee ``2 * n_out <
    dense_rows`` so the dense backward would compact too; the input
    gradient replays :func:`col2im`'s per-offset accumulation order so
    skipped zero contributions are bitwise no-ops.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    bias_t = as_tensor(bias) if bias is not None else None
    gather = np.asarray(gather, dtype=np.intp)
    n_out, taps = gather.shape
    n_in, channels = x.data.shape
    if cols is None:
        ext = np.concatenate(
            [x.data, np.zeros((1, channels), dtype=x.data.dtype)])
        # (n_out, k*k, C) -> the channel-major (C, ky, kx) patch layout
        # im2col produces.
        cols = np.ascontiguousarray(
            ext[gather].transpose(0, 2, 1)).reshape(n_out, -1)
    if pad_rows:
        # Row count chosen by the planner so this GEMM runs in the same
        # BLAS kernel regime as its dense counterpart; pad contents are
        # irrelevant (rows are independent) and the rows are sliced off.
        cols_g = np.concatenate(
            [cols, np.zeros((pad_rows, cols.shape[1]), dtype=cols.dtype)])
    else:
        cols_g = cols
    out2d = cols_g @ weight.data
    if bias_t is not None:
        out2d = out2d + bias_t.data
    out_data = out2d[:n_out] if pad_rows else out2d
    if not x._tracked(weight, *(() if bias_t is None else (bias_t,))):
        return _plain(out_data)

    def backward(g: np.ndarray) -> None:
        g2d = np.ascontiguousarray(g)
        if weight.requires_grad or (bias_t is not None
                                    and bias_t.requires_grad):
            rows = grad_live_rows(g2d, dense_rows)
            if rows is None:  # unreachable under the planner's row guard
                rows = np.arange(n_out, dtype=np.intp)
            g_live = g2d[rows]
            if weight.requires_grad:
                weight._accumulate(cols[rows].T @ g_live)
            if bias_t is not None and bias_t.requires_grad:
                bias_t._accumulate(g_live.sum(axis=0))
        if x.requires_grad:
            if pad_rows_grad:
                g_pad = np.concatenate(
                    [g2d, np.zeros((pad_rows_grad, g2d.shape[1]),
                                   dtype=g2d.dtype)])
            else:
                g_pad = g2d
            gcols = g_pad @ weight.data.T
            if pad_rows_grad:
                gcols = gcols[:n_out]
            gcols3 = gcols.reshape(n_out, channels, taps)
            grad_in = np.zeros((n_in, channels), dtype=g2d.dtype)
            # Mirror col2im's accumulation order: one scatter pass per
            # kernel offset in (ky, kx) order.  Within a pass the
            # offset's output->input map is one-to-one, so fancy += is
            # exact; the full path's extra contributions are exact
            # zeros, which cannot flip bits of a +0.0-seeded
            # accumulator.
            for off in range(taps):
                target = gather[:, off]
                valid = target < n_in
                grad_in[target[valid]] += gcols3[valid, :, off]
            x._accumulate(grad_in)

    parents = (x, weight) if bias_t is None else (x, weight, bias_t)
    return _node(out_data, parents, backward)


def linear_split(xs: Sequence[Tensor], weight: Tensor,
                 bias: Optional[Tensor] = None) -> Tensor:
    """``concatenate(xs, -1) @ W + b`` without materialising the concat.

    The weight's input rows are partitioned by the inputs' trailing
    widths and each input multiplies its own slice; inputs may be
    *broadcast* along leading axes (e.g. per-ray pooled statistics fed
    next to per-view latents), in which case their partial product is
    computed once at their own shape and broadcast-added — the render
    path's aggregation MLPs skip both the (S, R, P, sum_widths) concat
    copy and the S-fold duplicate GEMMs this way.  One fused graph
    node; the backward routes ``g @ W_slice^T`` to each input
    (unbroadcast over expanded axes) and per-slice weight gradients
    ``x^T g`` (summing ``g`` over axes the input was broadcast along).

    Note: the summation order differs from the concatenated GEMM, so
    results match :func:`linear` to float tolerance, not bit-for-bit;
    grad- and inference-mode share this code path, so the two modes
    remain bit-identical to each other.
    """
    xs = [as_tensor(x) for x in xs]
    weight = as_tensor(weight)
    bias_t = as_tensor(bias) if bias is not None else None
    widths = [x.shape[-1] for x in xs]
    if sum(widths) != weight.shape[0]:
        raise ValueError(f"input widths {widths} do not partition weight "
                         f"rows {weight.shape[0]}")
    offsets = np.cumsum([0] + widths)

    out_data = None
    partials = []
    for x, start, stop in zip(xs, offsets[:-1], offsets[1:]):
        w_slice = weight.data[start:stop]
        x2d = x.data.reshape(-1, x.data.shape[-1]) if x.data.ndim > 2 \
            else x.data
        part = x2d @ w_slice
        if x.data.ndim > 2:
            part = part.reshape(x.data.shape[:-1] + (weight.data.shape[1],))
        partials.append(part)
        out_data = part if out_data is None else out_data + part
    if bias_t is not None:
        out_data = out_data + bias_t.data

    tracked = grad_enabled() and (weight.requires_grad
                                  or any(x.requires_grad for x in xs)
                                  or (bias_t is not None
                                      and bias_t.requires_grad))
    if not tracked:
        return _plain(out_data)

    def backward(g: np.ndarray) -> None:
        g2d = g.reshape(-1, g.shape[-1]) if g.ndim > 2 else g
        grad_w = None
        for x, start, stop in zip(xs, offsets[:-1], offsets[1:]):
            w_slice = weight.data[start:stop]
            if x.requires_grad:
                gx = g2d @ w_slice.T
                if g.ndim > 2:
                    gx = gx.reshape(g.shape[:-1] + (w_slice.shape[0],))
                x._accumulate(unbroadcast(gx, x.shape))
            if weight.requires_grad:
                # Sum g over axes this input was broadcast along, then
                # one (in_i, N) x (N, out) product per slice.
                extra = g.ndim - x.data.ndim
                g_for_w = g
                if extra > 0:
                    g_for_w = g.sum(axis=tuple(range(extra)))
                # Axes where x has size 1 but g doesn't:
                axes = tuple(i for i in range(x.data.ndim - 1)
                             if x.data.shape[i] == 1
                             and g_for_w.shape[i] != 1)
                if axes:
                    g_for_w = g_for_w.sum(axis=axes, keepdims=True)
                gw2d = g_for_w.reshape(-1, g.shape[-1])
                x2d = x.data.reshape(-1, x.data.shape[-1])
                if grad_w is None:
                    grad_w = np.empty_like(weight.data)
                grad_w[start:stop] = x2d.T @ gw2d
        if weight.requires_grad and grad_w is not None:
            weight._accumulate(grad_w)
        if bias_t is not None and bias_t.requires_grad:
            gb = g2d.sum(axis=0) if g2d.ndim > 1 else g2d
            bias_t._accumulate(unbroadcast(gb, bias_t.shape))

    parents = tuple(xs) + ((weight,) if bias_t is None else (weight, bias_t))
    return _node(out_data, parents, backward)
