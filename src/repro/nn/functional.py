"""Functional operations built on :class:`repro.nn.tensor.Tensor`.

These mirror the subset of ``torch.nn.functional`` that the Gen-NeRF
algorithm stack needs: activations, softmax (for the ray-transformer
baseline and IBRNet's visibility-style pooling), layer norm, masked ops
(for padded focused samples), and the MSE training loss from paper Eq. 3.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .tensor import Tensor, as_tensor, concatenate, stack, where  # noqa: F401


def relu(x: Tensor) -> Tensor:
    return as_tensor(x).relu()


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    return as_tensor(x).elu(alpha)


def sigmoid(x: Tensor) -> Tensor:
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    return as_tensor(x).tanh()


def softplus(x: Tensor) -> Tensor:
    return as_tensor(x).softplus()


def exp(x: Tensor) -> Tensor:
    return as_tensor(x).exp()


def log(x: Tensor) -> Tensor:
    return as_tensor(x).log()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def masked_softmax(x: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax that assigns zero probability where ``mask`` is False.

    Used by the ray transformer when focused sampling pads rays to
    ``N_max``: padded points must not attend or be attended to.
    """
    x = as_tensor(x)
    mask = np.asarray(mask, dtype=bool)
    neg = np.where(mask, 0.0, -1e9).astype(x.dtype)
    shifted = x + Tensor(neg)
    shifted = shifted - Tensor(shifted.data.max(axis=axis, keepdims=True))
    exps = shifted.exp() * Tensor(mask.astype(x.dtype))
    denom = exps.sum(axis=axis, keepdims=True) + 1e-12
    return exps / denom


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis."""
    x = as_tensor(x)
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normed = (x - mu) / (var + eps).sqrt()
    return normed * gamma + beta


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean-square error, paper Eq. 3 (averaged rather than summed)."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    diff = prediction - target.detach()
    return (diff * diff).mean()


def masked_mse_loss(prediction: Tensor, target, mask: np.ndarray) -> Tensor:
    """MSE over valid entries only; padded focused samples carry no loss."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    mask_arr = np.asarray(mask, dtype=prediction.dtype)
    diff = (prediction - target.detach()) * Tensor(mask_arr)
    denom = float(mask_arr.sum()) if mask_arr.sum() > 0 else 1.0
    return (diff * diff).sum() * (1.0 / denom)


def dropout(x: Tensor, rate: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or rate==0."""
    x = as_tensor(x)
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
    return x * Tensor(mask)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ W + b`` with ``W`` of shape (in, out)."""
    out = as_tensor(x) @ weight
    if bias is not None:
        out = out + bias
    return out


def pad_last_axes(x: Tensor, pad: Sequence[tuple], value: float = 0.0) -> Tensor:
    """Constant-pad trailing axes; gradient flows to the unpadded region."""
    x = as_tensor(x)
    widths = [(0, 0)] * (x.ndim - len(pad)) + list(pad)
    out_data = np.pad(x.data, widths, constant_values=value)
    slicer = tuple(slice(lo, out_data.shape[i] - hi)
                   for i, (lo, hi) in enumerate(widths))

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g[slicer])

    return x._make(out_data, (x,), backward)


def im2col(images: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Rearrange (B, C, H, W) into (B, out_h*out_w, C*k*k) patches.

    Pure-numpy strided gather used by :class:`repro.nn.layers.Conv2d`; the
    same rearrangement is how the accelerator's systolic arrays consume
    convolutions as GEMMs, so keeping it explicit documents the mapping.
    """
    batch, channels, height, width = images.shape
    if padding:
        images = np.pad(images,
                        ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    strides = images.strides
    shape = (batch, channels, out_h, out_w, kernel, kernel)
    view = np.lib.stride_tricks.as_strided(
        images,
        shape=shape,
        strides=(strides[0], strides[1],
                 strides[2] * stride, strides[3] * stride,
                 strides[2], strides[3]),
        writeable=False,
    )
    # (B, out_h, out_w, C, k, k) -> (B, out_h*out_w, C*k*k)
    cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch, out_h * out_w, channels * kernel * kernel)
    return np.ascontiguousarray(cols), out_h, out_w


def col2im(cols: np.ndarray, image_shape, kernel: int, stride: int,
           padding: int) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patches back into an image."""
    batch, channels, height, width = image_shape
    padded_h = height + 2 * padding
    padded_w = width + 2 * padding
    out_h = (padded_h - kernel) // stride + 1
    out_w = (padded_w - kernel) // stride + 1
    images = np.zeros((batch, channels, padded_h, padded_w), dtype=cols.dtype)
    cols6 = cols.reshape(batch, out_h, out_w, channels, kernel, kernel)
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            images[:, :, ky:y_max:stride, kx:x_max:stride] += (
                cols6[:, :, :, :, ky, kx].transpose(0, 3, 1, 2))
    if padding:
        images = images[:, :, padding:-padding, padding:-padding]
    return images
