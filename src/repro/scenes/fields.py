"""Analytic volumetric radiance fields — the reproduction's scene substrate.

The paper evaluates on captured datasets (LLFF, NeRF-Synthetic,
DeepVoxels) that are unavailable offline.  What Gen-NeRF's techniques
exploit is *geometry*: empty space, occlusion, and surfaces that
concentrate the rendering integrand (Sec. 2.4).  Analytic fields provide
exactly those phenomena with a queryable ground truth: every field maps
world points to a non-negative density sigma and an RGB colour, so
reference images, hitting probabilities and oracle renders are exact up
to quadrature.

All fields are duck-typed on two vectorised methods::

    density(points) -> (...,) float
    color(points, view_dirs) -> (..., 3) float in [0, 1]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


class Field:
    """Base class for analytic fields (interface + shared helpers)."""

    def density(self, points: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def color(self, points: np.ndarray, view_dirs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounds containing all non-negligible density."""
        raise NotImplementedError


def _as_points(points: np.ndarray) -> np.ndarray:
    pts = np.asarray(points, dtype=np.float64)
    if pts.shape[-1] != 3:
        raise ValueError(f"points must be (..., 3), got {pts.shape}")
    return pts


@dataclass
class GaussianBlob(Field):
    """Isotropic Gaussian density bump: a soft volumetric object."""

    center: np.ndarray
    radius: float
    peak_density: float = 20.0
    base_color: np.ndarray = field(default_factory=lambda: np.array([0.8, 0.3, 0.2]))
    view_tint: float = 0.0  # 0 = Lambertian; >0 adds view-dependent shading

    def __post_init__(self):
        self.center = np.asarray(self.center, dtype=np.float64)
        self.base_color = np.asarray(self.base_color, dtype=np.float64)

    def density(self, points: np.ndarray) -> np.ndarray:
        pts = _as_points(points)
        sq = np.sum((pts - self.center) ** 2, axis=-1)
        return self.peak_density * np.exp(-0.5 * sq / self.radius ** 2)

    def color(self, points: np.ndarray, view_dirs: np.ndarray) -> np.ndarray:
        pts = _as_points(points)
        base = np.broadcast_to(self.base_color, pts.shape).copy()
        # Cheap spatial variation so images are not flat colour patches.
        base[..., 0] *= 0.75 + 0.25 * np.cos(3.0 * pts[..., 0])
        base[..., 1] *= 0.75 + 0.25 * np.sin(2.0 * pts[..., 1])
        if self.view_tint > 0.0:
            dirs = np.asarray(view_dirs, dtype=np.float64)
            outward = pts - self.center
            norms = np.linalg.norm(outward, axis=-1, keepdims=True)
            outward = outward / np.maximum(norms, 1e-9)
            facing = np.clip(-np.sum(outward * dirs, axis=-1), 0.0, 1.0)
            base = base * (1.0 - self.view_tint) + self.view_tint * facing[..., None, ]
        return np.clip(base, 0.0, 1.0)

    def bounds(self):
        extent = 3.0 * self.radius
        return self.center - extent, self.center + extent


@dataclass
class SolidBox(Field):
    """Soft-edged axis-aligned box: a hard occluder/surface analogue."""

    center: np.ndarray
    half_extent: np.ndarray
    density_value: float = 40.0
    edge_softness: float = 0.05
    base_color: np.ndarray = field(default_factory=lambda: np.array([0.2, 0.5, 0.8]))

    def __post_init__(self):
        self.center = np.asarray(self.center, dtype=np.float64)
        self.half_extent = np.asarray(self.half_extent, dtype=np.float64)
        self.base_color = np.asarray(self.base_color, dtype=np.float64)

    def density(self, points: np.ndarray) -> np.ndarray:
        pts = _as_points(points)
        offset = np.abs(pts - self.center) - self.half_extent
        # Signed distance to the box surface (positive outside).
        outside = np.linalg.norm(np.maximum(offset, 0.0), axis=-1)
        inside = np.minimum(np.max(offset, axis=-1), 0.0)
        sdf = outside + inside
        return self.density_value / (1.0 + np.exp(sdf / self.edge_softness))

    def color(self, points: np.ndarray, view_dirs: np.ndarray) -> np.ndarray:
        pts = _as_points(points)
        base = np.broadcast_to(self.base_color, pts.shape).copy()
        checker = (np.floor(2.5 * (pts[..., 0] - self.center[0]))
                   + np.floor(2.5 * (pts[..., 2] - self.center[2]))) % 2
        base = base * (0.7 + 0.3 * checker[..., None])
        return np.clip(base, 0.0, 1.0)

    def bounds(self):
        extent = self.half_extent + 4.0 * self.edge_softness
        return self.center - extent, self.center + extent


@dataclass
class SphereShell(Field):
    """Hollow spherical shell — concentrates density on a thin surface,
    the regime where focused sampling pays the most."""

    center: np.ndarray
    radius: float
    thickness: float = 0.05
    density_value: float = 60.0
    base_color: np.ndarray = field(default_factory=lambda: np.array([0.9, 0.8, 0.2]))

    def __post_init__(self):
        self.center = np.asarray(self.center, dtype=np.float64)
        self.base_color = np.asarray(self.base_color, dtype=np.float64)

    def density(self, points: np.ndarray) -> np.ndarray:
        pts = _as_points(points)
        dist = np.linalg.norm(pts - self.center, axis=-1)
        return self.density_value * np.exp(
            -0.5 * ((dist - self.radius) / self.thickness) ** 2)

    def color(self, points: np.ndarray, view_dirs: np.ndarray) -> np.ndarray:
        pts = _as_points(points)
        base = np.broadcast_to(self.base_color, pts.shape).copy()
        lat = np.arctan2(pts[..., 1] - self.center[1],
                         np.linalg.norm(pts[..., [0, 2]] - self.center[[0, 2]],
                                        axis=-1) + 1e-9)
        base = base * (0.7 + 0.3 * np.cos(4.0 * lat)[..., None])
        return np.clip(base, 0.0, 1.0)

    def bounds(self):
        extent = self.radius + 4.0 * self.thickness
        return self.center - extent, self.center + extent


@dataclass
class GroundPlane(Field):
    """Soft horizontal slab, giving LLFF-style scenes a floor."""

    height: float = 1.2
    thickness: float = 0.08
    density_value: float = 30.0
    base_color: np.ndarray = field(default_factory=lambda: np.array([0.45, 0.4, 0.35]))
    extent: float = 8.0

    def __post_init__(self):
        self.base_color = np.asarray(self.base_color, dtype=np.float64)

    def density(self, points: np.ndarray) -> np.ndarray:
        pts = _as_points(points)
        vertical = np.exp(-0.5 * ((pts[..., 1] - self.height) / self.thickness) ** 2)
        lateral = ((np.abs(pts[..., 0]) < self.extent)
                   & (np.abs(pts[..., 2]) < self.extent))
        return self.density_value * vertical * lateral

    def color(self, points: np.ndarray, view_dirs: np.ndarray) -> np.ndarray:
        pts = _as_points(points)
        base = np.broadcast_to(self.base_color, pts.shape).copy()
        checker = (np.floor(pts[..., 0]) + np.floor(pts[..., 2])) % 2
        base = base * (0.8 + 0.2 * checker[..., None])
        return np.clip(base, 0.0, 1.0)

    def bounds(self):
        lo = np.array([-self.extent, self.height - 4 * self.thickness, -self.extent])
        hi = np.array([self.extent, self.height + 4 * self.thickness, self.extent])
        return lo, hi


@dataclass
class CompositeField(Field):
    """Sum of component densities with density-weighted colour blending.

    This is the physically consistent way to superpose emissive volumes:
    sigma = sum sigma_i, c = sum sigma_i c_i / sigma.
    """

    components: Sequence[Field]

    def density(self, points: np.ndarray) -> np.ndarray:
        pts = _as_points(points)
        total = np.zeros(pts.shape[:-1], dtype=np.float64)
        for component in self.components:
            total += component.density(pts)
        return total

    def color(self, points: np.ndarray, view_dirs: np.ndarray) -> np.ndarray:
        pts = _as_points(points)
        weighted = np.zeros(pts.shape[:-1] + (3,), dtype=np.float64)
        total = np.zeros(pts.shape[:-1], dtype=np.float64)
        for component in self.components:
            sigma = component.density(pts)
            weighted += sigma[..., None] * component.color(pts, view_dirs)
            total += sigma
        safe = np.maximum(total, 1e-9)
        blended = weighted / safe[..., None]
        # Where there is no density the colour is irrelevant; keep it
        # finite and mid-grey for numerical hygiene.
        return np.where(total[..., None] > 1e-9, blended, 0.5)

    def bounds(self):
        los, his = zip(*(c.bounds() for c in self.components))
        return np.min(los, axis=0), np.max(his, axis=0)


def empty_space_fraction(field: Field, rng: np.random.Generator,
                         num_samples: int = 4096,
                         threshold: float = 0.5) -> float:
    """Monte-Carlo estimate of the fraction of the bounding volume with
    density below ``threshold`` — the sparsity Gen-NeRF exploits."""
    lo, hi = field.bounds()
    pts = rng.uniform(lo, hi, size=(num_samples, 3))
    return float(np.mean(field.density(pts) < threshold))
