"""Reference renderer: dense ray marching of analytic fields.

Produces the "ground truth" of the reproduction — the paper's datasets
ship photographs; ours ship analytic fields, and this renderer converts
them to images by evaluating the volume-rendering quadrature (paper
Eq. 2) with a dense stratified sampling whose error is negligible
relative to the methods under study.

The compositing function here is pure numpy (no autograd) and is also
reused by the oracle evaluators; the differentiable twin used in
training lives in :mod:`repro.models.volume_rendering`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..geometry.camera import Camera
from ..geometry.rays import (RayBundle, image_shape_for_step, rays_for_image,
                             stratified_depths)
from .fields import Field


def composite_numpy(sigmas: np.ndarray, colors: np.ndarray,
                    depths: np.ndarray, far: float,
                    white_background: bool = False,
                    max_delta: Optional[float] = None
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Numerical quadrature of the volume rendering integral (Eq. 2).

    Parameters
    ----------
    sigmas:  (R, P) densities at sample points, sorted by depth.
    colors:  (R, P, 3) colours at sample points.
    depths:  (R, P) sample depths t_k.
    far:     scene far bound, closing the last interval.
    max_delta: optional cap on interval widths.  Sparse focused sampling
        (paper Sec. 3.2) leaves large unsampled gaps in regions the
        coarse pass classified as empty/occluded; capping each sample's
        interval at the coarse bin width makes those gaps contribute
        nothing — the sparse sampler's working assumption — instead of
        multiplying a tail density by a huge interval.

    Returns
    -------
    pixel_colors: (R, 3)
    weights:      (R, P) hitting probabilities w_k = T_k (1 - e^{-s d}).
    transmittance:(R, P) accumulated transmittance T_k.
    """
    sigmas = np.asarray(sigmas, dtype=np.float64)
    colors = np.asarray(colors, dtype=np.float64)
    depths = np.asarray(depths, dtype=np.float64)

    deltas = np.diff(depths, axis=-1)
    last = np.maximum(far - depths[..., -1:], 1e-6)
    deltas = np.concatenate([deltas, last], axis=-1)
    if max_delta is not None:
        deltas = np.minimum(deltas, max_delta)

    alpha = 1.0 - np.exp(-np.maximum(sigmas, 0.0) * deltas)
    # T_k = prod_{j<k} (1 - alpha_j); exclusive cumulative product.
    one_minus = np.clip(1.0 - alpha, 1e-12, 1.0)
    transmittance = np.cumprod(one_minus, axis=-1)
    transmittance = np.concatenate(
        [np.ones_like(transmittance[..., :1]), transmittance[..., :-1]],
        axis=-1)
    weights = transmittance * alpha
    pixel = np.sum(weights[..., None] * colors, axis=-2)
    if white_background:
        residual = 1.0 - weights.sum(axis=-1, keepdims=True)
        pixel = pixel + residual
    return pixel, weights, transmittance


def field_sigma_color(field: Field, bundle: RayBundle,
                      depths: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Query density and colour of ``field`` at per-ray sample depths."""
    points = bundle.points_at(depths)
    dirs = np.broadcast_to(bundle.directions[:, None, :], points.shape)
    sigmas = field.density(points)
    colors = field.color(points, dirs)
    return sigmas, colors


def render_rays(field: Field, bundle: RayBundle, num_points: int,
                rng: Optional[np.random.Generator] = None,
                white_background: bool = False) -> np.ndarray:
    """Render a ray bundle against the analytic field.

    Deterministic (bin-centre) stratification when ``rng`` is None, so
    reference images are reproducible bit-for-bit.
    """
    gen = rng or np.random.default_rng(0)
    depths = stratified_depths(gen, len(bundle), num_points, bundle.near,
                               bundle.far, jitter=rng is not None)
    sigmas, colors = field_sigma_color(field, bundle, depths)
    pixel, _, _ = composite_numpy(sigmas, colors, depths, bundle.far,
                                  white_background)
    return pixel


def render_image(field: Field, camera: Camera, near: float, far: float,
                 num_points: int = 192, step: int = 1,
                 white_background: bool = False,
                 chunk: int = 4096) -> np.ndarray:
    """Render a full (possibly strided) image; returns (rows, cols, 3).

    ``chunk`` bounds peak memory: rays are marched in groups so a
    1008x756 reference render does not materialise a giant tensor.
    """
    bundle = rays_for_image(camera, near, far, step=step)
    rows, cols = image_shape_for_step(camera, step)
    pixels = np.zeros((len(bundle), 3), dtype=np.float64)
    for start in range(0, len(bundle), chunk):
        part = bundle.select(slice(start, start + chunk))
        pixels[start:start + chunk] = render_rays(
            field, part, num_points, white_background=white_background)
    return pixels.reshape(rows, cols, 3)


def hitting_weights(field: Field, bundle: RayBundle,
                    depths: np.ndarray) -> np.ndarray:
    """Exact hitting probabilities w_k for given sample depths.

    This is the quantity the coarse pass estimates (paper Step 2 of the
    coarse-then-focus pipeline); tests compare the estimate against it.
    """
    sigmas, colors = field_sigma_color(field, bundle, depths)
    _, weights, _ = composite_numpy(sigmas, colors, depths, bundle.far)
    return weights
