"""Seeded procedural scene generation for the three dataset families.

Each generator arranges analytic fields into layouts whose statistics
match what the paper's datasets stress:

* **LLFF-like** — forward-facing clutter at mixed depths with occlusion
  (the "fern/fortress/horns/trex" regime); the named scene analogues
  used in Tables 2–3 come from fixed seeds with distinct layout traits.
* **NeRF-Synthetic-like** — a compact object assembly at the origin with
  lots of empty space around it, viewed from an inward orbit.
* **DeepVoxels-like** — a single, simple Lambertian object.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .fields import (CompositeField, Field, GaussianBlob, GroundPlane,
                     SolidBox, SphereShell)

# Distinct layout fingerprints for the four LLFF scene analogues used in
# the paper's Tables 2-3.  Each tuple: (#blobs, #boxes, #shells, clutter
# spread, has_ground).  Chosen so "fortress" (a simple solid object) is
# the easiest and "fern"/"trex" (thin cluttered structure) the hardest,
# mirroring the ordering of the paper's per-scene PSNR columns.
LLFF_SCENE_TRAITS: Dict[str, tuple] = {
    "fern": (7, 0, 2, 1.6, True),
    "fortress": (1, 2, 0, 0.7, True),
    "horns": (3, 1, 2, 1.2, True),
    "trex": (6, 1, 1, 1.5, True),
}


def _random_color(rng: np.random.Generator) -> np.ndarray:
    color = rng.uniform(0.2, 0.95, size=3)
    color[rng.integers(0, 3)] = rng.uniform(0.7, 1.0)
    return color


def _random_blob(rng: np.random.Generator, center_region: float,
                 depth_offset: float = 0.0, view_tint: float = 0.15
                 ) -> GaussianBlob:
    center = rng.uniform(-center_region, center_region, size=3)
    center[2] += depth_offset
    return GaussianBlob(center=center,
                        radius=rng.uniform(0.12, 0.4),
                        peak_density=rng.uniform(15.0, 45.0),
                        base_color=_random_color(rng),
                        view_tint=view_tint)


def _random_box(rng: np.random.Generator, center_region: float,
                depth_offset: float = 0.0) -> SolidBox:
    center = rng.uniform(-center_region, center_region, size=3)
    center[2] += depth_offset
    return SolidBox(center=center,
                    half_extent=rng.uniform(0.15, 0.45, size=3),
                    density_value=rng.uniform(30.0, 60.0),
                    base_color=_random_color(rng))


def _random_shell(rng: np.random.Generator, center_region: float,
                  depth_offset: float = 0.0) -> SphereShell:
    center = rng.uniform(-center_region, center_region, size=3)
    center[2] += depth_offset
    return SphereShell(center=center,
                       radius=rng.uniform(0.2, 0.5),
                       thickness=rng.uniform(0.03, 0.08),
                       density_value=rng.uniform(40.0, 80.0),
                       base_color=_random_color(rng))


def llff_like_field(seed: int, scene_name: str = "fern") -> Field:
    """Forward-facing cluttered scene analogue of an LLFF capture."""
    if scene_name not in LLFF_SCENE_TRAITS:
        raise KeyError(f"unknown LLFF scene analogue {scene_name!r}; "
                       f"choose from {sorted(LLFF_SCENE_TRAITS)}")
    blobs, boxes, shells, spread, ground = LLFF_SCENE_TRAITS[scene_name]
    # zlib.crc32, not hash(): str hashing is salted per process
    # (PYTHONHASHSEED), which made every LLFF-analogue scene — and the
    # committed fig9/table2/table3 results built on them — change from
    # run to run.
    name_code = zlib.crc32(scene_name.encode("utf-8")) % 65536
    rng = np.random.default_rng(seed * 7919 + name_code)
    components: List[Field] = []
    for _ in range(blobs):
        components.append(_random_blob(rng, spread, view_tint=0.2))
    for _ in range(boxes):
        components.append(_random_box(rng, spread * 0.8))
    for _ in range(shells):
        components.append(_random_shell(rng, spread * 0.9))
    if ground:
        components.append(GroundPlane(height=1.1, extent=4.0))
    return CompositeField(components)


def nerf_synthetic_like_field(seed: int) -> Field:
    """Compact object assembly at the origin, mostly empty space."""
    rng = np.random.default_rng(seed * 104729 + 17)
    components: List[Field] = []
    count = int(rng.integers(3, 6))
    for _ in range(count):
        kind = rng.integers(0, 3)
        if kind == 0:
            components.append(_random_blob(rng, 0.5, view_tint=0.25))
        elif kind == 1:
            components.append(_random_box(rng, 0.45))
        else:
            components.append(_random_shell(rng, 0.4))
    return CompositeField(components)


def deepvoxels_like_field(seed: int) -> Field:
    """Single Lambertian object (the paper's DeepVoxels split uses four
    Lambertian objects; one simple solid per seed)."""
    rng = np.random.default_rng(seed * 65537 + 3)
    kind = int(rng.integers(0, 2))
    if kind == 0:
        return CompositeField([SolidBox(center=np.zeros(3),
                                        half_extent=rng.uniform(0.3, 0.5, 3),
                                        base_color=_random_color(rng))])
    return CompositeField([SphereShell(center=np.zeros(3),
                                       radius=rng.uniform(0.35, 0.55),
                                       thickness=0.06,
                                       base_color=_random_color(rng))])
