"""Seeded procedural scene generation for the three dataset families.

Each generator arranges analytic fields into layouts whose statistics
match what the paper's datasets stress:

* **LLFF-like** — forward-facing clutter at mixed depths with occlusion
  (the "fern/fortress/horns/trex" regime); the named scene analogues
  used in Tables 2–3 come from fixed seeds with distinct layout traits.
* **NeRF-Synthetic-like** — a compact object assembly at the origin with
  lots of empty space around it, viewed from an inward orbit.
* **DeepVoxels-like** — a single, simple Lambertian object.

Two additional families exist to spread per-ray *sample occupancy*
(valid focused samples / ``n_max``) across the 10–90 % range instead of
pinning at saturation like the LLFF analogues do — the evidence base for
the sparse fine pass (see ``occupancy_profile`` in the registry):

* **Thicket** — high depth complexity: a forward-facing stack of thin
  shells and slats at staggered depths, so most rays cross many distinct
  density transitions and occupancy runs high (but sub-saturated).
* **Orbit-sparse** — the opposite regime: a handful of small, well
  separated blobs in a mostly empty orbit volume, so the bulk of rays
  hit nothing and the sampler's redistributed budget concentrates on the
  few occupied rays.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .fields import (CompositeField, Field, GaussianBlob, GroundPlane,
                     SolidBox, SphereShell)

# Distinct layout fingerprints for the four LLFF scene analogues used in
# the paper's Tables 2-3.  Each tuple: (#blobs, #boxes, #shells, clutter
# spread, has_ground).  Chosen so "fortress" (a simple solid object) is
# the easiest and "fern"/"trex" (thin cluttered structure) the hardest,
# mirroring the ordering of the paper's per-scene PSNR columns.
LLFF_SCENE_TRAITS: Dict[str, tuple] = {
    "fern": (7, 0, 2, 1.6, True),
    "fortress": (1, 2, 0, 0.7, True),
    "horns": (3, 1, 2, 1.2, True),
    "trex": (6, 1, 1, 1.5, True),
}


def _random_color(rng: np.random.Generator) -> np.ndarray:
    color = rng.uniform(0.2, 0.95, size=3)
    color[rng.integers(0, 3)] = rng.uniform(0.7, 1.0)
    return color


def _random_blob(rng: np.random.Generator, center_region: float,
                 depth_offset: float = 0.0, view_tint: float = 0.15
                 ) -> GaussianBlob:
    center = rng.uniform(-center_region, center_region, size=3)
    center[2] += depth_offset
    return GaussianBlob(center=center,
                        radius=rng.uniform(0.12, 0.4),
                        peak_density=rng.uniform(15.0, 45.0),
                        base_color=_random_color(rng),
                        view_tint=view_tint)


def _random_box(rng: np.random.Generator, center_region: float,
                depth_offset: float = 0.0) -> SolidBox:
    center = rng.uniform(-center_region, center_region, size=3)
    center[2] += depth_offset
    return SolidBox(center=center,
                    half_extent=rng.uniform(0.15, 0.45, size=3),
                    density_value=rng.uniform(30.0, 60.0),
                    base_color=_random_color(rng))


def _random_shell(rng: np.random.Generator, center_region: float,
                  depth_offset: float = 0.0) -> SphereShell:
    center = rng.uniform(-center_region, center_region, size=3)
    center[2] += depth_offset
    return SphereShell(center=center,
                       radius=rng.uniform(0.2, 0.5),
                       thickness=rng.uniform(0.03, 0.08),
                       density_value=rng.uniform(40.0, 80.0),
                       base_color=_random_color(rng))


def llff_like_field(seed: int, scene_name: str = "fern") -> Field:
    """Forward-facing cluttered scene analogue of an LLFF capture."""
    if scene_name not in LLFF_SCENE_TRAITS:
        raise KeyError(f"unknown LLFF scene analogue {scene_name!r}; "
                       f"choose from {sorted(LLFF_SCENE_TRAITS)}")
    blobs, boxes, shells, spread, ground = LLFF_SCENE_TRAITS[scene_name]
    # zlib.crc32, not hash(): str hashing is salted per process
    # (PYTHONHASHSEED), which made every LLFF-analogue scene — and the
    # committed fig9/table2/table3 results built on them — change from
    # run to run.
    name_code = zlib.crc32(scene_name.encode("utf-8")) % 65536
    rng = np.random.default_rng(seed * 7919 + name_code)
    components: List[Field] = []
    for _ in range(blobs):
        components.append(_random_blob(rng, spread, view_tint=0.2))
    for _ in range(boxes):
        components.append(_random_box(rng, spread * 0.8))
    for _ in range(shells):
        components.append(_random_shell(rng, spread * 0.9))
    if ground:
        components.append(GroundPlane(height=1.1, extent=4.0))
    return CompositeField(components)


def nerf_synthetic_like_field(seed: int) -> Field:
    """Compact object assembly at the origin, mostly empty space."""
    rng = np.random.default_rng(seed * 104729 + 17)
    components: List[Field] = []
    count = int(rng.integers(3, 6))
    for _ in range(count):
        kind = rng.integers(0, 3)
        if kind == 0:
            components.append(_random_blob(rng, 0.5, view_tint=0.25))
        elif kind == 1:
            components.append(_random_box(rng, 0.45))
        else:
            components.append(_random_shell(rng, 0.4))
    return CompositeField(components)


def thicket_like_field(seed: int) -> Field:
    """High-depth-complexity forward scene: layered thin structure.

    Several depth layers of thin shells and thin slab-like boxes, each
    laterally jittered, so a typical camera ray threads multiple
    partially transmissive surfaces — many coarse bins clear the
    critical threshold per ray, which keeps per-ray occupancy high
    without the uniform saturation of the LLFF clutter."""
    rng = np.random.default_rng(seed * 15485863 + 101)
    components: List[Field] = []
    layers = int(rng.integers(6, 9))
    for layer in range(layers):
        # Stagger layers front-to-back through the forward rig's view
        # volume; lateral jitter keeps silhouettes from aligning.
        depth = -1.3 + 3.2 * layer / max(layers - 1, 1)
        for _ in range(int(rng.integers(2, 4))):
            center = rng.uniform(-1.1, 1.1, size=3)
            center[2] = depth + rng.uniform(-0.15, 0.15)
            if rng.integers(0, 2) == 0:
                components.append(SphereShell(
                    center=center,
                    radius=rng.uniform(0.25, 0.5),
                    thickness=rng.uniform(0.02, 0.05),
                    density_value=rng.uniform(20.0, 40.0),
                    base_color=_random_color(rng)))
            else:
                half = np.array([rng.uniform(0.25, 0.6),
                                 rng.uniform(0.25, 0.6),
                                 rng.uniform(0.02, 0.06)])
                components.append(SolidBox(
                    center=center, half_extent=half,
                    density_value=rng.uniform(15.0, 35.0),
                    base_color=_random_color(rng)))
    return CompositeField(components)


def orbit_sparse_like_field(seed: int) -> Field:
    """Empty-space-heavy orbit scene: a few small, separated blobs.

    Most rays from the orbit rig cross nothing but empty space, so they
    have no critical coarse points and the focused-sample budget
    concentrates on the minority that hit — the low-occupancy regime
    where the packed fine pass pays most."""
    rng = np.random.default_rng(seed * 32452843 + 7)
    components: List[Field] = []
    count = int(rng.integers(2, 4))
    # Rejection-free spread: park each blob in its own octant-ish cell
    # so small radii cannot merge into one compact assembly.
    directions = rng.permutation(np.array([
        [1.0, 1.0, 1.0], [-1.0, -1.0, 1.0], [1.0, -1.0, -1.0],
        [-1.0, 1.0, -1.0]]))[:count]
    for direction in directions:
        center = direction / np.linalg.norm(direction) \
            * rng.uniform(0.55, 0.85)
        components.append(GaussianBlob(
            center=center + rng.uniform(-0.1, 0.1, size=3),
            radius=rng.uniform(0.1, 0.18),
            peak_density=rng.uniform(35.0, 60.0),
            base_color=_random_color(rng),
            view_tint=0.2))
    return CompositeField(components)


def deepvoxels_like_field(seed: int) -> Field:
    """Single Lambertian object (the paper's DeepVoxels split uses four
    Lambertian objects; one simple solid per seed)."""
    rng = np.random.default_rng(seed * 65537 + 3)
    kind = int(rng.integers(0, 2))
    if kind == 0:
        return CompositeField([SolidBox(center=np.zeros(3),
                                        half_extent=rng.uniform(0.3, 0.5, 3),
                                        base_color=_random_color(rng))])
    return CompositeField([SphereShell(center=np.zeros(3),
                                       radius=rng.uniform(0.35, 0.55),
                                       thickness=0.06,
                                       base_color=_random_color(rng))])
