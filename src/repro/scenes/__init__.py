"""``repro.scenes`` — procedural volumetric scenes and reference rendering.

Offline substitute for the paper's datasets (LLFF, NeRF-Synthetic,
DeepVoxels): analytic density/colour fields arranged by seeded
generators, camera rigs matching each dataset family, and a dense
ray-marching reference renderer (see DESIGN.md, substitution table).
"""

from .datasets import DATASETS, DatasetSpec, Scene, llff_eval_scenes, make_scene
from .fields import (CompositeField, Field, GaussianBlob, GroundPlane,
                     SolidBox, SphereShell, empty_space_fraction)
from .generator import (LLFF_SCENE_TRAITS, deepvoxels_like_field,
                        llff_like_field, nerf_synthetic_like_field,
                        orbit_sparse_like_field, thicket_like_field)
from .render_gt import (composite_numpy, field_sigma_color, hitting_weights,
                        render_image, render_rays)

__all__ = [
    "Field", "GaussianBlob", "SolidBox", "SphereShell", "GroundPlane",
    "CompositeField", "empty_space_fraction",
    "llff_like_field", "nerf_synthetic_like_field", "deepvoxels_like_field",
    "thicket_like_field", "orbit_sparse_like_field",
    "LLFF_SCENE_TRAITS",
    "DATASETS", "DatasetSpec", "Scene", "make_scene", "llff_eval_scenes",
    "composite_numpy", "render_rays", "render_image", "field_sigma_color",
    "hitting_weights",
]
