"""Dataset families matching the paper's evaluation splits.

Three families mirror the paper's Table/Figure axes:

============  ==========  ===================  =====================
Family        Resolution  Rig                  Analogue of
============  ==========  ===================  =====================
llff          1008 x 756  forward-facing grid  LLFF real scenes
nerf_syn       800 x 800  inward orbit         NeRF-Synthetic objects
deepvoxels     512 x 512  inward orbit         DeepVoxels Lambertian
thicket        640 x 480  forward-facing grid  (occupancy stress, high)
orbit_sparse   512 x 512  inward orbit         (occupancy stress, low)
============  ==========  ===================  =====================

The last two are not paper splits: they are seeded occupancy-stress
families (see :mod:`repro.scenes.generator`) whose per-ray valid-sample
occupancy spans the 10–90 % range the sparse fine pass is benchmarked
over; the ``occupancy_profile`` registry experiment records the
histograms.

``image_scale`` shrinks resolution for tractable numpy runs (tests use
1/8 or 1/16 scale); the *hardware* experiments always use the paper's
full resolutions, since the cycle simulator does not march rays.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..geometry.camera import Camera, Intrinsics
from ..geometry.transforms import (camera_at, forward_facing_cameras,
                                   orbit_cameras)
from .fields import Field
from .generator import (deepvoxels_like_field, llff_like_field,
                        nerf_synthetic_like_field, orbit_sparse_like_field,
                        thicket_like_field)


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a dataset family."""

    name: str
    width: int
    height: int
    fov_x_deg: float
    near: float
    far: float
    rig: str                      # "forward" or "orbit"
    rig_distance: float
    white_background: bool = False

    @property
    def resolution(self) -> tuple:
        return (self.height, self.width)

    def intrinsics(self, image_scale: float = 1.0) -> Intrinsics:
        width = max(4, int(round(self.width * image_scale)))
        height = max(4, int(round(self.height * image_scale)))
        return Intrinsics.from_fov(width, height, self.fov_x_deg)


DATASETS: Dict[str, DatasetSpec] = {
    "llff": DatasetSpec("llff", width=1008, height=756, fov_x_deg=60.0,
                        near=2.0, far=7.0, rig="forward", rig_distance=4.0),
    "nerf_synthetic": DatasetSpec("nerf_synthetic", width=800, height=800,
                                  fov_x_deg=50.0, near=2.0, far=6.0,
                                  rig="orbit", rig_distance=4.0,
                                  white_background=True),
    "deepvoxels": DatasetSpec("deepvoxels", width=512, height=512,
                              fov_x_deg=45.0, near=2.5, far=5.5,
                              rig="orbit", rig_distance=4.0,
                              white_background=True),
    "thicket": DatasetSpec("thicket", width=640, height=480,
                           fov_x_deg=55.0, near=2.0, far=8.0,
                           rig="forward", rig_distance=4.0),
    "orbit_sparse": DatasetSpec("orbit_sparse", width=512, height=512,
                                fov_x_deg=50.0, near=2.0, far=6.0,
                                rig="orbit", rig_distance=4.0,
                                white_background=True),
}


@dataclass
class Scene:
    """A fully specified scene: field + source rig + held-out target view."""

    name: str
    spec: DatasetSpec
    field: Field
    source_cameras: List[Camera]
    target_camera: Camera
    near: float
    far: float

    @property
    def num_source_views(self) -> int:
        return len(self.source_cameras)

    def closest_source_indices(self, count: int) -> np.ndarray:
        """Indices of the sources whose viewing directions are closest to
        the target's — the coarse pass conditions on these (Sec. 3.2)."""
        target_dir = self.target_camera.forward
        sims = [float(np.dot(cam.forward, target_dir))
                for cam in self.source_cameras]
        order = np.argsort(sims)[::-1]
        return order[:count]

    def subset_sources(self, count: int) -> List[Camera]:
        indices = self.closest_source_indices(count)
        return [self.source_cameras[i] for i in indices]


def _build_field(family: str, seed: int, scene_name: Optional[str]) -> Field:
    if family == "llff":
        return llff_like_field(seed, scene_name or "fern")
    if family == "nerf_synthetic":
        return nerf_synthetic_like_field(seed)
    if family == "deepvoxels":
        return deepvoxels_like_field(seed)
    if family == "thicket":
        return thicket_like_field(seed)
    if family == "orbit_sparse":
        return orbit_sparse_like_field(seed)
    raise KeyError(f"unknown dataset family {family!r}; "
                   f"choose from {sorted(DATASETS)}")


def make_scene(family: str = "llff", seed: int = 0,
               scene_name: Optional[str] = None,
               num_source_views: int = 10,
               image_scale: float = 1.0) -> Scene:
    """Construct a reproducible scene from a dataset family.

    The target camera is an extra pose excluded from the source rig,
    perturbed so novel-view synthesis is a genuine extrapolation.
    """
    spec = DATASETS[family]
    intr = spec.intrinsics(image_scale)
    rng = np.random.default_rng(seed * 2654435761 % (2 ** 31))
    field = _build_field(family, seed, scene_name)

    if spec.rig == "forward":
        sources = forward_facing_cameras(intr, distance=spec.rig_distance,
                                         count=num_source_views, spread=0.55,
                                         jitter_rng=rng)
        eye = np.array([rng.uniform(-0.3, 0.3), rng.uniform(-0.2, 0.2),
                        -spec.rig_distance * rng.uniform(0.95, 1.05)])
        target = camera_at(eye, np.zeros(3), intr)
    else:
        sources = orbit_cameras(intr, radius=spec.rig_distance,
                                count=num_source_views,
                                elevation_deg=rng.uniform(15, 30))
        azimuth = rng.uniform(0, 2 * np.pi)
        elevation = np.radians(rng.uniform(15, 30))
        eye = spec.rig_distance * np.array([
            np.cos(elevation) * np.cos(azimuth),
            -np.sin(elevation),
            np.cos(elevation) * np.sin(azimuth)])
        target = camera_at(eye, np.zeros(3), intr)

    name = f"{family}/{scene_name or seed}"
    return Scene(name=name, spec=spec, field=field, source_cameras=sources,
                 target_camera=target, near=spec.near, far=spec.far)


def llff_eval_scenes(image_scale: float, num_source_views: int = 10,
                     seed: int = 1):
    """The four LLFF scene analogues used by the paper's Tables 2-3."""
    return {name: make_scene("llff", seed=seed, scene_name=name,
                             num_source_views=num_source_views,
                             image_scale=image_scale)
            for name in ("fern", "fortress", "horns", "trex")}
