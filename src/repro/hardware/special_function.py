"""Special function unit: exponentials and colour accumulation (Eq. 2).

A PE line (paper Fig. 7) evaluates ``exp`` for the transmittance terms
and accumulates weighted colours along each ray.  Throughput-limited,
never the bottleneck in practice — but modelled so the pipeline balance
and Table 1 power split are grounded.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SfuConfig:
    lanes: int = 16
    exp_cycles: int = 4          # pipelined exp approximation latency
    ops_per_point: int = 2       # exp(-sigma*delta) and the T_k update
    accumulate_ops_per_point: int = 4  # 3 colour MACs + weight update


class SpecialFunctionUnit:
    """Cycle model of the SFU PE line."""

    def __init__(self, config: SfuConfig = SfuConfig()):
        self.config = config

    def cycles_for_points(self, num_points: float) -> float:
        """Cycles to composite ``num_points`` samples (Eq. 2 terms).

        The lanes are pipelined, so steady-state throughput is
        ``lanes`` points per cycle for each op class, plus a fill.
        """
        per_class = (self.config.ops_per_point
                     + self.config.accumulate_ops_per_point)
        steady = num_points * per_class / self.config.lanes
        return steady + self.config.exp_cycles

    def ops_for_points(self, num_points: float) -> float:
        return num_points * (self.config.ops_per_point
                             + self.config.accumulate_ops_per_point)
