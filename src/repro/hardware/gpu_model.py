"""GPU baseline performance models (RTX 2080Ti, Jetson TX2).

The paper measures real GPUs (Figs. 2, 10, 11; Table 4).  Offline we
substitute roofline-style analytic models with per-kernel-class
efficiencies, calibrated once against the paper's published anchors:

* Sec. 2.3 — the vanilla model (196 pts, 10 views) reaches at most
  0.249 FPS on the 2080Ti (its best dataset, DeepVoxels 512x512);
* Sec. 2.3 — the ray transformer takes 44.1% of DNN time at 13.8% of
  DNN FLOPs on LLFF (attention runs at poor GPU efficiency);
* Table 4 — the 2080Ti runs the delivered Gen-NeRF algorithm at
  ~0.096 FPS (feature gathering and tiny pruned GEMMs keep GPUs slow
  even at 27x fewer FLOPs).

Phases modelled per frame:
``gather`` (scene-feature acquisition: per point-view vector gathers at
non-coalesced-access cost), ``mlp`` (dense GEMMs, efficiency degrading
with layer width), ``ray_module`` (attention at low efficiency; mixer as
small GEMMs), ``sampling`` (inverse-CDF + compaction for coarse-focus,
poorly parallel), ``others`` (projection, compositing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..models.workload import RenderWorkload


@dataclass(frozen=True)
class GpuSpec:
    """Device peak numbers (paper Table 4) plus calibrated efficiencies."""

    name: str
    peak_flops: float                 # usable peak for FP16/FP32 mix
    memory_bandwidth: float           # bytes/s
    sram_bytes: int
    area_mm2: float
    technology_nm: int
    typical_power_w: float
    gather_ns_per_point_view: float   # non-coalesced feature gather cost
    gather_divergence: float          # extra cost under non-uniform sampling
    mlp_efficiency_wide: float        # GEMM efficiency at paper-scale widths
    mlp_efficiency_narrow: float      # after 75% channel pruning
    attention_efficiency: float
    sampling_ns_per_point: float      # inverse-CDF + compaction, divergent
    others_efficiency: float

    def mlp_efficiency(self, prune_scale: float) -> float:
        """GEMM efficiency vs layer width.

        GPU GEMM efficiency collapses super-linearly as layers narrow
        (tiles no longer fill SMs, launch overhead dominates), so the
        interpolation is quadratic in the width scale.
        """
        if prune_scale >= 1.0:
            return self.mlp_efficiency_wide
        blend = prune_scale * prune_scale
        return self.mlp_efficiency_narrow + (
            self.mlp_efficiency_wide - self.mlp_efficiency_narrow) * blend


RTX_2080TI = GpuSpec(
    name="NVIDIA RTX 2080Ti",
    peak_flops=13.45e12,
    memory_bandwidth=616e9,
    sram_bytes=int(29.5 * 1024 * 1024),
    area_mm2=754.0,
    technology_nm=12,
    typical_power_w=250.0,
    gather_ns_per_point_view=4.0,
    gather_divergence=4.0,
    mlp_efficiency_wide=0.30,
    mlp_efficiency_narrow=0.015,
    attention_efficiency=0.017,
    sampling_ns_per_point=25.0,
    others_efficiency=0.05,
)

JETSON_TX2 = GpuSpec(
    name="NVIDIA Jetson TX2",
    peak_flops=0.665e12,
    memory_bandwidth=25.6e9,
    sram_bytes=int(2.5 * 1024 * 1024),
    area_mm2=350.0,
    technology_nm=16,
    typical_power_w=10.0,
    gather_ns_per_point_view=110.0,
    gather_divergence=3.0,
    mlp_efficiency_wide=0.22,
    mlp_efficiency_narrow=0.010,
    attention_efficiency=0.011,
    sampling_ns_per_point=700.0,
    others_efficiency=0.04,
)


@dataclass
class GpuSimulation:
    """Per-frame latency breakdown on a GPU baseline."""

    device: str
    phase_seconds: Dict[str, float]

    @property
    def total_time_s(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def fps(self) -> float:
        return 0.0 if self.total_time_s <= 0 else 1.0 / self.total_time_s

    def fraction(self, phase: str) -> float:
        total = self.total_time_s
        return 0.0 if total <= 0 else self.phase_seconds[phase] / total

    def dnn_attention_fraction(self) -> float:
        """Ray-module share of DNN (mlp + ray module) time — the paper's
        44.1% observation (Sec. 2.3)."""
        dnn = self.phase_seconds["mlp"] + self.phase_seconds["ray_module"]
        return 0.0 if dnn <= 0 else self.phase_seconds["ray_module"] / dnn


class GpuModel:
    """Analytic per-frame execution model for one GPU."""

    def __init__(self, spec: GpuSpec):
        self.spec = spec

    def simulate_frame(self, workload: RenderWorkload) -> GpuSimulation:
        spec = self.spec
        pixels = workload.num_pixels

        # Feature acquisition: one D-vector gather per (point, view) for
        # both passes; cost dominated by non-coalesced access latency.
        gathers = pixels * (workload.fine_points_per_ray * workload.num_views
                            + workload.coarse_points * workload.coarse_views)
        gather_s = gathers * spec.gather_ns_per_point_view * 1e-9
        if workload.coarse_points > 0:
            # Non-uniform per-ray sample counts make the gather kernel
            # warp-divergent and uncoalesced; measured GPU runs of
            # generalizable NeRFs barely speed up from sparse sampling
            # (the paper's Table 4: 0.096 FPS despite 27x fewer FLOPs).
            gather_s *= spec.gather_divergence
        # Bandwidth floor: the gathered bytes at FP16 cannot beat DRAM.
        gather_bytes = workload.feature_bytes(bytes_per_element=2)
        gather_s = max(gather_s, gather_bytes / spec.memory_bandwidth)

        mlp_flops = pixels * (workload.mlp_flops_per_pixel()
                              + workload.coarse_flops_per_pixel())
        mlp_s = mlp_flops / (spec.peak_flops
                             * spec.mlp_efficiency(workload.prune_scale))

        module_flops = pixels * workload.ray_module_flops_per_pixel()
        if workload.ray_module == "transformer":
            module_eff = spec.attention_efficiency
        else:
            module_eff = spec.mlp_efficiency(workload.prune_scale)
        module_s = module_flops / (spec.peak_flops * module_eff)

        sampling_s = 0.0
        if workload.coarse_points > 0:
            sampled = pixels * workload.points_per_ray
            sampling_s = sampled * spec.sampling_ns_per_point * 1e-9

        others_flops = pixels * workload.others_flops_per_pixel()
        others_s = others_flops / (spec.peak_flops * spec.others_efficiency)

        return GpuSimulation(device=spec.name, phase_seconds={
            "gather": gather_s,
            "mlp": mlp_s,
            "ray_module": module_s,
            "sampling": sampling_s,
            "others": others_s,
        })
