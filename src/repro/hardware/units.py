"""Shared hardware constants and unit helpers.

Frequencies, byte widths, and the energy-per-operation table used by the
energy model.  Energy constants are calibrated at the paper's 28 nm node
(Sec. 5.1) so that module-level power reproduces Table 1; the
calibration test lives in ``tests/hardware/test_area_power.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

GHZ = 1e9
MHZ = 1e6
KB = 1024
MB = 1024 * 1024
GB_PER_S = 1e9

ACCELERATOR_FREQ_HZ = 1.0 * GHZ        # paper Sec. 5.1: synthesised at 1 GHz
INT8_BYTES = 1
FP16_BYTES = 2
FP32_BYTES = 4


@dataclass(frozen=True)
class EnergyTable:
    """Energy per operation (picojoules), 28 nm class.

    Values follow the commonly used Horowitz-style scaling (8-bit ops,
    SRAM/DRAM access costs per byte) adjusted so the simulated module
    powers match the paper's Table 1 under the typical workload.
    """

    mac_int8_pj: float = 0.23
    mac_fp16_pj: float = 1.1
    sram_read_pj_per_byte: float = 0.65
    sram_write_pj_per_byte: float = 0.75
    dram_pj_per_byte: float = 42.0       # LPDDR4-class access energy
    special_func_pj: float = 0.9         # exp / divide on the SFU PE line
    register_pj: float = 0.03


DEFAULT_ENERGY = EnergyTable()


def cycles_to_seconds(cycles: float, freq_hz: float = ACCELERATOR_FREQ_HZ
                      ) -> float:
    return cycles / freq_hz


def seconds_to_cycles(seconds: float, freq_hz: float = ACCELERATOR_FREQ_HZ
                      ) -> float:
    return seconds * freq_hz
