"""Energy accounting helpers built on the calibrated component model.

Two views of energy are provided, mirroring how the paper reports it:

* *dynamic event energy* — MACs, SRAM/DRAM bytes and SFU ops priced by
  :class:`repro.hardware.units.EnergyTable` (what the frame simulator
  integrates), and
* *module power view* — Table 1's per-module typical power times busy
  time, used for the power column of Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .area_power import full_chip_budget
from .units import DEFAULT_ENERGY, EnergyTable


@dataclass
class EnergyReport:
    """Energy (J) per component plus totals for one frame."""

    compute_j: float
    sram_j: float
    dram_j: float
    sfu_j: float

    @property
    def total_j(self) -> float:
        return self.compute_j + self.sram_j + self.dram_j + self.sfu_j

    def breakdown(self) -> Dict[str, float]:
        return {"compute": self.compute_j, "sram": self.sram_j,
                "dram": self.dram_j, "sfu": self.sfu_j}


def dynamic_energy(macs: float, sram_bytes: float, dram_bytes: float,
                   sfu_ops: float,
                   table: EnergyTable = DEFAULT_ENERGY) -> EnergyReport:
    """Event-priced dynamic energy for a frame."""
    return EnergyReport(
        compute_j=macs * table.mac_int8_pj * 1e-12,
        sram_j=sram_bytes * 0.5 * (table.sram_read_pj_per_byte
                                   + table.sram_write_pj_per_byte) * 1e-12,
        dram_j=dram_bytes * table.dram_pj_per_byte * 1e-12,
        sfu_j=sfu_ops * table.special_func_pj * 1e-12,
    )


def typical_chip_power_w() -> float:
    """Table-1-calibrated typical power of the whole accelerator (W)."""
    return full_chip_budget()["total"].power_mw / 1000.0


def frame_energy_from_power(frame_time_s: float) -> float:
    """Energy at typical power — the paper's Table 4 power model."""
    return typical_chip_power_w() * frame_time_s
