"""PE pool: 40 systolic arrays executing the MLP and Ray-Mixer workloads.

The pool (paper Fig. 7) is the rendering engine's main compute block.
Because Gen-NeRF unified the workload to FC layers only (Ray-Mixer
replacing attention), the pool runs one kind of kernel: batched GEMMs.
Work is distributed across arrays at GEMM-instance / M-tile granularity;
the model charges the slowest array (barrel distribution), which for the
large point batches of a patch is near-perfectly balanced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .systolic import (GemmShape, SystolicConfig, gemm_cycles,
                       gemm_cycles_batch)


@dataclass(frozen=True)
class PePoolConfig:
    num_arrays: int = 40
    array: SystolicConfig = SystolicConfig()

    @property
    def macs_per_cycle(self) -> int:
        return self.num_arrays * self.array.macs_per_cycle


@dataclass
class PoolExecution:
    """Result of running a GEMM list on the pool."""

    cycles: float
    macs: float


@dataclass
class PoolExecutionBatch:
    """Array-valued :class:`PoolExecution` for batched GEMM lists."""

    cycles: np.ndarray
    macs: np.ndarray


class PePool:
    """Cycle model of the 40-array pool."""

    def __init__(self, config: PePoolConfig = PePoolConfig()):
        self.config = config

    def run(self, gemms: Sequence[GemmShape]) -> PoolExecution:
        """Execute the GEMMs, splitting each along its M dimension.

        Each GEMM's instances x M-rows are sliced over the arrays; a
        GEMM therefore runs in ~1/num_arrays of its single-array time
        plus a fill quantum, and GEMMs execute back-to-back (the layers
        of one batch are dependent, so no inter-GEMM overlap).
        """
        arrays = self.config.num_arrays
        total_cycles = 0.0
        total_macs = 0.0
        for shape in gemms:
            if shape.macs <= 0:
                continue
            work_units = shape.count * max(1, int(np.ceil(
                shape.m / self.config.array.rows)))
            parallel = min(arrays, work_units)
            single = gemm_cycles(shape, self.config.array)
            total_cycles += single / parallel + self.config.array.fill_overhead
            total_macs += shape.macs
        return PoolExecution(cycles=total_cycles, macs=total_macs)

    def run_batch(self, gemms: Sequence[GemmShape]) -> "PoolExecutionBatch":
        """:meth:`run` for GEMM lists with array-valued ``m``/``count``.

        Each :class:`GemmShape` may carry int64 arrays in its ``m`` and
        ``count`` fields (see :func:`gemm_cycles_batch`); the arrays
        must broadcast against each other across the list.  Element *i*
        of the result equals ``run`` over the scalar GEMM list at index
        *i* bit for bit — the accumulation runs in the same GEMM order
        with the same per-element arithmetic, and GEMMs with zero MACs
        contribute neither cycles nor the fill quantum (the scalar
        path's ``continue``).
        """
        arrays = self.config.num_arrays
        rows = self.config.array.rows
        fill = self.config.array.fill_overhead
        total_cycles: np.ndarray = np.float64(0.0)
        total_macs: np.ndarray = np.float64(0.0)
        for shape in gemms:
            m = np.asarray(shape.m, dtype=np.int64)
            count = np.asarray(shape.count, dtype=np.int64)
            macs = m * int(shape.k) * int(shape.n) * count
            work_units = count * np.maximum(
                1, np.ceil(m / rows).astype(np.int64))
            parallel = np.minimum(arrays, work_units)
            single = gemm_cycles_batch(shape, self.config.array)
            active = macs > 0
            total_cycles = total_cycles + np.where(
                active, single / np.maximum(parallel, 1) + fill, 0.0)
            total_macs = total_macs + np.where(active, macs, 0)
        return PoolExecutionBatch(cycles=np.asarray(total_cycles,
                                                    dtype=np.float64),
                                  macs=np.asarray(total_macs,
                                                  dtype=np.float64))

    def utilization(self, execution: PoolExecution) -> float:
        """Useful MACs over provisioned MAC slots for the execution."""
        provisioned = execution.cycles * self.config.macs_per_cycle
        return 0.0 if provisioned <= 0 else execution.macs / provisioned
