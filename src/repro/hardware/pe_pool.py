"""PE pool: 40 systolic arrays executing the MLP and Ray-Mixer workloads.

The pool (paper Fig. 7) is the rendering engine's main compute block.
Because Gen-NeRF unified the workload to FC layers only (Ray-Mixer
replacing attention), the pool runs one kind of kernel: batched GEMMs.
Work is distributed across arrays at GEMM-instance / M-tile granularity;
the model charges the slowest array (barrel distribution), which for the
large point batches of a patch is near-perfectly balanced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .systolic import GemmShape, SystolicConfig, gemm_cycles


@dataclass(frozen=True)
class PePoolConfig:
    num_arrays: int = 40
    array: SystolicConfig = SystolicConfig()

    @property
    def macs_per_cycle(self) -> int:
        return self.num_arrays * self.array.macs_per_cycle


@dataclass
class PoolExecution:
    """Result of running a GEMM list on the pool."""

    cycles: float
    macs: float


class PePool:
    """Cycle model of the 40-array pool."""

    def __init__(self, config: PePoolConfig = PePoolConfig()):
        self.config = config

    def run(self, gemms: Sequence[GemmShape]) -> PoolExecution:
        """Execute the GEMMs, splitting each along its M dimension.

        Each GEMM's instances x M-rows are sliced over the arrays; a
        GEMM therefore runs in ~1/num_arrays of its single-array time
        plus a fill quantum, and GEMMs execute back-to-back (the layers
        of one batch are dependent, so no inter-GEMM overlap).
        """
        arrays = self.config.num_arrays
        total_cycles = 0.0
        total_macs = 0.0
        for shape in gemms:
            if shape.macs <= 0:
                continue
            work_units = shape.count * max(1, int(np.ceil(
                shape.m / self.config.array.rows)))
            parallel = min(arrays, work_units)
            single = gemm_cycles(shape, self.config.array)
            total_cycles += single / parallel + self.config.array.fill_overhead
            total_macs += shape.macs
        return PoolExecution(cycles=total_cycles, macs=total_macs)

    def utilization(self, execution: PoolExecution) -> float:
        """Useful MACs over provisioned MAC slots for the execution."""
        provisioned = execution.cycles * self.config.macs_per_cycle
        return 0.0 if provisioned <= 0 else execution.macs / provisioned
