"""Area/power component model (paper Table 1, 28 nm @ 1 GHz).

The paper synthesises Verilog with Cadence Genus on a commercial 28 nm
library.  Offline we substitute a component model: per-unit area/power
cost tables (MAC arrays, SRAM macros, special-function lanes, control)
multiplied by the block's provisioned resources.  Unit constants were
calibrated once so the four module rows reproduce Table 1 within a few
percent; the calibration is asserted in
``tests/hardware/test_area_power.py`` and the calibrated values are what
:mod:`repro.hardware.accelerator` and the energy model consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .engine import EngineConfig
from .scheduler import SchedulerConfig
from .sram import SramConfig
from .units import KB, MB


# Calibrated 28 nm unit costs (area mm^2, power mW at 1 GHz, typical load).
MAC_INT8_AREA_MM2 = 1.30e-3        # one INT8 MAC incl. pipeline registers
MAC_INT8_POWER_MW = 0.74
SRAM_AREA_MM2_PER_KB = 2.4e-3      # single-port scratchpad macro
SRAM_POWER_MW_PER_KB = 0.82
SFU_LANE_AREA_MM2 = 0.021          # exp/accumulate PE
SFU_LANE_POWER_MW = 11.0
SAMPLER_LANE_AREA_MM2 = 0.015      # RNG + comparator + CDF lane
SAMPLER_LANE_POWER_MW = 8.0
PROJECTOR_AREA_MM2 = 0.035         # 3x4 MAC array w/ divider, per lane
PROJECTOR_POWER_MW = 18.0
INTERP_LANE_AREA_MM2 = 0.053       # 4-corner blend datapath per lane
INTERP_LANE_POWER_MW = 30.0
CONTROL_AREA_MM2 = 0.045           # FSMs, queues, sequencers per block
CONTROL_POWER_MW = 22.0
COMPARATOR_BLOCK_AREA_MM2 = 0.030  # area comparator + update-mask FSM
COMPARATOR_BLOCK_POWER_MW = 50.0


@dataclass(frozen=True)
class ModuleBudget:
    """Area and typical power of one accelerator block."""

    name: str
    area_mm2: float
    power_mw: float


def workload_scheduler_budget(config: SchedulerConfig = SchedulerConfig()
                              ) -> ModuleBudget:
    """Top-left sequencer + mask bitmap + vertex projector + area
    calculator/comparator + patch queue (Fig. 7 right)."""
    mask_bitmap_kb = 8          # 1 bit per macro tile position, generous
    queue_kb = 4
    vertex_projector = 2 * PROJECTOR_AREA_MM2, 2 * PROJECTOR_POWER_MW
    area_calc_macs = 48         # adder trees for shoelace + compare
    area = (CONTROL_AREA_MM2 + COMPARATOR_BLOCK_AREA_MM2
            + (mask_bitmap_kb + queue_kb) * SRAM_AREA_MM2_PER_KB
            + vertex_projector[0]
            + area_calc_macs * MAC_INT8_AREA_MM2)
    power = (CONTROL_POWER_MW + COMPARATOR_BLOCK_POWER_MW
             + (mask_bitmap_kb + queue_kb) * SRAM_POWER_MW_PER_KB
             + vertex_projector[1]
             + area_calc_macs * MAC_INT8_POWER_MW)
    return ModuleBudget("Workload Scheduler", area, power)


def preprocessing_unit_budget(config: EngineConfig = EngineConfig()
                              ) -> ModuleBudget:
    """Monte-Carlo sampler + projector + interpolator (Fig. 7 left)."""
    ppu = config.ppu
    area = (CONTROL_AREA_MM2
            + ppu.sampler_lanes * SAMPLER_LANE_AREA_MM2
            + ppu.projector_lanes * PROJECTOR_AREA_MM2
            + ppu.interp_lanes * INTERP_LANE_AREA_MM2
            + 16 * SRAM_AREA_MM2_PER_KB)        # CDF / staging buffers
    power = (CONTROL_POWER_MW
             + ppu.sampler_lanes * SAMPLER_LANE_POWER_MW
             + ppu.projector_lanes * PROJECTOR_POWER_MW
             + ppu.interp_lanes * INTERP_LANE_POWER_MW
             + 16 * SRAM_POWER_MW_PER_KB)
    return ModuleBudget("Preprocessing Unit (PPU)", area, power)


def rendering_engine_budget(config: EngineConfig = EngineConfig()
                            ) -> ModuleBudget:
    """PE pool + local/weight buffers + SFU (engine minus the PPU)."""
    pool = config.pool
    macs = pool.num_arrays * pool.array.macs_per_cycle
    local_buffer_kb = 256
    weight_buffer_kb = 8
    area = (macs * MAC_INT8_AREA_MM2
            + (local_buffer_kb + weight_buffer_kb) * SRAM_AREA_MM2_PER_KB
            + config.sfu.lanes * SFU_LANE_AREA_MM2
            + 2 * CONTROL_AREA_MM2)
    power = (macs * MAC_INT8_POWER_MW
             + (local_buffer_kb + weight_buffer_kb) * SRAM_POWER_MW_PER_KB
             + config.sfu.lanes * SFU_LANE_POWER_MW
             + 2 * CONTROL_POWER_MW)
    return ModuleBudget("Rendering Engine (except PPU)", area, power)


def prefetch_buffer_budget(config: SramConfig = SramConfig()
                           ) -> ModuleBudget:
    """The pair of prefetch scratchpads (double buffer)."""
    total_kb = 2 * config.capacity_bytes / KB
    area = total_kb * SRAM_AREA_MM2_PER_KB + CONTROL_AREA_MM2
    power = total_kb * SRAM_POWER_MW_PER_KB + 0.5 * CONTROL_POWER_MW
    return ModuleBudget("Prefetch Buffer", area, power)


def full_chip_budget() -> Dict[str, ModuleBudget]:
    """All Table 1 rows plus the total."""
    modules = {
        "scheduler": workload_scheduler_budget(),
        "ppu": preprocessing_unit_budget(),
        "engine": rendering_engine_budget(),
        "prefetch": prefetch_buffer_budget(),
    }
    total_area = sum(m.area_mm2 for m in modules.values())
    total_power = sum(m.power_mw for m in modules.values())
    modules["total"] = ModuleBudget("Total", total_area, total_power)
    return modules


# Paper Table 1 reference values for calibration tests.
PAPER_TABLE1 = {
    "scheduler": (0.24, 156.2),
    "ppu": (1.24, 696.0),
    "engine": (14.98, 8359.2),
    "prefetch": (1.34, 473.6),
    "total": (17.80, 9685.0),
}
