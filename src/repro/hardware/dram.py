"""LPDDR4 DRAM timing model (Ramulator substitute — see DESIGN.md).

The paper feeds its cycle simulator with Ramulator's latency/energy for
an LPDDR4-2400 part at 17.8 GB/s (the class used in AR/VR headsets,
Sec. 5.1).  This model captures the two phenomena the evaluation leans
on:

* a hard bandwidth ceiling (data bytes / peak bandwidth), and
* per-bank serialisation with row-buffer behaviour: accesses to a bank
  pay the row cycle time on row misses, so a storage layout that piles
  requests onto few banks (Fig. 6a) serialises while a balanced layout
  (Fig. 6b) streams.

Requests are aggregated per (bank, row-span) rather than replayed per
beat — the simulator processes whole point-patch prefetches, and at that
granularity the aggregate model matches a beat-level replay to within a
few percent while staying fast enough to schedule full frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from .units import GB_PER_S


@dataclass(frozen=True)
class DramConfig:
    """LPDDR4-2400-ish device; defaults match the paper's part."""

    name: str = "LPDDR4-2400"
    peak_bandwidth_bytes: float = 17.8 * GB_PER_S
    num_banks: int = 8
    row_bytes: int = 2048            # row buffer (page) size
    t_rc_s: float = 60e-9            # row cycle (ACT..PRE..ACT) on a miss
    t_burst_s: float = 3.33e-9       # 32-byte burst at 2400 MT/s x32
    burst_bytes: int = 32
    activate_energy_pj: float = 900.0
    io_pj_per_byte: float = 18.0


@dataclass
class DramAccessStats:
    """Outcome of servicing one aggregated access batch."""

    bytes_transferred: float
    service_time_s: float
    row_activations: int
    energy_pj: float

    @property
    def effective_bandwidth(self) -> float:
        if self.service_time_s <= 0:
            return 0.0
        return self.bytes_transferred / self.service_time_s


@dataclass
class DramBatchStats:
    """Array-valued :class:`DramAccessStats` for a batch sequence."""

    bytes_transferred: np.ndarray   # (P,) float64
    service_time_s: np.ndarray      # (P,) float64
    row_activations: np.ndarray     # (P,) int64
    energy_pj: np.ndarray           # (P,) float64


class DramModel:
    """Bank-level service model for aggregated request batches."""

    def __init__(self, config: DramConfig = DramConfig()):
        self.config = config

    def service(self, per_bank_bytes: Sequence[float],
                per_bank_row_activations: Sequence[int]) -> DramAccessStats:
        """Service a batch described by per-bank byte and activation counts.

        Banks operate in parallel; each bank's busy time is its burst
        time plus its row-activation penalty.  The channel data bus caps
        the whole batch at peak bandwidth.
        """
        cfg = self.config
        per_bank_bytes = np.asarray(per_bank_bytes, dtype=np.float64)
        per_bank_acts = np.asarray(per_bank_row_activations, dtype=np.float64)
        if per_bank_bytes.shape != per_bank_acts.shape:
            raise ValueError("per-bank arrays must align")

        total_bytes = float(per_bank_bytes.sum())
        bursts = np.ceil(per_bank_bytes / cfg.burst_bytes)
        bank_time = bursts * cfg.t_burst_s + per_bank_acts * cfg.t_rc_s
        slowest_bank = float(bank_time.max()) if bank_time.size else 0.0
        bus_time = total_bytes / cfg.peak_bandwidth_bytes
        service_time = max(slowest_bank, bus_time)

        energy = (total_bytes * cfg.io_pj_per_byte
                  + float(per_bank_acts.sum()) * cfg.activate_energy_pj)
        return DramAccessStats(bytes_transferred=total_bytes,
                               service_time_s=service_time,
                               row_activations=int(per_bank_acts.sum()),
                               energy_pj=energy)

    def service_batch(self, per_bank_bytes: np.ndarray,
                      per_bank_row_activations: np.ndarray
                      ) -> "DramBatchStats":
        """:meth:`service` for a whole batch sequence in one array pass.

        ``per_bank_bytes`` / ``per_bank_row_activations`` are (P, banks)
        arrays — one row per aggregated access batch (one point-patch
        prefetch each in the frame simulator).  Returns per-batch arrays
        with element *p* equal to ``service(per_bank_bytes[p], ...)``
        bit for bit: the per-element arithmetic is identical and the
        per-bank reductions run over the same contiguous spans.
        """
        cfg = self.config
        per_bank_bytes = np.asarray(per_bank_bytes, dtype=np.float64)
        per_bank_acts = np.asarray(per_bank_row_activations,
                                   dtype=np.float64)
        if per_bank_bytes.shape != per_bank_acts.shape:
            raise ValueError("per-bank arrays must align")

        total_bytes = per_bank_bytes.sum(axis=-1)
        bursts = np.ceil(per_bank_bytes / cfg.burst_bytes)
        bank_time = bursts * cfg.t_burst_s + per_bank_acts * cfg.t_rc_s
        slowest_bank = (bank_time.max(axis=-1) if bank_time.shape[-1]
                        else np.zeros_like(total_bytes))
        bus_time = total_bytes / cfg.peak_bandwidth_bytes
        service_time = np.maximum(slowest_bank, bus_time)

        acts_total = per_bank_acts.sum(axis=-1)
        energy = (total_bytes * cfg.io_pj_per_byte
                  + acts_total * cfg.activate_energy_pj)
        return DramBatchStats(bytes_transferred=total_bytes,
                              service_time_s=service_time,
                              row_activations=acts_total.astype(np.int64),
                              energy_pj=energy)

    def stream_time(self, total_bytes: float) -> float:
        """Best-case time: perfectly balanced, row-hit streaming."""
        per_bank = total_bytes / self.config.num_banks
        rows = np.ceil(per_bank / self.config.row_bytes)
        stats = self.service([per_bank] * self.config.num_banks,
                             [int(rows)] * self.config.num_banks)
        return stats.service_time_s


# Device DRAM configs used by the baseline models (paper Table 4).
LPDDR4_2400 = DramConfig()
LPDDR4_1600_TX2 = DramConfig(name="LPDDR4-1600 (Jetson TX2)",
                             peak_bandwidth_bytes=25.6 * GB_PER_S,
                             t_burst_s=5.0e-9)
GDDR6_2080TI = DramConfig(name="GDDR6 (RTX 2080Ti)",
                          peak_bandwidth_bytes=616.0 * GB_PER_S,
                          num_banks=32, t_burst_s=0.2e-9)
