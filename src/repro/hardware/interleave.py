"""Scene-feature storage layouts and bank mapping (paper Sec. 4.4, Fig. 6).

Scene features have shape (S, Hs, Ws, C).  How their elements map onto
DRAM/SRAM banks decides whether a point patch's footprint — a compact 2D
region per source view (projection locality, Property-3) — can be
fetched from all banks in parallel:

* ``row_major``       — Fig. 6(a): consecutive feature rows fill a bank
  before moving on; a local 2D footprint lands on one or two banks.
* ``row_interleaved`` — Var-2 of Fig. 12: whole feature rows round-robin
  over banks; a footprint with few rows loads few banks.
* ``view_interleaved``— Var-3: banks partitioned by source view, so at
  most S banks ever serve a prefetch and per-view footprint imbalance
  concentrates traffic further.
* ``spatial_interleaved`` — the paper's scheme, Fig. 6(b): neighbouring
  (h, w) locations map to different banks along both axes via a skewed
  assignment ``bank = (skew * row + col) mod B``, so any local 2D region
  — even a one-or-two-row epipolar stripe — spreads evenly.

A patch footprint is a rectangle of feature locations per view; bank
loads for a rectangle are computed exactly from residue counts (O(banks)
per rectangle, not O(area)), which keeps full-frame schedules cheap.
The resulting per-bank (bytes, activations) arrays feed
:class:`repro.hardware.dram.DramModel`; their imbalance is what Fig. 12's
Var-2/Var-3 ablation measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

LAYOUTS = ("row_major", "row_interleaved", "view_interleaved",
           "spatial_interleaved")


@dataclass(frozen=True)
class FootprintRegion:
    """A patch's feature footprint on one source view (feature pixels)."""

    view: int
    row0: int
    row1: int          # exclusive
    col0: int
    col1: int          # exclusive

    @property
    def num_rows(self) -> int:
        """Feature rows spanned (0 for a degenerate rectangle)."""
        return max(0, self.row1 - self.row0)

    @property
    def num_cols(self) -> int:
        """Feature columns spanned (0 for a degenerate rectangle)."""
        return max(0, self.col1 - self.col0)

    @property
    def num_locations(self) -> int:
        """(h, w) feature locations covered — the fetch granularity."""
        return self.num_rows * self.num_cols


def spatial_skew(num_banks: int) -> int:
    """Row skew of the spatial interleaving; coprime-ish with the bank
    count so vertical stripes also spread (3 works for 8/16 banks)."""
    skew = max(1, num_banks // 2 - 1)
    while num_banks % skew == 0 and skew > 1:
        skew -= 1
    return skew


def _residue_counts(start: int, stop: int, modulus: int) -> np.ndarray:
    """How many integers in [start, stop) fall in each residue class."""
    length = max(0, stop - start)
    counts = np.full(modulus, length // modulus, dtype=np.int64)
    remainder = length % modulus
    if remainder:
        first = start % modulus
        wrapped = (first + np.arange(remainder)) % modulus
        np.add.at(counts, wrapped, 1)
    return counts


@dataclass(frozen=True)
class FeatureStore:
    """Geometry and layout of the stored scene features."""

    num_views: int
    height: int               # Hs (feature map rows)
    width: int                # Ws
    channels: int             # C
    bytes_per_element: int = 1
    layout: str = "spatial_interleaved"

    def __post_init__(self):
        if self.layout not in LAYOUTS:
            raise ValueError(f"unknown layout {self.layout!r}; "
                             f"choose from {LAYOUTS}")

    @property
    def location_bytes(self) -> int:
        """Bytes of one (h, w) feature vector (C channels, packed)."""
        return self.channels * self.bytes_per_element

    @property
    def total_bytes(self) -> int:
        """Whole stored feature volume: S * Hs * Ws * C * bytes/elem."""
        return self.num_views * self.height * self.width * self.location_bytes

    # ------------------------------------------------------------------
    def rectangle_bank_load(self, region: FootprintRegion, num_banks: int
                            ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact per-bank (location counts, row activations) for a
        rectangular footprint under this layout.

        Row activations count distinct (bank, feature-row) pairs — each
        feature row a bank touches costs one DRAM row activation in the
        aggregate model (feature rows are row-buffer sized or smaller at
        the paper's map sizes).
        """
        loads = np.zeros(num_banks, dtype=np.int64)
        acts = np.zeros(num_banks, dtype=np.int64)
        rows, cols = region.num_rows, region.num_cols
        if rows <= 0 or cols <= 0:
            return loads, acts

        if self.layout == "row_major":
            rows_per_bank = max(1, (self.num_views * self.height)
                                // num_banks)
            flat0 = region.view * self.height + region.row0
            banks = np.minimum(np.arange(flat0, flat0 + rows)
                               // rows_per_bank, num_banks - 1)
            row_counts = np.bincount(banks, minlength=num_banks)
            loads += row_counts * cols
            acts += row_counts
            return loads, acts

        if self.layout == "row_interleaved":
            flat0 = region.view * self.height + region.row0
            row_counts = _residue_counts(flat0, flat0 + rows, num_banks)
            loads += row_counts * cols
            acts += row_counts
            return loads, acts

        if self.layout == "view_interleaved":
            bank = region.view % num_banks
            loads[bank] = rows * cols
            acts[bank] = rows
            return loads, acts

        # spatial_interleaved: skewed mapping
        # bank = (skew * row + col) mod num_banks.  Within one feature
        # row the columns sweep residues contiguously: every row loads
        # ``cols // B`` on every bank plus one extra on the ``cols % B``
        # residues starting at its own offset.  Counting the per-row
        # window starts with a bincount collapses the former per-row
        # Python loop (the fig11/fig12 hot path — this runs for every
        # (patch, view) of a frame) into three array passes, with
        # per-element arithmetic identical to the looped version.
        skew = spatial_skew(num_banks)
        base, remainder = divmod(cols, num_banks)
        loads += rows * base
        if remainder:
            # extra[b] = #rows whose length-``remainder`` residue
            # window, starting at that row's offset, covers bank b — a
            # circular windowed sum of the start histogram, computed on
            # a doubled cumulative sum.
            starts = (skew * np.arange(region.row0, region.row1)
                      + region.col0) % num_banks
            start_hist = np.bincount(starts, minlength=num_banks)
            csum = np.concatenate(
                [[0], np.cumsum(np.concatenate([start_hist, start_hist]))])
            idx = np.arange(num_banks) + num_banks
            extra = csum[idx + 1] - csum[idx - remainder + 1]
            loads += extra
            acts += rows if base > 0 else extra
        elif base > 0:
            acts += rows
        return loads, acts


    # ------------------------------------------------------------------
    def rectangle_bank_load_batched(self, regions: np.ndarray,
                                    num_banks: int
                                    ) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`rectangle_bank_load` for N rectangles in one array pass.

        ``regions`` is an (N, 5) int64 array of ``(view, row0, row1,
        col0, col1)`` rows — one row per :class:`FootprintRegion`.
        Returns ``(loads, acts)`` as (N, num_banks) int64 arrays whose
        per-element arithmetic matches the scalar method exactly, so
        row *i* equals ``rectangle_bank_load(regions[i], num_banks)``
        bit for bit (everything here is integer math).

        This is the frame simulator's hot path: an 800x800 frame plan
        holds ~10^5 (patch, view) rectangles, and the former per-patch
        Python loop over :func:`bank_load_for_footprints` dominated
        ``simulate_frame`` (see ``docs/performance.md``).
        """
        regions = np.asarray(regions, dtype=np.int64).reshape(-1, 5)
        n = regions.shape[0]
        loads = np.zeros((n, num_banks), dtype=np.int64)
        acts = np.zeros((n, num_banks), dtype=np.int64)
        if n == 0:
            return loads, acts
        view = regions[:, 0]
        row0, row1 = regions[:, 1], regions[:, 2]
        col0, col1 = regions[:, 3], regions[:, 4]
        rows = np.maximum(0, row1 - row0)
        cols = np.maximum(0, col1 - col0)
        valid = (rows > 0) & (cols > 0)
        if not valid.any():
            return loads, acts

        if self.layout == "row_major":
            rows_per_bank = max(1, (self.num_views * self.height)
                                // num_banks)
            flat0 = view * self.height + row0
            flat1 = flat0 + rows
            # Bank b < B-1 owns feature rows [b*rpb, (b+1)*rpb); the
            # last bank absorbs the tail (the scalar path's min(.., B-1)
            # clamp).  Row counts are interval overlaps.
            starts = np.arange(num_banks, dtype=np.int64) * rows_per_bank
            ends = starts + rows_per_bank
            ends[-1] = np.iinfo(np.int64).max
            row_counts = np.maximum(
                0, np.minimum(flat1[:, None], ends[None, :])
                - np.maximum(flat0[:, None], starts[None, :]))
            row_counts[~valid] = 0
            loads = row_counts * cols[:, None]
            acts = row_counts
            return loads, acts

        if self.layout == "row_interleaved":
            flat0 = view * self.height + row0
            flat1 = flat0 + rows
            # Closed-form residue counts: #x in [s, e) with x % B == b
            # is ceil((e-b)/B) - ceil((s-b)/B); numerators stay >= 0
            # here so plain floor division implements the ceilings.
            bank = np.arange(num_banks, dtype=np.int64)
            row_counts = ((flat1[:, None] - bank + num_banks - 1)
                          // num_banks
                          - (flat0[:, None] - bank + num_banks - 1)
                          // num_banks)
            row_counts[~valid] = 0
            loads = row_counts * cols[:, None]
            acts = row_counts
            return loads, acts

        if self.layout == "view_interleaved":
            idx = np.flatnonzero(valid)
            bank = view[idx] % num_banks
            loads[idx, bank] = rows[idx] * cols[idx]
            acts[idx, bank] = rows[idx]
            return loads, acts

        # spatial_interleaved — same three-pass structure as the scalar
        # method: a full-sweep base load on every bank, then the
        # remainder window counted by a bincount of per-row window
        # starts and a doubled-cumsum circular windowed sum.  Rows are
        # flattened across all remainder-carrying regions at once with
        # the repeat/arange segment trick (as in trace.py's replay).
        skew = spatial_skew(num_banks)
        base = cols // num_banks
        remainder = cols % num_banks
        loads += np.where(valid, rows * base, 0)[:, None]
        sel = np.flatnonzero(valid & (remainder > 0))
        if sel.size:
            sel_rows = rows[sel]
            offsets = np.concatenate(
                [[0], np.cumsum(sel_rows)]).astype(np.int64)
            total = int(offsets[-1])
            flat_rows = (np.arange(total, dtype=np.int64)
                         - np.repeat(offsets[:-1], sel_rows)
                         + np.repeat(row0[sel], sel_rows))
            region_of = np.repeat(np.arange(sel.size, dtype=np.int64),
                                  sel_rows)
            starts = (skew * flat_rows
                      + np.repeat(col0[sel], sel_rows)) % num_banks
            start_hist = np.bincount(
                region_of * num_banks + starts,
                minlength=sel.size * num_banks).reshape(sel.size,
                                                        num_banks)
            csum = np.concatenate(
                [np.zeros((sel.size, 1), dtype=np.int64),
                 np.cumsum(np.concatenate([start_hist, start_hist],
                                          axis=1), axis=1)], axis=1)
            idx = np.arange(num_banks, dtype=np.int64) + num_banks
            hi = csum[:, idx + 1]
            lo = np.take_along_axis(
                csum, idx[None, :] - remainder[sel, None] + 1, axis=1)
            extra = hi - lo
            loads[sel] += extra
            acts[sel] = np.where(base[sel, None] > 0,
                                 sel_rows[:, None], extra)
        full_rows = np.flatnonzero(valid & (remainder == 0) & (base > 0))
        if full_rows.size:
            acts[full_rows] = rows[full_rows, None]
        return loads, acts


def bank_load_for_footprints(store: FeatureStore,
                             footprints: Sequence[FootprintRegion],
                             num_banks: int
                             ) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregate per-bank (bytes, activations) over several footprints."""
    bytes_per_bank = np.zeros(num_banks, dtype=np.float64)
    acts_per_bank = np.zeros(num_banks, dtype=np.int64)
    for region in footprints:
        loads, acts = store.rectangle_bank_load(region, num_banks)
        bytes_per_bank += loads * float(store.location_bytes)
        acts_per_bank += acts
    return bytes_per_bank, acts_per_bank


def regions_as_array(footprints: Sequence[FootprintRegion]) -> np.ndarray:
    """Pack footprint objects into the (N, 5) int64 array the batched
    bank-load path consumes: ``(view, row0, row1, col0, col1)`` rows."""
    if not footprints:
        return np.zeros((0, 5), dtype=np.int64)
    return np.array([(fp.view, fp.row0, fp.row1, fp.col0, fp.col1)
                     for fp in footprints], dtype=np.int64)


def batched_bank_load(store: FeatureStore, regions: np.ndarray,
                      counts: np.ndarray, num_banks: int
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """:func:`bank_load_for_footprints` for many footprint groups at once.

    ``regions`` is (N, 5) int64 with the groups stored contiguously:
    group ``p`` owns ``counts[p]`` consecutive rows.  Returns
    ``(bytes, acts)`` as (P, num_banks) float64/int64 arrays; row ``p``
    equals ``bank_load_for_footprints`` over group ``p``'s regions —
    exactly, not approximately: the per-region loads are integers, so
    the float accumulation order of the scalar loop cannot change the
    sums, and the activation counts are pure int64 math.
    """
    counts = np.asarray(counts, dtype=np.int64)
    num_groups = counts.shape[0]
    loads, acts = store.rectangle_bank_load_batched(regions, num_banks)
    group_loads = np.zeros((num_groups, num_banks), dtype=np.int64)
    group_acts = np.zeros((num_groups, num_banks), dtype=np.int64)
    if loads.shape[0] and num_groups:
        offsets = np.zeros(num_groups, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        nonempty = np.flatnonzero(counts > 0)
        if nonempty.size:
            group_loads[nonempty] = np.add.reduceat(
                loads, offsets[nonempty], axis=0)
            group_acts[nonempty] = np.add.reduceat(
                acts, offsets[nonempty], axis=0)
    return group_loads * float(store.location_bytes), group_acts


def balance_factor(bytes_per_bank: np.ndarray) -> float:
    """Mean/max bank load in (0, 1]; 1.0 means perfectly balanced."""
    loads = np.asarray(bytes_per_bank, dtype=np.float64)
    peak = loads.max()
    if peak <= 0:
        return 1.0
    return float(loads.mean() / peak)


def balance_factors(bytes_per_bank: np.ndarray) -> np.ndarray:
    """:func:`balance_factor` over the rows of a (P, banks) array."""
    loads = np.asarray(bytes_per_bank, dtype=np.float64)
    peak = loads.max(axis=-1)
    mean = loads.mean(axis=-1)
    return np.where(peak > 0, mean / np.maximum(peak, 1e-300), 1.0)
