"""Scene-feature storage layouts and bank mapping (paper Sec. 4.4, Fig. 6).

Scene features have shape (S, Hs, Ws, C).  How their elements map onto
DRAM/SRAM banks decides whether a point patch's footprint — a compact 2D
region per source view (projection locality, Property-3) — can be
fetched from all banks in parallel:

* ``row_major``       — Fig. 6(a): consecutive feature rows fill a bank
  before moving on; a local 2D footprint lands on one or two banks.
* ``row_interleaved`` — Var-2 of Fig. 12: whole feature rows round-robin
  over banks; a footprint with few rows loads few banks.
* ``view_interleaved``— Var-3: banks partitioned by source view, so at
  most S banks ever serve a prefetch and per-view footprint imbalance
  concentrates traffic further.
* ``spatial_interleaved`` — the paper's scheme, Fig. 6(b): neighbouring
  (h, w) locations map to different banks along both axes via a skewed
  assignment ``bank = (skew * row + col) mod B``, so any local 2D region
  — even a one-or-two-row epipolar stripe — spreads evenly.

A patch footprint is a rectangle of feature locations per view; bank
loads for a rectangle are computed exactly from residue counts (O(banks)
per rectangle, not O(area)), which keeps full-frame schedules cheap.
The resulting per-bank (bytes, activations) arrays feed
:class:`repro.hardware.dram.DramModel`; their imbalance is what Fig. 12's
Var-2/Var-3 ablation measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

LAYOUTS = ("row_major", "row_interleaved", "view_interleaved",
           "spatial_interleaved")


@dataclass(frozen=True)
class FootprintRegion:
    """A patch's feature footprint on one source view (feature pixels)."""

    view: int
    row0: int
    row1: int          # exclusive
    col0: int
    col1: int          # exclusive

    @property
    def num_rows(self) -> int:
        return max(0, self.row1 - self.row0)

    @property
    def num_cols(self) -> int:
        return max(0, self.col1 - self.col0)

    @property
    def num_locations(self) -> int:
        return self.num_rows * self.num_cols


def spatial_skew(num_banks: int) -> int:
    """Row skew of the spatial interleaving; coprime-ish with the bank
    count so vertical stripes also spread (3 works for 8/16 banks)."""
    skew = max(1, num_banks // 2 - 1)
    while num_banks % skew == 0 and skew > 1:
        skew -= 1
    return skew


def _residue_counts(start: int, stop: int, modulus: int) -> np.ndarray:
    """How many integers in [start, stop) fall in each residue class."""
    length = max(0, stop - start)
    counts = np.full(modulus, length // modulus, dtype=np.int64)
    remainder = length % modulus
    if remainder:
        first = start % modulus
        wrapped = (first + np.arange(remainder)) % modulus
        np.add.at(counts, wrapped, 1)
    return counts


@dataclass(frozen=True)
class FeatureStore:
    """Geometry and layout of the stored scene features."""

    num_views: int
    height: int               # Hs (feature map rows)
    width: int                # Ws
    channels: int             # C
    bytes_per_element: int = 1
    layout: str = "spatial_interleaved"

    def __post_init__(self):
        if self.layout not in LAYOUTS:
            raise ValueError(f"unknown layout {self.layout!r}; "
                             f"choose from {LAYOUTS}")

    @property
    def location_bytes(self) -> int:
        """Bytes of one (h, w) feature vector (C channels, packed)."""
        return self.channels * self.bytes_per_element

    @property
    def total_bytes(self) -> int:
        return self.num_views * self.height * self.width * self.location_bytes

    # ------------------------------------------------------------------
    def rectangle_bank_load(self, region: FootprintRegion, num_banks: int
                            ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact per-bank (location counts, row activations) for a
        rectangular footprint under this layout.

        Row activations count distinct (bank, feature-row) pairs — each
        feature row a bank touches costs one DRAM row activation in the
        aggregate model (feature rows are row-buffer sized or smaller at
        the paper's map sizes).
        """
        loads = np.zeros(num_banks, dtype=np.int64)
        acts = np.zeros(num_banks, dtype=np.int64)
        rows, cols = region.num_rows, region.num_cols
        if rows <= 0 or cols <= 0:
            return loads, acts

        if self.layout == "row_major":
            rows_per_bank = max(1, (self.num_views * self.height)
                                // num_banks)
            flat0 = region.view * self.height + region.row0
            banks = np.minimum(np.arange(flat0, flat0 + rows)
                               // rows_per_bank, num_banks - 1)
            row_counts = np.bincount(banks, minlength=num_banks)
            loads += row_counts * cols
            acts += row_counts
            return loads, acts

        if self.layout == "row_interleaved":
            flat0 = region.view * self.height + region.row0
            row_counts = _residue_counts(flat0, flat0 + rows, num_banks)
            loads += row_counts * cols
            acts += row_counts
            return loads, acts

        if self.layout == "view_interleaved":
            bank = region.view % num_banks
            loads[bank] = rows * cols
            acts[bank] = rows
            return loads, acts

        # spatial_interleaved: skewed mapping
        # bank = (skew * row + col) mod num_banks.  Within one feature
        # row the columns sweep residues contiguously: every row loads
        # ``cols // B`` on every bank plus one extra on the ``cols % B``
        # residues starting at its own offset.  Counting the per-row
        # window starts with a bincount collapses the former per-row
        # Python loop (the fig11/fig12 hot path — this runs for every
        # (patch, view) of a frame) into three array passes, with
        # per-element arithmetic identical to the looped version.
        skew = spatial_skew(num_banks)
        base, remainder = divmod(cols, num_banks)
        loads += rows * base
        if remainder:
            # extra[b] = #rows whose length-``remainder`` residue
            # window, starting at that row's offset, covers bank b — a
            # circular windowed sum of the start histogram, computed on
            # a doubled cumulative sum.
            starts = (skew * np.arange(region.row0, region.row1)
                      + region.col0) % num_banks
            start_hist = np.bincount(starts, minlength=num_banks)
            csum = np.concatenate(
                [[0], np.cumsum(np.concatenate([start_hist, start_hist]))])
            idx = np.arange(num_banks) + num_banks
            extra = csum[idx + 1] - csum[idx - remainder + 1]
            loads += extra
            acts += rows if base > 0 else extra
        elif base > 0:
            acts += rows
        return loads, acts


def bank_load_for_footprints(store: FeatureStore,
                             footprints: Sequence[FootprintRegion],
                             num_banks: int
                             ) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregate per-bank (bytes, activations) over several footprints."""
    bytes_per_bank = np.zeros(num_banks, dtype=np.float64)
    acts_per_bank = np.zeros(num_banks, dtype=np.int64)
    for region in footprints:
        loads, acts = store.rectangle_bank_load(region, num_banks)
        bytes_per_bank += loads * float(store.location_bytes)
        acts_per_bank += acts
    return bytes_per_bank, acts_per_bank


def balance_factor(bytes_per_bank: np.ndarray) -> float:
    """Mean/max bank load in (0, 1]; 1.0 means perfectly balanced."""
    loads = np.asarray(bytes_per_bank, dtype=np.float64)
    peak = loads.max()
    if peak <= 0:
        return 1.0
    return float(loads.mean() / peak)
