"""ICARUS baseline (Rao et al., 2022) — reported-number comparison.

The paper benchmarks against ICARUS using ICARUS's own published
figures (Table 4), since no RTL or simulator is available; we mirror
that: this module is a spec table, not a performance model.  ICARUS
accelerates the *vanilla* per-scene NeRF (MLP-dominated), so it has no
scene-feature acquisition stage at all — which is exactly why the paper
argues it "cannot well handle the data movement cost in generalizable
NeRFs" (Sec. 6).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AcceleratorSpec:
    """One row of the paper's Table 4."""

    name: str
    sram_mb: float
    area_mm2: float
    frequency_ghz: float
    dram: str
    bandwidth_gb_s: float
    technology_nm: int
    typical_power_w: float
    typical_fps: float


ICARUS = AcceleratorSpec(
    name="ICARUS",
    sram_mb=0.96,
    area_mm2=16.5,
    frequency_ghz=0.4,
    dram="-",
    bandwidth_gb_s=0.0,
    technology_nm=40,
    typical_power_w=0.2828,
    typical_fps=0.02,
)

GEN_NERF_SPEC = AcceleratorSpec(
    name="Gen-NeRF",
    sram_mb=0.8,
    area_mm2=17.80,
    frequency_ghz=1.0,
    dram="LPDDR4-2400",
    bandwidth_gb_s=17.8,
    technology_nm=28,
    typical_power_w=9.7,
    typical_fps=24.9,
)

JETSON_TX2_SPEC = AcceleratorSpec(
    name="Jetson TX2",
    sram_mb=2.5,
    area_mm2=350.0,
    frequency_ghz=0.9,
    dram="LPDDR4-1600",
    bandwidth_gb_s=25.6,
    technology_nm=16,
    typical_power_w=10.0,
    typical_fps=0.003,
)

RTX_2080TI_SPEC = AcceleratorSpec(
    name="RTX 2080Ti",
    sram_mb=29.5,
    area_mm2=754.0,
    frequency_ghz=1.35,
    dram="GDDR6",
    bandwidth_gb_s=616.0,
    technology_nm=12,
    typical_power_w=250.0,
    typical_fps=0.096,
)

TABLE4_PAPER_ROWS = (GEN_NERF_SPEC, ICARUS, JETSON_TX2_SPEC, RTX_2080TI_SPEC)
