"""Top-level Gen-NeRF accelerator: cycle-level frame simulation.

Composes the pieces of Fig. 7 — workload scheduler, memory controller +
LPDDR4 DRAM, prefetch double buffer, rendering engine (PPU, PE pool,
SFU) — into a per-frame simulation:

1. The scheduler partitions the H x W x D cube into point patches
   (greedy, or Var-1's fixed slicing for the ablation).
2. Each patch's prefetch time comes from the DRAM bank model under the
   configured feature-storage layout (spatial interleaving, or Var-2/3's
   row/view interleaving).
3. Each patch's compute time comes from the rendering engine model; the
   on-chip SRAM balance of the layout throttles the interpolator.
4. The double buffer overlaps fetch i+1 with compute i; the frame time
   is the pipelined fold plus the coarse stage (stage 1 of Sec. 4.5).

Results carry the latency breakdown (data vs compute), PE utilisation
and energy — the quantities in Figs. 10-12 and Tables 1/4.

Steps 2-3 run as one grouped array pass over *all* patches (batched
bank loads -> batched DRAM service -> deduplicated batched engine
compute) rather than a per-patch Python loop; the seed loop survives as
:func:`repro.perf.reference.simulate_frame_loop` and
``tests/hardware/test_accelerator_equivalence.py`` pins the two
bit-identical.  See ``docs/performance.md`` for the conventions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..geometry.camera import Camera
from ..models.workload import RenderWorkload
from .dram import DramConfig, DramModel
from .engine import EngineConfig, RenderingEngine
from .interleave import FeatureStore, balance_factors, batched_bank_load
from .scheduler import (FramePlan, GreedyPatchScheduler, SchedulerConfig,
                        fixed_partition, split_plan_arrays)
from .sram import PrefetchDoubleBuffer, SramConfig
from .units import ACCELERATOR_FREQ_HZ, DEFAULT_ENERGY, EnergyTable


@dataclass(frozen=True)
class AcceleratorConfig:
    """The paper's accelerator instance (Sec. 5.1 / Table 4)."""

    name: str = "Gen-NeRF"
    frequency_hz: float = ACCELERATOR_FREQ_HZ
    engine: EngineConfig = EngineConfig()
    dram: DramConfig = DramConfig()
    scheduler: SchedulerConfig = SchedulerConfig()
    feature_layout: str = "spatial_interleaved"
    use_greedy_partition: bool = True
    energy: EnergyTable = DEFAULT_ENERGY

    def variant(self, **changes) -> "AcceleratorConfig":
        """A copy of this config with ``changes`` applied — how the
        Fig. 12 ablation variants are derived (see
        :func:`variant_config`)."""
        return replace(self, **changes)


@dataclass
class FrameSimulation:
    """Outcome of simulating one rendered frame."""

    config_name: str
    total_time_s: float
    data_time_s: float          # exposed (non-hidden) prefetch time
    fetch_time_s: float         # total DRAM prefetch time (hidden or not)
    compute_time_s: float       # rendering-engine busy time
    coarse_time_s: float
    prefetch_bytes: float
    pool_macs: float
    pe_utilization: float
    num_patches: int
    energy_j: float
    scheduler_hidden: bool      # run-time partition kept ahead of engine
    plan: Optional[FramePlan] = None

    @property
    def fps(self) -> float:
        """Frames per second at this frame time (Figs. 10/11, Table 4)."""
        return 0.0 if self.total_time_s <= 0 else 1.0 / self.total_time_s

    @property
    def power_w(self) -> float:
        """Average dynamic power over the frame (event-priced energy)."""
        return 0.0 if self.total_time_s <= 0 else \
            self.energy_j / self.total_time_s


class GenNerfAccelerator:
    """Cycle-level simulator for the Gen-NeRF accelerator and variants."""

    def __init__(self, config: AcceleratorConfig = AcceleratorConfig()):
        self.config = config
        self.engine = RenderingEngine(config.engine)
        self.dram = DramModel(config.dram)
        self.double_buffer = PrefetchDoubleBuffer(
            config.engine.prefetch_sram)

    # ------------------------------------------------------------------
    def _feature_store(self, workload: RenderWorkload,
                       sources: Sequence[Camera]) -> FeatureStore:
        """The DRAM-resident scene-feature geometry for this workload:
        S feature maps at the scheduler's feature scale, laid out under
        the configured interleaving scheme (Sec. 4.4)."""
        scale = self.config.scheduler.feature_scale
        intr = sources[0].intrinsics
        return FeatureStore(
            num_views=len(sources),
            height=max(1, int(round(intr.height * scale))),
            width=max(1, int(round(intr.width * scale))),
            channels=workload.fine_dims.feature_dim,
            bytes_per_element=1,
            layout=self.config.feature_layout)

    def plan_frame(self, novel: Camera, sources: Sequence[Camera],
                   near: float, far: float,
                   workload: RenderWorkload) -> FramePlan:
        """Partition the frame into point patches: the greedy scheduler
        (Sec. 4.3) by default, Var-1's fixed slicing when configured.

        Public so callers can schedule once and feed the resulting plan
        to several ``simulate_frame(..., plan=...)`` calls (workload
        sweeps over one camera rig)."""
        sched_cfg = replace(self.config.scheduler,
                            channels=workload.fine_dims.feature_dim)
        if self.config.use_greedy_partition:
            return GreedyPatchScheduler(sched_cfg).plan_frame(
                novel, sources, near, far)
        return fixed_partition(novel, sources, near, far, sched_cfg)

    # ------------------------------------------------------------------
    def simulate_frame(self, workload: RenderWorkload, novel: Camera,
                       sources: Sequence[Camera], near: float, far: float,
                       keep_plan: bool = False,
                       plan: Optional[FramePlan] = None,
                       workers: Optional[int] = 1) -> FrameSimulation:
        """Simulate rendering one frame of ``workload`` from ``novel``.

        The whole frame is evaluated as one grouped array pass — all
        patches' DRAM footprints and SRAM residencies go through the
        batched bank-load / DRAM-service / engine-compute models at
        once instead of a per-patch Python loop (at 800x800 a plan
        holds ~10^4 patches).  Outputs are **bit-identical** to the
        preserved seed loop (:func:`repro.perf.reference.simulate_frame_loop`,
        pinned by ``tests/hardware/test_accelerator_equivalence.py``);
        ``benchmarks/harness.py``'s ``accel_frame_sim`` bench tracks the
        speedup.

        ``plan`` optionally injects a precomputed :class:`FramePlan`
        (e.g. to amortise scheduling across workload sweeps over the
        same camera rig); by default the configured scheduler plans the
        frame first.

        ``workers`` shards the grouped pass itself across cores:
        the plan splits at patch boundaries
        (:func:`repro.hardware.split_plan_arrays`) and each contiguous
        group runs the bank-load / DRAM-service passes in a
        :mod:`repro.core.frame_pool` worker; per-patch arrays come back
        in group order and the engine compute runs in the parent over
        the full concatenation, so every reduction (and the compute
        memo cache's first-occurrence semantics) sees the same frame
        order as the sequential pass — still bit-identical to the seed
        loop at any worker count
        (``tests/hardware/test_frame_sim_sharded.py``).
        The default 1 keeps the historical single-pass path;
        ``None`` autodetects (``REPRO_WORKERS``, then CPU count) and
        stays sequential inside a ``run_variants`` worker.
        """
        if len(sources) != workload.num_views:
            raise ValueError(f"workload expects {workload.num_views} views, "
                             f"got {len(sources)} cameras")
        cfg = self.config
        freq = cfg.frequency_hz
        if plan is None:
            plan = self.plan_frame(novel, sources, near, far, workload)
        store = self._feature_store(workload, sources)
        # On-chip copy of the layout: the prefetch scratchpads use the
        # same interleaving *scheme* over their own bank count
        # (Sec. 4.5), so the scratchpad reuses the DRAM FeatureStore
        # object — deliberately, not stale aliasing: FeatureStore
        # carries geometry + layout only, while the bank count is a
        # call-site parameter, and the Fig. 12 Var-2/3 ablation measures
        # each storage scheme end to end (DRAM *and* scratchpad).
        # ``tests/hardware/test_accelerator.py`` pins this behaviour.
        sram_banks = cfg.engine.prefetch_sram.num_banks
        sram_store = store

        points_per_cell = workload.fine_points_per_ray / plan.depth_bins
        num_patches = plan.num_patches

        if num_patches:
            (fetch_times, compute_times, pool_macs, pool_busy_cycles,
             dram_energy_pj, sram_bytes, sfu_ops) = self._simulate_patches(
                workload, plan, store, sram_store, sram_banks,
                points_per_cell, freq, workers=workers)
        else:
            fetch_times = np.empty(0)
            compute_times = np.empty(0)
            pool_macs = 0.0
            pool_busy_cycles = 0.0
            dram_energy_pj = 0.0
            sram_bytes = 0.0
            sfu_ops = 0.0

        pipeline_s, engine_busy_s = PrefetchDoubleBuffer.pipeline_time(
            fetch_times, compute_times)

        # Stage 1: the lightweight coarse pass.  It reuses the same patch
        # plan with the coarse model's views/channels; its traffic and
        # compute scale accordingly (Sec. 4.5's two-stage execution).
        coarse_time_s = 0.0
        if workload.coarse_points > 0:
            coarse_points_total = (plan.image_height * plan.image_width
                                   * workload.coarse_points)
            avg_points = max(1, int(round(coarse_points_total
                                          / max(plan.num_patches, 1))))
            compute = self.engine.patch_compute(
                workload, avg_points, num_rays=0, coarse_stage=True)
            coarse_compute_s = compute.cycles * plan.num_patches / freq
            traffic_scale = ((workload.coarse_dims.feature_dim
                              / workload.fine_dims.feature_dim)
                             * (workload.coarse_views
                                / max(workload.num_views, 1)))
            coarse_bytes = plan.total_prefetch_bytes * traffic_scale
            coarse_fetch_s = coarse_bytes / cfg.dram.peak_bandwidth_bytes
            coarse_time_s = max(coarse_compute_s, coarse_fetch_s)
            pool_macs += compute.pool_macs * plan.num_patches
            pool_busy_cycles += compute.cycles * plan.num_patches
            dram_energy_pj += coarse_bytes * cfg.dram.io_pj_per_byte
            sram_bytes += coarse_bytes * 2

        total_time_s = pipeline_s + coarse_time_s
        exposed_data_s = max(0.0, pipeline_s - engine_busy_s)

        # Scheduler run-ahead check: the partition for frame t+1 computes
        # during frame t; hidden iff its cycles fit in the frame time.
        sched = GreedyPatchScheduler(cfg.scheduler)
        sched_cycles = sched.scheduling_cycles(len(sources),
                                               plan.image_height,
                                               plan.image_width)
        scheduler_hidden = (sched_cycles / freq) <= total_time_s

        peak_macs_per_s = cfg.engine.pool.macs_per_cycle * freq
        pe_utilization = pool_macs / max(peak_macs_per_s * total_time_s, 1e-12)

        energy_j = (pool_macs * cfg.energy.mac_int8_pj
                    + sram_bytes * (cfg.energy.sram_read_pj_per_byte
                                    + cfg.energy.sram_write_pj_per_byte) / 2
                    + sfu_ops * cfg.energy.special_func_pj
                    + dram_energy_pj) * 1e-12

        return FrameSimulation(
            config_name=cfg.name,
            total_time_s=total_time_s,
            data_time_s=exposed_data_s,
            fetch_time_s=float(fetch_times.sum()),
            compute_time_s=engine_busy_s,
            coarse_time_s=coarse_time_s,
            prefetch_bytes=plan.total_prefetch_bytes,
            pool_macs=pool_macs,
            pe_utilization=pe_utilization,
            num_patches=plan.num_patches,
            energy_j=energy_j,
            scheduler_hidden=scheduler_hidden,
            plan=plan if keep_plan else None,
        )

    # ------------------------------------------------------------------
    def _simulate_patches(self, workload: RenderWorkload, plan: FramePlan,
                          store: FeatureStore, sram_store: FeatureStore,
                          sram_banks: int, points_per_cell: float,
                          freq: float, workers: Optional[int] = 1):
        """The per-patch portion of :meth:`simulate_frame`, batched.

        One grouped array pass replaces
        the seed per-patch loop:

        1. every patch's footprints are concatenated into one (N, 5)
           region array with per-patch segment counts and pushed through
           :func:`repro.hardware.interleave.batched_bank_load` (DRAM
           delta fetches and SRAM residencies alike);
        2. :meth:`repro.hardware.dram.DramModel.service_batch` prices
           all prefetches at once;
        3. patch compute runs through
           :meth:`repro.hardware.engine.RenderingEngine.patch_compute_many`,
           which reproduces the scalar path's memoisation semantics
           exactly (first-occurrence representatives, cache persistence
           across frames) around the array-valued compute formulas.

        ``workers`` > 1 shards steps 1-2: the plan splits into
        contiguous patch groups and each group's bank loads and DRAM
        service run in a frame-pool worker (both models are row-wise
        per patch, so per-patch outputs are bit-equal regardless of
        grouping).  Step 3 stays in the parent and runs over the
        **full** concatenation of the groups' results: the engine memo
        cache keys round the SRAM balance, and "first occurrence wins"
        must mean first in the *frame* — a worker-local compute pass
        could elect a different representative for a colliding key and
        drift in the last float bits (Var-3's uneven balances do
        exactly that).  Parent-side compute also keeps ``self.engine``'s
        cache warm across frames, as the equivalence tests pin.  Scalar
        totals reduce with the same left-to-right :func:`_ordered_sum`
        over the full arrays — never per-group partial sums, which
        would reassociate the float additions — so every output bit
        matches the seed loop's ``+=`` chain at any worker count.
        """
        from ..core import frame_pool  # function-level: core imports us
        # Struct-of-arrays plans (the scheduler's native output since
        # the flat-assembly rewrite) feed the batched bank loads with
        # no per-patch object walk at all; object-built plans (seed
        # loop, fixed_partition) pack lazily through ``plan.arrays``.
        arrays = plan.arrays
        count = frame_pool.resolve_workers(arrays.num_patches, workers)
        groups = split_plan_arrays(arrays, count)
        # The heavy, call-stable object travels in the worker payload
        # (the simulator, for its DRAM model and config); the cheap
        # per-call descriptors (plan shard, store geometry, bank count)
        # ride with each task, so repeated ``simulate_frame`` calls on
        # one rig keep the pool warm.
        state = (self,)
        if len(groups) <= 1:
            parts = [_prefetch_patch_group(state, arrays, store,
                                           sram_store, sram_banks)]
        else:
            tasks = [(group, store, sram_store, sram_banks)
                     for group in groups]
            parts = frame_pool.map_chunks(_prefetch_patch_group, state,
                                          tasks, workers)
        fetch_times = np.concatenate([part[0] for part in parts])
        dram_energy_pj = _ordered_sum(
            np.concatenate([part[1] for part in parts]))
        balances = np.concatenate([part[2] for part in parts])

        bounds = arrays.bounds
        num_rays = (bounds[:, 1] - bounds[:, 0]) \
            * (bounds[:, 3] - bounds[:, 2])
        cells = num_rays * (bounds[:, 5] - bounds[:, 4])
        num_points = np.maximum(
            1, np.rint(cells * points_per_cell).astype(np.int64))

        compute = self.engine.patch_compute_many(workload, num_points,
                                                 num_rays, balances)
        compute_times = compute.cycles / freq
        pool_macs = _ordered_sum(compute.pool_macs)
        pool_busy_cycles = _ordered_sum(compute.pool_cycles)
        sram_bytes = _ordered_sum(arrays.prefetch_bytes * 2)  # write + read
        sfu_ops = _ordered_sum(self.engine.sfu.ops_for_points(num_points))
        return (fetch_times, compute_times, pool_macs, pool_busy_cycles,
                dram_energy_pj, sram_bytes, sfu_ops)


def _prefetch_patch_group(state, arrays, store: FeatureStore,
                          sram_store: FeatureStore, sram_banks: int):
    """Steps 1-2 of :meth:`GenNerfAccelerator._simulate_patches` for one
    contiguous patch group; returns three per-patch arrays
    ``(fetch_times, energy_pj, balances)``.

    Module-level so it pickles for the frame pool.  It deliberately
    stops short of the engine compute: that step is memoised with
    frame-global first-occurrence semantics and runs in the parent
    (see :meth:`GenNerfAccelerator._simulate_patches`).
    """
    accel, = state
    cfg = accel.config

    bank_bytes, bank_acts = batched_bank_load(
        store, arrays.fetch_regions, arrays.fetch_counts,
        cfg.dram.num_banks)
    dram_stats = accel.dram.service_batch(bank_bytes, bank_acts)

    sram_bank_bytes, _ = batched_bank_load(
        sram_store, arrays.resident_regions, arrays.resident_counts,
        sram_banks)
    balances = balance_factors(sram_bank_bytes)
    return (dram_stats.service_time_s, dram_stats.energy_pj, balances)


def _ordered_sum(values: np.ndarray) -> float:
    """Left-to-right float accumulation, matching the seed loop's ``+=``.

    ``np.sum`` reduces pairwise, which can differ from sequential
    accumulation in the last bits; frame totals are pinned bit-identical
    to :func:`repro.perf.reference.simulate_frame_loop`, so the handful
    of scalar totals keep its order (~10^4 Python float adds, ~1 ms —
    noise next to the array passes they summarise).
    """
    total = 0.0
    for value in np.asarray(values).tolist():
        total += value
    return total


# Fig. 12 ablation variants -------------------------------------------------
def variant_config(name: str) -> AcceleratorConfig:
    """Named configurations of the dataflow/storage ablation.

    * ``ours``  — greedy partition + spatial interleaving.
    * ``var1``  — fixed {k, k, D} partition + spatial interleaving.
    * ``var2``  — fixed partition + row-major storage (Fig. 6a).
    * ``var3``  — fixed partition + view-wise interleaving.
    """
    base = AcceleratorConfig()
    if name == "ours":
        return base.variant(name="Gen-NeRF (ours)")
    if name == "var1":
        return base.variant(name="Var-1 (fixed slicing)",
                            use_greedy_partition=False)
    if name == "var2":
        return base.variant(name="Var-2 (row-major storage)",
                            use_greedy_partition=False,
                            feature_layout="row_major")
    if name == "var3":
        return base.variant(name="Var-3 (view-wise storage)",
                            use_greedy_partition=False,
                            feature_layout="view_interleaved")
    raise KeyError(f"unknown variant {name!r}")
