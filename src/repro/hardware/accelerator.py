"""Top-level Gen-NeRF accelerator: cycle-level frame simulation.

Composes the pieces of Fig. 7 — workload scheduler, memory controller +
LPDDR4 DRAM, prefetch double buffer, rendering engine (PPU, PE pool,
SFU) — into a per-frame simulation:

1. The scheduler partitions the H x W x D cube into point patches
   (greedy, or Var-1's fixed slicing for the ablation).
2. Each patch's prefetch time comes from the DRAM bank model under the
   configured feature-storage layout (spatial interleaving, or Var-2/3's
   row/view interleaving).
3. Each patch's compute time comes from the rendering engine model; the
   on-chip SRAM balance of the layout throttles the interpolator.
4. The double buffer overlaps fetch i+1 with compute i; the frame time
   is the pipelined fold plus the coarse stage (stage 1 of Sec. 4.5).

Results carry the latency breakdown (data vs compute), PE utilisation
and energy — the quantities in Figs. 10-12 and Tables 1/4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..geometry.camera import Camera
from ..models.workload import RenderWorkload
from .dram import DramConfig, DramModel
from .engine import EngineConfig, RenderingEngine
from .interleave import FeatureStore, balance_factor, bank_load_for_footprints
from .scheduler import (FramePlan, GreedyPatchScheduler, SchedulerConfig,
                        fixed_partition)
from .sram import PrefetchDoubleBuffer, SramConfig
from .units import ACCELERATOR_FREQ_HZ, DEFAULT_ENERGY, EnergyTable


@dataclass(frozen=True)
class AcceleratorConfig:
    """The paper's accelerator instance (Sec. 5.1 / Table 4)."""

    name: str = "Gen-NeRF"
    frequency_hz: float = ACCELERATOR_FREQ_HZ
    engine: EngineConfig = EngineConfig()
    dram: DramConfig = DramConfig()
    scheduler: SchedulerConfig = SchedulerConfig()
    feature_layout: str = "spatial_interleaved"
    use_greedy_partition: bool = True
    energy: EnergyTable = DEFAULT_ENERGY

    def variant(self, **changes) -> "AcceleratorConfig":
        return replace(self, **changes)


@dataclass
class FrameSimulation:
    """Outcome of simulating one rendered frame."""

    config_name: str
    total_time_s: float
    data_time_s: float          # exposed (non-hidden) prefetch time
    fetch_time_s: float         # total DRAM prefetch time (hidden or not)
    compute_time_s: float       # rendering-engine busy time
    coarse_time_s: float
    prefetch_bytes: float
    pool_macs: float
    pe_utilization: float
    num_patches: int
    energy_j: float
    scheduler_hidden: bool      # run-time partition kept ahead of engine
    plan: Optional[FramePlan] = None

    @property
    def fps(self) -> float:
        return 0.0 if self.total_time_s <= 0 else 1.0 / self.total_time_s

    @property
    def power_w(self) -> float:
        return 0.0 if self.total_time_s <= 0 else \
            self.energy_j / self.total_time_s


class GenNerfAccelerator:
    """Cycle-level simulator for the Gen-NeRF accelerator and variants."""

    def __init__(self, config: AcceleratorConfig = AcceleratorConfig()):
        self.config = config
        self.engine = RenderingEngine(config.engine)
        self.dram = DramModel(config.dram)
        self.double_buffer = PrefetchDoubleBuffer(
            config.engine.prefetch_sram)

    # ------------------------------------------------------------------
    def _feature_store(self, workload: RenderWorkload,
                       sources: Sequence[Camera]) -> FeatureStore:
        scale = self.config.scheduler.feature_scale
        intr = sources[0].intrinsics
        return FeatureStore(
            num_views=len(sources),
            height=max(1, int(round(intr.height * scale))),
            width=max(1, int(round(intr.width * scale))),
            channels=workload.fine_dims.feature_dim,
            bytes_per_element=1,
            layout=self.config.feature_layout)

    def _plan(self, novel: Camera, sources: Sequence[Camera], near: float,
              far: float, workload: RenderWorkload) -> FramePlan:
        sched_cfg = replace(self.config.scheduler,
                            channels=workload.fine_dims.feature_dim)
        if self.config.use_greedy_partition:
            return GreedyPatchScheduler(sched_cfg).plan_frame(
                novel, sources, near, far)
        return fixed_partition(novel, sources, near, far, sched_cfg)

    # ------------------------------------------------------------------
    def simulate_frame(self, workload: RenderWorkload, novel: Camera,
                       sources: Sequence[Camera], near: float, far: float,
                       keep_plan: bool = False) -> FrameSimulation:
        """Simulate rendering one frame of ``workload`` from ``novel``."""
        if len(sources) != workload.num_views:
            raise ValueError(f"workload expects {workload.num_views} views, "
                             f"got {len(sources)} cameras")
        cfg = self.config
        freq = cfg.frequency_hz
        plan = self._plan(novel, sources, near, far, workload)
        store = self._feature_store(workload, sources)
        # On-chip copy of the layout: the prefetch scratchpads use the
        # same interleaving scheme over their own bank count (Sec. 4.5).
        sram_banks = cfg.engine.prefetch_sram.num_banks
        sram_store = store

        cube_cells = plan.image_height * plan.image_width * plan.depth_bins
        points_per_cell = workload.fine_points_per_ray / plan.depth_bins

        fetch_times = np.empty(plan.num_patches)
        compute_times = np.empty(plan.num_patches)
        pool_macs = 0.0
        pool_busy_cycles = 0.0
        dram_energy_pj = 0.0
        sram_bytes = 0.0
        sfu_ops = 0.0

        for index, patch in enumerate(plan.patches):
            bank_bytes, bank_acts = bank_load_for_footprints(
                store, patch.footprints, cfg.dram.num_banks)
            stats = self.dram.service(bank_bytes, bank_acts)
            fetch_times[index] = stats.service_time_s
            dram_energy_pj += stats.energy_pj

            sram_bank_bytes, _ = bank_load_for_footprints(
                sram_store, patch.resident_footprints, sram_banks)
            balance = balance_factor(sram_bank_bytes)
            cells = patch.num_pixels * patch.num_depth_bins
            num_points = max(1, int(round(cells * points_per_cell)))
            num_rays = patch.num_pixels
            compute = self.engine.patch_compute(workload, num_points,
                                                num_rays,
                                                sram_balance=balance)
            compute_times[index] = compute.cycles / freq
            pool_macs += compute.pool_macs
            pool_busy_cycles += compute.pool_cycles
            sram_bytes += patch.prefetch_bytes * 2  # write then read
            sfu_ops += self.engine.sfu.ops_for_points(num_points)

        pipeline_s, engine_busy_s = PrefetchDoubleBuffer.pipeline_time(
            fetch_times, compute_times)

        # Stage 1: the lightweight coarse pass.  It reuses the same patch
        # plan with the coarse model's views/channels; its traffic and
        # compute scale accordingly (Sec. 4.5's two-stage execution).
        coarse_time_s = 0.0
        if workload.coarse_points > 0:
            coarse_points_total = (plan.image_height * plan.image_width
                                   * workload.coarse_points)
            avg_points = max(1, int(round(coarse_points_total
                                          / max(plan.num_patches, 1))))
            compute = self.engine.patch_compute(
                workload, avg_points, num_rays=0, coarse_stage=True)
            coarse_compute_s = compute.cycles * plan.num_patches / freq
            traffic_scale = ((workload.coarse_dims.feature_dim
                              / workload.fine_dims.feature_dim)
                             * (workload.coarse_views
                                / max(workload.num_views, 1)))
            coarse_bytes = plan.total_prefetch_bytes * traffic_scale
            coarse_fetch_s = coarse_bytes / cfg.dram.peak_bandwidth_bytes
            coarse_time_s = max(coarse_compute_s, coarse_fetch_s)
            pool_macs += compute.pool_macs * plan.num_patches
            pool_busy_cycles += compute.cycles * plan.num_patches
            dram_energy_pj += coarse_bytes * cfg.dram.io_pj_per_byte
            sram_bytes += coarse_bytes * 2

        total_time_s = pipeline_s + coarse_time_s
        exposed_data_s = max(0.0, pipeline_s - engine_busy_s)

        # Scheduler run-ahead check: the partition for frame t+1 computes
        # during frame t; hidden iff its cycles fit in the frame time.
        sched = GreedyPatchScheduler(cfg.scheduler)
        sched_cycles = sched.scheduling_cycles(len(sources),
                                               plan.image_height,
                                               plan.image_width)
        scheduler_hidden = (sched_cycles / freq) <= total_time_s

        peak_macs_per_s = cfg.engine.pool.macs_per_cycle * freq
        pe_utilization = pool_macs / max(peak_macs_per_s * total_time_s, 1e-12)

        energy_j = (pool_macs * cfg.energy.mac_int8_pj
                    + sram_bytes * (cfg.energy.sram_read_pj_per_byte
                                    + cfg.energy.sram_write_pj_per_byte) / 2
                    + sfu_ops * cfg.energy.special_func_pj
                    + dram_energy_pj) * 1e-12

        return FrameSimulation(
            config_name=cfg.name,
            total_time_s=total_time_s,
            data_time_s=exposed_data_s,
            fetch_time_s=float(fetch_times.sum()),
            compute_time_s=engine_busy_s,
            coarse_time_s=coarse_time_s,
            prefetch_bytes=plan.total_prefetch_bytes,
            pool_macs=pool_macs,
            pe_utilization=pe_utilization,
            num_patches=plan.num_patches,
            energy_j=energy_j,
            scheduler_hidden=scheduler_hidden,
            plan=plan if keep_plan else None,
        )


# Fig. 12 ablation variants -------------------------------------------------
def variant_config(name: str) -> AcceleratorConfig:
    """Named configurations of the dataflow/storage ablation.

    * ``ours``  — greedy partition + spatial interleaving.
    * ``var1``  — fixed {k, k, D} partition + spatial interleaving.
    * ``var2``  — fixed partition + row-major storage (Fig. 6a).
    * ``var3``  — fixed partition + view-wise interleaving.
    """
    base = AcceleratorConfig()
    if name == "ours":
        return base.variant(name="Gen-NeRF (ours)")
    if name == "var1":
        return base.variant(name="Var-1 (fixed slicing)",
                            use_greedy_partition=False)
    if name == "var2":
        return base.variant(name="Var-2 (row-major storage)",
                            use_greedy_partition=False,
                            feature_layout="row_major")
    if name == "var3":
        return base.variant(name="Var-3 (view-wise storage)",
                            use_greedy_partition=False,
                            feature_layout="view_interleaved")
    raise KeyError(f"unknown variant {name!r}")
