"""``repro.hardware`` — the Gen-NeRF accelerator and baseline devices.

Cycle-level simulator of the paper's accelerator (Sec. 4-5): DRAM/SRAM
models, feature-storage interleaving, systolic PE pool, preprocessing
and special-function units, the greedy 3D-point-patch workload
scheduler, the composed frame simulator with Fig. 12's ablation
variants, GPU roofline baselines, the ICARUS spec row, and the Table 1
area/power component model.
"""

from .accelerator import (AcceleratorConfig, FrameSimulation,
                          GenNerfAccelerator, variant_config)
from .area_power import (ModuleBudget, PAPER_TABLE1, full_chip_budget,
                         prefetch_buffer_budget, preprocessing_unit_budget,
                         rendering_engine_budget, workload_scheduler_budget)
from .dram import (DramAccessStats, DramBatchStats, DramConfig, DramModel,
                   GDDR6_2080TI, LPDDR4_1600_TX2, LPDDR4_2400)
from .energy import (EnergyReport, dynamic_energy, frame_energy_from_power,
                     typical_chip_power_w)
from .engine import (EngineConfig, PatchCompute, PatchComputeBatch,
                     RenderingEngine, point_network_gemms, ray_module_gemms)
from .gpu_model import (GpuModel, GpuSimulation, GpuSpec, JETSON_TX2,
                        RTX_2080TI)
from .icarus import (AcceleratorSpec, GEN_NERF_SPEC, ICARUS,
                     JETSON_TX2_SPEC, RTX_2080TI_SPEC, TABLE4_PAPER_ROWS)
from .interleave import (FeatureStore, FootprintRegion, LAYOUTS,
                         balance_factor, balance_factors,
                         bank_load_for_footprints, batched_bank_load,
                         regions_as_array)
from .pe_pool import PePool, PePoolConfig, PoolExecution, PoolExecutionBatch
from .preprocessing import PreprocessingConfig, PreprocessingUnit
from .scheduler import (DEFAULT_CANDIDATES, FramePlan, GreedyPatchScheduler,
                        Patch, PatchShape, PlanArrays, SchedulerConfig,
                        fixed_partition, split_plan_arrays)
from .special_function import SfuConfig, SpecialFunctionUnit
from .sram import PrefetchDoubleBuffer, SramBank, SramConfig
from .systolic import (GemmShape, SystolicConfig, gemm_cycles,
                       gemm_cycles_batch, gemm_utilization)
from .units import (ACCELERATOR_FREQ_HZ, DEFAULT_ENERGY, EnergyTable, GB_PER_S,
                    KB, MB, cycles_to_seconds, seconds_to_cycles)

__all__ = [
    "AcceleratorConfig", "FrameSimulation", "GenNerfAccelerator",
    "variant_config",
    "ModuleBudget", "PAPER_TABLE1", "full_chip_budget",
    "workload_scheduler_budget", "preprocessing_unit_budget",
    "rendering_engine_budget", "prefetch_buffer_budget",
    "DramConfig", "DramModel", "DramAccessStats", "DramBatchStats",
    "LPDDR4_2400", "LPDDR4_1600_TX2", "GDDR6_2080TI",
    "EnergyReport", "dynamic_energy", "typical_chip_power_w",
    "frame_energy_from_power",
    "EngineConfig", "RenderingEngine", "PatchCompute", "PatchComputeBatch",
    "point_network_gemms", "ray_module_gemms",
    "GpuModel", "GpuSimulation", "GpuSpec", "RTX_2080TI", "JETSON_TX2",
    "AcceleratorSpec", "ICARUS", "GEN_NERF_SPEC", "JETSON_TX2_SPEC",
    "RTX_2080TI_SPEC", "TABLE4_PAPER_ROWS",
    "FeatureStore", "FootprintRegion", "LAYOUTS", "balance_factor",
    "balance_factors", "bank_load_for_footprints", "batched_bank_load",
    "regions_as_array",
    "PePool", "PePoolConfig", "PoolExecution", "PoolExecutionBatch",
    "PreprocessingConfig", "PreprocessingUnit",
    "GreedyPatchScheduler", "SchedulerConfig", "PatchShape", "Patch",
    "FramePlan", "PlanArrays", "fixed_partition", "split_plan_arrays",
    "DEFAULT_CANDIDATES",
    "SfuConfig", "SpecialFunctionUnit",
    "PrefetchDoubleBuffer", "SramBank", "SramConfig",
    "GemmShape", "SystolicConfig", "gemm_cycles", "gemm_cycles_batch",
    "gemm_utilization",
    "EnergyTable", "DEFAULT_ENERGY", "ACCELERATOR_FREQ_HZ", "KB", "MB",
    "GB_PER_S", "cycles_to_seconds", "seconds_to_cycles",
]
