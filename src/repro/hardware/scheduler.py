"""Workload scheduler: greedy 3D-point-patch partition (paper Sec. 4.3).

The H x W x D workload cube (pixels x pixels x depth bins) is divided
into point patches processed one prefetch at a time.  For each *local
region* (a macro tile of the image times the full depth range — "the
same number of 3D sampled points" per region, as the paper specifies)
the scheduler evaluates M candidate patch shapes {dh, dw, dd}: each
candidate's frusta are projected onto every source view (the *vertex
projector*), the covered tetragon areas estimate the prefetch bytes (the
*area calculator*), and the shape minimising bytes-per-point wins (the
*area comparator*) subject to the paper's two constraints:

1. patches at the same (h, w) share one partition across depth — here by
   construction, since a candidate fixes (dh, dw) for a whole region;
2. a patch's prefetch bytes must fit the prefetch buffer.

The run-time cost of scheduling itself is modelled
(:meth:`GreedyPatchScheduler.scheduling_cycles`) so the claim that the
scheduler keeps ahead of the rendering engine is testable.

``fixed_partition`` provides Fig. 12's Var-1 baseline: constant
{k, k, D} patches sliced along rows/columns with the largest k that fits
the buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.camera import Camera
from .interleave import FeatureStore, FootprintRegion, regions_as_array
from .units import KB


@dataclass(frozen=True)
class PatchShape:
    """A candidate patch shape in workload-cube units."""

    dh: int
    dw: int
    dd: int

    @property
    def cells(self) -> int:
        return self.dh * self.dw * self.dd


DEFAULT_CANDIDATES: Tuple[PatchShape, ...] = (
    PatchShape(32, 32, 8),
    PatchShape(32, 32, 16),
    PatchShape(16, 16, 16),
    PatchShape(16, 16, 64),
    PatchShape(8, 8, 64),
    PatchShape(16, 32, 16),
    PatchShape(32, 16, 16),
)


@dataclass(frozen=True)
class SchedulerConfig:
    """Static configuration of the partition."""

    depth_bins: int = 64
    macro_tile: int = 32
    candidates: Tuple[PatchShape, ...] = DEFAULT_CANDIDATES
    buffer_bytes: int = 256 * KB
    feature_scale: float = 0.5
    channels: int = 32
    bytes_per_element: int = 1
    guard_band: float = 2.0     # bilinear guard ring in feature pixels

    def __post_init__(self):
        for cand in self.candidates:
            if self.macro_tile % cand.dh or self.macro_tile % cand.dw:
                raise ValueError(f"candidate {cand} does not tile the "
                                 f"{self.macro_tile}px macro tile")
            if self.depth_bins % cand.dd:
                raise ValueError(f"candidate {cand} does not divide "
                                 f"depth_bins={self.depth_bins}")


@dataclass
class Patch:
    """One scheduled point patch.

    ``footprints`` describe the DRAM-visible *delta* regions actually
    fetched (after on-chip reuse of the previous slab's overlap);
    ``resident_footprints`` the full per-view regions resident in the
    prefetch buffer while the patch computes — the interpolator's SRAM
    reads spread over the banks holding these.
    """

    h0: int
    h1: int
    w0: int
    w1: int
    d0: int
    d1: int
    prefetch_bytes: float
    footprints: List[FootprintRegion]
    resident_footprints: List[FootprintRegion] = field(default_factory=list)

    def __post_init__(self):
        if not self.resident_footprints:
            self.resident_footprints = list(self.footprints)

    @property
    def num_pixels(self) -> int:
        return (self.h1 - self.h0) * (self.w1 - self.w0)

    @property
    def num_depth_bins(self) -> int:
        return self.d1 - self.d0


@dataclass
class PlanArrays:
    """Struct-of-arrays view of a frame plan.

    This is the representation the batched frame simulator consumes
    directly (``GenNerfAccelerator._simulate_patches``): patch bounds
    and prefetch bytes as flat arrays, and the per-view footprints as
    the concatenated (N, 5) ``(view, row0, row1, col0, col1)`` region
    rows with per-patch segment counts that
    :func:`repro.hardware.interleave.batched_bank_load` takes.
    """

    bounds: np.ndarray            # (P, 6) int64: h0, h1, w0, w1, d0, d1
    prefetch_bytes: np.ndarray    # (P,) float64
    fetch_regions: np.ndarray     # (N, 5) int64 delta-fetch regions
    fetch_counts: np.ndarray      # (P,) int64 regions per patch
    resident_regions: np.ndarray  # (M, 5) int64 resident regions
    resident_counts: np.ndarray   # (P,) int64

    @property
    def num_patches(self) -> int:
        return self.bounds.shape[0]


def split_plan_arrays(arrays: PlanArrays, shards: int) -> List[PlanArrays]:
    """Split a plan into ``shards`` contiguous patch groups.

    The intra-frame sharded simulator
    (:meth:`repro.hardware.GenNerfAccelerator.simulate_frame`) fans one
    group per worker and concatenates the per-patch results back in
    group order.  Groups cut only *between* patches: each patch's
    region-row segment (``fetch_counts[i]`` rows of ``fetch_regions``,
    likewise resident) travels whole with its patch, so every group is
    itself a well-formed :class:`PlanArrays` and the per-patch batched
    models — bank bincounts, DRAM service, balance factors, engine
    compute — see exactly the rows they saw in the unsharded pass.
    Group sizes follow ``np.array_split`` convention (first
    ``P % shards`` groups take one extra patch); ``shards`` clamps to
    ``[1, num_patches]`` and a clamp to 1 returns ``[arrays]`` whole.
    """
    total = arrays.num_patches
    shards = max(1, min(int(shards), max(total, 1)))
    if shards <= 1:
        return [arrays]
    fetch_offsets = np.concatenate(
        [[0], np.cumsum(arrays.fetch_counts)]).astype(np.int64)
    resident_offsets = np.concatenate(
        [[0], np.cumsum(arrays.resident_counts)]).astype(np.int64)
    base, extra = divmod(total, shards)
    groups: List[PlanArrays] = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        groups.append(PlanArrays(
            bounds=arrays.bounds[start:stop],
            prefetch_bytes=arrays.prefetch_bytes[start:stop],
            fetch_regions=arrays.fetch_regions[
                fetch_offsets[start]:fetch_offsets[stop]],
            fetch_counts=arrays.fetch_counts[start:stop],
            resident_regions=arrays.resident_regions[
                resident_offsets[start]:resident_offsets[stop]],
            resident_counts=arrays.resident_counts[start:stop]))
        start = stop
    return groups


class FramePlan:
    """Output of scheduling one frame.

    Struct-of-arrays first: :meth:`GreedyPatchScheduler.plan_frame`
    builds the flat :class:`PlanArrays` directly and the batched frame
    simulation consumes them without ever constructing Python objects;
    the ``patches`` list of :class:`Patch`/:class:`FootprintRegion`
    objects is materialised **on demand** (and cached) for object
    consumers — the seed simulation loop, tests, diagnostics.  Plans
    can equally be built *from* an object list (``patches=``, used by
    the seed planner and ``fixed_partition``), in which case the array
    view is derived lazily; both representations describe the same
    plan bit for bit (``tests/hardware/test_scheduler_equivalence.py``).
    """

    def __init__(self, patches: Optional[List[Patch]] = None,
                 total_prefetch_bytes: float = 0.0,
                 candidate_histogram: Optional[Dict[PatchShape, int]] = None,
                 image_height: int = 0, image_width: int = 0,
                 depth_bins: int = 0,
                 arrays: Optional[PlanArrays] = None):
        if patches is None and arrays is None:
            raise ValueError("FramePlan needs patches or arrays")
        self._patches = patches
        self._arrays = arrays
        self.total_prefetch_bytes = total_prefetch_bytes
        self.candidate_histogram = candidate_histogram or {}
        self.image_height = image_height
        self.image_width = image_width
        self.depth_bins = depth_bins

    # ------------------------------------------------------------------
    @property
    def num_patches(self) -> int:
        if self._arrays is not None:
            return self._arrays.num_patches
        return len(self._patches)

    @property
    def patches(self) -> List[Patch]:
        """Patch objects, materialised from the arrays on first use."""
        if self._patches is None:
            self._patches = self._materialise_patches()
        return self._patches

    @property
    def arrays(self) -> PlanArrays:
        """Flat arrays, derived from the object list on first use."""
        if self._arrays is None:
            self._arrays = self._pack_arrays()
        return self._arrays

    def bytes_per_cube_cell(self) -> float:
        cells = self.image_height * self.image_width * self.depth_bins
        return self.total_prefetch_bytes / max(cells, 1)

    # ------------------------------------------------------------------
    def _materialise_patches(self) -> List[Patch]:
        arr = self._arrays
        bounds = arr.bounds.tolist()
        bytes_list = arr.prefetch_bytes.tolist()
        fetch = arr.fetch_regions.tolist()
        resident = arr.resident_regions.tolist()
        fetch_offsets = np.concatenate(
            [[0], np.cumsum(arr.fetch_counts)]).tolist()
        res_offsets = np.concatenate(
            [[0], np.cumsum(arr.resident_counts)]).tolist()
        patches = []
        for index, (h0, h1, w0, w1, d0, d1) in enumerate(bounds):
            footprints = [
                FootprintRegion(view=v, row0=r0, row1=r1, col0=c0, col1=c1)
                for v, r0, r1, c0, c1 in
                fetch[fetch_offsets[index]:fetch_offsets[index + 1]]]
            res = [
                FootprintRegion(view=v, row0=r0, row1=r1, col0=c0, col1=c1)
                for v, r0, r1, c0, c1 in
                resident[res_offsets[index]:res_offsets[index + 1]]]
            patches.append(Patch(h0=h0, h1=h1, w0=w0, w1=w1, d0=d0, d1=d1,
                                 prefetch_bytes=bytes_list[index],
                                 footprints=footprints,
                                 resident_footprints=res))
        return patches

    def _pack_arrays(self) -> PlanArrays:
        patches = self._patches
        bounds = np.array([(p.h0, p.h1, p.w0, p.w1, p.d0, p.d1)
                           for p in patches],
                          dtype=np.int64).reshape(-1, 6)
        prefetch = np.array([p.prefetch_bytes for p in patches],
                            dtype=np.float64)
        fetch_regions = regions_as_array(
            [fp for p in patches for fp in p.footprints])
        fetch_counts = np.fromiter((len(p.footprints) for p in patches),
                                   dtype=np.int64, count=len(patches))
        resident_regions = regions_as_array(
            [fp for p in patches for fp in p.resident_footprints])
        resident_counts = np.fromiter(
            (len(p.resident_footprints) for p in patches),
            dtype=np.int64, count=len(patches))
        return PlanArrays(bounds=bounds, prefetch_bytes=prefetch,
                          fetch_regions=fetch_regions,
                          fetch_counts=fetch_counts,
                          resident_regions=resident_regions,
                          resident_counts=resident_counts)




def _polygon_areas(points: np.ndarray) -> np.ndarray:
    """Areas of near-convex point sets (T, K, 2) via centroid-angle sort.

    Exact for points in convex position (true for projected frustum
    corners away from degeneracies); a documented estimator otherwise —
    this is the same quantity the hardware's area calculator produces
    from the projected tetragon.
    """
    centroid = points.mean(axis=1, keepdims=True)
    angles = np.arctan2(points[..., 1] - centroid[..., 1],
                        points[..., 0] - centroid[..., 0])
    order = np.argsort(angles, axis=1)
    ordered = np.take_along_axis(points, order[..., None], axis=1)
    x, y = ordered[..., 0], ordered[..., 1]
    x_next = np.roll(x, -1, axis=1)
    y_next = np.roll(y, -1, axis=1)
    return 0.5 * np.abs(np.sum(x * y_next - y * x_next, axis=1))


class GreedyPatchScheduler:
    """Software model of the workload scheduler block (Fig. 7, right)."""

    def __init__(self, config: SchedulerConfig = SchedulerConfig()):
        self.config = config

    # ------------------------------------------------------------------
    def _tile_grid(self, height: int, width: int, shape: PatchShape
                   ) -> Tuple[np.ndarray, np.ndarray]:
        hs = np.arange(0, height, shape.dh)
        ws = np.arange(0, width, shape.dw)
        grid_h, grid_w = np.meshgrid(hs, ws, indexing="ij")
        return grid_h.ravel(), grid_w.ravel()

    def _frustum_corners_slabs(self, novel: Camera, h0: np.ndarray,
                               w0: np.ndarray, h1: np.ndarray,
                               w1: np.ndarray, depth_edges: np.ndarray
                               ) -> np.ndarray:
        """(n_slabs, T, 8, 3) world corners for every depth slab at once.

        ``depth_edges`` has n_slabs+1 entries; slab s spans
        [edges[s], edges[s+1]].  One unprojection covers all slabs — the
        per-point math is unchanged from the per-slab version, so the
        corners are bit-identical.
        """
        tiles = h0.shape[0]
        n_slabs = depth_edges.shape[0] - 1
        pixel_corners = np.stack([
            np.stack([w0, h0], axis=-1),
            np.stack([w1, h0], axis=-1),
            np.stack([w1, h1], axis=-1),
            np.stack([w0, h1], axis=-1),
        ], axis=1).astype(np.float64)                      # (T, 4, 2)
        # (n_slabs, 2 ends, T, 4 corners): every (slab, end) pair reuses
        # the same pixel corners at its own depth.
        slab_depths = np.stack([depth_edges[:-1], depth_edges[1:]], axis=1)
        pixels = np.broadcast_to(pixel_corners,
                                 (n_slabs, 2, tiles, 4, 2)).reshape(-1, 2)
        depths = np.broadcast_to(slab_depths[..., None, None],
                                 (n_slabs, 2, tiles, 4)).reshape(-1)
        points = novel.unproject(pixels, depths)
        corners = points.reshape(n_slabs, 2, tiles, 4, 3)
        return corners.transpose(0, 2, 1, 3, 4).reshape(n_slabs, tiles, 8, 3)

    def _footprint_stats(self, corners: np.ndarray, source: Camera
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-tile (location count, bbox rows/cols) on one source view.

        Returns ``(locations, bbox)`` with bbox as (T, 4) int arrays of
        (row0, row1, col0, col1) at feature resolution, clipped to the
        feature map.  Tiles with corners behind the camera are charged
        the full feature map (worst case, forcing the comparator away
        from such shapes).
        """
        cfg = self.config
        feat_w = max(1, int(round(source.intrinsics.width * cfg.feature_scale)))
        feat_h = max(1, int(round(source.intrinsics.height * cfg.feature_scale)))
        tiles = corners.shape[0]

        pixels, depth = source.project(corners.reshape(-1, 3),
                                       return_depth=True)
        pixels = (pixels * cfg.feature_scale).reshape(tiles, 8, 2)
        depth = depth.reshape(tiles, 8)
        bad = (depth <= 1e-9).any(axis=1)

        clipped = np.clip(pixels, [0.0, 0.0], [feat_w - 1.0, feat_h - 1.0])
        areas = _polygon_areas(clipped)
        col0 = np.floor(clipped[..., 0].min(axis=1)).astype(np.int64)
        col1 = np.ceil(clipped[..., 0].max(axis=1)).astype(np.int64) + 1
        row0 = np.floor(clipped[..., 1].min(axis=1)).astype(np.int64)
        row1 = np.ceil(clipped[..., 1].max(axis=1)).astype(np.int64) + 1

        guard = cfg.guard_band * ((row1 - row0) + (col1 - col0))
        locations = np.minimum(areas + guard, float(feat_w * feat_h))
        locations = np.where(bad, float(feat_w * feat_h), locations)
        row0 = np.where(bad, 0, row0)
        row1 = np.where(bad, feat_h, row1)
        col0 = np.where(bad, 0, col0)
        col1 = np.where(bad, feat_w, col1)
        bbox = np.stack([row0, row1, col0, col1], axis=-1)
        return locations, bbox

    # ------------------------------------------------------------------
    def evaluate_candidate(self, novel: Camera, sources: Sequence[Camera],
                           height: int, width: int, shape: PatchShape,
                           near: float, far: float):
        """Per-tile prefetch costs for one candidate over the whole frame.

        Returns ``(h0, w0, h1, w1, full_bytes, delta_bytes, delta_locs,
        bboxes)`` where arrays are per-tile-per-slab(-per-view):

        * ``full_bytes`` (T, n_slabs) — complete footprint of each slab
          patch; this is what must *fit the prefetch buffer*.
        * ``delta_bytes``/``delta_locs`` — DRAM traffic after delta
          fetching: consecutive depth slabs of a tile are processed
          back-to-back (scheduler constraint 1), so the overlap with the
          previous slab's footprint is serviced buffer-to-buffer on chip
          and only the new region is fetched from DRAM.
        * ``bboxes`` (T, n_slabs, S, 4) — feature-map bounding boxes.
        """
        cfg = self.config
        h0, w0 = self._tile_grid(height, width, shape)
        h1 = np.minimum(h0 + shape.dh, height)
        w1 = np.minimum(w0 + shape.dw, width)
        n_slabs = cfg.depth_bins // shape.dd
        tiles = h0.shape[0]
        num_views = len(sources)

        # All slabs' frusta in one unprojection, then one projection per
        # view over the whole (slab, tile) block — the Python loop is
        # over the S source views only, not n_slabs x S.
        depth_edges = near + (far - near) \
            * (np.arange(n_slabs + 1) * shape.dd) / cfg.depth_bins
        corners = self._frustum_corners_slabs(novel, h0, w0, h1, w1,
                                              depth_edges)
        flat_corners = corners.reshape(n_slabs * tiles, 8, 3)
        locs = np.zeros((tiles, n_slabs, num_views))
        bboxes = np.zeros((tiles, n_slabs, num_views, 4), dtype=np.int64)
        for view, source in enumerate(sources):
            locations, bbox = self._footprint_stats(flat_corners, source)
            locs[:, :, view] = locations.reshape(n_slabs, tiles).T
            bboxes[:, :, view] = bbox.reshape(n_slabs, tiles, 4) \
                .transpose(1, 0, 2)

        # Depth-delta reuse: consecutive slabs of a tile overlap; all
        # slab pairs are independent, so the per-slab loop collapses to
        # one shifted-slice pass.
        delta_locs = locs.copy()
        if n_slabs > 1:
            prev = bboxes[:, :-1]
            curr = bboxes[:, 1:]
            inter_rows = np.maximum(
                0, np.minimum(prev[..., 1], curr[..., 1])
                - np.maximum(prev[..., 0], curr[..., 0]))
            inter_cols = np.maximum(
                0, np.minimum(prev[..., 3], curr[..., 3])
                - np.maximum(prev[..., 2], curr[..., 2]))
            area = np.maximum(
                (curr[..., 1] - curr[..., 0])
                * (curr[..., 3] - curr[..., 2]), 1)
            overlap_fraction = np.clip(inter_rows * inter_cols / area, 0, 1)
            delta_locs[:, 1:] *= (1.0 - overlap_fraction)
        delta_locs = np.maximum(delta_locs, 16.0)   # control-granule floor

        elem = cfg.channels * cfg.bytes_per_element
        full_bytes = locs.sum(axis=2) * elem
        delta_bytes = delta_locs.sum(axis=2) * elem
        return h0, w0, h1, w1, full_bytes, delta_bytes, delta_locs, bboxes

    def plan_frame(self, novel: Camera, sources: Sequence[Camera],
                   near: float, far: float) -> FramePlan:
        """Greedy partition of the whole frame (Fig. 5 flow)."""
        cfg = self.config
        height = novel.intrinsics.height
        width = novel.intrinsics.width
        macro = cfg.macro_tile
        macro_rows = int(np.ceil(height / macro))
        macro_cols = int(np.ceil(width / macro))
        num_macros = macro_rows * macro_cols

        per_candidate = []
        macro_cost = np.full((len(cfg.candidates), num_macros), np.inf)
        for c_index, shape in enumerate(cfg.candidates):
            evaluated = self.evaluate_candidate(novel, sources, height,
                                                width, shape, near, far)
            h0, w0, h1, w1, full_bytes, delta_bytes, delta_locs, bboxes = \
                evaluated
            per_candidate.append(evaluated)
            macro_index = (h0 // macro) * macro_cols + (w0 // macro)
            tile_total = delta_bytes.sum(axis=1)     # DRAM traffic (greedy
            # minimises memory accesses, Fig. 5)
            # Buffer constraint: every slab-patch footprint must fit.
            fits = (full_bytes <= cfg.buffer_bytes).all(axis=1)
            cost = np.where(fits, tile_total, np.inf)
            sums = np.zeros(num_macros)
            bad = np.zeros(num_macros, dtype=bool)
            np.add.at(sums, macro_index, np.where(np.isinf(cost), 0.0, cost))
            np.logical_or.at(bad, macro_index, np.isinf(cost))
            macro_cost[c_index] = np.where(bad, np.inf, sums)

        chosen = np.argmin(macro_cost, axis=0)
        # If no candidate fits a macro tile (extreme footprints), fall
        # back to the candidate with the fewest cells per patch.
        fallback = int(np.argmin([c.cells for c in cfg.candidates]))
        no_fit = np.isinf(macro_cost.min(axis=0))
        chosen[no_fit] = fallback

        # Struct-of-arrays patch assembly: no Python object is built
        # here at all.  Per candidate, the selected tiles' bounds,
        # prefetch bytes, and per-view footprint regions come out as
        # flat arrays in exactly the object path's (tile, slab, view)
        # order; Patch/FootprintRegion objects materialise on demand
        # from FramePlan.patches.
        histogram: Dict[PatchShape, int] = {c: 0 for c in cfg.candidates}
        bounds_parts: List[np.ndarray] = []
        bytes_parts: List[np.ndarray] = []
        fetch_parts: List[np.ndarray] = []
        resident_parts: List[np.ndarray] = []
        num_views = len(sources)
        for c_index, shape in enumerate(cfg.candidates):
            h0, w0, h1, w1, full_bytes, delta_bytes, delta_locs, bboxes = \
                per_candidate[c_index]
            macro_index = (h0 // macro) * macro_cols + (w0 // macro)
            selected_tiles = np.where(chosen[macro_index] == c_index)[0]
            if selected_tiles.size == 0:
                continue
            n_sel = selected_tiles.size
            n_slabs = delta_bytes.shape[1]
            histogram[shape] += n_sel * n_slabs
            sel_bbox = bboxes[selected_tiles]       # (n_sel, n_slabs, S, 4)
            sel_cols = _delta_column_spans(sel_bbox,
                                           delta_locs[selected_tiles])

            # (n_sel, n_slabs, 6) tile bounds with per-slab depth spans.
            tile_hw = np.stack([h0[selected_tiles], h1[selected_tiles],
                                w0[selected_tiles], w1[selected_tiles]],
                               axis=-1).astype(np.int64)
            d0 = (np.arange(n_slabs, dtype=np.int64) * shape.dd)
            cand_bounds = np.empty((n_sel, n_slabs, 6), dtype=np.int64)
            cand_bounds[:, :, :4] = tile_hw[:, None, :]
            cand_bounds[:, :, 4] = d0[None, :]
            cand_bounds[:, :, 5] = d0[None, :] + shape.dd
            bounds_parts.append(cand_bounds.reshape(-1, 6))
            bytes_parts.append(delta_bytes[selected_tiles].reshape(-1))

            # (n_sel, n_slabs, S, 5) region rows; fetch regions carry
            # the delta column span, resident regions the full bbox.
            views = np.arange(num_views, dtype=np.int64)
            regions = np.empty((n_sel, n_slabs, num_views, 5),
                               dtype=np.int64)
            regions[..., 0] = views
            regions[..., 1] = sel_bbox[..., 0]
            regions[..., 2] = sel_bbox[..., 1]
            regions[..., 3] = sel_bbox[..., 2]
            regions[..., 4] = sel_bbox[..., 3]
            resident_parts.append(regions.reshape(-1, 5).copy())
            regions[..., 4] = sel_bbox[..., 2] + sel_cols
            fetch_parts.append(regions.reshape(-1, 5))

        if bounds_parts:
            bounds = np.concatenate(bounds_parts, axis=0)
            prefetch = np.concatenate(bytes_parts, axis=0)
            fetch_regions = np.concatenate(fetch_parts, axis=0)
            resident_regions = np.concatenate(resident_parts, axis=0)
        else:
            bounds = np.zeros((0, 6), dtype=np.int64)
            prefetch = np.zeros(0, dtype=np.float64)
            fetch_regions = np.zeros((0, 5), dtype=np.int64)
            resident_regions = np.zeros((0, 5), dtype=np.int64)
        counts = np.full(bounds.shape[0], num_views, dtype=np.int64)
        arrays = PlanArrays(bounds=bounds, prefetch_bytes=prefetch,
                            fetch_regions=fetch_regions, fetch_counts=counts,
                            resident_regions=resident_regions,
                            resident_counts=counts.copy())
        # The seed loop accumulated the frame total patch by patch with
        # ``+=``; keep its float addition order so totals stay
        # bit-identical.
        total_bytes = 0.0
        for value in prefetch.tolist():
            total_bytes += value
        return FramePlan(arrays=arrays, total_prefetch_bytes=total_bytes,
                         candidate_histogram=histogram, image_height=height,
                         image_width=width, depth_bins=cfg.depth_bins)

    # ------------------------------------------------------------------
    def scheduling_cycles(self, num_views: int, height: int,
                          width: int) -> float:
        """Run-time cost of the partition on the scheduler block.

        Per (macro tile, candidate, slab, view): 8 corner projections on
        the vertex projector's MAC array (12 MACs each, 16 MACs/cycle),
        an area calculation (~8 cycles on its adder tree), and a compare.
        """
        macros = int(np.ceil(height / self.config.macro_tile)) \
            * int(np.ceil(width / self.config.macro_tile))
        work = 0.0
        for shape in self.config.candidates:
            slabs = self.config.depth_bins // shape.dd
            tiles_per_macro = (self.config.macro_tile // shape.dh) \
                * (self.config.macro_tile // shape.dw)
            per_macro = tiles_per_macro * slabs * num_views \
                * (8 * 12 / 16 + 8 + 1)
            work += macros * per_macro
        return work


def _delta_column_spans(bboxes: np.ndarray, delta_locs: np.ndarray
                        ) -> np.ndarray:
    """Delta-region column counts for (..., S, 4) bboxes at once.

    The same arithmetic as :func:`_delta_footprints`, batched over any
    leading (tile, slab) axes: each view's bbox keeps its row span and
    the column span shrinks to carry the delta location count.
    """
    rows = np.maximum(1, bboxes[..., 1] - bboxes[..., 0])
    cols = np.maximum(1, np.ceil(delta_locs / rows).astype(np.int64))
    return np.minimum(cols, np.maximum(1, bboxes[..., 3] - bboxes[..., 2]))


def _delta_footprints(bboxes_sv: np.ndarray, delta_locs_sv: np.ndarray
                      ) -> List[FootprintRegion]:
    """Footprint regions for the delta-fetched part of a slab patch.

    The DRAM-visible region keeps each view's bbox row span (row
    activations are per feature row) with the column span shrunk to
    carry the delta location count.
    """
    regions: List[FootprintRegion] = []
    for view in range(bboxes_sv.shape[0]):
        row0, row1, col0, col1 = (int(x) for x in bboxes_sv[view])
        rows = max(1, row1 - row0)
        cols = max(1, int(np.ceil(delta_locs_sv[view] / rows)))
        cols = min(cols, max(1, col1 - col0))
        regions.append(FootprintRegion(view=view, row0=row0, row1=row1,
                                       col0=col0, col1=col0 + cols))
    return regions


def fixed_partition(novel: Camera, sources: Sequence[Camera], near: float,
                    far: float, config: SchedulerConfig) -> FramePlan:
    """Var-1 baseline (Fig. 12): constant {k, k, D} patches.

    k is the largest candidate-independent square tile whose worst-case
    footprint fits the prefetch buffer; patches span the full depth
    range, so footprints are long epipolar stripes and neighbouring
    tiles re-fetch heavily overlapping regions (no depth-delta reuse is
    possible — each tile is a single patch).
    """
    scheduler = GreedyPatchScheduler(config)
    height = novel.intrinsics.height
    width = novel.intrinsics.width

    best_plan: Optional[FramePlan] = None
    k = config.macro_tile
    while k >= 4:
        shape = PatchShape(k, k, config.depth_bins)
        h0, w0, h1, w1, full_bytes, _delta, delta_locs, bboxes = \
            scheduler.evaluate_candidate(novel, sources, height, width,
                                         shape, near, far)
        if (full_bytes <= config.buffer_bytes).all() or k == 4:
            patches = []
            total = 0.0
            bbox_list = bboxes[:, 0].tolist()
            bytes_list = full_bytes[:, 0].tolist()
            bounds = np.stack([h0, h1, w0, w1], axis=-1).tolist()
            for t, (th0, th1, tw0, tw1) in enumerate(bounds):
                footprints = [FootprintRegion(view=v, row0=bb[0], row1=bb[1],
                                              col0=bb[2], col1=bb[3])
                              for v, bb in enumerate(bbox_list[t])]
                patches.append(Patch(h0=th0, h1=th1, w0=tw0, w1=tw1,
                                     d0=0, d1=config.depth_bins,
                                     prefetch_bytes=bytes_list[t],
                                     footprints=footprints))
                total += patches[-1].prefetch_bytes
            best_plan = FramePlan(patches=patches, total_prefetch_bytes=total,
                                  candidate_histogram={shape: len(patches)},
                                  image_height=height, image_width=width,
                                  depth_bins=config.depth_bins)
            break
        k //= 2
    assert best_plan is not None
    return best_plan
