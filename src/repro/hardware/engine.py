"""Rendering engine compute model: PPU + PE pool + SFU per point patch.

Maps the paper-scale generalizable-NeRF layers
(:class:`repro.models.workload.PaperScaleDims`) onto the PE pool's
systolic arrays as batched GEMMs, and the sampling/projection/
interpolation and compositing work onto the PPU and SFU.  Steps 1-4 run
pipelined (paper Sec. 4.5), so a patch's compute time is bounded by its
slowest stage.

The Ray-Mixer (and Step 5 compositing) need a whole ray; thanks to the
scheduler's constraint (1) the depth patches of a pixel tile are
processed back-to-back, and the mixer cost is amortised per depth slab
here (its total per-frame cost is exact).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..models.workload import (DIRECTION_DIM, PaperScaleDims, RGB_DIM,
                               RenderWorkload)
from .pe_pool import PePool, PePoolConfig, PoolExecution
from .preprocessing import PreprocessingConfig, PreprocessingUnit
from .special_function import SfuConfig, SpecialFunctionUnit
from .sram import SramConfig
from .systolic import GemmShape


@dataclass(frozen=True)
class EngineConfig:
    pool: PePoolConfig = PePoolConfig()
    ppu: PreprocessingConfig = PreprocessingConfig()
    sfu: SfuConfig = SfuConfig()
    prefetch_sram: SramConfig = SramConfig()


@dataclass
class PatchCompute:
    """Cycle breakdown for one patch's compute."""

    ppu_cycles: float
    pool_cycles: float
    sfu_cycles: float
    pool_macs: float

    @property
    def cycles(self) -> float:
        """Pipelined stages: throughput set by the slowest stage."""
        return max(self.ppu_cycles, self.pool_cycles, self.sfu_cycles)


def point_network_gemms(dims: PaperScaleDims, num_points: int,
                        num_views: int) -> List[GemmShape]:
    """GEMM list for the per-point network over a batch of points."""
    view_in = dims.feature_dim + RGB_DIM + DIRECTION_DIM
    h1, h2, hd = dims.view_hidden, dims.score_hidden, dims.density_hidden
    return [
        GemmShape(num_points, view_in, h1, count=num_views),     # view MLP 1
        GemmShape(num_points, h1, h1, count=num_views),          # view MLP 2
        GemmShape(num_points, 3 * h1, h2, count=num_views),      # score 1
        GemmShape(num_points, h2, 1, count=num_views),           # score 2
        GemmShape(num_points, 2 * h1 + DIRECTION_DIM, h2,
                  count=num_views),                              # colour 1
        GemmShape(num_points, h2, 1, count=num_views),           # colour 2
        GemmShape(num_points, 2 * h1, hd),                       # density 1
        GemmShape(num_points, hd, dims.density_feature_dim),     # density 2
    ]


def ray_module_gemms(workload: RenderWorkload, num_rays: int
                     ) -> List[GemmShape]:
    """GEMM list for the cross-point module over ``num_rays`` rays."""
    dims = workload.fine_dims
    d_sigma = dims.density_feature_dim
    if workload.ray_module == "mixer":
        n = workload.n_max
        return [
            GemmShape(d_sigma, n, n, count=num_rays),        # W1 token mix
            GemmShape(n, d_sigma, d_sigma, count=num_rays),  # W2 channel mix
            GemmShape(n, d_sigma, 1, count=num_rays),        # W3 head
        ]
    if workload.ray_module == "none":
        return [GemmShape(int(workload.fine_points_per_ray), d_sigma, 1,
                          count=num_rays)]
    # Transformer: QKV/out projections (weight-shared) plus the two
    # attention matmuls, whose operands are per-ray dynamic data — the
    # systolic arrays must reload them per ray (shared_weights=False),
    # which is the micro-architectural cost of attention the Ray-Mixer
    # removes (Sec. 3.3).
    points = int(round(workload.fine_points_per_ray))
    qk = dims.transformer_qk_dim
    return [
        GemmShape(points, d_sigma, qk, count=4 * num_rays),
        GemmShape(points, qk, points, count=num_rays,
                  shared_weights=False),                 # scores
        GemmShape(points, points, qk, count=num_rays,
                  shared_weights=False),                 # mix
        GemmShape(points, d_sigma, 1, count=num_rays),   # head
    ]


class RenderingEngine:
    """Compute-side model shared by all accelerator variants."""

    def __init__(self, config: EngineConfig = EngineConfig()):
        self.config = config
        self.pool = PePool(config.pool)
        self.ppu = PreprocessingUnit(config.ppu, config.prefetch_sram)
        self.sfu = SpecialFunctionUnit(config.sfu)
        self._cache: Dict[Tuple, PatchCompute] = {}

    def patch_compute(self, workload: RenderWorkload, num_points: int,
                      num_rays: int, sram_balance: float = 1.0,
                      coarse_stage: bool = False) -> PatchCompute:
        """Cycle breakdown for a patch with ``num_points`` samples from
        ``num_rays`` rays.

        ``coarse_stage`` selects the lightweight coarse model (stage 1 of
        the two-stage rendering flow, Sec. 4.5).
        """
        # RenderWorkload is a frozen dataclass, so it hashes by value —
        # never key on id(): CPython reuses addresses after GC and a
        # stale hit would silently time the wrong configuration.
        key = (num_points, num_rays, round(sram_balance, 3), coarse_stage,
               workload)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        if coarse_stage:
            dims = workload.coarse_dims
            views = workload.coarse_views
        else:
            dims = workload.fine_dims
            views = workload.num_views
        gemms = point_network_gemms(dims, num_points, views)

        execution = self.pool.run(gemms)
        pool_cycles = execution.cycles
        pool_macs = execution.macs
        if not coarse_stage and num_rays > 0:
            # Fraction of each ray's points contained in this patch.
            fraction = min(1.0, (num_points / max(num_rays, 1))
                           / max(workload.fine_points_per_ray, 1e-9))
            module = self.pool.run(ray_module_gemms(workload, num_rays))
            pool_cycles += module.cycles * fraction
            pool_macs += module.macs * fraction

        ppu_cycles = self.ppu.cycles_for_patch(num_points, views,
                                               dims.feature_dim,
                                               sram_balance)
        sfu_cycles = self.sfu.cycles_for_points(num_points)
        result = PatchCompute(ppu_cycles=ppu_cycles, pool_cycles=pool_cycles,
                              sfu_cycles=sfu_cycles, pool_macs=pool_macs)
        self._cache[key] = result
        return result
