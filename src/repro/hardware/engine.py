"""Rendering engine compute model: PPU + PE pool + SFU per point patch.

Maps the paper-scale generalizable-NeRF layers
(:class:`repro.models.workload.PaperScaleDims`) onto the PE pool's
systolic arrays as batched GEMMs, and the sampling/projection/
interpolation and compositing work onto the PPU and SFU.  Steps 1-4 run
pipelined (paper Sec. 4.5), so a patch's compute time is bounded by its
slowest stage.

The Ray-Mixer (and Step 5 compositing) need a whole ray; thanks to the
scheduler's constraint (1) the depth patches of a pixel tile are
processed back-to-back, and the mixer cost is amortised per depth slab
here (its total per-frame cost is exact).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..models.workload import (DIRECTION_DIM, PaperScaleDims, RGB_DIM,
                               RenderWorkload)
from .pe_pool import PePool, PePoolConfig, PoolExecution, PoolExecutionBatch
from .preprocessing import PreprocessingConfig, PreprocessingUnit
from .special_function import SfuConfig, SpecialFunctionUnit
from .sram import SramConfig
from .systolic import GemmShape


@dataclass(frozen=True)
class EngineConfig:
    pool: PePoolConfig = PePoolConfig()
    ppu: PreprocessingConfig = PreprocessingConfig()
    sfu: SfuConfig = SfuConfig()
    prefetch_sram: SramConfig = SramConfig()


@dataclass
class PatchCompute:
    """Cycle breakdown for one patch's compute."""

    ppu_cycles: float
    pool_cycles: float
    sfu_cycles: float
    pool_macs: float

    @property
    def cycles(self) -> float:
        """Pipelined stages: throughput set by the slowest stage."""
        return max(self.ppu_cycles, self.pool_cycles, self.sfu_cycles)


@dataclass
class PatchComputeBatch:
    """Array-valued :class:`PatchCompute` for many patches at once."""

    ppu_cycles: np.ndarray
    pool_cycles: np.ndarray
    sfu_cycles: np.ndarray
    pool_macs: np.ndarray

    @property
    def cycles(self) -> np.ndarray:
        """Per-patch pipelined cycles (slowest stage per patch)."""
        return np.maximum(np.maximum(self.ppu_cycles, self.pool_cycles),
                          self.sfu_cycles)

    def scalar(self, index: int) -> PatchCompute:
        """The scalar :class:`PatchCompute` of patch ``index``."""
        return PatchCompute(ppu_cycles=float(self.ppu_cycles[index]),
                            pool_cycles=float(self.pool_cycles[index]),
                            sfu_cycles=float(self.sfu_cycles[index]),
                            pool_macs=float(self.pool_macs[index]))


def point_network_gemms(dims: PaperScaleDims, num_points: int,
                        num_views: int) -> List[GemmShape]:
    """GEMM list for the per-point network over a batch of points."""
    view_in = dims.feature_dim + RGB_DIM + DIRECTION_DIM
    h1, h2, hd = dims.view_hidden, dims.score_hidden, dims.density_hidden
    return [
        GemmShape(num_points, view_in, h1, count=num_views),     # view MLP 1
        GemmShape(num_points, h1, h1, count=num_views),          # view MLP 2
        GemmShape(num_points, 3 * h1, h2, count=num_views),      # score 1
        GemmShape(num_points, h2, 1, count=num_views),           # score 2
        GemmShape(num_points, 2 * h1 + DIRECTION_DIM, h2,
                  count=num_views),                              # colour 1
        GemmShape(num_points, h2, 1, count=num_views),           # colour 2
        GemmShape(num_points, 2 * h1, hd),                       # density 1
        GemmShape(num_points, hd, dims.density_feature_dim),     # density 2
    ]


def ray_module_gemms(workload: RenderWorkload, num_rays: int
                     ) -> List[GemmShape]:
    """GEMM list for the cross-point module over ``num_rays`` rays."""
    dims = workload.fine_dims
    d_sigma = dims.density_feature_dim
    if workload.ray_module == "mixer":
        n = workload.n_max
        return [
            GemmShape(d_sigma, n, n, count=num_rays),        # W1 token mix
            GemmShape(n, d_sigma, d_sigma, count=num_rays),  # W2 channel mix
            GemmShape(n, d_sigma, 1, count=num_rays),        # W3 head
        ]
    if workload.ray_module == "none":
        return [GemmShape(int(workload.fine_points_per_ray), d_sigma, 1,
                          count=num_rays)]
    # Transformer: QKV/out projections (weight-shared) plus the two
    # attention matmuls, whose operands are per-ray dynamic data — the
    # systolic arrays must reload them per ray (shared_weights=False),
    # which is the micro-architectural cost of attention the Ray-Mixer
    # removes (Sec. 3.3).
    points = int(round(workload.fine_points_per_ray))
    qk = dims.transformer_qk_dim
    return [
        GemmShape(points, d_sigma, qk, count=4 * num_rays),
        GemmShape(points, qk, points, count=num_rays,
                  shared_weights=False),                 # scores
        GemmShape(points, points, qk, count=num_rays,
                  shared_weights=False),                 # mix
        GemmShape(points, d_sigma, 1, count=num_rays),   # head
    ]


class RenderingEngine:
    """Compute-side model shared by all accelerator variants."""

    def __init__(self, config: EngineConfig = EngineConfig()):
        self.config = config
        self.pool = PePool(config.pool)
        self.ppu = PreprocessingUnit(config.ppu, config.prefetch_sram)
        self.sfu = SpecialFunctionUnit(config.sfu)
        self._cache: Dict[Tuple, PatchCompute] = {}

    @staticmethod
    def _cache_key(num_points: int, num_rays: int, sram_balance: float,
                   coarse_stage: bool, workload: RenderWorkload) -> tuple:
        """The memoisation key shared by the scalar and batched paths.

        RenderWorkload is a frozen dataclass, so it hashes by value —
        never key on id(): CPython reuses addresses after GC and a
        stale hit would silently time the wrong configuration.  The
        balance rounds to 3 decimals, so patches whose balances differ
        only past that share one entry (first occurrence wins).
        """
        return (num_points, num_rays, round(sram_balance, 3), coarse_stage,
                workload)

    def patch_compute(self, workload: RenderWorkload, num_points: int,
                      num_rays: int, sram_balance: float = 1.0,
                      coarse_stage: bool = False) -> PatchCompute:
        """Cycle breakdown for a patch with ``num_points`` samples from
        ``num_rays`` rays.

        ``coarse_stage`` selects the lightweight coarse model (stage 1 of
        the two-stage rendering flow, Sec. 4.5).
        """
        key = self._cache_key(num_points, num_rays, sram_balance,
                              coarse_stage, workload)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        if coarse_stage:
            dims = workload.coarse_dims
            views = workload.coarse_views
        else:
            dims = workload.fine_dims
            views = workload.num_views
        gemms = point_network_gemms(dims, num_points, views)

        execution = self.pool.run(gemms)
        pool_cycles = execution.cycles
        pool_macs = execution.macs
        if not coarse_stage and num_rays > 0:
            # Fraction of each ray's points contained in this patch.
            fraction = min(1.0, (num_points / max(num_rays, 1))
                           / max(workload.fine_points_per_ray, 1e-9))
            module = self.pool.run(ray_module_gemms(workload, num_rays))
            pool_cycles += module.cycles * fraction
            pool_macs += module.macs * fraction

        ppu_cycles = self.ppu.cycles_for_patch(num_points, views,
                                               dims.feature_dim,
                                               sram_balance)
        sfu_cycles = self.sfu.cycles_for_points(num_points)
        result = PatchCompute(ppu_cycles=ppu_cycles, pool_cycles=pool_cycles,
                              sfu_cycles=sfu_cycles, pool_macs=pool_macs)
        self._cache[key] = result
        return result

    def patch_compute_many(self, workload: RenderWorkload,
                           num_points: np.ndarray, num_rays: np.ndarray,
                           sram_balance: np.ndarray) -> PatchComputeBatch:
        """Per-patch compute arrays *through the memoisation cache*.

        The batched front door the frame simulator uses: patches are
        deduplicated to the scalar :meth:`patch_compute` cache keys —
        processing unique inputs in first-occurrence order, so a later
        patch whose balance differs only past the key's 3rd decimal
        reuses the first patch's result — and only representatives
        missing from the cache run through :meth:`patch_compute_batch`.
        Cached results persist across calls exactly as the scalar
        path's do, so mixing scalar and batched callers on one engine
        stays bit-identical to an all-scalar run.
        """
        num_points = np.asarray(num_points, dtype=np.int64)
        num_rays = np.asarray(num_rays, dtype=np.int64)
        sram_balance = np.asarray(sram_balance, dtype=np.float64)
        triples = np.stack([num_points.astype(np.float64),
                            num_rays.astype(np.float64), sram_balance],
                           axis=1)
        unique, first_index, inverse = np.unique(
            triples, axis=0, return_index=True, return_inverse=True)
        inverse = inverse.reshape(-1)
        order = np.argsort(first_index, kind="stable")

        keys = [None] * unique.shape[0]
        representative: Dict[tuple, int] = {}
        missing = []
        for uid in order.tolist():
            key = self._cache_key(int(unique[uid, 0]), int(unique[uid, 1]),
                                  float(unique[uid, 2]), False, workload)
            rep = representative.setdefault(key, uid)
            keys[uid] = key
            if rep == uid and key not in self._cache:
                missing.append(uid)

        if missing:
            reps = np.array(missing, dtype=np.int64)
            batch = self.patch_compute_batch(
                workload, unique[reps, 0].astype(np.int64),
                unique[reps, 1].astype(np.int64), unique[reps, 2])
            for slot, uid in enumerate(missing):
                self._cache[keys[uid]] = batch.scalar(slot)

        num_unique = unique.shape[0]
        ppu = np.empty(num_unique)
        pool_cycles = np.empty(num_unique)
        sfu = np.empty(num_unique)
        macs = np.empty(num_unique)
        for uid in range(num_unique):
            compute = self._cache[keys[uid]]
            ppu[uid] = compute.ppu_cycles
            pool_cycles[uid] = compute.pool_cycles
            sfu[uid] = compute.sfu_cycles
            macs[uid] = compute.pool_macs
        return PatchComputeBatch(ppu_cycles=ppu[inverse],
                                 pool_cycles=pool_cycles[inverse],
                                 sfu_cycles=sfu[inverse],
                                 pool_macs=macs[inverse])

    def patch_compute_batch(self, workload: RenderWorkload,
                            num_points: np.ndarray, num_rays: np.ndarray,
                            sram_balance: np.ndarray,
                            coarse_stage: bool = False) -> PatchComputeBatch:
        """:meth:`patch_compute` for per-patch arrays in one array pass.

        ``num_points`` / ``num_rays`` are int64 arrays, ``sram_balance``
        float64, all of one length.  Element *i* of the result equals
        ``patch_compute(workload, num_points[i], num_rays[i],
        sram_balance[i], coarse_stage)`` bit for bit (the GEMM, PPU and
        SFU formulas are elementwise; see :meth:`PePool.run_batch`).

        Unlike the scalar method this performs **no memoisation** —
        callers that want the scalar path's cache semantics (the frame
        simulator does, for bit-parity with the seed loop) deduplicate
        the patch keys themselves and feed only representatives here.
        """
        num_points = np.asarray(num_points, dtype=np.int64)
        num_rays = np.asarray(num_rays, dtype=np.int64)
        sram_balance = np.asarray(sram_balance, dtype=np.float64)

        if coarse_stage:
            dims = workload.coarse_dims
            views = workload.coarse_views
        else:
            dims = workload.fine_dims
            views = workload.num_views
        gemms = point_network_gemms(dims, num_points, views)

        execution = self.pool.run_batch(gemms)
        pool_cycles = execution.cycles
        pool_macs = execution.macs
        if not coarse_stage:
            active = num_rays > 0
            fraction = np.minimum(
                1.0, (num_points / np.maximum(num_rays, 1))
                / max(workload.fine_points_per_ray, 1e-9))
            module = self.pool.run_batch(
                ray_module_gemms(workload, num_rays))
            pool_cycles = pool_cycles + np.where(
                active, module.cycles * fraction, 0.0)
            pool_macs = pool_macs + np.where(
                active, module.macs * fraction, 0.0)

        ppu_cycles = self.ppu.cycles_for_patch(num_points, views,
                                               dims.feature_dim,
                                               sram_balance)
        sfu_cycles = self.sfu.cycles_for_points(num_points)
        return PatchComputeBatch(
            ppu_cycles=np.asarray(ppu_cycles, dtype=np.float64),
            pool_cycles=np.asarray(pool_cycles, dtype=np.float64),
            sfu_cycles=np.asarray(sfu_cycles, dtype=np.float64),
            pool_macs=np.asarray(pool_macs, dtype=np.float64))
