"""Preprocessing unit: focused sampling + projection + interpolation.

Paper Fig. 7 (left): the PPU contains

* a Monte-Carlo sampler — PDF-to-CDF conversion, uniform RNG, and a
  comparator array implementing inverse-transform sampling (Step 3 of
  the coarse-then-focus pipeline);
* a projector — MAC array applying the 3x4 projective transform to map
  sampled points onto source image planes (Step 2);
* an interpolator — fetches the four neighbouring feature vectors from
  the prefetch buffer and blends them bilinearly.

Each block is modelled with lane-level throughput; the interpolator's
SRAM reads are charged against the prefetch buffer's banked ports with
the balance factor of the configured storage layout, which is how an
unfortunate on-chip layout (Fig. 12 Var-2/3) throttles the engine even
when DRAM keeps up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sram import SramBank, SramConfig


@dataclass(frozen=True)
class PreprocessingConfig:
    sampler_lanes: int = 16        # inverse-CDF comparisons per cycle
    cdf_ops_per_point: int = 3     # scan + compare + lerp
    projector_lanes: int = 8       # points projected per cycle per view lane
    projector_macs_per_point: int = 12   # 3x4 transform + divide
    interp_lanes: int = 12         # points interpolated per cycle
    # Effective corner fetches per (point, view): bilinear needs 4, but
    # consecutive points on a ray project to adjacent feature locations
    # (Property-1 locality), so half the corners are register-reused.
    corner_reads_per_point: int = 2


class PreprocessingUnit:
    """Cycle model of the PPU."""

    def __init__(self, config: PreprocessingConfig = PreprocessingConfig(),
                 buffer_config: SramConfig = SramConfig()):
        self.config = config
        self.buffer = SramBank(buffer_config)

    def sampling_cycles(self, num_points: float) -> float:
        """Inverse-transform sampling of the focused points."""
        return num_points * self.config.cdf_ops_per_point \
            / self.config.sampler_lanes

    def projection_cycles(self, num_points: float, num_views: int) -> float:
        """Project each sampled point onto every source view."""
        return num_points * num_views / self.config.projector_lanes

    def interpolation_cycles(self, num_points: float, num_views: int,
                             channels: int, sram_balance: float = 1.0
                             ) -> float:
        """Bilinear feature interpolation, throttled by buffer ports.

        Each (point, view) reads 4 corner feature vectors of ``channels``
        bytes (INT8) from the prefetch buffer and blends them; the read
        side is charged on the banked SRAM with the layout's balance.
        """
        blends = num_points * num_views / self.config.interp_lanes
        read_bytes = (num_points * num_views
                      * self.config.corner_reads_per_point * channels)
        reads = self.buffer.read_cycles(read_bytes, balance=sram_balance)
        return np.maximum(blends, reads)

    def cycles_for_patch(self, num_points: float, num_views: int,
                         channels: int, sram_balance: float = 1.0) -> float:
        """Total PPU cycles for a point patch (stages are pipelined, so
        the slowest stage bounds throughput; sampling is per point,
        projection/interpolation per point-view).

        ``num_points``/``sram_balance`` may be per-patch arrays — every
        stage formula is elementwise, so the batched result matches the
        scalar one patch for patch.
        """
        stages = (
            self.sampling_cycles(num_points),
            self.projection_cycles(num_points, num_views),
            self.interpolation_cycles(num_points, num_views, channels,
                                      sram_balance),
        )
        return np.maximum(np.maximum(stages[0], stages[1]), stages[2])
