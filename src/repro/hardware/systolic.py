"""Systolic-array GEMM timing (the PEs of the paper's PE pool).

Each PE is a 16x16 INT8 systolic array (paper Sec. 5.1).  We model a
weight-stationary schedule: an (M, K) x (K, N) GEMM is tiled into
16x16 output tiles; each tile streams M rows through the array after a
K-deep weight load, costing ``K + M + ARRAY - 1`` cycles of pipelined
operation per K-slab.  The model exposes *utilisation* — the fraction of
MAC slots doing useful work — because the narrow layers of the pruned
Gen-NeRF model leave arrays partially empty, and that effect (not peak
TOPS) decides the achievable FPS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np


@dataclass(frozen=True)
class SystolicConfig:
    rows: int = 16
    cols: int = 16
    fill_overhead: int = 16     # pipeline fill+drain per tile pass

    @property
    def macs_per_cycle(self) -> int:
        return self.rows * self.cols


@dataclass(frozen=True)
class GemmShape:
    """One GEMM: (m x k) activations times (k x n) weights, ``count``
    instances.

    ``shared_weights=True`` (the norm in this workload — one view MLP
    applied to every view, one Ray-Mixer applied to every ray) means the
    instances reuse the stationary weights and their activations stream
    back-to-back, i.e. an effective (m*count, k, n) GEMM.  Dynamic
    matmuls (attention scores/mixes, whose "weights" differ per ray) set
    it False and pay the per-instance weight-load each time — this
    penalty is the hardware-side reason attention is a poor fit
    (Sec. 3.3).
    """

    m: int
    k: int
    n: int
    count: int = 1
    shared_weights: bool = True

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n * self.count


def _padded(value: int, granule: int) -> int:
    """Pad a dimension up to the sub-array granule."""
    return int(granule * np.ceil(max(value, 1) / granule))


def gemm_cycles(shape: GemmShape, config: SystolicConfig = SystolicConfig()
                ) -> float:
    """Cycles for one array to execute the GEMM (all ``count`` instances).

    The array supports sub-array packing at 8-lane granularity (halves /
    quadrants operate independently on different tiles of the workload),
    so a narrow pruned layer wastes at most the remainder of an 8-lane
    granule rather than the full 16.  Effective MAC throughput is
    ``rows * cols * (k / k_pad) * (n / n_pad)``; weight-shared batched
    instances stream back to back, while dynamic matmuls (attention)
    additionally reload their operand matrix per instance.
    """
    if min(shape.m, shape.k, shape.n) <= 0:
        return 0.0
    granule = max(1, config.rows // 2)
    k_pad = _padded(shape.k, granule)
    n_pad = _padded(shape.n, granule)
    packing = (shape.k / k_pad) * (shape.n / n_pad)
    throughput = config.rows * config.cols * packing   # MACs per cycle

    k_slabs = int(np.ceil(shape.k / config.rows))
    n_tiles = int(np.ceil(shape.n / config.cols))
    stream_cycles = shape.macs / throughput
    if shape.shared_weights:
        fill = config.fill_overhead * k_slabs * n_tiles
        return float(stream_cycles + fill)
    reload = (config.fill_overhead + config.rows) * k_slabs * n_tiles \
        * shape.count
    return float(stream_cycles + reload)


def gemm_cycles_batch(shape: GemmShape,
                      config: SystolicConfig = SystolicConfig()
                      ) -> np.ndarray:
    """:func:`gemm_cycles` with array-valued ``m`` and/or ``count``.

    The frame simulator's GEMM lists vary only in the batch dimension
    (``m`` = points in the patch) and the instance count (``count`` =
    rays / views), so a :class:`GemmShape` may carry int64 *arrays* in
    those two fields while ``k``/``n`` stay scalar.  Element *i* equals
    ``gemm_cycles`` at ``(m[i], count[i])`` bit for bit — the padding /
    packing / fill arithmetic is scalar and the per-element ops match.
    """
    m = np.asarray(shape.m, dtype=np.int64)
    count = np.asarray(shape.count, dtype=np.int64)
    k, n = int(shape.k), int(shape.n)
    granule = max(1, config.rows // 2)
    k_pad = _padded(k, granule)
    n_pad = _padded(n, granule)
    packing = (k / k_pad) * (n / n_pad)
    throughput = config.rows * config.cols * packing   # MACs per cycle

    k_slabs = int(np.ceil(k / config.rows))
    n_tiles = int(np.ceil(n / config.cols))
    macs = m * k * n * count
    stream_cycles = macs / throughput
    if shape.shared_weights:
        cycles = stream_cycles + config.fill_overhead * k_slabs * n_tiles
    else:
        cycles = stream_cycles + (config.fill_overhead + config.rows) \
            * k_slabs * n_tiles * count
    return np.where(np.minimum(m, min(k, n)) <= 0, 0.0, cycles)


def gemm_utilization(shape: GemmShape,
                     config: SystolicConfig = SystolicConfig()) -> float:
    """Useful MACs / provisioned MAC slots for the GEMM."""
    cycles = gemm_cycles(shape, config)
    if cycles <= 0:
        return 0.0
    return shape.macs / (cycles * config.macs_per_cycle)
