"""On-chip SRAM models: banked scratchpads and the prefetch double buffer.

The Gen-NeRF accelerator (paper Fig. 7) holds scene features in a pair
of 256 KB scratchpads used ping-pong style: while the rendering engine
consumes features from one buffer, the memory controller fills the other
with the next point patch.  Each scratchpad is multi-banked and uses the
same spatial-interleaved placement as DRAM (Sec. 4.4/4.5) so the
interpolator's parallel corner reads avoid conflicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .units import KB


@dataclass(frozen=True)
class SramConfig:
    """A banked scratchpad."""

    capacity_bytes: int = 256 * KB
    num_banks: int = 16
    bytes_per_bank_per_cycle: int = 64   # port width per bank

    @property
    def peak_bytes_per_cycle(self) -> int:
        return self.num_banks * self.bytes_per_bank_per_cycle


class SramBank:
    """Cycle accounting for one scratchpad."""

    def __init__(self, config: SramConfig = SramConfig()):
        self.config = config

    def write_cycles(self, num_bytes: float,
                     balance: float = 1.0) -> float:
        """Cycles to write ``num_bytes`` given a bank balance factor in
        (0, 1]; imbalance serialises onto the hottest bank.

        ``num_bytes``/``balance`` may be arrays (broadcast together);
        the clamped-balance arithmetic is identical either way.
        """
        balance = np.minimum(np.maximum(balance, 1e-3), 1.0)
        return num_bytes / (self.config.peak_bytes_per_cycle * balance)

    def read_cycles(self, num_bytes: float, balance: float = 1.0) -> float:
        return self.write_cycles(num_bytes, balance)

    def fits(self, num_bytes: float) -> bool:
        return num_bytes <= self.config.capacity_bytes


@dataclass
class DoubleBufferState:
    """Ping-pong occupancy tracking for validation tests."""

    filling: int = 0
    draining: int = 1

    def swap(self) -> None:
        self.filling, self.draining = self.draining, self.filling


class PrefetchDoubleBuffer:
    """The prefetch double buffer of Fig. 7.

    Latency hiding: with buffers A/B, patch i+1 is fetched into one
    buffer while patch i is consumed from the other, so the pipeline
    advances every ``max(fetch_{i+1}, compute_i)``.
    :meth:`pipeline_time` folds a sequence of per-patch (fetch, compute)
    times accordingly — this is the schedule the ablation Var-1/2/3
    experiments perturb.
    """

    def __init__(self, config: SramConfig = SramConfig()):
        self.config = config
        self.state = DoubleBufferState()

    def fits(self, num_bytes: float) -> bool:
        return num_bytes <= self.config.capacity_bytes

    @staticmethod
    def pipeline_time(fetch_times: np.ndarray,
                      compute_times: np.ndarray) -> Tuple[float, float]:
        """(total time, compute-busy time) of the double-buffered pipeline.

        ``fetch_times[i]`` is patch i's DRAM->SRAM time and
        ``compute_times[i]`` its rendering-engine time.  The first fetch
        is exposed; afterwards fetch i+1 overlaps compute i.
        """
        fetch = np.asarray(fetch_times, dtype=np.float64)
        compute = np.asarray(compute_times, dtype=np.float64)
        if fetch.shape != compute.shape:
            raise ValueError("fetch/compute arrays must align")
        if fetch.size == 0:
            return 0.0, 0.0
        overlapped = np.maximum(compute[:-1], fetch[1:]).sum() \
            if compute.size > 1 else 0.0
        total = float(fetch[0]) + float(overlapped) + float(compute[-1])
        return total, float(compute.sum())
