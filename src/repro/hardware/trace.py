"""Trace-driven validation of the aggregate DRAM model.

The paper backs its cycle simulator with Ramulator; our substitute
(:class:`repro.hardware.dram.DramModel`) services *aggregated* per-bank
byte/activation counts.  This module closes the fidelity loop: it
expands a patch's footprints into an explicit per-request address trace
(bank, row, bytes), replays it through a request-level bank state
machine with row-buffer hits/misses, and compares the replayed service
time against the aggregate model.  ``tests/hardware/test_trace.py``
asserts the two agree within a documented tolerance across layouts and
footprint shapes — the evidence that the fast aggregate path used by
full-frame simulation is sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from .dram import DramConfig, DramModel
from .interleave import FeatureStore, FootprintRegion, spatial_skew


@dataclass(frozen=True)
class MemoryRequest:
    """One DRAM read: a burst-aligned access to (bank, row)."""

    bank: int
    row: int
    num_bytes: int


def footprint_trace(store: FeatureStore, region: FootprintRegion,
                    num_banks: int, row_bytes: int
                    ) -> Iterator[MemoryRequest]:
    """Expand a footprint rectangle into per-location memory requests.

    Locations are visited in raster order (how the memory controller
    streams a prefetch).  The DRAM row of a location follows the
    storage layout: within one bank, locations pack in visit order, so
    we track a per-bank byte cursor and derive the row from it — this
    reproduces the row locality (or lack of it) each layout exhibits.
    """
    skew = spatial_skew(num_banks)
    cursors = [0] * num_banks
    for row in range(region.row0, region.row1):
        for col in range(region.col0, region.col1):
            if store.layout == "row_major":
                rows_per_bank = max(1, (store.num_views * store.height)
                                    // num_banks)
                bank = min((region.view * store.height + row)
                           // rows_per_bank, num_banks - 1)
            elif store.layout == "row_interleaved":
                bank = (region.view * store.height + row) % num_banks
            elif store.layout == "view_interleaved":
                bank = region.view % num_banks
            else:
                bank = (skew * row + col) % num_banks
            dram_row = cursors[bank] // row_bytes
            cursors[bank] += store.location_bytes
            yield MemoryRequest(bank=bank, row=dram_row,
                                num_bytes=store.location_bytes)


@dataclass
class ReplayResult:
    """Outcome of a request-level replay."""

    service_time_s: float
    total_bytes: float
    row_hits: int
    row_misses: int

    @property
    def hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return 0.0 if total == 0 else self.row_hits / total


def replay_trace(requests: Sequence[MemoryRequest],
                 config: DramConfig = DramConfig()) -> ReplayResult:
    """Replay requests through per-bank row-buffer state machines.

    Banks operate in parallel (each accumulates its own busy time); the
    shared data bus imposes the bandwidth floor, exactly mirroring the
    aggregate model's two terms — but here hits/misses come from the
    actual access sequence instead of an activation estimate.
    """
    bank_time = np.zeros(config.num_banks)
    open_row = np.full(config.num_banks, -1, dtype=np.int64)
    total_bytes = 0.0
    hits = 0
    misses = 0
    for request in requests:
        bursts = int(np.ceil(request.num_bytes / config.burst_bytes))
        time = bursts * config.t_burst_s
        if open_row[request.bank] != request.row:
            time += config.t_rc_s
            open_row[request.bank] = request.row
            misses += 1
        else:
            hits += 1
        bank_time[request.bank] += time
        total_bytes += request.num_bytes

    bus_time = total_bytes / config.peak_bandwidth_bytes
    service = max(float(bank_time.max(initial=0.0)), bus_time)
    return ReplayResult(service_time_s=service, total_bytes=total_bytes,
                        row_hits=hits, row_misses=misses)


def compare_aggregate_to_replay(store: FeatureStore,
                                footprints: Sequence[FootprintRegion],
                                config: DramConfig = DramConfig()
                                ) -> Tuple[float, float]:
    """(aggregate seconds, replayed seconds) for a set of footprints."""
    from .interleave import bank_load_for_footprints

    bank_bytes, bank_acts = bank_load_for_footprints(store, footprints,
                                                     config.num_banks)
    aggregate = DramModel(config).service(bank_bytes, bank_acts)

    requests: List[MemoryRequest] = []
    for region in footprints:
        requests.extend(footprint_trace(store, region, config.num_banks,
                                        config.row_bytes))
    replayed = replay_trace(requests, config)
    return aggregate.service_time_s, replayed.service_time_s
