"""Trace-driven validation of the aggregate DRAM model.

The paper backs its cycle simulator with Ramulator; our substitute
(:class:`repro.hardware.dram.DramModel`) services *aggregated* per-bank
byte/activation counts.  This module closes the fidelity loop: it
expands a patch's footprints into an explicit per-request address trace
(bank, row, bytes), replays it through a request-level bank state
machine with row-buffer hits/misses, and compares the replayed service
time against the aggregate model.  ``tests/hardware/test_trace.py``
asserts the two agree within a documented tolerance across layouts and
footprint shapes — the evidence that the fast aggregate path used by
full-frame simulation is sound.

Performance note: trace generation and replay are *hot paths* of the
fidelity harness (a full-frame footprint set is hundreds of thousands of
requests).  Both are therefore batched struct-of-arrays numpy code —
:class:`TraceArrays` carries the whole trace as three parallel arrays,
:func:`footprint_trace_arrays` derives banks and DRAM rows with a
grouped cumulative count instead of per-location Python, and
:func:`replay_trace` resolves row hits/misses with one stable sort.  The
per-request :class:`MemoryRequest` dataclass API is kept as a thin
adapter over the arrays; ``benchmarks/harness.py`` tracks the speedup of
the batch path over the seed's generator loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple, Union

import numpy as np

from .dram import DramConfig, DramModel
from .interleave import FeatureStore, FootprintRegion, spatial_skew


@dataclass(frozen=True)
class MemoryRequest:
    """One DRAM read: a burst-aligned access to (bank, row)."""

    bank: int
    row: int
    num_bytes: int


@dataclass(frozen=True)
class TraceArrays:
    """A memory trace as struct-of-arrays (one entry per request).

    Entries are in trace (raster/visit) order; ``banks`` and ``rows``
    are int64, ``num_bytes`` is int64 bytes per request.  This is the
    batch currency of trace generation and replay; :meth:`requests`
    adapts back to per-request :class:`MemoryRequest` objects.
    """

    banks: np.ndarray
    rows: np.ndarray
    num_bytes: np.ndarray

    def __len__(self) -> int:
        return len(self.banks)

    def requests(self) -> Iterator[MemoryRequest]:
        for bank, row, nbytes in zip(self.banks, self.rows, self.num_bytes):
            yield MemoryRequest(bank=int(bank), row=int(row),
                                num_bytes=int(nbytes))

    @staticmethod
    def empty() -> "TraceArrays":
        zero = np.zeros(0, dtype=np.int64)
        return TraceArrays(zero, zero.copy(), zero.copy())

    @staticmethod
    def concatenate(traces: Sequence["TraceArrays"]) -> "TraceArrays":
        if not traces:
            return TraceArrays.empty()
        return TraceArrays(
            np.concatenate([t.banks for t in traces]),
            np.concatenate([t.rows for t in traces]),
            np.concatenate([t.num_bytes for t in traces]))

    @staticmethod
    def from_requests(requests: Sequence[MemoryRequest]) -> "TraceArrays":
        if not hasattr(requests, "__len__"):   # generator/iterator input
            requests = list(requests)
        count = len(requests)
        banks = np.fromiter((r.bank for r in requests), dtype=np.int64,
                            count=count)
        rows = np.fromiter((r.row for r in requests), dtype=np.int64,
                           count=count)
        num_bytes = np.fromiter((r.num_bytes for r in requests),
                                dtype=np.int64, count=count)
        return TraceArrays(banks, rows, num_bytes)


def _grouped_ranks(banks: np.ndarray) -> np.ndarray:
    """Rank of each request among the prior requests to the same bank.

    Vectorised grouped cumulative count: a stable sort groups each
    bank's requests contiguously while preserving trace order inside a
    group, so the within-group rank is the running index minus the
    group's start index.
    """
    count = len(banks)
    order = np.argsort(banks, kind="stable")
    sorted_banks = banks[order]
    sequence = np.arange(count, dtype=np.int64)
    new_group = np.ones(count, dtype=bool)
    new_group[1:] = sorted_banks[1:] != sorted_banks[:-1]
    group_start = np.maximum.accumulate(np.where(new_group, sequence, 0))
    ranks = np.empty(count, dtype=np.int64)
    ranks[order] = sequence - group_start
    return ranks


def footprint_trace_arrays(store: FeatureStore, region: FootprintRegion,
                           num_banks: int, row_bytes: int) -> TraceArrays:
    """Batched expansion of a footprint rectangle into a memory trace.

    Locations are visited in raster order (how the memory controller
    streams a prefetch).  The DRAM row of a location follows the
    storage layout: within one bank, locations pack in visit order, so
    the row index is the per-bank visit rank times the location size —
    computed for all locations at once via :func:`_grouped_ranks`.
    """
    num_rows, num_cols = region.num_rows, region.num_cols
    count = num_rows * num_cols
    if count <= 0:
        return TraceArrays.empty()

    feature_rows = np.repeat(
        np.arange(region.row0, region.row1, dtype=np.int64), num_cols)
    if store.layout == "row_major":
        rows_per_bank = max(1, (store.num_views * store.height) // num_banks)
        banks = np.minimum(
            (region.view * store.height + feature_rows) // rows_per_bank,
            num_banks - 1)
    elif store.layout == "row_interleaved":
        banks = (region.view * store.height + feature_rows) % num_banks
    elif store.layout == "view_interleaved":
        banks = np.full(count, region.view % num_banks, dtype=np.int64)
    else:
        feature_cols = np.tile(
            np.arange(region.col0, region.col1, dtype=np.int64), num_rows)
        banks = (spatial_skew(num_banks) * feature_rows + feature_cols) \
            % num_banks

    dram_rows = (_grouped_ranks(banks) * store.location_bytes) // row_bytes
    num_bytes = np.full(count, store.location_bytes, dtype=np.int64)
    return TraceArrays(banks, dram_rows, num_bytes)


def footprints_trace_arrays(store: FeatureStore,
                            footprints: Sequence[FootprintRegion],
                            num_banks: int, row_bytes: int) -> TraceArrays:
    """Concatenated traces for several footprints (cursors reset per
    footprint, matching per-prefetch streaming)."""
    return TraceArrays.concatenate(
        [footprint_trace_arrays(store, region, num_banks, row_bytes)
         for region in footprints])


def footprint_trace(store: FeatureStore, region: FootprintRegion,
                    num_banks: int, row_bytes: int
                    ) -> Iterator[MemoryRequest]:
    """Per-request adapter over :func:`footprint_trace_arrays`.

    Kept for API compatibility (and readability in tests); bulk callers
    should stay in array-land via :func:`footprint_trace_arrays`.
    """
    return footprint_trace_arrays(store, region, num_banks,
                                  row_bytes).requests()


@dataclass
class ReplayResult:
    """Outcome of a request-level replay."""

    service_time_s: float
    total_bytes: float
    row_hits: int
    row_misses: int

    @property
    def hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return 0.0 if total == 0 else self.row_hits / total


def replay_trace(requests: Union[TraceArrays, Sequence[MemoryRequest]],
                 config: DramConfig = DramConfig()) -> ReplayResult:
    """Replay requests through per-bank row-buffer state machines.

    Banks operate in parallel (each accumulates its own busy time); the
    shared data bus imposes the bandwidth floor, exactly mirroring the
    aggregate model's two terms — but here hits/misses come from the
    actual access sequence instead of an activation estimate.

    Vectorised: a stable sort by bank groups each bank's requests in
    trace order, a row-change scan yields hits/misses, and per-bank busy
    times reduce via ``np.bincount`` — no per-request Python loop.
    Accepts either a :class:`TraceArrays` batch or a sequence of
    :class:`MemoryRequest` (converted up front).
    """
    trace = requests if isinstance(requests, TraceArrays) \
        else TraceArrays.from_requests(requests)
    count = len(trace)
    if count == 0:
        return ReplayResult(service_time_s=0.0, total_bytes=0.0,
                            row_hits=0, row_misses=0)

    order = np.argsort(trace.banks, kind="stable")
    sorted_banks = trace.banks[order]
    sorted_rows = trace.rows[order]
    first_of_bank = np.ones(count, dtype=bool)
    first_of_bank[1:] = sorted_banks[1:] != sorted_banks[:-1]
    miss = first_of_bank.copy()        # open_row starts at -1: always a miss
    miss[1:] |= sorted_rows[1:] != sorted_rows[:-1]
    misses = int(miss.sum())
    hits = count - misses

    bursts = -(-trace.num_bytes[order] // config.burst_bytes)
    time_per_request = bursts * config.t_burst_s + miss * config.t_rc_s
    bank_time = np.bincount(sorted_banks, weights=time_per_request,
                            minlength=config.num_banks)
    total_bytes = float(trace.num_bytes.sum())
    bus_time = total_bytes / config.peak_bandwidth_bytes
    service = max(float(bank_time.max(initial=0.0)), bus_time)
    return ReplayResult(service_time_s=service, total_bytes=total_bytes,
                        row_hits=hits, row_misses=misses)


def compare_aggregate_to_replay(store: FeatureStore,
                                footprints: Sequence[FootprintRegion],
                                config: DramConfig = DramConfig()
                                ) -> Tuple[float, float]:
    """(aggregate seconds, replayed seconds) for a set of footprints."""
    from .interleave import bank_load_for_footprints

    bank_bytes, bank_acts = bank_load_for_footprints(store, footprints,
                                                     config.num_banks)
    aggregate = DramModel(config).service(bank_bytes, bank_acts)

    trace = footprints_trace_arrays(store, footprints, config.num_banks,
                                    config.row_bytes)
    replayed = replay_trace(trace, config)
    return aggregate.service_time_s, replayed.service_time_s
