"""Ray-Mixer (paper Sec. 3.3, Eqs. 4-5) — Gen-NeRF's attention-free
replacement for the ray transformer.

For density features f_sigma in R^(N x D) along one ray:

    Eq. 4:  F[:, i] = f[:, i] + phi(W1 f[:, i])   for i = 1..D
    Eq. 5:  sigma_j = W3 (F[j, :] + phi(W2 F[j, :]))   for j = 1..N

W1 mixes information *across the points of a ray* (token mixing, an
N_max x N_max FC), W2 mixes *across feature channels* per point, and W3
projects to a density logit.  All three are plain FC layers, so the
accelerator can run them on the same systolic arrays as the NeRF MLP —
this workload homogeneity is the whole point (Sec. 3.3).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn import Tensor


class RayMixer(nn.Module):
    """MLP-Mixer-style density module with a fixed point capacity N_max.

    The token-mixing weight W1 is (N_max, N_max); shorter rays are padded
    (mask False) and padded features are zeroed before mixing so they
    inject nothing into valid points.
    """

    def __init__(self, density_feature_dim: int, n_max: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.density_feature_dim = density_feature_dim
        self.n_max = n_max
        self.token_mix = nn.Linear(n_max, n_max, rng=rng)        # W1
        self.channel_mix = nn.Linear(density_feature_dim,
                                     density_feature_dim, rng=rng)  # W2
        self.head = nn.Linear(density_feature_dim, 1, rng=rng)   # W3

    def forward(self, density_features: Tensor,
                mask: Optional[np.ndarray] = None) -> Tensor:
        """(R, P, D) density features -> (R, P) density logits.

        ``P`` must equal ``n_max``; use padding + mask for shorter rays.
        """
        x = nn.as_tensor(density_features)
        rays, points, channels = x.shape
        if points != self.n_max:
            raise ValueError(f"RayMixer built for N_max={self.n_max} "
                             f"received {points} points; pad the ray")
        if mask is not None:
            x = x * Tensor(np.asarray(mask, dtype=np.float32)[..., None])

        # Eq. 4 — token mixing along the point axis, per channel.
        columns = x.transpose((0, 2, 1))                  # (R, D, N)
        mixed = nn.functional.elu(self.token_mix(columns))
        fused = (columns + mixed).transpose((0, 2, 1))    # residual, (R, N, D)

        # Eq. 5 — channel mixing per point, then projection to a logit.
        refined = fused + nn.functional.elu(self.channel_mix(fused))
        return self.head(refined).squeeze(-1)

    def flops(self, rays: int, points: int) -> int:
        """FLOPs for ``rays`` rays; ``points`` kept for interface parity
        (the mixer always computes at its built-in N_max)."""
        del points
        n, d = self.n_max, self.density_feature_dim
        token = 2 * rays * d * n * n
        channel = 2 * rays * n * d * d
        head = 2 * rays * n * d
        return token + channel + head
