"""Footprint-restricted training encode (``REPRO_FOOTPRINT``).

Training violates the paper's gather-dominated structure in one place:
every step convolves the *full* source images even though the step's
ray bundle fetches only the bilinear corners of a few dozen projected
sample points.  This module plans the repair: given the exact set of
feature-map pixels a step will gather, walk that set backward through
the encoder's conv stack to the input receptive fields, and hand the
encoder per-layer packed gather matrices so it convolves only those
pixels (:func:`repro.nn.functional.conv2d_at`).  Per-step encode cost
then tracks rays-per-batch instead of image area — the training-side
mirror of the sparse fine pass (ISSUE 9).

Bit-exactness is the contract, and it rests on three legs:

* **Padding / stride phase.**  The gather matrices address real
  neighbour pixels wherever the full image has them and the zero
  sentinel exactly where the full conv's zero-padding reads, so the
  packed patch rows are bitwise the :func:`repro.nn.functional.im2col`
  rows at the same output positions.
* **Kernel regimes.**  A GEMM over fewer rows may run a different BLAS
  kernel with a different in-register accumulation order.  The planner
  applies a scattered-subset-probed stability model (see
  :func:`_pad_for_regime`): wide outputs (N >= 9) and small-K shapes
  (K <= 30) are row-stable outright; narrow shapes over the 1M-cell
  kernel switch (the empirical constant the sparse fine pass ships on)
  are pinned by padding rows over the same switch; narrow small-regime
  and N == 1 shapes have no bitwise-safe packed count and fall back to
  the dense encode.
* **Backward.**  Un-gathered feature pixels receive exactly-zero
  gradient, and both the dense conv backward and the packed one apply
  the same :func:`repro.nn.functional.grad_live_rows` compaction, so
  they reduce the *same* weight-gradient GEMM; the packed input
  gradient replays ``col2im``'s per-offset accumulation order.  The
  planner's ``2 * n_out < dense_rows`` guard per layer is what makes
  the shared compaction rule always fire on both sides.

The knob mirrors ``REPRO_SPARSE``: on by default, lenient parsing, CLI
``--footprint/--no-footprint`` exports it to pool workers.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .ibrnet import _SGEMM_KERNEL_SWITCH_CELLS

FOOTPRINT_ENV = "REPRO_FOOTPRINT"

_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})

_LOG = logging.getLogger("repro.models.footprint")

# Process-wide counters, mirroring ``ibrnet.PACK_STATS``: how many
# training encodes ran footprint-restricted vs fell back to the dense
# conv stack (saturated footprint, infeasible kernel regime, knob off).
FOOTPRINT_STATS = {"footprint": 0, "dense": 0}


def parse_footprint_flag(value, source: str = FOOTPRINT_ENV
                         ) -> Optional[bool]:
    """Best-effort boolean parse; ``None`` (with a structured warning)
    on malformed input, so a typo'd knob degrades to the default."""
    text = str(value).strip().lower()
    if text in _TRUE_WORDS:
        return True
    if text in _FALSE_WORDS:
        return False
    # Imported lazily for the same package-init cycle reason as
    # :mod:`repro.models.sparse`.
    from ..core import log
    log.event(_LOG, "knob.ignored", level=logging.WARNING,
              knob=source, value=value)
    return None


def footprint_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the footprint-encode switch.

    Priority: explicit argument (``Trainer(..., footprint=...)`` or the
    CLI's ``--footprint/--no-footprint``), then the ``REPRO_FOOTPRINT``
    env knob, then the default (on).  Empty/whitespace env values are
    skipped; malformed values warn and fall through.
    """
    if override is not None:
        return bool(override)
    env = os.environ.get(FOOTPRINT_ENV)
    if env is not None and env.strip():
        parsed = parse_footprint_flag(env)
        if parsed is not None:
            return parsed
    return True


@dataclass
class LayerFootprint:
    """Packed execution recipe for one conv layer of the stack."""

    out_index: np.ndarray   # (n_out,) sorted flat indices into (S*oh*ow)
    gather: np.ndarray      # (n_out, k*k) rows into the previous level's
                            # packed rows; value n_in = zero-pad sentinel
    dense_rows: int         # S*oh*ow — the dense GEMM's row count
    pad_rows: int           # forward-GEMM regime-pinning pad
    pad_rows_grad: int      # input-gradient-GEMM regime-pinning pad


@dataclass
class FootprintPlan:
    """Backward-walked receptive-field plan for a whole conv stack."""

    layers: List[LayerFootprint]   # in execution order (conv1 first)
    input_index: np.ndarray        # (n0,) flat indices into (S*H*W)
    out_shape: Tuple[int, int, int]  # (S, Hf, Wf) of the final maps
    coverage: float                # fetched cells / total final cells


# Empirical row-stability model for this container's OpenBLAS, measured
# by scattered-subset probes (random row subsets of a dense GEMM,
# zero-padded, compared bitwise against the dense rows):
#
# * n >= 9 ("wide" outputs) — row-stable for any subset of >= 2 rows,
#   in either cell regime and across the regime boundary.
# * k <= _DIRECT_KERNEL_MAX_K — row-stable for any subset of >= 2 rows
#   (the small-K direct kernels accumulate per row).  K = 31 is stable,
#   K = 32 is not; 30 keeps a margin.
# * 2 <= n <= 8 with k > 30 — rows are only stable between two GEMMs on
#   the *same* side of the ~1M-cell kernel switch
#   (:data:`repro.models.ibrnet._SGEMM_KERNEL_SWITCH_CELLS`, the model
#   PR 9's sparse fine pass ships on).  A packed subset of a large-
#   regime dense GEMM is pinned by padding over the switch; in the
#   small regime no padding is bitwise-safe (4-aligned counts fail for
#   K >= 108 and scattered subsets), so the planner falls back.
# * n == 1 — sgemv is row-unstable at arbitrary counts in both regimes;
#   always fall back.
# * a 1-row product dispatches to the unstable vector path even for
#   "stable" shapes: every packed GEMM is padded to >= 2 rows.
_DIRECT_KERNEL_MAX_K = 30
_MIN_PACKED_ROWS = 2


def _pad_for_regime(rows: int, dense_rows: int, k: int, n: int
                    ) -> Optional[int]:
    """Extra zero rows for a packed (rows, k) x (k, n) GEMM to be
    row-stable against its dense (dense_rows, k) x (k, n) counterpart,
    or ``None`` when no padded count is bitwise-safe (dense fallback).
    """
    if n == 1:
        return None
    if n >= 9 or k <= _DIRECT_KERNEL_MAX_K:
        return max(0, _MIN_PACKED_ROWS - rows)
    cells = k * n
    if dense_rows * cells > _SGEMM_KERNEL_SWITCH_CELLS:
        return max(0, _SGEMM_KERNEL_SWITCH_CELLS // cells + 1 - rows)
    return None


def _input_mask(out_mask: np.ndarray, conv, in_hw: Tuple[int, int]
                ) -> np.ndarray:
    """Input pixels any requested output of ``conv`` reads (in-bounds
    taps only; padding reads have no input pixel)."""
    in_h, in_w = in_hw
    num_views = out_mask.shape[0]
    k, stride, pad = conv.kernel, conv.stride, conv.padding
    s_idx, y_idx, x_idx = np.nonzero(out_mask)
    in_mask = np.zeros((num_views, in_h, in_w), dtype=bool)
    for ky in range(k):
        in_y = y_idx * stride - pad + ky
        for kx in range(k):
            in_x = x_idx * stride - pad + kx
            ok = ((in_y >= 0) & (in_y < in_h)
                  & (in_x >= 0) & (in_x < in_w))
            in_mask[s_idx[ok], in_y[ok], in_x[ok]] = True
    return in_mask


def _positions(mask: np.ndarray) -> Tuple[np.ndarray, int]:
    """Packed row number per True cell (np.nonzero order == ascending
    flat index, i.e. the dense path's row order), -1 elsewhere."""
    pos = np.full(mask.shape, -1, dtype=np.intp)
    count = int(mask.sum())
    pos[mask] = np.arange(count, dtype=np.intp)
    return pos, count


def _gather_matrix(s_idx: np.ndarray, y_idx: np.ndarray, x_idx: np.ndarray,
                   pos: np.ndarray, conv, sentinel: int) -> np.ndarray:
    """(n_out, k*k) input-row indices per output pixel, (ky, kx) order;
    out-of-image taps get ``sentinel`` (the zero-padding row)."""
    _, in_h, in_w = pos.shape
    k, stride, pad = conv.kernel, conv.stride, conv.padding
    gather = np.full((s_idx.size, k * k), sentinel, dtype=np.intp)
    for ky in range(k):
        in_y = y_idx * stride - pad + ky
        for kx in range(k):
            in_x = x_idx * stride - pad + kx
            ok = ((in_y >= 0) & (in_y < in_h)
                  & (in_x >= 0) & (in_x < in_w))
            gather[ok, ky * k + kx] = pos[s_idx[ok], in_y[ok], in_x[ok]]
    return gather


def plan_conv_footprint(convs: Sequence, num_views: int, height: int,
                        width: int, out_mask: np.ndarray
                        ) -> Optional[FootprintPlan]:
    """Plan a packed run of ``convs`` producing exactly ``out_mask``.

    ``convs`` is the stack in execution order (``Conv2d``-likes with
    ``kernel``/``stride``/``padding``/``in_channels``/``out_channels``
    and ``output_shape``); ``out_mask`` is the (S, Hf, Wf) boolean set
    of final-layer output pixels that must be bit-exact.  Returns
    ``None`` — dense fallback — when the footprint is empty or covers
    half or more of any layer (the shared weight-gradient compaction
    rule would stop firing on the dense side), or when a layer's GEMM
    shape cannot be regime-pinned.

    Only the *first* conv may take a gradient-free input (source
    images): input-gradient GEMMs are regime-pinned for the later
    layers only.
    """
    dims = [(height, width)]
    for conv in convs:
        dims.append(conv.output_shape(*dims[-1]))
    final_h, final_w = dims[-1]
    if out_mask.shape != (num_views, final_h, final_w):
        raise ValueError(f"out_mask shape {out_mask.shape} does not match "
                         f"({num_views}, {final_h}, {final_w})")

    masks: List[np.ndarray] = [np.empty(0)] * (len(convs) + 1)
    masks[-1] = out_mask
    for i in range(len(convs) - 1, -1, -1):
        masks[i] = _input_mask(masks[i + 1], convs[i], dims[i])

    pos_prev, n_prev = _positions(masks[0])
    input_index = np.flatnonzero(masks[0].reshape(-1))
    layers: List[LayerFootprint] = []
    for i, conv in enumerate(convs):
        out_h, out_w = dims[i + 1]
        s_idx, y_idx, x_idx = np.nonzero(masks[i + 1])
        n_out = s_idx.size
        dense_rows = num_views * out_h * out_w
        if n_out == 0 or 2 * n_out >= dense_rows:
            return None
        taps = conv.in_channels * conv.kernel * conv.kernel
        pad_rows = _pad_for_regime(n_out, dense_rows, taps,
                                   conv.out_channels)
        if pad_rows is None:
            return None
        if i > 0:
            pad_grad = _pad_for_regime(n_out, dense_rows,
                                       conv.out_channels, taps)
            if pad_grad is None:
                return None
        else:
            pad_grad = 0
        gather = _gather_matrix(s_idx, y_idx, x_idx, pos_prev, conv, n_prev)
        out_index = s_idx * (out_h * out_w) + y_idx * out_w + x_idx
        layers.append(LayerFootprint(out_index=out_index, gather=gather,
                                     dense_rows=dense_rows,
                                     pad_rows=pad_rows,
                                     pad_rows_grad=pad_grad))
        pos_prev, n_prev = _positions(masks[i + 1])
    coverage = float(out_mask.sum()) / float(out_mask.size)
    return FootprintPlan(layers=layers, input_index=input_index,
                         out_shape=(num_views, final_h, final_w),
                         coverage=coverage)
