"""High-level image rendering with trained models.

Chunked, no-grad rendering of full (optionally strided) images for both
the IBRNet-style baseline (uniform/hierarchical sampling, equal points
per ray) and Gen-NeRF (coarse-then-focus).  Returns images plus the
sampling statistics the efficiency analyses need.

Performance notes: renders run under :class:`repro.nn.inference_mode`
(the true no-grad fast path — no graph, no closures); the chunk size is
*adaptive* — small ray counts render as one chunk instead of paying the
per-chunk Python cost, large images stream in bounded chunks so the
(S, R, P, C) intermediates never blow up memory; and callers that
render the same scene repeatedly can pass precomputed ``feature_maps``
to skip re-encoding (see :mod:`repro.core.experiments`, which caches
them per (model, scene) across a harness run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..geometry.rays import (RayBundle, image_shape_for_step, rays_for_image,
                             stratified_depths)
from ..scenes.datasets import Scene
from ..scenes.render_gt import render_image as render_gt_image
from ..scenes.render_gt import render_rays as render_gt_rays
from .gen_nerf import GenNeRF
from .ibrnet import GeneralizableNeRF
from .sampling import SampleSet, hierarchical_depths
from .volume_rendering import composite

# One chunk's worth of (view, ray, point) cells: bounds the peak size of
# the fetched-feature intermediates at roughly budget * (C + a few) * 4
# bytes while letting small renders go through in a single pass.
_CHUNK_CELL_BUDGET = 2_000_000


def adaptive_chunk(num_rays: int, num_views: int, points_per_ray: int,
                   requested: Optional[int] = None,
                   cell_budget: int = _CHUNK_CELL_BUDGET) -> int:
    """Rays per chunk: everything at once when it fits, streaming else.

    ``requested`` (a caller's explicit chunk size) wins when given —
    Gen-NeRF's per-chunk budget redistribution is semantically a
    tile-local scheduling choice, so callers that rely on a specific
    tile size keep it.
    """
    if requested is not None:
        return requested
    cells_per_ray = max(1, num_views * points_per_ray)
    if num_rays * cells_per_ray <= cell_budget:
        return max(num_rays, 1)
    return max(256, cell_budget // cells_per_ray)


def render_source_views(scene: Scene, num_points: int = 128,
                        step: int = 1) -> np.ndarray:
    """Ground-truth source images (S, 3, H, W) for conditioning.

    All source cameras render through one concatenated ray bundle (the
    per-camera Python loop collapsed into chunked batched field
    queries); per-ray results are identical to rendering each camera
    separately because the deterministic reference sampler is
    ray-independent.
    """
    cameras = scene.source_cameras
    if not cameras:
        return np.zeros((0, 3, 0, 0), dtype=np.float32)
    bundles = [rays_for_image(camera, scene.near, scene.far, step=step)
               for camera in cameras]
    combined = RayBundle(
        np.concatenate([b.origins for b in bundles], axis=0),
        np.concatenate([b.directions for b in bundles], axis=0),
        scene.near, scene.far)
    pixels = np.zeros((len(combined), 3), dtype=np.float64)
    chunk = 4096
    for start in range(0, len(combined), chunk):
        part = combined.select(slice(start, start + chunk))
        pixels[start:start + chunk] = render_gt_rays(
            scene.field, part, num_points,
            white_background=scene.spec.white_background)
    rows, cols = image_shape_for_step(cameras[0], step)
    images = pixels.reshape(len(cameras), rows, cols, 3)
    return np.ascontiguousarray(
        np.transpose(images, (0, 3, 1, 2))).astype(np.float32)


def render_image_ibrnet(model: GeneralizableNeRF, scene: Scene,
                        source_images: np.ndarray, num_points: int,
                        step: int = 4, chunk: Optional[int] = None,
                        hierarchical: bool = False,
                        coarse_points: Optional[int] = None,
                        feature_maps=None) -> np.ndarray:
    """Baseline rendering: equal sample count on every ray.

    The hierarchical coarse pass defaults to ``num_points`` samples so
    fixed-capacity ray modules (the Ray-Mixer's N_max) see a constant
    point count in both passes.

    Note: with ``hierarchical`` the fine-depth draws consume the rng
    chunk by chunk, so the rendered image depends on the chunking; pass
    an explicit ``chunk`` to reproduce a specific split — the adaptive
    default favours throughput.
    """
    coarse_points = coarse_points or num_points
    with nn.inference_mode():
        if feature_maps is None:
            feature_maps = model.encode_scene(source_images)
        bundle = rays_for_image(scene.target_camera, scene.near, scene.far,
                                step=step)
        rows, cols = image_shape_for_step(scene.target_camera, step)
        chunk = adaptive_chunk(len(bundle), len(scene.source_cameras),
                               num_points + (coarse_points if hierarchical
                                             else 0), chunk)
        out = np.zeros((len(bundle), 3), dtype=np.float64)
        rng = np.random.default_rng(0)
        for start in range(0, len(bundle), chunk):
            part = bundle.select(slice(start, start + chunk))
            if hierarchical:
                coarse = stratified_depths(rng, len(part), coarse_points,
                                           part.near, part.far, jitter=False)
                points = part.points_at(coarse)
                coarse_out = model(points, part.directions,
                                   scene.source_cameras, feature_maps,
                                   source_images)
                _, weights = composite(coarse_out.sigma, coarse_out.rgb,
                                       coarse, part.far)
                depths = hierarchical_depths(coarse,
                                             weights.data.astype(np.float64),
                                             num_points, part.near, part.far,
                                             rng)
            else:
                depths = stratified_depths(rng, len(part), num_points,
                                           part.near, part.far, jitter=False)
            points = part.points_at(depths)
            result = model(points, part.directions, scene.source_cameras,
                           feature_maps, source_images)
            pixel, _ = composite(result.sigma, result.rgb, depths, part.far)
            out[start:start + chunk] = pixel.data
    return out.reshape(rows, cols, 3)


def render_image_gen_nerf(model: GenNeRF, scene: Scene,
                          source_images: np.ndarray, step: int = 4,
                          chunk: Optional[int] = None,
                          feature_maps=None
                          ) -> Tuple[np.ndarray, Dict[str, float]]:
    """Gen-NeRF rendering; returns (image, stats with avg focused points).

    ``feature_maps`` (the ``(coarse_maps, fine_maps)`` pair from
    :meth:`GenNeRF.encode_scene`) skips re-encoding when provided.

    Note: the focused-sampling budget is redistributed *within* each
    chunk (tile-local scheduling, mirroring the accelerator) and the
    sampler reseeds per chunk, so the rendered image depends on the
    chunking; pass an explicit ``chunk`` to reproduce a specific
    tiling — the adaptive default favours throughput.
    """
    with nn.inference_mode():
        model.eval()
        if feature_maps is None:
            coarse_maps, fine_maps = model.encode_scene(source_images)
        else:
            coarse_maps, fine_maps = feature_maps
        bundle = rays_for_image(scene.target_camera, scene.near, scene.far,
                                step=step)
        rows, cols = image_shape_for_step(scene.target_camera, step)
        chunk = adaptive_chunk(len(bundle), len(scene.source_cameras),
                               model.config.coarse_points
                               + model.config.n_max, chunk)
        out = np.zeros((len(bundle), 3), dtype=np.float64)
        total_points = 0
        for start in range(0, len(bundle), chunk):
            part = bundle.select(slice(start, start + chunk))
            pixel, aux = model.render_rays(part, scene.source_cameras,
                                           coarse_maps, fine_maps,
                                           source_images, return_aux=True)
            out[start:start + chunk] = pixel.data
            total_points += aux["samples"].total_points
        stats = {
            "avg_focused_points": total_points / max(len(bundle), 1),
            "coarse_points": float(model.config.coarse_points),
        }
    return out.reshape(rows, cols, 3), stats


def render_target_reference(scene: Scene, num_points: int = 192,
                            step: int = 4) -> np.ndarray:
    """Dense ground-truth render of the held-out target view."""
    return render_gt_image(scene.field, scene.target_camera, scene.near,
                           scene.far, num_points=num_points, step=step,
                           white_background=scene.spec.white_background)
