"""High-level image rendering with trained models.

Chunked, no-grad rendering of full (optionally strided) images for both
the IBRNet-style baseline (uniform/hierarchical sampling, equal points
per ray) and Gen-NeRF (coarse-then-focus).  Returns images plus the
sampling statistics the efficiency analyses need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..geometry.rays import (RayBundle, image_shape_for_step, rays_for_image,
                             stratified_depths)
from ..scenes.datasets import Scene
from ..scenes.render_gt import render_image as render_gt_image
from .gen_nerf import GenNeRF
from .ibrnet import GeneralizableNeRF
from .sampling import SampleSet, hierarchical_depths
from .volume_rendering import composite


def render_source_views(scene: Scene, num_points: int = 128,
                        step: int = 1) -> np.ndarray:
    """Ground-truth source images (S, 3, H, W) for conditioning."""
    images = []
    for camera in scene.source_cameras:
        img = render_gt_image(scene.field, camera, scene.near, scene.far,
                              num_points=num_points, step=step,
                              white_background=scene.spec.white_background)
        images.append(np.transpose(img, (2, 0, 1)))
    return np.asarray(images, dtype=np.float32)


def render_image_ibrnet(model: GeneralizableNeRF, scene: Scene,
                        source_images: np.ndarray, num_points: int,
                        step: int = 4, chunk: int = 512,
                        hierarchical: bool = False,
                        coarse_points: Optional[int] = None) -> np.ndarray:
    """Baseline rendering: equal sample count on every ray.

    The hierarchical coarse pass defaults to ``num_points`` samples so
    fixed-capacity ray modules (the Ray-Mixer's N_max) see a constant
    point count in both passes.
    """
    coarse_points = coarse_points or num_points
    with nn.no_grad():
        feature_maps = model.encode_scene(source_images)
        bundle = rays_for_image(scene.target_camera, scene.near, scene.far,
                                step=step)
        rows, cols = image_shape_for_step(scene.target_camera, step)
        out = np.zeros((len(bundle), 3), dtype=np.float64)
        rng = np.random.default_rng(0)
        for start in range(0, len(bundle), chunk):
            part = bundle.select(slice(start, start + chunk))
            if hierarchical:
                coarse = stratified_depths(rng, len(part), coarse_points,
                                           part.near, part.far, jitter=False)
                points = part.points_at(coarse)
                coarse_out = model(points, part.directions,
                                   scene.source_cameras, feature_maps,
                                   source_images)
                _, weights = composite(coarse_out.sigma, coarse_out.rgb,
                                       coarse, part.far)
                depths = hierarchical_depths(coarse,
                                             weights.data.astype(np.float64),
                                             num_points, part.near, part.far,
                                             rng)
            else:
                depths = stratified_depths(rng, len(part), num_points,
                                           part.near, part.far, jitter=False)
            points = part.points_at(depths)
            result = model(points, part.directions, scene.source_cameras,
                           feature_maps, source_images)
            pixel, _ = composite(result.sigma, result.rgb, depths, part.far)
            out[start:start + chunk] = pixel.data
    return out.reshape(rows, cols, 3)


def render_image_gen_nerf(model: GenNeRF, scene: Scene,
                          source_images: np.ndarray, step: int = 4,
                          chunk: int = 512
                          ) -> Tuple[np.ndarray, Dict[str, float]]:
    """Gen-NeRF rendering; returns (image, stats with avg focused points)."""
    with nn.no_grad():
        model.eval()
        coarse_maps, fine_maps = model.encode_scene(source_images)
        bundle = rays_for_image(scene.target_camera, scene.near, scene.far,
                                step=step)
        rows, cols = image_shape_for_step(scene.target_camera, step)
        out = np.zeros((len(bundle), 3), dtype=np.float64)
        total_points = 0
        for start in range(0, len(bundle), chunk):
            part = bundle.select(slice(start, start + chunk))
            pixel, aux = model.render_rays(part, scene.source_cameras,
                                           coarse_maps, fine_maps,
                                           source_images, return_aux=True)
            out[start:start + chunk] = pixel.data
            total_points += aux["samples"].total_points
        stats = {
            "avg_focused_points": total_points / max(len(bundle), 1),
            "coarse_points": float(model.config.coarse_points),
        }
    return out.reshape(rows, cols, 3), stats


def render_target_reference(scene: Scene, num_points: int = 192,
                            step: int = 4) -> np.ndarray:
    """Dense ground-truth render of the held-out target view."""
    return render_gt_image(scene.field, scene.target_camera, scene.near,
                           scene.far, num_points=num_points, step=step,
                           white_background=scene.spec.white_background)
