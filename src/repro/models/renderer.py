"""High-level image rendering with trained models.

Chunked, no-grad rendering of full (optionally strided) images for both
the IBRNet-style baseline (uniform/hierarchical sampling, equal points
per ray) and Gen-NeRF (coarse-then-focus).  Returns images plus the
sampling statistics the efficiency analyses need.

Performance notes: renders run under :class:`repro.nn.inference_mode`
(the true no-grad fast path — no graph, no closures); the chunk size is
*adaptive* — small ray counts render as one chunk instead of paying the
per-chunk Python cost, large images stream in bounded chunks so the
(S, R, P, C) intermediates never blow up memory; and callers that
render the same scene repeatedly can pass precomputed ``feature_maps``
to skip re-encoding (see :mod:`repro.core.experiments`, which caches
them per (model, scene) across a harness run).

Intra-frame sharding: every chunk loop below is expressed as a
module-level *chunk function* over a per-frame payload (model, encoded
maps, ray bundle), fanned over the persistent worker pool in
:mod:`repro.core.frame_pool` when ``workers`` resolves above 1.  Chunk
boundaries are computed identically to the sequential path, each chunk
is an independent function of its slice (the Gen-NeRF sampler reseeds
per chunk; the IBRNet hierarchical draws are pre-drawn in chunk order),
and ``out[start:stop]`` slices stitch in task order — so the rendered
image is **byte-identical** at any worker count
(``tests/models/test_render_sharded.py``).  ``workers=1`` (the default)
keeps the historical in-process loop; ``workers=None`` autodetects
(``REPRO_WORKERS`` env, then CPU count) with the nested-pool guard.

The sparse fine pass (:mod:`repro.models.sparse`) composes with all of
the above untouched: chunk boundaries are computed *before* any model
forward, and the packing is a per-chunk decision inside
``GeneralizableNeRF.forward`` that scatters back to the dense grid
before returning — so packed renders keep identical chunk geometry and
stay byte-identical to the padded reference at any worker width
(``tests/models/test_sparse_fine_pass.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..core import frame_pool
from ..geometry.rays import (RayBundle, image_shape_for_step, rays_for_image,
                             stratified_depths)
from ..scenes.datasets import Scene
from ..scenes.render_gt import render_image as render_gt_image
from ..scenes.render_gt import render_rays as render_gt_rays
from .gen_nerf import GenNeRF
from .ibrnet import GeneralizableNeRF
from .sampling import SampleSet, hierarchical_depths
from .volume_rendering import composite

# One chunk's worth of (view, ray, point) cells: bounds the peak size of
# the fetched-feature intermediates at roughly budget * (C + a few) * 4
# bytes while letting small renders go through in a single pass.
_CHUNK_CELL_BUDGET = 2_000_000


def adaptive_chunk(num_rays: int, num_views: int, points_per_ray: int,
                   requested: Optional[int] = None,
                   cell_budget: int = _CHUNK_CELL_BUDGET) -> int:
    """Rays per chunk: everything at once when it fits, streaming else.

    ``requested`` (a caller's explicit chunk size) wins when given —
    Gen-NeRF's per-chunk budget redistribution is semantically a
    tile-local scheduling choice, so callers that rely on a specific
    tile size keep it.
    """
    if requested is not None:
        return requested
    cells_per_ray = max(1, num_views * points_per_ray)
    if num_rays * cells_per_ray <= cell_budget:
        return max(num_rays, 1)
    return max(256, cell_budget // cells_per_ray)


def _chunk_slices(num_rays: int, chunk: int) -> list:
    """The sequential loop's ``(start, stop)`` pairs, shared verbatim by
    the sharded fan-out so both paths see identical chunk geometry."""
    return [(start, min(start + chunk, num_rays))
            for start in range(0, num_rays, chunk)]


# ----------------------------------------------------------------------
# Module-level chunk functions (picklable; first arg is the per-worker
# payload installed once by the frame pool initializer)
# ----------------------------------------------------------------------

def _source_view_chunk(state, start: int, stop: int) -> np.ndarray:
    """Ground-truth field quadrature for one slice of the combined
    source-camera bundle (deterministic per ray — shard-order free)."""
    field, combined, num_points, white_background = state
    part = combined.select(slice(start, stop))
    return render_gt_rays(field, part, num_points,
                          white_background=white_background)


def _ibrnet_chunk(state, start: int, stop: int,
                  uniforms: Optional[np.ndarray]) -> np.ndarray:
    """One IBRNet renderer chunk -> (stop - start, 3) pixels.

    ``uniforms`` carries the hierarchical fine-depth draws, pre-drawn
    by the caller in chunk order from the frame's ``default_rng(0)`` —
    the draw depends only on the chunk's shape, so pre-drawing yields
    exactly the values the historical in-loop draw produced while
    making every chunk independent of its predecessors.
    """
    (model, bundle, source_cameras, source_images, feature_maps,
     num_points, coarse_points, hierarchical) = state
    with nn.inference_mode():
        part = bundle.select(slice(start, stop))
        if hierarchical:
            coarse = stratified_depths(None, len(part), coarse_points,
                                       part.near, part.far, jitter=False)
            points = part.points_at(coarse)
            coarse_out = model(points, part.directions, source_cameras,
                               feature_maps, source_images)
            _, weights = composite(coarse_out.sigma, coarse_out.rgb,
                                   coarse, part.far)
            depths = hierarchical_depths(coarse,
                                         weights.data.astype(np.float64),
                                         num_points, part.near, part.far,
                                         rng=None, uniforms=uniforms)
        else:
            depths = stratified_depths(None, len(part), num_points,
                                       part.near, part.far, jitter=False)
        points = part.points_at(depths)
        result = model(points, part.directions, source_cameras,
                       feature_maps, source_images)
        pixel, _ = composite(result.sigma, result.rgb, depths, part.far)
        return pixel.data


def _gen_nerf_chunk(state, start: int, stop: int
                    ) -> Tuple[np.ndarray, int]:
    """One Gen-NeRF renderer chunk -> (pixels, focused point count).

    The coarse-then-focus sampler reseeds ``default_rng(0)`` per chunk
    and the focused budget redistributes *within* the chunk, so a chunk
    is a pure function of its slice — byte-identical wherever it runs.
    """
    (model, bundle, source_cameras, coarse_maps, fine_maps,
     source_images) = state
    with nn.inference_mode():
        model.eval()
        part = bundle.select(slice(start, stop))
        pixel, aux = model.render_rays(part, source_cameras, coarse_maps,
                                       fine_maps, source_images,
                                       return_aux=True)
        return pixel.data, aux["samples"].total_points


# ----------------------------------------------------------------------
# Public renderers
# ----------------------------------------------------------------------

def render_source_views(scene: Scene, num_points: int = 128,
                        step: int = 1,
                        workers: Optional[int] = 1) -> np.ndarray:
    """Ground-truth source images (S, 3, H, W) for conditioning.

    All source cameras render through one concatenated ray bundle (the
    per-camera Python loop collapsed into chunked batched field
    queries); per-ray results are identical to rendering each camera
    separately because the deterministic reference sampler is
    ray-independent.  ``workers`` shards the chunk fan-out over the
    frame pool (``None`` autodetects) — this is the minutes-scale
    ``SceneData.prepare`` hot path, and the quadrature is per-ray
    deterministic, so shards stitch byte-identically.
    """
    cameras = scene.source_cameras
    if not cameras:
        return np.zeros((0, 3, 0, 0), dtype=np.float32)
    bundles = [rays_for_image(camera, scene.near, scene.far, step=step)
               for camera in cameras]
    combined = RayBundle(
        np.concatenate([b.origins for b in bundles], axis=0),
        np.concatenate([b.directions for b in bundles], axis=0),
        scene.near, scene.far)
    chunk = 4096
    slices = _chunk_slices(len(combined), chunk)
    state = (scene.field, combined, num_points,
             scene.spec.white_background)
    results = frame_pool.map_chunks(_source_view_chunk, state, slices,
                                    workers)
    pixels = np.zeros((len(combined), 3), dtype=np.float64)
    for (start, stop), part in zip(slices, results):
        pixels[start:stop] = part
    rows, cols = image_shape_for_step(cameras[0], step)
    images = pixels.reshape(len(cameras), rows, cols, 3)
    return np.ascontiguousarray(
        np.transpose(images, (0, 3, 1, 2))).astype(np.float32)


def render_image_ibrnet(model: GeneralizableNeRF, scene: Scene,
                        source_images: np.ndarray, num_points: int,
                        step: int = 4, chunk: Optional[int] = None,
                        hierarchical: bool = False,
                        coarse_points: Optional[int] = None,
                        feature_maps=None,
                        workers: Optional[int] = 1) -> np.ndarray:
    """Baseline rendering: equal sample count on every ray.

    The hierarchical coarse pass defaults to ``num_points`` samples so
    fixed-capacity ray modules (the Ray-Mixer's N_max) see a constant
    point count in both passes.

    Note: with ``hierarchical`` the fine-depth draws consume the rng
    chunk by chunk, so the rendered image depends on the chunking; pass
    an explicit ``chunk`` to reproduce a specific split — the adaptive
    default favours throughput.  For a *fixed* chunking the image does
    not depend on ``workers``: the draws are pre-drawn in chunk order
    and shards stitch in task order, byte-identical to sequential.
    """
    coarse_points = coarse_points or num_points
    with nn.inference_mode():
        if feature_maps is None:
            feature_maps = model.encode_scene(source_images)
    bundle = rays_for_image(scene.target_camera, scene.near, scene.far,
                            step=step)
    rows, cols = image_shape_for_step(scene.target_camera, step)
    chunk = adaptive_chunk(len(bundle), len(scene.source_cameras),
                           num_points + (coarse_points if hierarchical
                                         else 0), chunk)
    slices = _chunk_slices(len(bundle), chunk)
    # The frame's sampler stream: the historical loop drew the
    # hierarchical uniforms inside each chunk from this one generator;
    # nothing else consumes it, so drawing the same (rays, points)
    # blocks here in chunk order reproduces those values bit for bit.
    rng = np.random.default_rng(0)
    tasks = [(start, stop,
              rng.random((stop - start, num_points)) if hierarchical
              else None)
             for start, stop in slices]
    state = (model, bundle, tuple(scene.source_cameras), source_images,
             feature_maps, num_points, coarse_points, hierarchical)
    results = frame_pool.map_chunks(_ibrnet_chunk, state, tasks, workers)
    out = np.zeros((len(bundle), 3), dtype=np.float64)
    for (start, stop), pixel in zip(slices, results):
        out[start:stop] = pixel
    return out.reshape(rows, cols, 3)


def render_image_gen_nerf(model: GenNeRF, scene: Scene,
                          source_images: np.ndarray, step: int = 4,
                          chunk: Optional[int] = None,
                          feature_maps=None,
                          workers: Optional[int] = 1
                          ) -> Tuple[np.ndarray, Dict[str, float]]:
    """Gen-NeRF rendering; returns (image, stats with avg focused points).

    ``feature_maps`` (the ``(coarse_maps, fine_maps)`` pair from
    :meth:`GenNeRF.encode_scene`) skips re-encoding when provided.

    Note: the focused-sampling budget is redistributed *within* each
    chunk (tile-local scheduling, mirroring the accelerator) and the
    sampler reseeds per chunk, so the rendered image depends on the
    chunking; pass an explicit ``chunk`` to reproduce a specific
    tiling — the adaptive default favours throughput.  At a fixed
    chunking the image is independent of ``workers`` (chunks are pure
    functions of their slice, stitched in task order).
    """
    with nn.inference_mode():
        model.eval()
        if feature_maps is None:
            coarse_maps, fine_maps = model.encode_scene(source_images)
        else:
            coarse_maps, fine_maps = feature_maps
    bundle = rays_for_image(scene.target_camera, scene.near, scene.far,
                            step=step)
    rows, cols = image_shape_for_step(scene.target_camera, step)
    chunk = adaptive_chunk(len(bundle), len(scene.source_cameras),
                           model.config.coarse_points
                           + model.config.n_max, chunk)
    slices = _chunk_slices(len(bundle), chunk)
    state = (model, bundle, tuple(scene.source_cameras), coarse_maps,
             fine_maps, source_images)
    results = frame_pool.map_chunks(_gen_nerf_chunk, state, slices, workers)
    out = np.zeros((len(bundle), 3), dtype=np.float64)
    total_points = 0
    for (start, stop), (pixel, points) in zip(slices, results):
        out[start:stop] = pixel
        total_points += points
    stats = {
        "avg_focused_points": total_points / max(len(bundle), 1),
        "coarse_points": float(model.config.coarse_points),
    }
    return out.reshape(rows, cols, 3), stats


def render_target_reference(scene: Scene, num_points: int = 192,
                            step: int = 4) -> np.ndarray:
    """Dense ground-truth render of the held-out target view."""
    return render_gt_image(scene.field, scene.target_camera, scene.near,
                           scene.far, num_points=num_points, step=step,
                           white_background=scene.spec.white_background)
