"""``repro.models`` — the Gen-NeRF algorithm side (paper Secs. 2-3, 5.2).

Generalizable NeRF backbone (IBRNet-style), the ray transformer baseline
and Ray-Mixer replacement, the coarse-then-focus sampler, volume
rendering, pruning, metrics, training, and paper-scale workload
accounting.
"""

from .encoder import ConvEncoder
from .features import (FetchedFeatures, bilinear_gather,
                       feature_access_bytes, fetch_features,
                       fetched_pixel_mask)
from .footprint import (FOOTPRINT_ENV, FOOTPRINT_STATS, FootprintPlan,
                        footprint_enabled, plan_conv_footprint)
from .gen_nerf import GenNeRF, GenNerfConfig
from .ibrnet import GeneralizableNeRF, ModelConfig, RenderOutput
from .metrics import lpips_proxy, mse, psnr, ssim
from .oracle import OracleStrategy, oracle_render, oracle_render_image
from .pruning import (channel_importance, prune_gen_nerf,
                      prune_generalizable_nerf, select_channels)
from .ray_mixer import RayMixer
from .ray_transformer import PointwiseDensityHead, RayTransformer
from .renderer import (render_image_gen_nerf, render_image_ibrnet,
                       render_source_views, render_target_reference)
from .sampling import (SampleSet, allocate_ray_budget, coarse_then_focus_plan,
                       focused_depths, hierarchical_depths,
                       merge_critical_points, sampling_pdf,
                       stratified_depths)
from .training import (SceneData, TrainConfig, Trainer, finetune,
                       sample_pixel_batch)
from .volume_rendering import composite, expected_depth, opacity
from .workload import (DEFAULT_DIMS, PaperScaleDims, RenderWorkload,
                       encoder_macs_per_view, per_point_macs,
                       per_view_point_macs, profiling_workload,
                       ray_mixer_macs, ray_transformer_macs, table2_workload,
                       typical_workload)

__all__ = [
    "ConvEncoder", "FetchedFeatures", "bilinear_gather", "fetch_features",
    "feature_access_bytes", "fetched_pixel_mask",
    "FOOTPRINT_ENV", "FOOTPRINT_STATS", "FootprintPlan",
    "footprint_enabled", "plan_conv_footprint",
    "GenNeRF", "GenNerfConfig", "GeneralizableNeRF", "ModelConfig",
    "RenderOutput", "RayMixer", "RayTransformer", "PointwiseDensityHead",
    "SampleSet", "stratified_depths", "hierarchical_depths", "sampling_pdf",
    "allocate_ray_budget", "focused_depths", "coarse_then_focus_plan",
    "merge_critical_points",
    "composite", "expected_depth", "opacity",
    "OracleStrategy", "oracle_render", "oracle_render_image",
    "psnr", "mse", "ssim", "lpips_proxy",
    "prune_generalizable_nerf", "prune_gen_nerf", "channel_importance",
    "select_channels",
    "render_source_views", "render_image_ibrnet", "render_image_gen_nerf",
    "render_target_reference",
    "SceneData", "TrainConfig", "Trainer", "finetune", "sample_pixel_batch",
    "PaperScaleDims", "DEFAULT_DIMS", "RenderWorkload", "per_point_macs",
    "per_view_point_macs", "ray_transformer_macs", "ray_mixer_macs",
    "encoder_macs_per_view", "profiling_workload", "table2_workload",
    "typical_workload",
]
