"""Point sampling strategies along camera rays.

Implements the three samplers the paper compares:

* **Stratified uniform** — vanilla NeRF's base sampler (re-exported from
  :mod:`repro.geometry.rays`).
* **Hierarchical** — vanilla NeRF's two-level sampler: a coarse pass
  yields weights, a fine pass importance-samples *the same number of
  points on every ray*.  This is the IBRNet baseline's strategy.
* **Coarse-then-focus** (paper Sec. 3.2) — Gen-NeRF's sampler.  Step ①
  runs a lightweight coarse pass; Step ② filters empty/occluded regions
  by thresholding hitting probabilities w_k against tau and builds the
  sampling PDF ``P(k, j) = P(k | j) P(j)`` with ``P(j)`` proportional to
  the per-ray count of critical points; Step ③ draws a *global* budget of
  ``num_rays x N_f`` samples from that PDF via inverse-transform
  sampling, so rays through empty/occluded space receive few (possibly
  zero) points while surface rays receive many.  For batch training the
  per-ray samples are padded to ``N_max`` with an accompanying mask.

Performance note: this module is on the render critical path (the
sampler runs for every ray of every frame), so every per-ray Python
loop has been replaced with batched numpy — a flat batched
``searchsorted`` in :func:`_inverse_transform`, sort-and-pack in
:func:`focused_depths`, and a sorted-union mask dance in
:func:`merge_critical_points` — with row compression skipping the empty
rays the sampler exists to create.  ``benchmarks/harness.py`` tracks
the speedup over the seed loop implementations (kept in
:mod:`repro.perf.reference`); the equivalence suite pins bit-identical
outputs at fixed seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..geometry.rays import stratified_depths

__all__ = [
    "stratified_depths", "SampleSet", "SamplePacking", "pack_samples",
    "hierarchical_depths", "sampling_pdf", "allocate_ray_budget",
    "focused_depths", "coarse_then_focus_plan",
]

# Packed-row alignment for :func:`pack_samples`.  16 keeps every GEMM
# the packed fine pass issues on a row granularity where this
# container's OpenBLAS kernels are tail-free for all the shapes the
# models use (the strictest measured granularity is 16 rows, for the
# K=2 matrix-vector tail); it also floors the padded length so the
# f64 projection GEMM never degenerates to a single row.
PACK_ALIGN = 16


def _aligned_rows(rows: int, align: int = PACK_ALIGN) -> int:
    return max(align, ((rows + align - 1) // align) * align)


@dataclass
class SampleSet:
    """Depths plus a validity mask, the common currency of the renderers.

    ``depths`` is (R, N_max) sorted ascending within the valid prefix;
    ``mask`` is (R, N_max) with True marking real samples.  ``counts``
    gives the number of valid samples per ray.
    """

    depths: np.ndarray
    mask: np.ndarray

    def __post_init__(self):
        self.depths = np.asarray(self.depths, dtype=np.float64)
        self.mask = np.asarray(self.mask, dtype=bool)
        if self.depths.shape != self.mask.shape:
            raise ValueError("depths and mask shapes differ")

    @property
    def counts(self) -> np.ndarray:
        return self.mask.sum(axis=-1)

    @property
    def total_points(self) -> int:
        return int(self.mask.sum())

    @staticmethod
    def dense(depths: np.ndarray) -> "SampleSet":
        depths = np.asarray(depths, dtype=np.float64)
        return SampleSet(depths, np.ones(depths.shape, dtype=bool))


@dataclass(frozen=True)
class SamplePacking:
    """Struct-of-arrays compression of a ``SampleSet.mask``.

    The sparse fine pass flattens the valid entries of an (R, N_max)
    sample grid into flat ``(V_pad, ...)`` buffers — the same
    struct-of-arrays idiom as ``TraceArrays``/``PlanArrays``.
    ``ray_index``/``point_index`` name each packed row's dense cell in
    **ray-major order** (``np.nonzero`` order), so one ray's samples
    form a contiguous segment whose length is ``counts[ray]`` and whose
    start is ``offsets[ray]``.  Rows past ``valid`` are padding: copies
    of the first valid cell, present only to keep the packed GEMMs on
    an aligned, kernel-regime-matched row count (see
    :meth:`repro.models.ibrnet.GeneralizableNeRF._packed_pad_bounds`);
    their outputs are dropped on scatter.
    """

    ray_index: np.ndarray    # (V_pad,) intp — dense ray of each packed row
    point_index: np.ndarray  # (V_pad,) intp — dense sample slot of each row
    valid: int               # V: real packed rows; the rest are padding
    num_rays: int            # R of the dense grid
    points_per_ray: int      # N_max of the dense grid

    @property
    def padded(self) -> int:
        """V_pad — total packed rows including alignment padding."""
        return int(self.ray_index.shape[0])

    @property
    def flat_index(self) -> np.ndarray:
        """(V,) flat dense-grid positions of the valid rows (for the
        scatter back into ``(R * N_max, ...)`` buffers)."""
        return (self.ray_index[:self.valid] * self.points_per_ray
                + self.point_index[:self.valid])

    @property
    def counts(self) -> np.ndarray:
        """(R,) per-ray segment lengths (== ``SampleSet.counts``)."""
        return np.bincount(self.ray_index[:self.valid],
                           minlength=self.num_rays)

    @property
    def offsets(self) -> np.ndarray:
        """(R + 1,) CSR-style segment starts into the packed buffers."""
        return np.concatenate([[0], np.cumsum(self.counts)])


def pack_samples(mask: np.ndarray, pad_to: Optional[int] = None
                 ) -> SamplePacking:
    """Build the packed index set for an (R, N_max) validity mask.

    ``pad_to`` raises the padded row count (it is then aligned up to
    :data:`PACK_ALIGN`); the result always has at least
    ``max(valid, pad_to, PACK_ALIGN)`` rows.  With zero valid samples
    the padding rows point at cell (0, 0).
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError(f"mask must be (R, N_max), got shape {mask.shape}")
    rows, cols = np.nonzero(mask)
    valid = int(rows.shape[0])
    padded = _aligned_rows(max(valid, pad_to or 0))
    ray_index = np.empty(padded, dtype=np.intp)
    point_index = np.empty(padded, dtype=np.intp)
    ray_index[:valid] = rows
    point_index[:valid] = cols
    ray_index[valid:] = rows[0] if valid else 0
    point_index[valid:] = cols[0] if valid else 0
    return SamplePacking(ray_index=ray_index, point_index=point_index,
                         valid=valid, num_rays=int(mask.shape[0]),
                         points_per_ray=int(mask.shape[1]))


def _inverse_transform(bin_edges: np.ndarray, pdf: np.ndarray,
                       uniforms: np.ndarray) -> np.ndarray:
    """Sample depths from a per-ray piecewise-constant PDF.

    ``bin_edges`` (R, B+1), ``pdf`` (R, B) (need not be normalised),
    ``uniforms`` (R, K) in [0, 1).  Vectorised inverse-CDF; this is the
    software model of the accelerator's "Monte-Carlo simulator" unit
    (PDF-to-CDF converter + comparator array, Fig. 7).

    The bin lookup is batched — no per-ray Python loop.  Two exact
    strategies, picked by bin count:

    * small B (the paper's regime, N_c <= 64): count, per uniform, how
      many CDF entries are <= it.  That is literally what a right-biased
      ``searchsorted`` returns, computed as B vectorised comparisons
      over the (R, K) uniform block — linear in B but branch-free and
      cache-friendly, and *bit-identical* to the per-ray loop.
    * large B: a single flat ``searchsorted``.  Each ray's CDF spans
      exactly [0, 1] (the final division pins the last entry to 1.0),
      so offsetting ray ``r``'s CDF and uniforms by ``2 r`` makes the
      flattened CDF globally ascending and one search locates every
      (ray, uniform) pair at once.  The offset is exactly representable
      and preserves every comparison except ties within one double ulp
      of the offset magnitude (~1e-12 at R~4096), far below the PDF
      floor.

    The equivalence suite pins both against the seed loop at fixed
    seeds.
    """
    # Computation is pinned to float64 (every in-repo caller already
    # passes float64): the in-place buffer reuse below assumes one
    # dtype throughout rather than numpy's pairwise promotion rules.
    pdf = np.asarray(pdf, dtype=np.float64)
    bin_edges = np.asarray(bin_edges, dtype=np.float64)
    uniforms = np.asarray(uniforms, dtype=np.float64)
    num_rays, num_bins = pdf.shape[0], pdf.shape[-1]
    pdf = np.maximum(pdf, 0.0)
    pdf += 1e-12
    cdf = np.empty((num_rays, num_bins + 1))      # (R, B+1), built in place
    cdf[:, 0] = 0.0
    np.cumsum(pdf, axis=-1, out=cdf[:, 1:])
    np.divide(cdf[:, 1:], cdf[:, -1].copy()[:, None], out=cdf[:, 1:])
    if num_bins <= 64:
        # Column 0 is identically zero and uniforms are >= 0, so it
        # always counts; start from its contribution and accumulate the
        # remaining columns.  ``searchsorted(..., "right") - 1`` equals
        # this count minus one, and the two cancel.  uint16 counters
        # halve the accumulator's memory traffic (B <= 64 here).
        counters = np.zeros(uniforms.shape, dtype=np.uint16)
        compare_buffer = np.empty(uniforms.shape, dtype=bool)
        for column in range(1, num_bins + 1):
            np.less_equal(cdf[:, column, None], uniforms, out=compare_buffer)
            counters += compare_buffer
        indices = np.minimum(counters, num_bins - 1).astype(np.intp)
    else:
        rows_2d = np.arange(num_rays)[:, None]
        offsets = 2.0 * rows_2d
        flat_positions = np.searchsorted(
            (cdf + offsets).ravel(), (uniforms + offsets).ravel(),
            side="right")
        indices = flat_positions.reshape(uniforms.shape) - 1 \
            - rows_2d * (num_bins + 1)
        indices = np.clip(indices, 0, num_bins - 1)

    # Flat gathers (np.take on a raveled view) beat 2-D advanced
    # indexing by ~2x: one index array, contiguous reads.  The lerp
    # reuses the gathered buffers; same ops in the same order as the
    # seed, so results stay bit-identical.
    flat_indices = indices + (np.arange(num_rays) * (num_bins + 1))[:, None]
    cdf_lo = np.take(cdf, flat_indices)
    edge_lo = np.take(bin_edges, flat_indices)
    flat_indices += 1
    cdf_hi = np.take(cdf, flat_indices)
    edge_hi = np.take(bin_edges, flat_indices)
    width = np.subtract(cdf_hi, cdf_lo, out=cdf_hi)
    np.maximum(width, 1e-12, out=width)
    frac = np.subtract(uniforms, cdf_lo, out=cdf_lo)
    np.divide(frac, width, out=frac)
    span = np.subtract(edge_hi, edge_lo, out=edge_hi)
    span *= frac
    span += edge_lo
    return span


def _edges_from_centers(depths: np.ndarray, near: float,
                        far: float) -> np.ndarray:
    """Bin edges from sorted sample centres, clamped to [near, far]."""
    mids = 0.5 * (depths[..., 1:] + depths[..., :-1])
    lo = np.full(depths.shape[:-1] + (1,), near, dtype=np.float64)
    hi = np.full(depths.shape[:-1] + (1,), far, dtype=np.float64)
    return np.concatenate([lo, mids, hi], axis=-1)


def hierarchical_depths(coarse_depths: np.ndarray, coarse_weights: np.ndarray,
                        num_fine: int, near: float, far: float,
                        rng: Optional[np.random.Generator],
                        include_coarse: bool = False,
                        uniforms: Optional[np.ndarray] = None) -> np.ndarray:
    """Vanilla-NeRF fine sampling: same count on every ray (Mildenhall).

    Importance-samples ``num_fine`` depths per ray from the coarse
    weights; optionally merges the coarse depths back in (as NeRF does).
    Returns sorted (R, num_fine[+Nc]).

    ``uniforms`` (R, num_fine) replaces the rng draw when given — the
    sharded renderer pre-draws a frame's uniforms in chunk order from
    the frame rng and ships each chunk its own block, so a chunk's
    result no longer depends on its predecessors having advanced the
    stream (same values, shard-safe).
    """
    edges = _edges_from_centers(coarse_depths, near, far)
    if uniforms is None:
        uniforms = rng.random((coarse_depths.shape[0], num_fine))
    fine = _inverse_transform(edges, coarse_weights, uniforms)
    if include_coarse:
        fine = np.concatenate([fine, coarse_depths], axis=-1)
    return np.sort(fine, axis=-1)


def sampling_pdf(coarse_weights: np.ndarray, tau: float
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Paper Step ②: empty/occluded-region filtering and PDF estimation.

    Points whose hitting probability clears the threshold are *critical
    points*.  The threshold is applied to the bin-count-normalised
    probability ``w_k * N_c >= tau`` so that whether a region counts as
    critical does not depend on how finely the coarse pass happened to
    slice it (halving the bin width halves every w_k; the paper's fixed
    per-point threshold would silently reclassify regions).

    Returns ``(ray_probability P(j), point_pdf P(k|j), critical_counts)``.
    Rays with no critical point receive probability 0 — they are the
    empty/occluded rays whose budget is redistributed.  If *no* ray has a
    critical point (e.g. a camera staring into empty space), falls back to
    weight-proportional allocation so rendering still proceeds.
    """
    weights = np.asarray(coarse_weights, dtype=np.float64)
    num_bins = max(weights.shape[-1], 1)
    critical = weights * num_bins >= tau
    critical_counts = critical.sum(axis=-1)

    total_critical = critical_counts.sum()
    if total_critical > 0:
        ray_probability = critical_counts / total_critical
    else:
        mass = weights.sum(axis=-1)
        ray_probability = (mass + 1e-12) / (mass.sum() + 1e-12 * len(mass))

    point_pdf = weights + 1e-12
    point_pdf = point_pdf / point_pdf.sum(axis=-1, keepdims=True)
    return ray_probability, point_pdf, critical_counts


def allocate_ray_budget(ray_probability: np.ndarray, total_points: int,
                        n_max: int, min_points: int = 0) -> np.ndarray:
    """Integer per-ray sample counts from ``P(j)`` (largest remainder).

    Deterministic so renders are reproducible; respects ``n_max`` (the
    training-time pad bound) by redistributing clipped mass to the next
    largest-remainder rays.

    When ``min_points > 0`` the floor is paid for by stealing the excess
    back from the largest-count rays, so ``counts.sum() == total_points``
    holds whenever the budget is feasible at all, i.e.
    ``len(counts) * min_points <= total_points <= len(counts) * n_max``.
    Outside that range the nearest bound wins: an unaffordable floor
    leaves the sum above ``total_points``, and a budget exceeding the
    pad capacity saturates every ray at ``n_max``.
    """
    probability = np.asarray(ray_probability, dtype=np.float64)
    if probability.sum() <= 0:
        probability = np.ones_like(probability)
    probability = probability / probability.sum()

    raw = probability * total_points
    counts = np.floor(raw).astype(np.int64)
    counts = np.minimum(counts, n_max)
    remainder = int(total_points - counts.sum())
    if remainder > 0:
        # Largest-remainder rays with headroom each take one point.
        fractional = np.where(counts < n_max, raw - np.floor(raw), -1.0)
        order = np.argsort(fractional)[::-1]
        chosen = order[counts[order] < n_max][:remainder]
        counts[chosen] += 1
        remainder -= len(chosen)
        if remainder > 0:  # everything saturated at n_max
            room = n_max - counts
            order = np.argsort(room)[::-1]
            # Greedy fill in room order == clip the running remainder
            # against each ray's headroom (prefix-sum formulation).
            room_sorted = room[order]
            taken_before = np.concatenate(
                [[0], np.cumsum(room_sorted)[:-1]])
            take = np.clip(remainder - taken_before, 0, room_sorted)
            counts[order] += take
            remainder -= int(take.sum())
    if min_points > 0:
        counts = np.maximum(counts, min_points)
        excess = int(counts.sum() - total_points)
        if excess > 0 and total_points >= min_points * len(counts):
            # The floor pushed us over the global R x N_f budget: steal
            # the excess back from the largest-count rays (level by
            # level, deterministically) until the sum is exact again.
            while excess > 0:
                stealable = counts > min_points
                ceiling = counts[stealable].max()
                victims = np.flatnonzero(stealable & (counts == ceiling))
                take = min(excess, len(victims))
                counts[victims[:take]] -= 1
                excess -= take
    return counts


def focused_depths(coarse_depths: np.ndarray, point_pdf: np.ndarray,
                   counts: np.ndarray, n_max: int, near: float, far: float,
                   rng: np.random.Generator) -> SampleSet:
    """Paper Step ③: inverse-transform sampling of per-ray focused points.

    Each ray j draws ``counts[j]`` depths from its piecewise-constant
    ``P(k|j)``; results are sorted, left-packed, and padded to ``n_max``.
    """
    num_rays = coarse_depths.shape[0]
    counts = np.minimum(np.asarray(counts, dtype=np.int64), n_max)
    edges = _edges_from_centers(coarse_depths, near, far)
    max_count = int(counts.max()) if len(counts) else 0
    depths = np.full((num_rays, n_max), far, dtype=np.float64)
    mask = np.zeros((num_rays, n_max), dtype=bool)
    if max_count == 0:
        return SampleSet(depths, mask)

    # The uniforms are drawn for every ray up front (fixed rng stream,
    # reproducible regardless of the later compression), but the
    # transform only runs on rays with a nonzero budget — under focused
    # sampling most rays are empty, which is the point of the paper's
    # sampler and of skipping them here.
    uniforms = rng.random((num_rays, max_count))
    active = counts > 0
    active_counts = counts[active]
    samples = _inverse_transform(edges[active], point_pdf[active],
                                 uniforms[active])
    # Keep each active ray's first c draws *before* sorting — the draws
    # are i.i.d., so any prefix is an unbiased sample; sorting first
    # would keep only the nearest depths.  Vectorised: push the unused
    # draws to +inf and sort each row once, so the kept draws land
    # sorted in the leading columns exactly where the prefix mask
    # expects them.
    valid = np.arange(max_count)[None, :] < active_counts[:, None]
    packed = np.sort(np.where(valid, samples, np.inf), axis=-1)
    depths[active, :max_count] = np.where(valid, packed, far)
    mask[:, :max_count] = np.arange(max_count)[None, :] < counts[:, None]
    return SampleSet(depths, mask)


def merge_critical_points(plan: SampleSet, coarse_depths: np.ndarray,
                          coarse_weights: np.ndarray, tau: float,
                          n_max: int, far: float) -> SampleSet:
    """Merge critical coarse samples (w_k >= tau) into the focused set.

    Mirrors hierarchical NeRF's reuse of coarse locations: the coarse
    pass already found these depths to matter, so the fine model
    evaluates them too.  ``tau`` is on the bin-normalised probability,
    matching :func:`sampling_pdf`.  Per ray the union is sorted and truncated to
    ``n_max`` (dropping the farthest extras).  The paper's FLOPs
    accounting reflects this: a 16/48 configuration costs ~64 full-model
    points per ray (Table 2) and Fig. 9 counts 8/16 as 24 points.
    """
    weights = np.asarray(coarse_weights)
    critical = weights * max(weights.shape[-1], 1) >= tau
    num_rays = plan.depths.shape[0]
    depths = np.full((num_rays, n_max), far, dtype=np.float64)
    mask = np.zeros((num_rays, n_max), dtype=bool)
    # Rays with neither focused samples nor critical coarse points stay
    # all-padding; only the active subset is merged (most rays are empty
    # under focused sampling).
    active = plan.mask.any(axis=-1) | critical.any(axis=-1)
    if not active.any():
        return SampleSet(depths, mask)
    # Vectorised per-ray sorted-union: pad invalid entries to +inf, sort
    # each row once, drop duplicates by masking repeats back to +inf and
    # re-sorting (== np.unique on the finite prefix, left-packed), with
    # no per-ray sort/unique loop.
    plan_width = plan.depths.shape[1]
    candidates = np.full(
        (int(active.sum()), plan_width + coarse_depths.shape[1]), np.inf)
    np.copyto(candidates[:, :plan_width], plan.depths[active],
              where=plan.mask[active])
    np.copyto(candidates[:, plan_width:], coarse_depths[active],
              where=critical[active])
    candidates.sort(axis=-1)
    keep = np.isfinite(candidates)
    keep[:, 1:] &= candidates[:, 1:] != candidates[:, :-1]
    counts = np.minimum(keep.sum(axis=-1), n_max)
    np.copyto(candidates, np.inf, where=~keep)
    candidates.sort(axis=-1)
    packed = candidates[:, :n_max]
    width = packed.shape[1]
    active_mask = np.arange(width)[None, :] < counts[:, None]
    depths[active, :width] = np.where(active_mask, packed, far)
    mask[active] = np.arange(n_max)[None, :] < counts[:, None]
    return SampleSet(depths, mask)


def coarse_then_focus_plan(coarse_depths: np.ndarray,
                           coarse_weights: np.ndarray, num_focused_avg: int,
                           n_max: int, tau: float, near: float, far: float,
                           rng: Optional[np.random.Generator] = None,
                           merge_critical: bool = True) -> SampleSet:
    """The full Steps ②-③ pipeline given coarse-pass weights.

    ``num_focused_avg`` is N_f, the average focused points per ray; the
    global budget is ``R x N_f`` redistributed by the estimated PDF.
    With ``merge_critical`` the critical coarse samples are folded into
    the result (see :func:`merge_critical_points`).
    """
    gen = rng or np.random.default_rng(0)
    num_rays = coarse_depths.shape[0]
    ray_probability, point_pdf, _ = sampling_pdf(coarse_weights, tau)
    budget = num_focused_avg * num_rays
    counts = allocate_ray_budget(ray_probability, budget, n_max)
    plan = focused_depths(coarse_depths, point_pdf, counts, n_max, near, far,
                          gen)
    if merge_critical:
        plan = merge_critical_points(plan, coarse_depths, coarse_weights,
                                     tau, n_max, far)
    return plan
