"""Point sampling strategies along camera rays.

Implements the three samplers the paper compares:

* **Stratified uniform** — vanilla NeRF's base sampler (re-exported from
  :mod:`repro.geometry.rays`).
* **Hierarchical** — vanilla NeRF's two-level sampler: a coarse pass
  yields weights, a fine pass importance-samples *the same number of
  points on every ray*.  This is the IBRNet baseline's strategy.
* **Coarse-then-focus** (paper Sec. 3.2) — Gen-NeRF's sampler.  Step ①
  runs a lightweight coarse pass; Step ② filters empty/occluded regions
  by thresholding hitting probabilities w_k against tau and builds the
  sampling PDF ``P(k, j) = P(k | j) P(j)`` with ``P(j)`` proportional to
  the per-ray count of critical points; Step ③ draws a *global* budget of
  ``num_rays x N_f`` samples from that PDF via inverse-transform
  sampling, so rays through empty/occluded space receive few (possibly
  zero) points while surface rays receive many.  For batch training the
  per-ray samples are padded to ``N_max`` with an accompanying mask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..geometry.rays import stratified_depths

__all__ = [
    "stratified_depths", "SampleSet", "hierarchical_depths",
    "sampling_pdf", "allocate_ray_budget", "focused_depths",
    "coarse_then_focus_plan",
]


@dataclass
class SampleSet:
    """Depths plus a validity mask, the common currency of the renderers.

    ``depths`` is (R, N_max) sorted ascending within the valid prefix;
    ``mask`` is (R, N_max) with True marking real samples.  ``counts``
    gives the number of valid samples per ray.
    """

    depths: np.ndarray
    mask: np.ndarray

    def __post_init__(self):
        self.depths = np.asarray(self.depths, dtype=np.float64)
        self.mask = np.asarray(self.mask, dtype=bool)
        if self.depths.shape != self.mask.shape:
            raise ValueError("depths and mask shapes differ")

    @property
    def counts(self) -> np.ndarray:
        return self.mask.sum(axis=-1)

    @property
    def total_points(self) -> int:
        return int(self.mask.sum())

    @staticmethod
    def dense(depths: np.ndarray) -> "SampleSet":
        depths = np.asarray(depths, dtype=np.float64)
        return SampleSet(depths, np.ones(depths.shape, dtype=bool))


def _inverse_transform(bin_edges: np.ndarray, pdf: np.ndarray,
                       uniforms: np.ndarray) -> np.ndarray:
    """Sample depths from a per-ray piecewise-constant PDF.

    ``bin_edges`` (R, B+1), ``pdf`` (R, B) (need not be normalised),
    ``uniforms`` (R, K) in [0, 1).  Vectorised inverse-CDF; this is the
    software model of the accelerator's "Monte-Carlo simulator" unit
    (PDF-to-CDF converter + comparator array, Fig. 7).
    """
    pdf = np.maximum(pdf, 0.0) + 1e-12
    cdf = np.cumsum(pdf, axis=-1)
    cdf = cdf / cdf[..., -1:]
    cdf = np.concatenate([np.zeros_like(cdf[..., :1]), cdf], axis=-1)  # (R, B+1)

    rows = np.arange(cdf.shape[0])[:, None]
    # For each uniform find the bin whose CDF interval contains it.
    indices = np.empty(uniforms.shape, dtype=np.int64)
    for r in range(cdf.shape[0]):  # per-ray searchsorted keeps memory flat
        indices[r] = np.searchsorted(cdf[r], uniforms[r], side="right") - 1
    indices = np.clip(indices, 0, pdf.shape[-1] - 1)

    cdf_lo = cdf[rows, indices]
    cdf_hi = cdf[rows, indices + 1]
    frac = (uniforms - cdf_lo) / np.maximum(cdf_hi - cdf_lo, 1e-12)
    edge_lo = bin_edges[rows, indices]
    edge_hi = bin_edges[rows, indices + 1]
    return edge_lo + frac * (edge_hi - edge_lo)


def _edges_from_centers(depths: np.ndarray, near: float,
                        far: float) -> np.ndarray:
    """Bin edges from sorted sample centres, clamped to [near, far]."""
    mids = 0.5 * (depths[..., 1:] + depths[..., :-1])
    lo = np.full(depths.shape[:-1] + (1,), near, dtype=np.float64)
    hi = np.full(depths.shape[:-1] + (1,), far, dtype=np.float64)
    return np.concatenate([lo, mids, hi], axis=-1)


def hierarchical_depths(coarse_depths: np.ndarray, coarse_weights: np.ndarray,
                        num_fine: int, near: float, far: float,
                        rng: np.random.Generator,
                        include_coarse: bool = False) -> np.ndarray:
    """Vanilla-NeRF fine sampling: same count on every ray (Mildenhall).

    Importance-samples ``num_fine`` depths per ray from the coarse
    weights; optionally merges the coarse depths back in (as NeRF does).
    Returns sorted (R, num_fine[+Nc]).
    """
    edges = _edges_from_centers(coarse_depths, near, far)
    uniforms = rng.random((coarse_depths.shape[0], num_fine))
    fine = _inverse_transform(edges, coarse_weights, uniforms)
    if include_coarse:
        fine = np.concatenate([fine, coarse_depths], axis=-1)
    return np.sort(fine, axis=-1)


def sampling_pdf(coarse_weights: np.ndarray, tau: float
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Paper Step ②: empty/occluded-region filtering and PDF estimation.

    Points whose hitting probability clears the threshold are *critical
    points*.  The threshold is applied to the bin-count-normalised
    probability ``w_k * N_c >= tau`` so that whether a region counts as
    critical does not depend on how finely the coarse pass happened to
    slice it (halving the bin width halves every w_k; the paper's fixed
    per-point threshold would silently reclassify regions).

    Returns ``(ray_probability P(j), point_pdf P(k|j), critical_counts)``.
    Rays with no critical point receive probability 0 — they are the
    empty/occluded rays whose budget is redistributed.  If *no* ray has a
    critical point (e.g. a camera staring into empty space), falls back to
    weight-proportional allocation so rendering still proceeds.
    """
    weights = np.asarray(coarse_weights, dtype=np.float64)
    num_bins = max(weights.shape[-1], 1)
    critical = weights * num_bins >= tau
    critical_counts = critical.sum(axis=-1)

    total_critical = critical_counts.sum()
    if total_critical > 0:
        ray_probability = critical_counts / total_critical
    else:
        mass = weights.sum(axis=-1)
        ray_probability = (mass + 1e-12) / (mass.sum() + 1e-12 * len(mass))

    point_pdf = weights + 1e-12
    point_pdf = point_pdf / point_pdf.sum(axis=-1, keepdims=True)
    return ray_probability, point_pdf, critical_counts


def allocate_ray_budget(ray_probability: np.ndarray, total_points: int,
                        n_max: int, min_points: int = 0) -> np.ndarray:
    """Integer per-ray sample counts from ``P(j)`` (largest remainder).

    Deterministic so renders are reproducible; respects ``n_max`` (the
    training-time pad bound) by redistributing clipped mass to the next
    largest-remainder rays.
    """
    probability = np.asarray(ray_probability, dtype=np.float64)
    if probability.sum() <= 0:
        probability = np.ones_like(probability)
    probability = probability / probability.sum()

    raw = probability * total_points
    counts = np.floor(raw).astype(np.int64)
    counts = np.minimum(counts, n_max)
    remainder = int(total_points - counts.sum())
    if remainder > 0:
        fractional = np.where(counts < n_max, raw - np.floor(raw), -1.0)
        order = np.argsort(fractional)[::-1]
        for index in order:
            if remainder == 0:
                break
            if counts[index] < n_max:
                take = min(n_max - counts[index], 1)
                counts[index] += take
                remainder -= take
        if remainder > 0:  # everything saturated at n_max
            room = n_max - counts
            order = np.argsort(room)[::-1]
            for index in order:
                if remainder == 0:
                    break
                take = min(int(room[index]), remainder)
                counts[index] += take
                remainder -= take
    if min_points > 0:
        counts = np.maximum(counts, min_points)
    return counts


def focused_depths(coarse_depths: np.ndarray, point_pdf: np.ndarray,
                   counts: np.ndarray, n_max: int, near: float, far: float,
                   rng: np.random.Generator) -> SampleSet:
    """Paper Step ③: inverse-transform sampling of per-ray focused points.

    Each ray j draws ``counts[j]`` depths from its piecewise-constant
    ``P(k|j)``; results are sorted, left-packed, and padded to ``n_max``.
    """
    num_rays = coarse_depths.shape[0]
    counts = np.minimum(np.asarray(counts, dtype=np.int64), n_max)
    edges = _edges_from_centers(coarse_depths, near, far)
    max_count = int(counts.max()) if len(counts) else 0
    depths = np.full((num_rays, n_max), far, dtype=np.float64)
    mask = np.zeros((num_rays, n_max), dtype=bool)
    if max_count == 0:
        return SampleSet(depths, mask)

    uniforms = rng.random((num_rays, max_count))
    all_samples = _inverse_transform(edges, point_pdf, uniforms)
    # Slice each ray's first c draws *before* sorting — the draws are
    # i.i.d., so any prefix is an unbiased sample; sorting first would
    # keep only the nearest depths.
    for j in range(num_rays):
        c = int(counts[j])
        if c == 0:
            continue
        chosen = np.sort(all_samples[j, :c])
        depths[j, :c] = chosen
        mask[j, :c] = True
    return SampleSet(depths, mask)


def merge_critical_points(plan: SampleSet, coarse_depths: np.ndarray,
                          coarse_weights: np.ndarray, tau: float,
                          n_max: int, far: float) -> SampleSet:
    """Merge critical coarse samples (w_k >= tau) into the focused set.

    Mirrors hierarchical NeRF's reuse of coarse locations: the coarse
    pass already found these depths to matter, so the fine model
    evaluates them too.  ``tau`` is on the bin-normalised probability,
    matching :func:`sampling_pdf`.  Per ray the union is sorted and truncated to
    ``n_max`` (dropping the farthest extras).  The paper's FLOPs
    accounting reflects this: a 16/48 configuration costs ~64 full-model
    points per ray (Table 2) and Fig. 9 counts 8/16 as 24 points.
    """
    weights = np.asarray(coarse_weights)
    critical = weights * max(weights.shape[-1], 1) >= tau
    num_rays = plan.depths.shape[0]
    depths = np.full((num_rays, n_max), far, dtype=np.float64)
    mask = np.zeros((num_rays, n_max), dtype=bool)
    for j in range(num_rays):
        merged = np.concatenate([plan.depths[j][plan.mask[j]],
                                 coarse_depths[j][critical[j]]])
        merged = np.unique(merged)[:n_max]
        depths[j, :len(merged)] = merged
        mask[j, :len(merged)] = True
    return SampleSet(depths, mask)


def coarse_then_focus_plan(coarse_depths: np.ndarray,
                           coarse_weights: np.ndarray, num_focused_avg: int,
                           n_max: int, tau: float, near: float, far: float,
                           rng: Optional[np.random.Generator] = None,
                           merge_critical: bool = True) -> SampleSet:
    """The full Steps ②-③ pipeline given coarse-pass weights.

    ``num_focused_avg`` is N_f, the average focused points per ray; the
    global budget is ``R x N_f`` redistributed by the estimated PDF.
    With ``merge_critical`` the critical coarse samples are folded into
    the result (see :func:`merge_critical_points`).
    """
    gen = rng or np.random.default_rng(0)
    num_rays = coarse_depths.shape[0]
    ray_probability, point_pdf, _ = sampling_pdf(coarse_weights, tau)
    budget = num_focused_avg * num_rays
    counts = allocate_ray_budget(ray_probability, budget, n_max)
    plan = focused_depths(coarse_depths, point_pdf, counts, n_max, near, far,
                          gen)
    if merge_critical:
        plan = merge_critical_points(plan, coarse_depths, coarse_weights,
                                     tau, n_max, far)
    return plan
