"""The sparse fine-pass knob (``REPRO_SPARSE`` / ``--sparse``).

The packed fine pass (see :mod:`repro.models.ibrnet`) is on by default:
it is byte-identical to the padded path by construction, so there is no
quality trade-off to opt into.  The knob exists as an escape hatch —
for A/B benchmarking (``benchmarks/harness.py``'s ``sparse_fine_pass``
pair), for pinning the padded reference in the equivalence suite, and
for turning the machinery off wholesale if a future BLAS build breaks
the kernel-regime model the packing relies on.

Parsing is lenient, like every other ``REPRO_*`` knob (see
:mod:`repro.core.faults`): a malformed value warns through the
structured log and falls back to the default instead of crashing a
long render.
"""

from __future__ import annotations

import logging
import os
from typing import Optional

SPARSE_ENV = "REPRO_SPARSE"

_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})

_LOG = logging.getLogger("repro.models.sparse")


def parse_sparse_flag(value, source: str = SPARSE_ENV) -> Optional[bool]:
    """Best-effort boolean parse; ``None`` (with a structured warning)
    on malformed input, so a typo'd knob degrades to the default."""
    text = str(value).strip().lower()
    if text in _TRUE_WORDS:
        return True
    if text in _FALSE_WORDS:
        return False
    # Imported lazily: this module loads from ``models.ibrnet`` before
    # the ``models`` package finishes initialising, and ``repro.core``'s
    # package init imports back into ``models`` — a module-level import
    # here would re-enter the half-initialised package.
    from ..core import log
    log.event(_LOG, "knob.ignored", level=logging.WARNING,
              knob=source, value=value)
    return None


def sparse_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the sparse fine-pass switch.

    Priority: explicit argument (``forward(..., sparse=...)`` or the
    CLI's ``--sparse/--no-sparse``), then the ``REPRO_SPARSE`` env knob,
    then the default (on).  Empty/whitespace env values are skipped;
    malformed values warn and fall through.
    """
    if override is not None:
        return bool(override)
    env = os.environ.get(SPARSE_ENV)
    if env is not None and env.strip():
        parsed = parse_sparse_flag(env)
        if parsed is not None:
            return parsed
    return True
