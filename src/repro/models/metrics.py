"""Image quality metrics: PSNR, SSIM, and an LPIPS proxy.

The paper reports PSNR (up) and LPIPS (down).  True LPIPS needs
pretrained VGG/AlexNet weights that are unavailable offline; we
substitute a *fixed random multi-scale conv feature distance*: random
convolution banks are a classic perceptual-ish embedding (random
features preserve locality and frequency content), monotone in the blur
and structural errors that distinguish the paper's method variants.
DESIGN.md records this substitution; EXPERIMENTS.md flags every LPIPS
column as proxy values.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import functional as F


def mse(image_a: np.ndarray, image_b: np.ndarray) -> float:
    a = np.asarray(image_a, dtype=np.float64)
    b = np.asarray(image_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    return float(np.mean((a - b) ** 2))


def psnr(image: np.ndarray, reference: np.ndarray,
         data_range: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB; images in [0, data_range]."""
    error = mse(image, reference)
    if error <= 1e-12:
        return 99.0
    return float(10.0 * np.log10(data_range ** 2 / error))


def _to_gray(image: np.ndarray) -> np.ndarray:
    img = np.asarray(image, dtype=np.float64)
    if img.ndim == 3 and img.shape[-1] == 3:
        return img @ np.array([0.299, 0.587, 0.114])
    return img


def _box_filter(image: np.ndarray, radius: int) -> np.ndarray:
    """Separable box filter with edge padding (SSIM local statistics)."""
    kernel = np.ones(2 * radius + 1) / (2 * radius + 1)
    padded = np.pad(image, radius, mode="edge")
    rows = np.apply_along_axis(
        lambda m: np.convolve(m, kernel, mode="valid"), 0, padded)
    return np.apply_along_axis(
        lambda m: np.convolve(m, kernel, mode="valid"), 1, rows)


def ssim(image: np.ndarray, reference: np.ndarray, radius: int = 3,
         data_range: float = 1.0) -> float:
    """Structural similarity (box-window variant) on grayscale images."""
    x = _to_gray(image)
    y = _to_gray(reference)
    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2
    mu_x = _box_filter(x, radius)
    mu_y = _box_filter(y, radius)
    xx = _box_filter(x * x, radius) - mu_x ** 2
    yy = _box_filter(y * y, radius) - mu_y ** 2
    xy = _box_filter(x * y, radius) - mu_x * mu_y
    numerator = (2 * mu_x * mu_y + c1) * (2 * xy + c2)
    denominator = (mu_x ** 2 + mu_y ** 2 + c1) * (xx + yy + c2)
    return float(np.mean(numerator / denominator))


class _RandomConvBank:
    """Fixed random conv filters shared across all lpips_proxy calls."""

    _cache = {}

    @classmethod
    def filters(cls, in_channels: int, out_channels: int, kernel: int,
                seed: int) -> np.ndarray:
        key = (in_channels, out_channels, kernel, seed)
        if key not in cls._cache:
            rng = np.random.default_rng(seed)
            weight = rng.standard_normal(
                (out_channels, in_channels, kernel, kernel))
            weight -= weight.mean(axis=(1, 2, 3), keepdims=True)
            weight /= np.linalg.norm(
                weight.reshape(out_channels, -1), axis=1)[:, None, None, None]
            cls._cache[key] = weight
        return cls._cache[key]


def _conv2d_numpy(image_chw: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """Valid-mode conv via im2col (small images, metric-only use)."""
    from ..nn.functional import im2col

    cols, out_h, out_w = im2col(image_chw[None], weight.shape[-1], 1, 0)
    flat = cols[0] @ weight.reshape(weight.shape[0], -1).T
    return flat.T.reshape(weight.shape[0], out_h, out_w)


def lpips_proxy(image: np.ndarray, reference: np.ndarray, scales: int = 3,
                channels: int = 8, seed: int = 1234) -> float:
    """Multi-scale fixed-random-conv feature distance (LPIPS substitute).

    Lower is better.  Images are (H, W, 3) in [0, 1].  At each scale the
    images are filtered by a fixed random conv bank, features are
    channel-normalised (as LPIPS does), and the mean squared feature
    difference is accumulated; the image is then 2x downsampled.
    """
    a = np.transpose(np.asarray(image, dtype=np.float64), (2, 0, 1))
    b = np.transpose(np.asarray(reference, dtype=np.float64), (2, 0, 1))
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    total = 0.0
    used = 0
    for scale in range(scales):
        if min(a.shape[1], a.shape[2]) < 5:
            break
        weight = _RandomConvBank.filters(3, channels, 3, seed + scale)
        fa = _conv2d_numpy(a, weight)
        fb = _conv2d_numpy(b, weight)
        norm_a = fa / (np.linalg.norm(fa, axis=0, keepdims=True) + 1e-8)
        norm_b = fb / (np.linalg.norm(fb, axis=0, keepdims=True) + 1e-8)
        total += float(np.mean((norm_a - norm_b) ** 2))
        used += 1
        a, b = _pool2(a), _pool2(b)
    return total / max(used, 1)


def _pool2(image_chw: np.ndarray) -> np.ndarray:
    trimmed = image_chw[:, : image_chw.shape[1] // 2 * 2,
                        : image_chw.shape[2] // 2 * 2]
    return 0.25 * (trimmed[:, 0::2, 0::2] + trimmed[:, 1::2, 0::2]
                   + trimmed[:, 0::2, 1::2] + trimmed[:, 1::2, 1::2])
