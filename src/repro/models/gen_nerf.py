"""Gen-NeRF: the paper's delivered algorithm (Sec. 3).

Combines three ingredients on top of the IBRNet-style backbone:

1. a **lightweight coarse model** — channel scale 0.25, conditioned on
   only the S_c source views closest to the novel view, run with N_c
   uniform samples per ray, used *only* to estimate densities (Step 1);
2. the **coarse-then-focus sampler** from
   :mod:`repro.models.sampling` (Steps 2-3);
3. a **fine model with the Ray-Mixer** evaluated at the focused samples
   (padded to N_max), whose outputs are composited into pixels.

Training note: the paper trains end-to-end and states the coarse pass
"does not reconstruct the RGB value".  For supervision we follow vanilla
NeRF practice and attach an auxiliary rendering loss to the coarse
model's (cheap) colour branch during training only; inference uses the
coarse pass strictly for densities.  This substitution is recorded in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import nn
from ..nn import Tensor
from ..geometry.camera import Camera
from ..geometry.rays import RayBundle, stratified_depths
from .ibrnet import GeneralizableNeRF, ModelConfig, RenderOutput
from .sampling import SampleSet, coarse_then_focus_plan
from .volume_rendering import composite


@dataclass(frozen=True)
class GenNerfConfig:
    """Hyper-parameters of the full Gen-NeRF algorithm.

    Paper defaults (Sec. 5.1): coarse channel scale 0.25, 4 coarse source
    views; typical sampling 16 coarse / 48 focused (Table 2) or the
    coarse/focus pairs of Fig. 9.
    """

    fine: ModelConfig = field(
        default_factory=lambda: ModelConfig(ray_module="mixer"))
    coarse_scale: float = 0.25
    coarse_views: int = 4
    coarse_points: int = 16        # N_c
    focused_points: int = 48       # N_f (average per ray)
    tau: float = 1e-3              # critical-point threshold on w_k
    train_min_points: int = 1      # keep >=1 sample per ray during training

    @property
    def n_max(self) -> int:
        return self.fine.n_max


class GenNeRF(nn.Module):
    """Coarse-then-focus Gen-NeRF model pair."""

    def __init__(self, config: Optional[GenNerfConfig] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.config = config or GenNerfConfig()
        rng = rng or np.random.default_rng(0)
        coarse_cfg = self.config.fine.scaled(self.config.coarse_scale)
        # The coarse pass only estimates densities; the cheapest
        # homogeneous choice is a pointwise head (no cross-point module).
        coarse_cfg = replace(coarse_cfg, ray_module="none")
        self.coarse = GeneralizableNeRF(coarse_cfg, rng=rng)
        self.fine = GeneralizableNeRF(self.config.fine, rng=rng)

    # ------------------------------------------------------------------
    def encode_scene(self, source_images: np.ndarray
                     ) -> Tuple[Tensor, Tensor]:
        """(coarse maps, fine maps) for (S, 3, H, W) source images.

        Each element is the stacked channel-last (S, Hf, Wf, C) feature
        tensor of its encoder (index per view or pass whole).
        """
        return (self.coarse.encode_scene(source_images),
                self.fine.encode_scene(source_images))

    def select_coarse_views(self, bundle: RayBundle,
                            source_cameras: Sequence[Camera]) -> np.ndarray:
        """Indices of the S_c sources closest to the bundle's mean
        viewing direction (paper Sec. 3.2, Step 1)."""
        mean_dir = bundle.directions.mean(axis=0)
        mean_dir = mean_dir / np.linalg.norm(mean_dir)
        sims = np.array([float(np.dot(cam.forward, mean_dir))
                         for cam in source_cameras])
        order = np.argsort(sims)[::-1]
        return order[:min(self.config.coarse_views, len(source_cameras))]

    # ------------------------------------------------------------------
    def coarse_pass(self, bundle: RayBundle,
                    source_cameras: Sequence[Camera],
                    coarse_maps: Union[Tensor, Sequence[Tensor]],
                    source_images: np.ndarray,
                    rng: Optional[np.random.Generator] = None,
                    depths: Optional[np.ndarray] = None
                    ) -> Tuple[np.ndarray, np.ndarray, RenderOutput]:
        """Step 1: lightweight coarse sampling.

        Returns (coarse_depths, coarse_weights, coarse_output); weights
        are detached numpy (the sampler is not differentiated through).
        ``depths`` injects pre-drawn coarse depths — the trainer draws
        them *before* encoding so it can plan the encode footprint from
        the step's sample points without disturbing the RNG stream.
        """
        cfg = self.config
        chosen = self.select_coarse_views(bundle, source_cameras)
        cams = [source_cameras[i] for i in chosen]
        if isinstance(coarse_maps, Tensor):
            maps = coarse_maps[chosen]     # batched view gather, grad-aware
        else:
            maps = [coarse_maps[i] for i in chosen]
        images = source_images[chosen]

        if depths is None:
            gen = rng or np.random.default_rng(0)
            depths = stratified_depths(gen, len(bundle), cfg.coarse_points,
                                       bundle.near, bundle.far,
                                       jitter=rng is not None)
        points = bundle.points_at(depths)
        output = self.coarse(points, bundle.directions, cams, maps, images)
        _, weights = composite(output.sigma, output.rgb, depths, bundle.far)
        return depths, weights.data.astype(np.float64), output

    def plan_samples(self, coarse_depths: np.ndarray,
                     coarse_weights: np.ndarray, bundle: RayBundle,
                     rng: Optional[np.random.Generator] = None,
                     min_points: int = 0) -> SampleSet:
        """Steps 2-3: PDF estimation + sparse focused sampling."""
        cfg = self.config
        plan = coarse_then_focus_plan(
            coarse_depths, coarse_weights, cfg.focused_points, cfg.n_max,
            cfg.tau, bundle.near, bundle.far, rng=rng)
        if min_points > 0:
            # Guarantee a minimal sample count per ray (training batches
            # need every ray to produce a differentiable pixel).  One
            # boolean-masked scatter covers all deficient rays — this
            # runs on every render, so no per-ray Python loop.
            needs = plan.counts < min_points
            if needs.any():
                fallback = np.linspace(bundle.near, bundle.far,
                                       min_points + 2)[1:-1]
                rows = np.broadcast_to(needs[:, None],
                                       (needs.shape[0], min_points))
                plan.depths[:, :min_points] = np.where(
                    rows, fallback, plan.depths[:, :min_points])
                plan.mask[:, :min_points] |= rows
        return plan

    def fine_pass(self, bundle: RayBundle, samples: SampleSet,
                  source_cameras: Sequence[Camera],
                  fine_maps: Union[Tensor, Sequence[Tensor]],
                  source_images: np.ndarray,
                  sparse: Optional[bool] = None
                  ) -> Tuple[Tensor, Tensor, RenderOutput]:
        """Steps 2-5 of the vanilla pipeline at the focused samples.

        ``sparse`` forces the packed fine pass on/off; the default defers
        to the ``REPRO_SPARSE`` knob (see :mod:`repro.models.sparse`).
        Either way the outputs are byte-identical — the knob only picks
        which equivalent compute layout runs.
        """
        points = bundle.points_at(samples.depths)
        output = self.fine(points, bundle.directions, source_cameras,
                           fine_maps, source_images, mask=samples.mask,
                           sparse=sparse)
        bin_width = (bundle.far - bundle.near) / max(self.config.coarse_points,
                                                     1)
        pixel, weights = composite(output.sigma, output.rgb, samples.depths,
                                   bundle.far, mask=samples.mask,
                                   max_delta=bin_width)
        return pixel, weights, output

    def render_rays(self, bundle: RayBundle,
                    source_cameras: Sequence[Camera],
                    coarse_maps: Union[Tensor, Sequence[Tensor]],
                    fine_maps: Union[Tensor, Sequence[Tensor]],
                    source_images: np.ndarray,
                    rng: Optional[np.random.Generator] = None,
                    return_aux: bool = False,
                    sparse: Optional[bool] = None):
        """Full Gen-NeRF pipeline for a ray bundle -> (R, 3) pixels."""
        coarse_depths, coarse_weights, coarse_out = self.coarse_pass(
            bundle, source_cameras, coarse_maps, source_images, rng=rng)
        samples = self.plan_samples(
            coarse_depths, coarse_weights, bundle, rng=rng,
            min_points=self.config.train_min_points if self.training else 0)
        pixel, weights, fine_out = self.fine_pass(
            bundle, samples, source_cameras, fine_maps, source_images,
            sparse=sparse)
        if not return_aux:
            return pixel
        coarse_pixel, _ = composite(coarse_out.sigma, coarse_out.rgb,
                                    coarse_depths, bundle.far)
        aux = {
            "samples": samples,
            "coarse_pixel": coarse_pixel,
            "coarse_weights": coarse_weights,
            "weights": weights,
        }
        return pixel, aux
