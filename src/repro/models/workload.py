"""Paper-scale workload accounting: FLOPs and memory traffic per frame.

The algorithm experiments in this repo train *small* numpy models, but
the efficiency numbers the paper reports (MFLOPs/pixel in Tables 2-3,
the FLOPs axis of Fig. 9, the 0.328 TFLOPs typical workload of Sec. 5.1,
and all inputs to the GPU/accelerator performance models) are computed
at the paper's model scale.  This module holds that scale: explicit
layer dimensions whose analytic MAC counts were calibrated once against
the paper's reported numbers (see ``tests/test_paper_constants.py`` for
the tolerance assertions).

Structure mirrors the model: per-(point, view) aggregation cost, a
per-point density branch, a per-ray cross-point module (transformer or
mixer), plus the one-time CNN encoder and the H*W*P*S*D scene-feature
traffic of Sec. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

DIRECTION_DIM = 4
RGB_DIM = 3


@dataclass(frozen=True)
class PaperScaleDims:
    """Layer widths of the paper-scale generalizable NeRF."""

    feature_dim: int = 32          # C: encoder feature channels
    view_hidden: int = 28          # H1
    score_hidden: int = 8          # H2
    density_hidden: int = 56       # Hd
    density_feature_dim: int = 8   # D_sigma
    transformer_qk_dim: int = 4
    encoder_hidden: int = 16

    def scaled(self, scale: float, keep_interface: bool = False
               ) -> "PaperScaleDims":
        """Scale hidden widths by ``scale``.

        ``keep_interface=True`` preserves the encoder feature dim and
        density feature dim (channel pruning); False scales everything
        (the coarse model's channel scale 0.25, paper Sec. 5.1).
        """
        def s(width: int) -> int:
            return max(1, int(round(width * scale)))

        return PaperScaleDims(
            feature_dim=self.feature_dim if keep_interface
            else s(self.feature_dim),
            view_hidden=s(self.view_hidden),
            score_hidden=s(self.score_hidden),
            density_hidden=s(self.density_hidden),
            density_feature_dim=self.density_feature_dim if keep_interface
            else s(self.density_feature_dim),
            transformer_qk_dim=self.transformer_qk_dim,
            encoder_hidden=s(self.encoder_hidden),
        )


DEFAULT_DIMS = PaperScaleDims()


# ----------------------------------------------------------------------
# MAC counts (1 MAC = 2 FLOPs)
# ----------------------------------------------------------------------
def per_view_point_macs(dims: PaperScaleDims) -> int:
    """Aggregation MACs per (sampled point, source view)."""
    view_in = dims.feature_dim + RGB_DIM + DIRECTION_DIM
    view_mlp = view_in * dims.view_hidden + dims.view_hidden ** 2
    score = 3 * dims.view_hidden * dims.score_hidden + dims.score_hidden * 1
    color = ((2 * dims.view_hidden + DIRECTION_DIM) * dims.score_hidden
             + dims.score_hidden * 1)
    return view_mlp + score + color


def density_branch_macs(dims: PaperScaleDims) -> int:
    """Per-point MACs of the pooled-feature -> density-feature branch."""
    return (2 * dims.view_hidden * dims.density_hidden
            + dims.density_hidden * dims.density_feature_dim)


def per_point_macs(dims: PaperScaleDims, num_views: int) -> int:
    return num_views * per_view_point_macs(dims) + density_branch_macs(dims)


def ray_transformer_macs(dims: PaperScaleDims, points: int) -> int:
    """Per-ray MACs of the slim ray transformer."""
    proj = 4 * points * dims.density_feature_dim * dims.transformer_qk_dim
    attention = 2 * points * points * dims.transformer_qk_dim
    head = points * dims.density_feature_dim
    return proj + attention + head


def ray_mixer_macs(dims: PaperScaleDims, n_max: int) -> int:
    """Per-ray MACs of the Ray-Mixer at point capacity ``n_max``."""
    token = dims.density_feature_dim * n_max * n_max
    channel = n_max * dims.density_feature_dim ** 2
    head = n_max * dims.density_feature_dim
    return token + channel + head


def encoder_macs_per_view(dims: PaperScaleDims, height: int,
                          width: int) -> int:
    """One-time CNN encoder MACs per source view (paper Step 0)."""
    full = height * width
    half = (height // 2) * (width // 2)
    conv1 = full * RGB_DIM * dims.encoder_hidden * 9
    conv2 = half * dims.encoder_hidden * dims.encoder_hidden * 9
    conv3 = half * dims.encoder_hidden * dims.feature_dim * 9
    return conv1 + conv2 + conv3


# ----------------------------------------------------------------------
# Frame-level workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RenderWorkload:
    """A full-frame rendering workload at paper scale.

    ``points_per_ray`` is the (average) per-ray count through the *full*
    model; the coarse pass adds ``coarse_points`` through the scaled-down
    coarse model conditioned on ``coarse_views`` sources.  ``ray_module``
    selects the cross-point module of the full model.
    """

    height: int
    width: int
    num_views: int
    points_per_ray: float
    ray_module: str = "mixer"               # "transformer" | "mixer" | "none"
    coarse_points: float = 0.0
    coarse_views: int = 4
    coarse_channel_scale: float = 0.25
    n_max: int = 64
    prune_scale: float = 1.0                # 0.25 after 75% channel pruning
    dims: PaperScaleDims = DEFAULT_DIMS
    include_encoder: bool = False           # encoder is per-scene, not per-frame

    # -- derived dimensions --------------------------------------------
    @property
    def fine_dims(self) -> PaperScaleDims:
        if self.prune_scale != 1.0:
            return self.dims.scaled(self.prune_scale, keep_interface=True)
        return self.dims

    @property
    def coarse_dims(self) -> PaperScaleDims:
        base = self.fine_dims
        return base.scaled(self.coarse_channel_scale, keep_interface=False)

    @property
    def num_pixels(self) -> int:
        return self.height * self.width

    # -- per-pixel FLOPs -----------------------------------------------
    @property
    def fine_points_per_ray(self) -> float:
        """Points evaluated by the *full* model per ray.

        With coarse-then-focus sampling the critical coarse samples are
        merged into the focused set (hierarchical-NeRF style), so the
        fine pass sees up to N_c + N_f points; this matches the paper's
        accounting (Table 2's 16/48 row costs ~64 full-model points, and
        Fig. 9 counts 8/16 as "24 sampled points").
        """
        return self.points_per_ray + self.coarse_points

    def mlp_flops_per_pixel(self) -> float:
        """Point-wise network FLOPs per pixel (fine pass)."""
        return 2.0 * self.fine_points_per_ray * per_point_macs(
            self.fine_dims, self.num_views)

    def ray_module_flops_per_pixel(self) -> float:
        points = int(round(self.fine_points_per_ray))
        if self.ray_module == "transformer":
            macs = ray_transformer_macs(self.fine_dims, points)
        elif self.ray_module == "mixer":
            macs = ray_mixer_macs(self.fine_dims,
                                  max(self.n_max, points))
        elif self.ray_module == "none":
            macs = points * self.fine_dims.density_feature_dim
        else:
            raise ValueError(f"unknown ray module {self.ray_module!r}")
        return 2.0 * macs

    def coarse_flops_per_pixel(self) -> float:
        if self.coarse_points <= 0:
            return 0.0
        per_point = per_point_macs(self.coarse_dims, self.coarse_views)
        return 2.0 * self.coarse_points * per_point

    def others_flops_per_pixel(self) -> float:
        """Sampling, projection, interpolation, compositing (Step 5).

        Per point: a 3x4 projective transform (12 MACs), bilinear interp
        of D channels (3 lerps per channel) per view, the exp/accumulate
        of Eq. 2 (~8 ops), and inverse-CDF sampling (~16 ops per focused
        point).
        """
        total_points = self.fine_points_per_ray + self.coarse_points
        project = 12 * (self.num_views * self.fine_points_per_ray
                        + self.coarse_views * self.coarse_points)
        interp_fine = 3 * self.fine_dims.feature_dim \
            * self.num_views * self.fine_points_per_ray
        interp_coarse = 3 * self.coarse_dims.feature_dim \
            * self.coarse_views * self.coarse_points
        compositing = 8 * total_points
        sampling = 16 * self.points_per_ray
        return float(project + interp_fine + interp_coarse + compositing
                     + sampling)

    def flops_per_pixel(self) -> float:
        return (self.mlp_flops_per_pixel()
                + self.ray_module_flops_per_pixel()
                + self.coarse_flops_per_pixel()
                + self.others_flops_per_pixel())

    def total_flops(self) -> float:
        total = self.num_pixels * self.flops_per_pixel()
        if self.include_encoder:
            total += 2.0 * self.num_views * encoder_macs_per_view(
                self.fine_dims, self.height, self.width)
        return total

    def breakdown_flops_per_pixel(self) -> Dict[str, float]:
        return {
            "mlp": self.mlp_flops_per_pixel() + self.coarse_flops_per_pixel(),
            "ray_module": self.ray_module_flops_per_pixel(),
            "others": self.others_flops_per_pixel(),
        }

    # -- memory traffic --------------------------------------------------
    def feature_elements(self) -> float:
        """Scene-feature accesses per frame: H*W*P*S*D (+ coarse pass)."""
        fine = (self.num_pixels * self.fine_points_per_ray * self.num_views
                * self.fine_dims.feature_dim)
        coarse = (self.num_pixels * self.coarse_points * self.coarse_views
                  * self.coarse_dims.feature_dim)
        return float(fine + coarse)

    def feature_bytes(self, bytes_per_element: int = 1) -> float:
        return self.feature_elements() * bytes_per_element

    def weight_bytes(self, bytes_per_element: int = 1) -> float:
        """Model weights touched per frame (small; they fit on-chip)."""
        dims = self.fine_dims
        view_in = dims.feature_dim + RGB_DIM + DIRECTION_DIM
        params = (view_in * dims.view_hidden + dims.view_hidden ** 2
                  + 3 * dims.view_hidden * dims.score_hidden + dims.score_hidden
                  + (2 * dims.view_hidden + DIRECTION_DIM) * dims.score_hidden
                  + dims.score_hidden
                  + 2 * dims.view_hidden * dims.density_hidden
                  + dims.density_hidden * dims.density_feature_dim)
        if self.ray_module == "mixer":
            params += (self.n_max ** 2 + dims.density_feature_dim ** 2
                       + dims.density_feature_dim)
        elif self.ray_module == "transformer":
            params += 4 * dims.density_feature_dim * dims.transformer_qk_dim \
                + dims.density_feature_dim
        return float(params) * bytes_per_element


# ----------------------------------------------------------------------
# Canonical workloads used across the experiment suite
# ----------------------------------------------------------------------
def profiling_workload(height: int, width: int,
                       num_views: int = 10) -> RenderWorkload:
    """Sec. 2.3 profiling config: 196 points/ray, 10 source views,
    vanilla model with ray transformer, no coarse pass, no pruning."""
    return RenderWorkload(height=height, width=width, num_views=num_views,
                          points_per_ray=196, ray_module="transformer")


def table2_workload(row: str, num_views: int = 10) -> RenderWorkload:
    """The Table 2 ablation ladder at paper scale."""
    base = dict(height=756, width=1008, num_views=num_views)
    if row == "vanilla":
        return RenderWorkload(points_per_ray=196, ray_module="transformer",
                              **base)
    if row == "no_ray_transformer":
        return RenderWorkload(points_per_ray=196, ray_module="none", **base)
    if row == "ray_mixer":
        return RenderWorkload(points_per_ray=196, ray_module="mixer",
                              n_max=196, **base)
    if row == "coarse_focus":
        return RenderWorkload(points_per_ray=48, ray_module="mixer",
                              coarse_points=16, n_max=64, **base)
    if row == "pruned":
        return RenderWorkload(points_per_ray=48, ray_module="mixer",
                              coarse_points=16, n_max=64, prune_scale=0.25,
                              **base)
    raise KeyError(f"unknown Table 2 row {row!r}")


def typical_workload(height: int = 800, width: int = 800,
                     num_views: int = 6,
                     points_per_ray: float = 64) -> RenderWorkload:
    """Sec. 5.1 'typical workload': 800x800, 64 avg focused points,
    6 source views, delivered (pruned, mixer) Gen-NeRF model."""
    return RenderWorkload(height=height, width=width, num_views=num_views,
                          points_per_ray=points_per_ray, ray_module="mixer",
                          coarse_points=16, n_max=max(64, int(points_per_ray)),
                          prune_scale=0.25)
