"""Structured channel pruning (paper Sec. 5.2, Table 2's final rows).

The paper prunes the delivered model's channels at 75% sparsity "to
reduce the redundancy in the model structure", keeping PSNR within
~0.5 dB after finetuning.  We implement magnitude-based structured
pruning: hidden channels are ranked by the L1 norm of their fan-in plus
fan-out weights and the top fraction survives.  Because the per-view
latent feeds three consumer MLPs (score, colour, density branches), the
kept latent channels are chosen once — from the summed importance across
all consumers — and the consumers' input weights are sliced
consistently.  Surviving weights are copied into a smaller model built
via :meth:`ModelConfig.scaled`-style width reduction, which callers then
finetune (Table 3).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import nn
from .gen_nerf import GenNeRF
from .ibrnet import DIRECTION_DIM, GeneralizableNeRF, ModelConfig


def channel_importance(weight_in: np.ndarray,
                       weight_out: Optional[np.ndarray] = None) -> np.ndarray:
    """L1 importance of hidden channels: |fan-in| + |fan-out|.

    ``weight_in`` is (in, hidden); ``weight_out`` is (hidden, out) when
    the channel feeds another layer.
    """
    importance = np.abs(weight_in).sum(axis=0)
    if weight_out is not None:
        importance = importance + np.abs(weight_out).sum(axis=1)
    return importance


def select_channels(importance: np.ndarray, keep: int) -> np.ndarray:
    """Indices of the ``keep`` most important channels, sorted ascending."""
    keep = max(1, min(keep, len(importance)))
    chosen = np.argsort(importance)[::-1][:keep]
    return np.sort(chosen)


def _linears(mlp: nn.MLP) -> List[nn.Linear]:
    return [m for m in mlp.net if isinstance(m, nn.Linear)]


def _copy_pruned(src: nn.Linear, dst: nn.Linear, in_idx: np.ndarray,
                 out_idx: np.ndarray) -> None:
    dst.weight.data[...] = src.weight.data[np.ix_(in_idx, out_idx)]
    if dst.bias is not None and src.bias is not None:
        dst.bias.data[...] = src.bias.data[out_idx]


def _prune_two_layer_mlp(src_mlp: nn.MLP, dst_mlp: nn.MLP,
                         in_idx: np.ndarray,
                         out_idx: Optional[np.ndarray] = None) -> None:
    """Prune an MLP of shape Linear-act-Linear given its kept input
    channels; hidden channels are chosen by importance, outputs by
    ``out_idx`` (all outputs when None)."""
    src_l1, src_l2 = _linears(src_mlp)
    dst_l1, dst_l2 = _linears(dst_mlp)
    hidden_keep = select_channels(
        channel_importance(src_l1.weight.data, src_l2.weight.data),
        dst_l1.out_features)
    if out_idx is None:
        out_idx = np.arange(dst_l2.out_features)
    _copy_pruned(src_l1, dst_l1, in_idx, hidden_keep)
    _copy_pruned(src_l2, dst_l2, hidden_keep, out_idx)


def prune_generalizable_nerf(model: GeneralizableNeRF, sparsity: float = 0.75,
                             rng: Optional[np.random.Generator] = None
                             ) -> GeneralizableNeRF:
    """Return a channel-pruned copy of ``model``.

    ``sparsity`` removes that fraction of each hidden width (paper: 0.75,
    25% survive).  Interface dims — the encoder feature channels and the
    density feature dim consumed by the ray module — are preserved so the
    ray module and hardware mapping are untouched.
    """
    if not 0.0 < sparsity < 1.0:
        raise ValueError(f"sparsity must be in (0, 1), got {sparsity}")
    keep_scale = 1.0 - sparsity
    cfg = model.config
    pruned_cfg = ModelConfig(
        feature_dim=cfg.feature_dim,
        view_hidden=max(2, int(round(cfg.view_hidden * keep_scale))),
        score_hidden=max(2, int(round(cfg.score_hidden * keep_scale))),
        density_hidden=max(2, int(round(cfg.density_hidden * keep_scale))),
        density_feature_dim=cfg.density_feature_dim,
        transformer_qk_dim=cfg.transformer_qk_dim,
        transformer_heads=cfg.transformer_heads,
        ray_module=cfg.ray_module,
        n_max=cfg.n_max,
        channel_scale=cfg.channel_scale * keep_scale,
        encoder_hidden=cfg.encoder_hidden,
    )
    pruned = GeneralizableNeRF(pruned_cfg, rng=rng or np.random.default_rng(0))
    pruned.encoder.load_state_dict(model.encoder.state_dict())

    h1 = cfg.view_hidden
    h1_kept = pruned_cfg.view_hidden

    # 1) Per-view MLP: latent channels chosen by summed consumer fan-in.
    src_v1, src_v2 = _linears(model.view_mlp)
    dst_v1, dst_v2 = _linears(pruned.view_mlp)
    score_l1 = _linears(model.score_mlp)[0].weight.data   # (3*H1, H2)
    color_l1 = _linears(model.color_mlp)[0].weight.data   # (2*H1+4, H2)
    dens_l1 = _linears(model.density_mlp)[0].weight.data  # (2*H1, Hd)
    consumer_fanout = (
        np.abs(score_l1[:h1]).sum(axis=1)
        + np.abs(score_l1[h1:2 * h1]).sum(axis=1)
        + np.abs(score_l1[2 * h1:3 * h1]).sum(axis=1)
        + np.abs(color_l1[:h1]).sum(axis=1)
        + np.abs(color_l1[h1:2 * h1]).sum(axis=1)
        + np.abs(dens_l1[:h1]).sum(axis=1)
        + np.abs(dens_l1[h1:2 * h1]).sum(axis=1))
    latent_importance = (np.abs(src_v2.weight.data).sum(axis=0)
                         + consumer_fanout)
    latent_keep = select_channels(latent_importance, h1_kept)
    view_hidden_keep = select_channels(
        channel_importance(src_v1.weight.data, src_v2.weight.data), h1_kept)
    all_inputs = np.arange(src_v1.in_features)
    _copy_pruned(src_v1, dst_v1, all_inputs, view_hidden_keep)
    _copy_pruned(src_v2, dst_v2, view_hidden_keep, latent_keep)

    # 2) Consumers: input slices follow the kept latent channels.
    score_in = np.concatenate([latent_keep, h1 + latent_keep,
                               2 * h1 + latent_keep])
    _prune_two_layer_mlp(model.score_mlp, pruned.score_mlp, score_in)

    color_in = np.concatenate([latent_keep, h1 + latent_keep,
                               2 * h1 + np.arange(DIRECTION_DIM)])
    _prune_two_layer_mlp(model.color_mlp, pruned.color_mlp, color_in)

    density_in = np.concatenate([latent_keep, h1 + latent_keep])
    _prune_two_layer_mlp(model.density_mlp, pruned.density_mlp, density_in)

    # 3) Ray module operates on the (preserved) density feature dim.
    pruned.ray_module.load_state_dict(model.ray_module.state_dict())
    return pruned


def prune_gen_nerf(model: GenNeRF, sparsity: float = 0.75) -> GenNeRF:
    """Channel-prune both members of a Gen-NeRF model pair."""
    pruned = GenNeRF(model.config)
    pruned.coarse = prune_generalizable_nerf(model.coarse, sparsity)
    pruned.fine = prune_generalizable_nerf(model.fine, sparsity)
    return pruned
