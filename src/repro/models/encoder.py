"""CNN feature encoder ``E`` over source views (paper Sec. 2.2, Step 0).

Computes 2D feature maps W_i = E(I_i) once per scene; the per-frame
rendering then *gathers* from these maps, which is exactly the
memory-bound access pattern the Gen-NeRF accelerator optimises.  The
encoder here is a small conv stack producing half-resolution maps
(feature_scale = 0.5), mirroring IBRNet's use of a strided CNN.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn import Tensor


class ConvEncoder(nn.Module):
    """3 -> feature_dim conv encoder with one stride-2 stage.

    Input: (B, 3, H, W) images in [0, 1].
    Output: (B, feature_dim, H/2, W/2) feature maps.
    """

    def __init__(self, feature_dim: int = 16, hidden: int = 16,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.feature_dim = feature_dim
        self.feature_scale = 0.5
        self.conv1 = nn.Conv2d(3, hidden, kernel=3, stride=1, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(hidden, hidden, kernel=3, stride=2, padding=1,
                               rng=rng)
        self.conv3 = nn.Conv2d(hidden, feature_dim, kernel=3, stride=1,
                               padding=1, rng=rng)

    def forward(self, images: Tensor) -> Tensor:
        x = nn.functional.elu(self.conv1(nn.as_tensor(images)))
        x = nn.functional.elu(self.conv2(x))
        return self.conv3(x)

    def encode_views(self, images: np.ndarray) -> Tensor:
        """Encode (S, 3, H, W) source images to stacked (S, Hf, Wf, C) maps.

        Maps are returned channel-last because the feature fetcher indexes
        by pixel; keeping C contiguous mirrors how the accelerator stores
        features DRAM-row-wise per location.  The views stay stacked in
        one tensor (a single transpose instead of a per-image list) so
        the fetcher's batched multi-view gather indexes them directly;
        ``maps[i]`` still yields the per-view (Hf, Wf, C) map.
        """
        # self(...) rather than self.forward(...): the Module call
        # wrapper is what arms the graph-free path after
        # ``eval_inference()``.
        features = self(Tensor(np.asarray(images, dtype=np.float32)))
        # contiguous(): the transpose is a strided view, and the batched
        # gather reshapes the maps on every chunk — materialise once.
        return features.transpose((0, 2, 3, 1)).contiguous()

    @property
    def convs(self):
        """The conv stack in execution order (for the footprint planner)."""
        return (self.conv1, self.conv2, self.conv3)

    def feature_shape(self, height: int, width: int) -> tuple:
        """(Hf, Wf) of the encoded maps for an (H, W) source image."""
        shape = (height, width)
        for conv in self.convs:
            shape = conv.output_shape(*shape)
        return shape

    def encode_views_footprint(self, images: np.ndarray, plan) -> Tensor:
        """Footprint-restricted :meth:`encode_views`: same bits at every
        planned pixel, compute proportional to the footprint.

        ``plan`` is a :class:`repro.models.footprint.FootprintPlan` for
        this conv stack.  Each layer runs as a packed gather + GEMM
        (:func:`repro.nn.functional.conv2d_at`); the first layer reuses
        the scene-level im2col cache rows when a full encode of the
        same array already paid for them.  Output pixels outside the
        footprint are exact ``+0.0`` — they are, by construction, never
        gathered by the step this plan was built for.
        """
        x = np.asarray(images, dtype=np.float32)
        channels = x.shape[1]
        first = plan.layers[0]
        cached = nn.shared_patch_rows(x, self.conv1.kernel,
                                      self.conv1.stride, self.conv1.padding,
                                      first.out_index)
        rows = x.transpose(0, 2, 3, 1).reshape(-1, channels)[plan.input_index]
        out = Tensor(rows)
        for conv, layer in zip(self.convs, plan.layers):
            out = nn.functional.conv2d_at(
                out, layer.gather, conv.weight, conv.bias, layer.dense_rows,
                pad_rows=layer.pad_rows, pad_rows_grad=layer.pad_rows_grad,
                cols=cached if layer is first else None)
            if conv is not self.conv3:
                out = nn.functional.elu(out)
        num_views, final_h, final_w = plan.out_shape
        maps = nn.functional.scatter_rows(out, plan.layers[-1].out_index,
                                          num_views * final_h * final_w)
        return maps.reshape(num_views, final_h, final_w,
                            self.conv3.out_channels)

    def flops(self, height: int, width: int, views: int = 1) -> int:
        # conv2's stride-2 output is ceil(H/2) x ceil(W/2) for k3/p1
        # (not floor): derive conv3's input from the actual conv
        # arithmetic instead of halving.
        mid = self.conv2.output_shape(*self.conv1.output_shape(height,
                                                               width))
        return (self.conv1.flops(views, height, width)
                + self.conv2.flops(views, height, width)
                + self.conv3.flops(views, *mid))
