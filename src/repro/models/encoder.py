"""CNN feature encoder ``E`` over source views (paper Sec. 2.2, Step 0).

Computes 2D feature maps W_i = E(I_i) once per scene; the per-frame
rendering then *gathers* from these maps, which is exactly the
memory-bound access pattern the Gen-NeRF accelerator optimises.  The
encoder here is a small conv stack producing half-resolution maps
(feature_scale = 0.5), mirroring IBRNet's use of a strided CNN.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn import Tensor


class ConvEncoder(nn.Module):
    """3 -> feature_dim conv encoder with one stride-2 stage.

    Input: (B, 3, H, W) images in [0, 1].
    Output: (B, feature_dim, H/2, W/2) feature maps.
    """

    def __init__(self, feature_dim: int = 16, hidden: int = 16,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.feature_dim = feature_dim
        self.feature_scale = 0.5
        self.conv1 = nn.Conv2d(3, hidden, kernel=3, stride=1, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(hidden, hidden, kernel=3, stride=2, padding=1,
                               rng=rng)
        self.conv3 = nn.Conv2d(hidden, feature_dim, kernel=3, stride=1,
                               padding=1, rng=rng)

    def forward(self, images: Tensor) -> Tensor:
        x = nn.functional.elu(self.conv1(nn.as_tensor(images)))
        x = nn.functional.elu(self.conv2(x))
        return self.conv3(x)

    def encode_views(self, images: np.ndarray) -> Tensor:
        """Encode (S, 3, H, W) source images to stacked (S, Hf, Wf, C) maps.

        Maps are returned channel-last because the feature fetcher indexes
        by pixel; keeping C contiguous mirrors how the accelerator stores
        features DRAM-row-wise per location.  The views stay stacked in
        one tensor (a single transpose instead of a per-image list) so
        the fetcher's batched multi-view gather indexes them directly;
        ``maps[i]`` still yields the per-view (Hf, Wf, C) map.
        """
        # self(...) rather than self.forward(...): the Module call
        # wrapper is what arms the graph-free path after
        # ``eval_inference()``.
        features = self(Tensor(np.asarray(images, dtype=np.float32)))
        # contiguous(): the transpose is a strided view, and the batched
        # gather reshapes the maps on every chunk — materialise once.
        return features.transpose((0, 2, 3, 1)).contiguous()

    def flops(self, height: int, width: int, views: int = 1) -> int:
        half_h, half_w = height // 2, width // 2
        return (self.conv1.flops(views, height, width)
                + self.conv2.flops(views, height, width)
                + self.conv3.flops(views, half_h, half_w))
