"""Ray transformer (paper Sec. 2.2, Step 4) — the baseline Gen-NeRF removes.

IBRNet-style density estimation: the density features of all samples on
one ray attend to each other, letting the network reason about occlusion
and multi-view consistency along the ray before predicting densities.
The paper's profiling (Sec. 2.3) shows this module is wildly inefficient
on GPUs (44.1% of DNN latency at 13.8% of DNN FLOPs), which motivates
the Ray-Mixer replacement.

The projections and attention weights route through the fused
``nn.functional`` ops (``linear``, ``softmax`` / ``masked_softmax``),
so each training step builds one graph node per projection and per
softmax instead of a chain of elementwise nodes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn import Tensor


class RayTransformer(nn.Module):
    """Self-attention over the point axis followed by a density head.

    ``qk_dim`` deliberately projects attention into a narrow space — the
    paper-scale workload model assumes a slim transformer whose FLOPs
    are a small fraction of the per-point MLP (Sec. 2.3's 13.8%).
    """

    def __init__(self, density_feature_dim: int, qk_dim: int = 4,
                 heads: int = 1, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.density_feature_dim = density_feature_dim
        self.qk_dim = qk_dim
        self.heads = heads
        self.query = nn.Linear(density_feature_dim, qk_dim * heads, rng=rng)
        self.key = nn.Linear(density_feature_dim, qk_dim * heads, rng=rng)
        self.value = nn.Linear(density_feature_dim, qk_dim * heads, rng=rng)
        self.out = nn.Linear(qk_dim * heads, density_feature_dim, rng=rng)
        self.norm = nn.LayerNorm(density_feature_dim)
        self.head = nn.Linear(density_feature_dim, 1, rng=rng)

    def forward(self, density_features: Tensor,
                mask: Optional[np.ndarray] = None) -> Tensor:
        """(R, P, D) density features -> (R, P) density logits."""
        x = nn.as_tensor(density_features)
        rays, points, _ = x.shape
        heads, dim = self.heads, self.qk_dim

        def split(t: Tensor) -> Tensor:
            return t.reshape(rays, points, heads, dim).transpose((0, 2, 1, 3))

        normed = self.norm(x)
        q, k, v = split(self.query(normed)), split(self.key(normed)), \
            split(self.value(normed))
        scores = (q @ k.transpose((0, 1, 3, 2))) * (1.0 / np.sqrt(dim))
        if mask is not None:
            attend = np.broadcast_to(mask[:, None, None, :],
                                     (rays, heads, points, points))
            weights = nn.functional.masked_softmax(scores, attend, axis=-1)
        else:
            weights = nn.functional.softmax(scores, axis=-1)
        mixed = (weights @ v).transpose((0, 2, 1, 3)).reshape(
            rays, points, heads * dim)
        fused = x + self.out(mixed)
        return self.head(fused).squeeze(-1)

    def flops(self, rays: int, points: int) -> int:
        proj = 4 * 2 * rays * points * self.density_feature_dim \
            * self.qk_dim * self.heads
        attn = 2 * 2 * rays * self.heads * points * points * self.qk_dim
        head = 2 * rays * points * self.density_feature_dim
        return proj + attn + head


class PointwiseDensityHead(nn.Module):
    """No cross-point module: a per-point linear density head.

    This is Table 2's "- ray transformer" ablation row — the variant the
    paper shows suffers a large PSNR drop from erroneous densities.
    """

    def __init__(self, density_feature_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.density_feature_dim = density_feature_dim
        self.head = nn.Linear(density_feature_dim, 1, rng=rng)

    def forward(self, density_features: Tensor,
                mask: Optional[np.ndarray] = None) -> Tensor:
        del mask  # pointwise: padding handled downstream by compositing
        return self.head(nn.as_tensor(density_features)).squeeze(-1)

    def flops(self, rays: int, points: int) -> int:
        return 2 * rays * points * self.density_feature_dim
