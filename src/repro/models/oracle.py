"""Oracle-field evaluation of sampling strategies (drives Fig. 9).

Fig. 9's question is *how much rendering quality does each sampling
strategy buy per sampled point / per FLOP* — the learned networks are
held fixed across its curves.  We isolate exactly that variable: density
and colour come from the analytic scene field (an oracle for a perfectly
trained model), so the PSNR differences between strategies are caused
*only* by where their samples land, which is the paper's claimed
mechanism ("sparse yet effective sampling").  The FLOPs axis is supplied
by the paper-scale workload model.

The coarse pass of the coarse-then-focus strategy also queries the
oracle, but — matching the paper's lightweight design — only at N_c
points conditioned on fewer views, and its estimated hitting
probabilities (not the dense truth) feed the PDF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..geometry.camera import Camera
from ..geometry.rays import (RayBundle, image_shape_for_step, rays_for_image,
                             stratified_depths)
from ..scenes.fields import Field
from ..scenes.render_gt import composite_numpy, field_sigma_color
from .sampling import SampleSet, coarse_then_focus_plan, hierarchical_depths


@dataclass(frozen=True)
class OracleStrategy:
    """A sampling strategy evaluated under the oracle field.

    ``kind``:
      * ``uniform``      — N stratified points/ray (vanilla baseline).
      * ``hierarchical`` — IBRNet/vanilla-NeRF: N_c coarse + N_f fine,
        equal counts on every ray.
      * ``coarse_focus`` — Gen-NeRF: N_c coarse + N_f *average* focused
        points, redistributed across rays by the estimated PDF.
    """

    kind: str
    coarse_points: int = 0
    points: int = 64
    tau: float = 1e-3
    n_max: int = 192
    white_background: bool = False

    @property
    def label(self) -> str:
        if self.kind == "coarse_focus":
            return f"Gen-NeRF {self.coarse_points}/{self.points}"
        if self.kind == "hierarchical":
            return f"IBRNet {self.coarse_points}+{self.points}"
        return f"uniform {self.points}"

    @property
    def total_points_per_ray(self) -> float:
        """Average evaluated points per ray, the x-axis of Fig. 9 (top)."""
        if self.kind == "uniform":
            return float(self.points)
        return float(self.coarse_points + self.points)


def _render_sample_set(field: Field, bundle: RayBundle,
                       samples: SampleSet,
                       white_background: bool = False,
                       max_delta: float = None) -> np.ndarray:
    sigmas, colors = field_sigma_color(field, bundle, samples.depths)
    sigmas = np.where(samples.mask, sigmas, 0.0)
    pixel, _, _ = composite_numpy(sigmas, colors, samples.depths, bundle.far,
                                  white_background=white_background,
                                  max_delta=max_delta)
    return pixel


def oracle_render(field: Field, bundle: RayBundle,
                  strategy: OracleStrategy,
                  rng: Optional[np.random.Generator] = None
                  ) -> Tuple[np.ndarray, Dict[str, float]]:
    """Render ``bundle`` with the given strategy against the oracle field.

    Returns (pixels (R, 3), stats) where stats reports the realised
    average points per ray (coarse + focused/fine).
    """
    gen = rng or np.random.default_rng(0)
    num_rays = len(bundle)

    if strategy.kind == "uniform":
        depths = stratified_depths(gen, num_rays, strategy.points,
                                   bundle.near, bundle.far, jitter=False)
        samples = SampleSet.dense(depths)
        pixels = _render_sample_set(field, bundle, samples,
                                    strategy.white_background)
        return pixels, {"avg_points": float(strategy.points),
                        "coarse_points": 0.0}

    coarse_depths = stratified_depths(gen, num_rays, strategy.coarse_points,
                                      bundle.near, bundle.far, jitter=False)
    coarse_sigmas, coarse_colors = field_sigma_color(field, bundle,
                                                     coarse_depths)
    _, coarse_weights, _ = composite_numpy(coarse_sigmas, coarse_colors,
                                           coarse_depths, bundle.far)

    if strategy.kind == "hierarchical":
        fine = hierarchical_depths(coarse_depths, coarse_weights,
                                   strategy.points, bundle.near, bundle.far,
                                   gen, include_coarse=False)
        samples = SampleSet.dense(fine)
        pixels = _render_sample_set(field, bundle, samples,
                                    strategy.white_background)
        return pixels, {"avg_points": float(strategy.coarse_points
                                            + strategy.points),
                        "coarse_points": float(strategy.coarse_points)}

    if strategy.kind == "coarse_focus":
        plan = coarse_then_focus_plan(coarse_depths, coarse_weights,
                                      strategy.points, strategy.n_max,
                                      strategy.tau, bundle.near, bundle.far,
                                      rng=gen)
        # Unsampled gaps were classified empty by the coarse pass; cap
        # interval widths at the coarse bin size (see composite_numpy).
        bin_width = (bundle.far - bundle.near) / max(strategy.coarse_points, 1)
        pixels = _render_sample_set(field, bundle, plan,
                                    strategy.white_background,
                                    max_delta=bin_width)
        avg = plan.total_points / max(num_rays, 1)
        return pixels, {"avg_points": float(strategy.coarse_points) + avg,
                        "coarse_points": float(strategy.coarse_points),
                        "focused_avg": avg}

    raise ValueError(f"unknown strategy kind {strategy.kind!r}")


def oracle_render_image(field: Field, camera: Camera, near: float,
                        far: float, strategy: OracleStrategy, step: int = 4,
                        chunk: int = 4096,
                        rng: Optional[np.random.Generator] = None
                        ) -> Tuple[np.ndarray, Dict[str, float]]:
    """Strategy-rendered (strided) image plus aggregated stats.

    Note: the coarse-then-focus budget redistribution operates within
    each chunk of rays, mirroring the accelerator's tile-local scheduling
    (budgets are balanced within a tile, not across the whole frame).
    """
    bundle = rays_for_image(camera, near, far, step=step)
    rows, cols = image_shape_for_step(camera, step)
    pixels = np.zeros((len(bundle), 3), dtype=np.float64)
    totals: Dict[str, float] = {}
    chunks = 0
    for start in range(0, len(bundle), chunk):
        part = bundle.select(slice(start, start + chunk))
        rendered, stats = oracle_render(field, part, strategy, rng=rng)
        pixels[start:start + chunk] = rendered
        for key, value in stats.items():
            totals[key] = totals.get(key, 0.0) + value
        chunks += 1
    averaged = {key: value / max(chunks, 1) for key, value in totals.items()}
    return pixels.reshape(rows, cols, 3), averaged
